//! Push conformance: the v3 streaming surface must be an *observer*,
//! never a second implementation of the protocol.
//!
//! Three contracts, matching the subsystem's three pillars:
//!
//! 1. **Bit-identity** — a client that never polls, feeding a mirror
//!    purely from push events, holds exactly the intervals a polling
//!    client reads out of the same cache, under θ = 1, for
//!    shards ∈ {1, 2, 4}. A push is a *replication* of the cached
//!    interval, not a recomputation.
//! 2. **Lease expiry** — a lapsed TTL lease observably widens the
//!    cached interval to its fallback and emits **exactly one** push
//!    (`PushReason::LeaseExpired`); the lapsed lease stays disarmed, so
//!    further ticks push nothing.
//! 3. **Disconnect hygiene** — a TCP subscriber that vanishes without
//!    unsubscribing leaves no registry entries behind once the server
//!    reaps the connection.

use std::thread;
use std::time::{Duration, Instant};

use apcache::core::{Key, Rng, MS_PER_SEC};
use apcache::push::{FallbackWidth, LeaseConfig, PushFilter, PushReason};
use apcache::runtime::{Outcome, Runtime};
use apcache::shard::ShardedStoreBuilder;
use apcache::sim::stats::Stats;
use apcache::sim::systems::{
    AdaptiveSystemConfig, PipelinedSystemConfig, PushMirrorSystem, ShardedSystemConfig,
};
use apcache::sim::CacheSystem;
use apcache::store::InitialWidth;
use apcache::wire::{serve_connections, RemoteStoreClient, TcpTransport};

const N_KEYS: usize = 12;
const TICKS: u64 = 50;

#[test]
fn push_mirror_is_bit_identical_to_polling() {
    // θ = 1 (the default adaptive config): every interval transition is
    // deterministic, so the push stream must reproduce the cache
    // bit-for-bit at any shard count and with pipelined (windowed)
    // write submission.
    for shards in [1usize, 2, 4] {
        let cfg = PipelinedSystemConfig {
            base: ShardedSystemConfig {
                shards,
                base: AdaptiveSystemConfig::default(),
                ..ShardedSystemConfig::default()
            },
            window: 8,
            pool_sockets: 0,
        };
        let initial: Vec<f64> = (0..N_KEYS).map(|i| 10.0 * (i as f64 + 1.0)).collect();
        let mut system =
            PushMirrorSystem::new(&cfg, &initial, Rng::seed_from_u64(0x2001 + shards as u64))
                .unwrap();
        assert_eq!(system.mirrored_keys(), N_KEYS);

        let mut rng = Rng::seed_from_u64(0xD1FF ^ shards as u64);
        let mut values = initial.clone();
        let mut stats = Stats::new();
        for t in 1..=TICKS {
            let now = t * MS_PER_SEC;
            // A write burst per tick: random-walk every key, submitted
            // as one pipelined window.
            let batch: Vec<(Key, f64)> = (0..N_KEYS)
                .map(|i| {
                    values[i] += rng.normal_with(0.0, 6.0);
                    (Key(i as u32), values[i])
                })
                .collect();
            system.on_update_batch(&batch, now, &mut stats).unwrap();

            // Every key, every tick: the push-fed mirror vs. a polled
            // pure-cache-hit read of the same shard state.
            for i in 0..N_KEYS {
                let key = Key(i as u32);
                let mirrored = system
                    .interval_of(key, now)
                    .unwrap_or_else(|| panic!("shards={shards}: {key:?} absent from mirror"));
                let polled = system.poll_interval(key, now).unwrap();
                assert_eq!(
                    mirrored.to_bits(),
                    polled.to_bits(),
                    "shards={shards} t={t}: push mirror diverged from cache on {key:?}: \
                     mirrored {mirrored:?}, polled {polled:?}"
                );
            }
        }
        assert!(
            system.pushes_applied() > 0,
            "shards={shards}: a {TICKS}-tick random walk escaped no interval"
        );
        system.shutdown().unwrap();
    }
}

#[test]
fn lapsed_lease_widens_to_fallback_and_pushes_exactly_once() {
    let runtime = Runtime::launch(
        ShardedStoreBuilder::new()
            .shards(1)
            .initial_width(InitialWidth::Fixed(10.0))
            .source(0u64, 100.0)
            .build()
            .unwrap(),
    )
    .unwrap();
    let handle = runtime.handle();

    let (sub, snapshot) = handle.subscribe(&0u64, PushFilter::Always, 0).unwrap();
    assert_eq!(snapshot.width(), 10.0);
    handle
        .lease(&0u64, LeaseConfig { ttl_ms: 1_000, fallback: FallbackWidth::Fixed(40.0) }, 0)
        .unwrap();

    // Inside the TTL: nothing expires, nothing is pushed.
    let report = handle.advance_time(500).unwrap();
    assert_eq!(report.expired, 0);
    assert!(handle.poll().is_none(), "no push may fire before the lease lapses");

    // Past the TTL: the lease lapses, the interval widens to the
    // fallback, and exactly one LeaseExpired push is emitted.
    let report = handle.advance_time(1_500).unwrap();
    assert_eq!(report.expired, 1);
    let completion = handle.poll().expect("the lapse must push");
    assert_eq!(completion.ticket, sub, "push must arrive on the subscription's ticket");
    match completion.outcome.unwrap() {
        Outcome::Push(event) => {
            assert_eq!(event.key, 0u64);
            assert_eq!(event.reason, PushReason::LeaseExpired);
            assert_eq!(event.now, 1_500);
            assert_eq!(event.interval.width(), 40.0, "widened to the Fixed fallback");
            assert!(event.interval.contains(100.0), "widening keeps the value in bound");
        }
        other => panic!("expected a push, got {other:?}"),
    }

    // The lapsed lease is disarmed: further ticks expire nothing and
    // push nothing — "exactly one" means one.
    for now in [2_500u64, 5_000, 60_000] {
        let report = handle.advance_time(now).unwrap();
        assert_eq!(report.expired, 0, "a lapsed lease must not re-expire at t={now}");
    }
    assert!(handle.poll().is_none(), "a lapsed lease must not push again");
    runtime.shutdown().unwrap();
}

#[test]
fn vanished_tcp_subscriber_leaves_no_registry_entries() {
    let runtime = Runtime::launch(
        ShardedStoreBuilder::new()
            .shards(2)
            .initial_width(InitialWidth::Fixed(4.0))
            .source(0u64, 1.0)
            .source(1u64, 2.0)
            .build()
            .unwrap(),
    )
    .unwrap();
    let handle = runtime.handle();
    let stats_handle = runtime.handle();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let acceptor = thread::spawn(move || serve_connections(listener, handle));

    {
        let mut client: RemoteStoreClient<u64, _> =
            RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
        client.subscribe(&0u64, PushFilter::Always, 0).unwrap();
        client.subscribe(&1u64, PushFilter::Always, 0).unwrap();
        assert_eq!(stats_handle.push_stats().unwrap().subscribers, 2);
        // The subscriber vanishes: dropped without unsubscribing, without
        // shutdown — the socket just closes.
    }

    // The server reaps the dead connection and cancels its
    // subscriptions; poll until the registries are empty again.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = stats_handle.push_stats().unwrap();
        if stats.subscribers == 0 && stats.watched_keys == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "subscriptions leaked after disconnect: {stats:?}");
        thread::sleep(Duration::from_millis(10));
    }

    // Close the front door and wind down.
    let closer: RemoteStoreClient<u64, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
    closer.shutdown().unwrap();
    acceptor.join().expect("acceptor thread").unwrap();
    runtime.shutdown().unwrap();
}
