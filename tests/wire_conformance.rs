//! Wire-vs-local conformance: a `RemoteStoreClient` talking through the
//! frame protocol must be indistinguishable from the `ShardedStore` the
//! server wraps —
//!
//! * over the **in-process loopback** (paired byte queues) *and* over a
//!   **real localhost TCP socket**, every read answer, write escape
//!   count, aggregate answer and refresh plan is bit-identical to a
//!   local replay under θ = 1, for every swept shard count;
//! * the remote **metrics snapshot** equals the local rollup exactly,
//!   and the **drained server store** (handed back after the client's
//!   `Shutdown`) is in the identical final protocol state — internal
//!   widths, source values, cached intervals, counter totals;
//! * **errors conform** too: unknown keys and invalid constraints come
//!   back as faults with the matching category;
//! * the **decoder never panics**: random byte blobs and mutations of
//!   valid frames (the malformed-frame suite) always produce `WireError`.

use std::net::TcpListener;
use std::thread;

use apcache::core::{Rng, MS_PER_SEC};
use apcache::queries::AggregateKind;
use apcache::shard::{ShardedStore, ShardedStoreBuilder};
use apcache::store::{Constraint, InitialWidth};
use apcache::wire::{
    decode_message, encode_to_vec, loopback, FaultKind, RemoteError, RemoteStoreClient, ServerExit,
    StoreServer, TcpTransport, Transport, WireMessage, WireRequest,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const VNODES: usize = 64;
const N_KEYS: u32 = 24;
const TICKS: u64 = 150;
const SEED: u64 = 0xA9CA_2001;

fn key(i: u32) -> String {
    format!("sensor/{i:03}")
}

/// One operation of the shared trace, pre-generated so the local store
/// and the remote client replay byte-identical traffic.
#[derive(Debug, Clone)]
enum Op {
    Write { key: String, value: f64, now: u64 },
    WriteBatch { items: Vec<(String, f64)>, now: u64 },
    Read { key: String, constraint: Constraint, now: u64 },
    Aggregate { kind: AggregateKind, keys: Vec<String>, constraint: Constraint, now: u64 },
}

/// A deterministic mixed trace: per-key random walks delivered partly as
/// batches, rotating read constraints, periodic multi-shard aggregates of
/// every kind.
fn trace(seed: u64) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..N_KEYS).map(|i| 10.0 * i as f64).collect();
    let mut ops = Vec::new();
    for t in 1..=TICKS {
        let now = t * MS_PER_SEC;
        let mut batch = Vec::new();
        for i in 0..N_KEYS {
            values[i as usize] += rng.normal_with(0.0, 4.0);
            if i % 3 == 0 {
                ops.push(Op::Write { key: key(i), value: values[i as usize], now });
            } else {
                batch.push((key(i), values[i as usize]));
            }
        }
        ops.push(Op::WriteBatch { items: batch, now });
        for _ in 0..3 {
            let i = rng.below(u64::from(N_KEYS)) as u32;
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(1.0, 20.0)),
                1 => Constraint::Relative(0.05),
                _ => Constraint::Exact,
            };
            ops.push(Op::Read { key: key(i), constraint, now });
        }
        if t % 10 == 0 {
            let fanout = 4 + rng.below(10) as u32;
            let keys: Vec<String> = (0..fanout).map(|j| key((j * 7 + t as u32) % N_KEYS)).collect();
            let kind = match rng.below(4) {
                0 => AggregateKind::Sum,
                1 => AggregateKind::Max,
                2 => AggregateKind::Min,
                _ => AggregateKind::Avg,
            };
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(5.0, 100.0)),
                1 => Constraint::Relative(0.02),
                _ => Constraint::Exact,
            };
            ops.push(Op::Aggregate { kind, keys, constraint, now });
        }
    }
    ops
}

fn fleet(shards: usize) -> ShardedStore<String> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .vnodes(VNODES)
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 2))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..N_KEYS {
        b = b.source(key(i), 10.0 * i as f64);
    }
    b.build().expect("fleet config valid")
}

/// Replay the trace through `client` and `local` in lockstep, asserting
/// per-op bit-identity; then check metrics, errors, shutdown, and the
/// drained server store. `label` names the transport for diagnostics.
fn assert_remote_conforms<T: Transport>(
    mut client: RemoteStoreClient<String, T>,
    server: thread::JoinHandle<(ServerExit, ShardedStore<String>)>,
    mut local: ShardedStore<String>,
    shards: usize,
    label: &str,
) {
    for (op_no, op) in trace(SEED).iter().enumerate() {
        match op {
            Op::Write { key, value, now } => {
                let a = local.write(key, *value, *now).expect("known key");
                let b = client.write(key, *value, *now).expect("known key");
                assert_eq!(a, b, "{label} shards={shards} op={op_no}: write escape mismatch");
            }
            Op::WriteBatch { items, now } => {
                let a = local.write_batch(items, *now).expect("known keys");
                let b = client.write_batch(items, *now).expect("known keys");
                assert_eq!(a, b, "{label} shards={shards} op={op_no}: batch outcome mismatch");
            }
            Op::Read { key, constraint, now } => {
                let a = local.read(key, *constraint, *now).expect("known key");
                let b = client.read(key, *constraint, *now).expect("known key");
                assert_eq!(a, b, "{label} shards={shards} op={op_no}: read mismatch on {key}");
            }
            Op::Aggregate { kind, keys, constraint, now } => {
                let a = local.aggregate(*kind, keys, *constraint, *now).expect("known keys");
                let b = client.aggregate(*kind, keys, *constraint, *now).expect("known keys");
                assert_eq!(
                    a.answer, b.answer,
                    "{label} shards={shards} op={op_no}: answers diverged"
                );
                assert_eq!(
                    a.refreshed, b.refreshed,
                    "{label} shards={shards} op={op_no}: refresh plans diverged"
                );
            }
        }
    }

    // The remote metrics snapshot equals the local rollup exactly
    // (f64 cost accumulators included — they crossed the wire as bits).
    let remote_metrics = client.metrics().expect("metrics served");
    assert_eq!(
        &remote_metrics,
        local.metrics().merged(),
        "{label} shards={shards}: metric snapshots diverged"
    );

    // Errors conform: unknown key and invalid constraint come back as
    // category-matched faults while the local store errors directly.
    let missing = "sensor/999".to_string();
    assert!(local.read(&missing, Constraint::Exact, 0).is_err());
    match client.read(&missing, Constraint::Exact, 0) {
        Err(RemoteError::Remote(fault)) => assert_eq!(fault.kind, FaultKind::UnknownKey),
        other => panic!("{label}: expected UnknownKey fault, got {other:?}"),
    }
    assert!(local.read(&key(0), Constraint::Absolute(-1.0), 0).is_err());
    match client.read(&key(0), Constraint::Absolute(-1.0), 0) {
        Err(RemoteError::Remote(fault)) => assert_eq!(fault.kind, FaultKind::InvalidConstraint),
        other => panic!("{label}: expected InvalidConstraint fault, got {other:?}"),
    }

    // Shutdown, then compare the drained server store's full protocol
    // state against the local replay.
    client.shutdown().expect("clean shutdown");
    let (exit, drained) = server.join().expect("server thread");
    assert_eq!(exit, ServerExit::Shutdown, "{label} shards={shards}");
    let horizon = TICKS * MS_PER_SEC;
    for i in 0..N_KEYS {
        let k = key(i);
        assert_eq!(
            local.internal_width(&k),
            drained.internal_width(&k),
            "{label} shards={shards}: width diverged on {k}"
        );
        assert_eq!(
            local.value(&k),
            drained.value(&k),
            "{label} shards={shards}: source value diverged on {k}"
        );
        assert_eq!(
            local.cached_interval(&k, horizon),
            drained.cached_interval(&k, horizon),
            "{label} shards={shards}: cached interval diverged on {k}"
        );
    }
    assert_eq!(
        local.metrics().merged(),
        drained.metrics().merged(),
        "{label} shards={shards}: drained counters diverged"
    );
}

/// θ = 1 (multiversion costs, the builder default): adaptation is
/// deterministic, so the remote client must replay the trace identically
/// to the local store — through in-process byte queues.
#[test]
fn loopback_client_bit_identical_for_every_shard_count() {
    for &shards in &SHARD_COUNTS {
        let (mut server_end, client_end) = loopback();
        let server = thread::spawn(move || {
            let mut server = StoreServer::new(fleet(shards));
            let exit = server.serve::<String, _>(&mut server_end).expect("serving succeeds");
            (exit, server.into_service())
        });
        let client: RemoteStoreClient<String, _> = RemoteStoreClient::new(client_end);
        assert_remote_conforms(client, server, fleet(shards), shards, "loopback");
    }
}

/// The same conformance through a real localhost TCP socket: kernel
/// buffering, Nagle-off small frames, actual byte-stream fragmentation.
#[test]
fn tcp_client_bit_identical_for_every_shard_count() {
    for &shards in &SHARD_COUNTS {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let server = thread::spawn(move || {
            let mut transport = TcpTransport::accept(&listener).expect("accept");
            let mut server = StoreServer::new(fleet(shards));
            let exit = server.serve::<String, _>(&mut transport).expect("serving succeeds");
            (exit, server.into_service())
        });
        let client: RemoteStoreClient<String, _> =
            RemoteStoreClient::new(TcpTransport::connect(addr).expect("connect"));
        assert_remote_conforms(client, server, fleet(shards), shards, "tcp");
    }
}

/// The malformed-frame suite: the decoder must map arbitrary bytes onto
/// `WireError` — random blobs, truncations, and bit-flips of every valid
/// frame shape the conformance trace produces. A panic anywhere fails the
/// test by aborting it.
#[test]
fn decoder_never_panics_on_arbitrary_bytes() {
    // Valid frames drawn from the real trace vocabulary.
    let mut seeds: Vec<Vec<u8>> = Vec::new();
    for op in trace(SEED).into_iter().take(40) {
        let msg: WireMessage<String> = match op {
            Op::Write { key, value, now } => {
                WireMessage::Request(WireRequest::Write { key, value, now })
            }
            Op::WriteBatch { items, now } => {
                WireMessage::Request(WireRequest::WriteBatch { items, now })
            }
            Op::Read { key, constraint, now } => {
                WireMessage::Request(WireRequest::Read { key, constraint, now })
            }
            Op::Aggregate { kind, keys, constraint, now } => {
                WireMessage::Request(WireRequest::Aggregate { kind, keys, constraint, now })
            }
        };
        seeds.push(encode_to_vec(&msg));
    }
    let mut rng = Rng::seed_from_u64(SEED ^ 0xF);
    // Truncations and single-byte mutations of valid frames.
    for frame in &seeds {
        for cut in 0..frame.len() {
            assert!(decode_message::<String>(&frame[..cut]).is_err());
        }
        for _ in 0..64 {
            let mut mutated = frame.clone();
            let pos = rng.below(mutated.len() as u64) as usize;
            mutated[pos] ^= 1 << rng.below(8);
            let _ = decode_message::<String>(&mutated);
        }
    }
    // Pure noise.
    for _ in 0..10_000 {
        let len = rng.below(128) as usize;
        let blob: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = decode_message::<String>(&blob);
    }
}
