//! End-to-end correctness: every bounded query answered through the full
//! stack (sources → policies → cache → OW00 planner) must return an
//! interval that (a) contains the true aggregate of the exact values and
//! (b) meets the query's precision constraint.

use apcache::core::{Key, Rng, MS_PER_SEC};
use apcache::queries::AggregateKind;
use apcache::sim::systems::{AdaptiveSystem, AdaptiveSystemConfig, InitialWidth};
use apcache::sim::{CacheSystem, Stats};
use apcache::workload::query::GeneratedQuery;
use apcache::workload::walk::{RandomWalk, ValueProcess, WalkConfig};

fn true_aggregate(kind: AggregateKind, values: &[f64], keys: &[Key]) -> f64 {
    let picked: Vec<f64> = keys.iter().map(|k| values[k.0 as usize]).collect();
    match kind {
        AggregateKind::Sum => picked.iter().sum(),
        AggregateKind::Max => picked.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggregateKind::Min => picked.iter().copied().fold(f64::INFINITY, f64::min),
        AggregateKind::Avg => picked.iter().sum::<f64>() / picked.len() as f64,
    }
}

/// Drive the system manually, checking every answer against ground truth.
fn check_kind(kind: AggregateKind, seed: u64) {
    const N: usize = 8;
    let mut rng = Rng::seed_from_u64(seed);
    let mut walks: Vec<RandomWalk> = (0..N)
        .map(|_| RandomWalk::new(WalkConfig::paper_default(), rng.fork()).expect("valid"))
        .collect();
    let initial: Vec<f64> = walks.iter().map(|w| w.value()).collect();
    let sys_cfg = AdaptiveSystemConfig {
        initial_width: InitialWidth::Fixed(4.0),
        ..AdaptiveSystemConfig::default()
    };
    let mut system = AdaptiveSystem::new(&sys_cfg, &initial, rng.fork()).expect("builds");
    let mut stats = Stats::new();
    stats.begin_measurement();

    let mut values = initial;
    for t in 1..=600u64 {
        let now = t * MS_PER_SEC;
        for (i, w) in walks.iter_mut().enumerate() {
            let v = w.step();
            values[i] = v;
            system.on_update(Key(i as u32), v, now, &mut stats).expect("update ok");
        }
        // Query with a rotating constraint, including exact.
        let delta = match t % 4 {
            0 => 0.0,
            1 => 1.0,
            2 => 10.0,
            _ => 100.0,
        };
        let keys: Vec<Key> = rng.sample_indices(N, 4).into_iter().map(|i| Key(i as u32)).collect();
        let query = GeneratedQuery { kind, keys: keys.clone(), delta };
        let summary = system.on_query(&query, now, &mut stats).expect("query ok");
        let answer = summary.answer.expect("adaptive system returns intervals");
        let truth = true_aggregate(kind, &values, &keys);
        assert!(
            answer.contains(truth),
            "{kind} t={t}: answer {answer} does not contain true value {truth}"
        );
        assert!(
            answer.width() <= delta + 1e-9,
            "{kind} t={t}: width {} exceeds constraint {delta}",
            answer.width()
        );
    }
    assert!(stats.qr_count() > 0, "{kind}: expected query-initiated refreshes");
    assert!(stats.vr_count() > 0, "{kind}: expected value-initiated refreshes");
}

#[test]
fn sum_answers_are_sound_and_tight() {
    check_kind(AggregateKind::Sum, 11);
}

#[test]
fn max_answers_are_sound_and_tight() {
    check_kind(AggregateKind::Max, 22);
}

#[test]
fn min_answers_are_sound_and_tight() {
    check_kind(AggregateKind::Min, 33);
}

#[test]
fn avg_answers_are_sound_and_tight() {
    check_kind(AggregateKind::Avg, 44);
}

/// The same soundness must hold under cache pressure (evictions) and with
/// snapping thresholds.
#[test]
fn answers_stay_sound_with_small_cache_and_thresholds() {
    const N: usize = 10;
    let mut rng = Rng::seed_from_u64(5);
    let mut walks: Vec<RandomWalk> = (0..N)
        .map(|_| RandomWalk::new(WalkConfig::paper_default(), rng.fork()).expect("valid"))
        .collect();
    let initial: Vec<f64> = walks.iter().map(|w| w.value()).collect();
    let sys_cfg = AdaptiveSystemConfig {
        cache_capacity: Some(3),
        gamma0: 1.0,
        gamma1: 64.0,
        initial_width: InitialWidth::Fixed(4.0),
        ..AdaptiveSystemConfig::default()
    };
    let mut system = AdaptiveSystem::new(&sys_cfg, &initial, rng.fork()).expect("builds");
    let mut stats = Stats::new();
    stats.begin_measurement();
    let mut values = initial;
    for t in 1..=400u64 {
        let now = t * MS_PER_SEC;
        for (i, w) in walks.iter_mut().enumerate() {
            let v = w.step();
            values[i] = v;
            system.on_update(Key(i as u32), v, now, &mut stats).expect("update ok");
        }
        let keys: Vec<Key> = rng.sample_indices(N, 5).into_iter().map(|i| Key(i as u32)).collect();
        let query = GeneratedQuery { kind: AggregateKind::Sum, keys: keys.clone(), delta: 5.0 };
        let summary = system.on_query(&query, now, &mut stats).expect("query ok");
        let answer = summary.answer.expect("interval answer");
        let truth: f64 = keys.iter().map(|k| values[k.0 as usize]).sum();
        assert!(answer.contains(truth), "t={t}: {answer} misses {truth}");
        assert!(answer.width() <= 5.0 + 1e-9);
        assert!(system.cached_entries() <= 3, "capacity violated");
    }
}
