//! Reactor-door conformance: the event-driven `serve_reactor` must be
//! **bit-identical on the wire** to the threaded `serve_connections` —
//! same answers, same escapes, same push streams in per-subscription
//! order, same plain-HTTP `GET /metrics` behavior, same clean
//! `ClientPool` teardown — while multiplexing every connection over a
//! fixed worker pool instead of two threads per connection.
//!
//! Why bit-identity holds: the reactor worker submits frames in arrival
//! order (fixing each shard mailbox's order exactly as the threaded
//! reader does), and only the responses travel out of order, reassembled
//! by ticket client-side. The one data-dependent case — a multi-shard
//! Relative aggregate's escalation rounds — is flushed at submission,
//! the same discipline `pipelining_conformance` documents.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use apcache::core::{Rng, MS_PER_SEC};
use apcache::push::{PushEvent, PushFilter};
use apcache::queries::AggregateKind;
use apcache::reactor::{serve_reactor, ReactorConfig};
use apcache::runtime::{Runtime, RuntimeHandle};
use apcache::shard::{ShardedStore, ShardedStoreBuilder};
use apcache::store::{Constraint, InitialWidth, ReadResult, WriteOutcome};
use apcache::wire::{serve_connections, ClientPool, RemoteStoreClient, TcpTransport, Ticket};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const WINDOWS: [usize; 2] = [1, 32];
const N_KEYS: u32 = 16;
const TICKS: u64 = 60;
const SEED: u64 = 0x4EAC_2001;

fn key(i: u32) -> String {
    format!("sensor/{i:03}")
}

fn fleet(shards: usize) -> ShardedStore<String> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .vnodes(64)
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 2))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..N_KEYS {
        b = b.source(key(i), 10.0 + 10.0 * i as f64);
    }
    b.build().expect("fleet config valid")
}

/// Which serving door fronts the runtime for a run.
#[derive(Clone, Copy, Debug)]
enum Door {
    Threaded,
    Reactor,
}

/// Serve one TCP listener through the chosen door on its own thread.
fn spawn_door(
    door: Door,
    listener: TcpListener,
    handle: RuntimeHandle<String>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || match door {
        Door::Threaded => serve_connections(listener, handle).expect("threaded door serves"),
        Door::Reactor => {
            serve_reactor(listener, handle, ReactorConfig::default()).expect("reactor door serves")
        }
    })
}

// ---------------------------------------------------------------------
// 1. Request/response bit-identity under pipelining.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Write { key: String, value: f64, now: u64 },
    Read { key: String, constraint: Constraint, now: u64 },
    Aggregate { kind: AggregateKind, keys: Vec<String>, constraint: Constraint, now: u64 },
}

/// The shared deterministic trace: per-key walks, rotating constraints,
/// periodic aggregates of every kind.
fn trace(seed: u64) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..N_KEYS).map(|i| 10.0 + 10.0 * i as f64).collect();
    let mut ops = Vec::new();
    let kinds = [AggregateKind::Sum, AggregateKind::Max, AggregateKind::Min, AggregateKind::Avg];
    for t in 1..=TICKS {
        let now = t * MS_PER_SEC;
        for i in 0..N_KEYS {
            values[i as usize] += rng.normal_with(0.0, 4.0);
            ops.push(Op::Write { key: key(i), value: values[i as usize], now });
        }
        for _ in 0..4 {
            let i = rng.below(u64::from(N_KEYS)) as u32;
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(1.0, 20.0)),
                1 => Constraint::Relative(0.05),
                _ => Constraint::Exact,
            };
            ops.push(Op::Read { key: key(i), constraint, now });
        }
        if t % 5 == 0 {
            let fanout = 4 + rng.below(8) as u32;
            let keys: Vec<String> = (0..fanout).map(|j| key((j * 3 + t as u32) % N_KEYS)).collect();
            let kind = kinds[(t / 5) as usize % kinds.len()];
            let constraint = match rng.below(4) {
                0 => Constraint::Absolute(rng.uniform(5.0, 100.0)),
                1 => Constraint::Relative(0.02),
                2 => Constraint::Relative(0.5),
                _ => Constraint::Exact,
            };
            ops.push(Op::Aggregate { kind, keys, constraint, now });
        }
    }
    ops
}

#[derive(Debug, PartialEq)]
enum Outcome {
    Read(ReadResult),
    Write(WriteOutcome),
    Aggregate { lo_bits: u64, hi_bits: u64, refreshed: Vec<String> },
}

/// Run the trace through one door with a `window`-deep pipelined client
/// over real TCP; return every op's observable result and the drained
/// fleet.
fn run_door(
    door: Door,
    shards: usize,
    window: usize,
    ops: &[Op],
) -> (Vec<Outcome>, ShardedStore<String>) {
    let runtime = Runtime::launch(fleet(shards)).expect("runtime launches");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = spawn_door(door, listener, runtime.handle());
    let mut client: RemoteStoreClient<String, _> =
        RemoteStoreClient::with_window(TcpTransport::connect(addr).expect("connect"), window);

    enum Pending {
        Read(Ticket),
        Write(Ticket),
        Aggregate(Ticket),
    }
    let mut outcomes = Vec::with_capacity(ops.len());
    let mut in_flight: Vec<Pending> = Vec::with_capacity(window);
    let flush = |client: &mut RemoteStoreClient<String, _>,
                 in_flight: &mut Vec<Pending>,
                 outcomes: &mut Vec<Outcome>| {
        for pending in in_flight.drain(..) {
            outcomes.push(match pending {
                Pending::Read(t) => Outcome::Read(client.wait_read(t).expect("known key")),
                Pending::Write(t) => Outcome::Write(client.wait_write(t).expect("known key")),
                Pending::Aggregate(t) => {
                    let out = client.wait_aggregate(t).expect("valid query");
                    let (lo, hi) = out.answer.to_bits();
                    Outcome::Aggregate { lo_bits: lo, hi_bits: hi, refreshed: out.refreshed }
                }
            });
        }
    };
    for op in ops {
        if in_flight.len() >= window {
            flush(&mut client, &mut in_flight, &mut outcomes);
        }
        match op {
            Op::Write { key, value, now } => {
                in_flight.push(Pending::Write(client.submit_write(key, *value, *now).unwrap()));
            }
            Op::Read { key, constraint, now } => {
                in_flight.push(Pending::Read(client.submit_read(key, *constraint, *now).unwrap()));
            }
            Op::Aggregate { kind, keys, constraint, now } => {
                in_flight.push(Pending::Aggregate(
                    client.submit_aggregate(*kind, keys, *constraint, *now).unwrap(),
                ));
                if matches!(constraint, Constraint::Relative(_)) {
                    flush(&mut client, &mut in_flight, &mut outcomes);
                }
            }
        }
    }
    flush(&mut client, &mut in_flight, &mut outcomes);
    client.shutdown().expect("clean shutdown");
    server.join().expect("door thread");
    let store = runtime.into_store().expect("drain");
    (outcomes, store)
}

fn assert_stores_identical(a: &ShardedStore<String>, b: &ShardedStore<String>, tag: &str) {
    let final_now = (TICKS + 1) * MS_PER_SEC;
    for i in 0..N_KEYS {
        let k = key(i);
        assert_eq!(a.value(&k), b.value(&k), "{tag}: value of {k}");
        assert_eq!(a.internal_width(&k), b.internal_width(&k), "{tag}: width of {k}");
        let (ia, ib) = (a.cached_interval(&k, final_now), b.cached_interval(&k, final_now));
        match (ia, ib) {
            (Some(ia), Some(ib)) => {
                assert_eq!(ia.to_bits(), ib.to_bits(), "{tag}: interval of {k}")
            }
            (None, None) => {}
            other => panic!("{tag}: cache residency of {k} differs: {other:?}"),
        }
    }
    assert_eq!(
        a.metrics().merged().totals(),
        b.metrics().merged().totals(),
        "{tag}: metric totals"
    );
}

/// The acceptance sweep: at θ = 1 the two doors must agree bit-for-bit —
/// every answer, every escape, every refresh plan, the final per-key
/// protocol state, and the metric totals — at every shard count and
/// window depth.
#[test]
fn reactor_door_is_bit_identical_to_threaded_door() {
    let ops = trace(SEED);
    for &shards in &SHARD_COUNTS {
        for &window in &WINDOWS {
            let tag = format!("shards={shards} window={window}");
            let (threaded, threaded_store) = run_door(Door::Threaded, shards, window, &ops);
            let (reactor, reactor_store) = run_door(Door::Reactor, shards, window, &ops);
            assert_eq!(reactor.len(), threaded.len(), "{tag}: op count");
            for (i, (r, t)) in reactor.iter().zip(&threaded).enumerate() {
                assert_eq!(r, t, "{tag}: op #{i} ({:?})", ops[i]);
            }
            assert_stores_identical(&reactor_store, &threaded_store, &tag);
        }
    }
}

// ---------------------------------------------------------------------
// 2. Push streams: same events, same per-subscription order.
// ---------------------------------------------------------------------

const SUBSCRIBED: u32 = 6;

/// Subscribe to the first six keys, drive escaping walks over all
/// sixteen, cancel, and return each subscription's push stream in
/// arrival order.
fn run_push_door(door: Door) -> Vec<Vec<PushEvent<String>>> {
    let runtime = Runtime::launch(fleet(2)).expect("runtime launches");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = spawn_door(door, listener, runtime.handle());
    let mut client: RemoteStoreClient<String, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).expect("connect"));

    let subs: Vec<Ticket> = (0..SUBSCRIBED)
        .map(|i| {
            let (sub, snapshot) =
                client.subscribe(&key(i), PushFilter::Always, 0).expect("subscribe");
            assert_eq!(snapshot.width(), 8.0, "starting snapshot is the configured width");
            sub
        })
        .collect();

    // Wide walks (σ = 30 against an initial width of 8) so plenty of
    // writes escape and push; unsubscribed keys get traffic too, which
    // must never leak into a stream.
    let mut rng = Rng::seed_from_u64(SEED ^ 0xBEEF);
    let mut values: Vec<f64> = (0..N_KEYS).map(|i| 10.0 + 10.0 * i as f64).collect();
    for t in 1..=30u64 {
        let now = t * MS_PER_SEC;
        for i in 0..N_KEYS {
            values[i as usize] += rng.normal_with(0.0, 30.0);
            client.write(&key(i), values[i as usize], now).expect("known key");
        }
    }

    // Every push a write triggered is client-queued by the time that
    // write's own ack is harvested: the shard actor emits the push
    // before completing the write, and the connection is FIFO per
    // direction. Drain the queue *before* cancelling — an unsubscribe
    // deliberately discards its subscription's still-queued pushes.
    let mut streams: Vec<Vec<PushEvent<String>>> = vec![Vec::new(); SUBSCRIBED as usize];
    while let Some((sub, event)) = client.poll_push() {
        let idx = subs.iter().position(|&s| s == sub).expect("push on an unknown ticket");
        streams[idx].push(event);
    }
    for &sub in &subs {
        assert!(client.unsubscribe(sub).expect("unsubscribe"), "subscription was live");
    }
    client.shutdown().expect("clean shutdown");
    server.join().expect("door thread");
    runtime.shutdown().expect("runtime drains");
    streams
}

#[test]
fn push_streams_match_between_doors_in_per_subscription_order() {
    let threaded = run_push_door(Door::Threaded);
    let reactor = run_push_door(Door::Reactor);
    let total: usize = threaded.iter().map(Vec::len).sum();
    assert!(total > 0, "the walk produced no pushes at all");
    for (i, (t, r)) in threaded.iter().zip(&reactor).enumerate() {
        assert!(t.iter().all(|e| e.key == key(i as u32)), "stream {i}: foreign key leaked in");
        assert_eq!(t, r, "subscription {i}: push streams diverged between doors");
    }
}

// ---------------------------------------------------------------------
// 3. Plain-HTTP GET /metrics on a reactor port.
// ---------------------------------------------------------------------

fn raw_http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut scraper = TcpStream::connect(addr).expect("scraper connects");
    write!(scraper, "GET {path} HTTP/1.1\r\nHost: apcache\r\nAccept: text/plain\r\n\r\n")
        .expect("request written");
    let mut response = String::new();
    scraper.read_to_string(&mut response).expect("server closes after the response");
    let (head, body) = response.split_once("\r\n\r\n").expect("response has a header block");
    (head.to_string(), body.to_string())
}

#[test]
fn reactor_port_serves_plain_http_scrapes_beside_frame_clients() {
    let runtime = Runtime::launch(fleet(2)).expect("runtime launches");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = spawn_door(Door::Reactor, listener, runtime.handle());

    // A frame client holds its connection open across the scrapes.
    let mut client: RemoteStoreClient<String, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).expect("connect"));
    let r = client.read(&key(0), Constraint::Absolute(10.0), 0).expect("read serves");
    assert!(r.answer.contains(10.0));

    let (head, body) = raw_http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "scrape status: {head}");
    assert!(head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"));
    assert!(head.contains(&format!("Content-Length: {}", body.len())));
    for series in [
        "apcache_push_frames_coalesced_total",
        "apcache_connections_open",
        "apcache_reactor_wakeups_total",
        "apcache_http_scrapes_total",
    ] {
        assert!(body.contains(series), "exposition is missing {series}");
    }

    let (head, body) = raw_http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 404 Not Found"), "non-metrics path status: {head}");
    assert_eq!(body, "only /metrics is served over HTTP here\n");

    // The sibling scrapes never disturbed the frame connection.
    let r = client.read(&key(1), Constraint::Absolute(10.0), 1_000).expect("read still serves");
    assert!(r.answer.contains(20.0));
    client.shutdown().expect("clean shutdown");
    server.join().expect("door thread");
    runtime.shutdown().expect("runtime drains");
}

// ---------------------------------------------------------------------
// 4. ClientPool teardown drains cleanly through one reactor listener.
// ---------------------------------------------------------------------

#[test]
fn pool_drains_cleanly_through_one_reactor_listener() {
    let runtime = Runtime::launch(fleet(2)).expect("runtime launches");
    let stats_handle = runtime.handle();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = spawn_door(Door::Reactor, listener, runtime.handle());

    // Three member sockets into the same reactor port, six logical
    // clients multiplexed over them, each on its own key.
    let transports: Vec<TcpTransport> =
        (0..3).map(|_| TcpTransport::connect(addr).expect("connect member")).collect();
    let mut pool: ClientPool<String, _> = ClientPool::new(transports);
    let workers: Vec<_> = (0..6u32)
        .map(|c| {
            let handle = pool.handle();
            thread::spawn(move || {
                let k = key(c);
                let mut rng = Rng::seed_from_u64(SEED ^ u64::from(c));
                let mut value = 10.0 + 10.0 * f64::from(c);
                for t in 1..=40u64 {
                    let now = t * MS_PER_SEC;
                    value += rng.normal_with(0.0, 4.0);
                    handle.write(&k, value, now).expect("pooled write");
                    handle.read(&k, Constraint::Absolute(5.0), now).expect("pooled read");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("pooled worker");
    }

    // The sequential member drain must complete on every socket: the
    // first member's Shutdown stops the accept loop, and the remaining
    // members still finish their own handshakes inside the drain grace.
    pool.shutdown().expect("pool drains all members through one reactor listener");
    server.join().expect("door thread");

    let forced = stats_handle.telemetry().registry().counter(
        "apcache_wire_forced_closes_total",
        "Idle or lingering connections force-closed at listener teardown.",
        &[],
    );
    assert_eq!(forced.get(), 0, "pool members were force-closed mid-drain");
    runtime.shutdown().expect("runtime drains");
}

// ---------------------------------------------------------------------
// 5. Multi-subscriber escapes coalesce frames into shared socket writes.
// ---------------------------------------------------------------------

#[test]
fn multi_subscriber_escape_coalesces_frames() {
    let runtime = Runtime::launch(fleet(2)).expect("runtime launches");
    let stats_handle = runtime.handle();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    // One worker: every connection (here: one) and every completion
    // funnels through a single poller loop, the shape that coalesces.
    let config = ReactorConfig { workers: 1, ..ReactorConfig::default() };
    let serve_handle = runtime.handle();
    let server = thread::spawn(move || {
        serve_reactor(listener, serve_handle, config).expect("reactor door serves")
    });
    let mut client: RemoteStoreClient<String, _> =
        RemoteStoreClient::with_window(TcpTransport::connect(addr).expect("connect"), 16);

    let subs: Vec<Ticket> = (0..8u32)
        .map(|i| client.subscribe(&key(i), PushFilter::Always, 0).expect("subscribe").0)
        .collect();
    let coalesced = stats_handle.telemetry().registry().counter(
        "apcache_push_frames_coalesced_total",
        "Response and push frames that rode a socket write already carrying an earlier frame.",
        &[],
    );

    // Bursts of eight always-escaping writes (each jump outgrows the
    // doubling width): eight acks plus eight pushes funnel onto one
    // socket per burst, so some harvest round must batch ≥ 2 frames.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut t = 0u64;
    while coalesced.get() == 0 {
        t += 1;
        assert!(t <= 100 && Instant::now() < deadline, "no coalescing after {t} escape bursts");
        let now = t * MS_PER_SEC;
        let tickets: Vec<Ticket> = (0..8u32)
            .map(|i| {
                let value = (10.0 + f64::from(i)) * 3.0f64.powi(t as i32);
                client.submit_write(&key(i), value, now).expect("submit")
            })
            .collect();
        for ticket in tickets {
            client.wait_write(ticket).expect("write serves");
        }
    }
    assert!(coalesced.get() > 0);

    for sub in subs {
        client.unsubscribe(sub).expect("unsubscribe");
    }
    while client.poll_push().is_some() {}
    client.shutdown().expect("clean shutdown");
    server.join().expect("door thread");
    runtime.shutdown().expect("runtime drains");
}
