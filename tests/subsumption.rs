//! Subsumption of exact caching (Section 4.6 at test scale): with
//! `γ1 = γ0` the adaptive scheme caches exact copies or nothing, and its
//! cost is in the same band as the WJH97 baseline on the same workload.

use apcache::baselines::exact::{ExactCachingConfig, ExactCachingSystem};
use apcache::core::cost::CostModel;
use apcache::core::{Key, Rng};
use apcache::sim::systems::{
    build_adaptive_simulation, AdaptiveSystemConfig, QuerySpec, WorkloadSpec,
};
use apcache::sim::{SimConfig, Simulation};
use apcache::workload::query::{KindMix, QueryGenerator};
use apcache::workload::trace::{TraceConfig, TraceSet};

fn trace() -> TraceSet {
    TraceSet::generate(
        &TraceConfig { n_hosts: 12, duration_secs: 1_500, ..TraceConfig::paper_like() },
        77,
    )
    .expect("valid trace config")
}

fn sim_cfg() -> SimConfig {
    SimConfig::builder().duration_secs(1_500).warmup_secs(150).seed(3).build().expect("valid")
}

fn queries() -> QuerySpec {
    QuerySpec {
        period_secs: 1.0,
        fanout: 5,
        delta_avg: 0.0,
        delta_rho: 0.0,
        kind_mix: KindMix::SumOnly,
    }
}

fn run_wjh97(x: u32) -> f64 {
    let cfg = sim_cfg();
    let mut master = Rng::seed_from_u64(cfg.seed());
    let workload = WorkloadSpec::trace(trace());
    let processes = workload.build_processes(&mut master).expect("builds");
    let initial: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let system = ExactCachingSystem::new(
        ExactCachingConfig { cost: CostModel::multiversion(), x, cache_capacity: None },
        &initial,
    )
    .expect("builds");
    let query_gen = QueryGenerator::new(queries(), initial.len(), master.fork()).expect("builds");
    Simulation::new(cfg, system, processes, query_gen)
        .expect("assembles")
        .run()
        .expect("runs")
        .stats
        .cost_rate()
}

fn run_ours_exact() -> (f64, apcache::sim::systems::AdaptiveSystem) {
    let sys = AdaptiveSystemConfig {
        gamma0: 1_000.0,
        gamma1: 1_000.0,
        ..AdaptiveSystemConfig::default()
    };
    let report =
        build_adaptive_simulation(&sim_cfg(), &sys, WorkloadSpec::trace(trace()), queries())
            .expect("assembles")
            .run()
            .expect("runs");
    (report.stats.cost_rate(), report.system)
}

#[test]
fn gamma_equal_thresholds_cache_exactly_or_not_at_all() {
    let (_, system) = run_ours_exact();
    let now = 1_500_000;
    for k in 0..12u32 {
        if let Some(iv) = apcache::sim::CacheSystem::interval_of(&system, Key(k), now) {
            let w = iv.width();
            assert!(
                w == 0.0 || w.is_infinite(),
                "key {k}: width {w} is neither exact nor uncached under gamma1=gamma0"
            );
        }
    }
}

#[test]
fn ours_is_in_the_same_cost_band_as_wjh97() {
    let best_wjh97 = [3u32, 9, 21, 45].into_iter().map(run_wjh97).fold(f64::MAX, f64::min);
    let (ours, _) = run_ours_exact();
    assert!(ours > 0.0 && best_wjh97 > 0.0);
    // The paper reports a near-precise match on 2h runs; at this scale we
    // assert the same cost band (within 2x either way) — both algorithms
    // adaptively cache the read-heavy values and drop the write-heavy ones.
    let ratio = ours / best_wjh97;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "ours {ours} vs WJH97 {best_wjh97}: ratio {ratio} outside the subsumption band"
    );
}

#[test]
fn exact_queries_get_exact_answers_under_subsumption() {
    // With delta = 0 every query answer must be a point whatever the
    // caching state is.
    let sys = AdaptiveSystemConfig {
        gamma0: 1_000.0,
        gamma1: 1_000.0,
        ..AdaptiveSystemConfig::default()
    };
    let mut master = Rng::seed_from_u64(9);
    let workload = WorkloadSpec::trace(trace());
    let processes = workload.build_processes(&mut master).expect("builds");
    let initial: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let mut system =
        apcache::sim::systems::AdaptiveSystem::new(&sys, &initial, master.fork()).expect("builds");
    let mut stats = apcache::sim::Stats::new();
    stats.begin_measurement();
    let mut values = initial;
    let mut procs = processes;
    for t in 1..=300u64 {
        let now = t * 1_000;
        for (i, p) in procs.iter_mut().enumerate() {
            let v = p.step();
            if v != values[i] {
                values[i] = v;
                apcache::sim::CacheSystem::on_update(
                    &mut system,
                    Key(i as u32),
                    v,
                    now,
                    &mut stats,
                )
                .expect("update ok");
            }
        }
        let keys: Vec<Key> = (0..5).map(Key).collect();
        let query = apcache::workload::query::GeneratedQuery {
            kind: apcache::queries::AggregateKind::Sum,
            keys: keys.clone(),
            delta: 0.0,
        };
        let out = apcache::sim::CacheSystem::on_query(&mut system, &query, now, &mut stats)
            .expect("query ok");
        let answer = out.answer.expect("interval answer");
        assert!(answer.is_exact(), "t={t}: non-exact answer under delta=0");
        let truth: f64 = keys.iter().map(|k| values[k.0 as usize]).sum();
        assert!(
            (answer.lo() - truth).abs() < 1e-6,
            "t={t}: exact answer {} != truth {truth}",
            answer.lo()
        );
    }
}
