//! Bit-level reproducibility across the full stack: identical seeds give
//! identical traces, workloads, refresh sequences, and statistics.

use apcache::sim::systems::{
    build_adaptive_simulation, AdaptiveSystemConfig, QuerySpec, WorkloadSpec,
};
use apcache::sim::SimConfig;
use apcache::workload::query::KindMix;
use apcache::workload::trace::{TraceConfig, TraceSet};
use apcache::workload::walk::WalkConfig;

fn full_run(seed: u64) -> (u64, u64, f64, usize) {
    let trace = TraceSet::generate(
        &TraceConfig { n_hosts: 10, duration_secs: 900, ..TraceConfig::paper_like() },
        seed,
    )
    .expect("valid");
    let cfg = SimConfig::builder().duration_secs(900).warmup_secs(90).seed(seed).build().unwrap();
    let queries = QuerySpec {
        period_secs: 0.5,
        fanout: 4,
        delta_avg: 50_000.0,
        delta_rho: 1.0,
        kind_mix: KindMix::SumOrMax,
    };
    let report = build_adaptive_simulation(
        &cfg,
        &AdaptiveSystemConfig::default(),
        WorkloadSpec::trace(trace),
        queries,
    )
    .expect("assembles")
    .run()
    .expect("runs");
    (
        report.stats.vr_count(),
        report.stats.qr_count(),
        report.stats.total_cost(),
        report.system.cached_entries(),
    )
}

#[test]
fn identical_seeds_reproduce_bit_identical_results() {
    let a = full_run(42);
    let b = full_run(42);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = full_run(42);
    let c = full_run(43);
    assert_ne!((a.0, a.1), (c.0, c.1));
}

#[test]
fn trace_generation_is_reproducible() {
    let cfg = TraceConfig { n_hosts: 5, duration_secs: 300, ..TraceConfig::paper_like() };
    let t1 = TraceSet::generate(&cfg, 7).unwrap();
    let t2 = TraceSet::generate(&cfg, 7).unwrap();
    assert_eq!(t1, t2);
}

#[test]
fn walk_workloads_are_reproducible_through_the_driver() {
    let run = || {
        let cfg = SimConfig::builder().duration_secs(400).warmup_secs(40).seed(5).build().unwrap();
        let queries = QuerySpec {
            period_secs: 1.0,
            fanout: 2,
            delta_avg: 15.0,
            delta_rho: 0.5,
            kind_mix: KindMix::SumOnly,
        };
        build_adaptive_simulation(
            &cfg,
            &AdaptiveSystemConfig::default(),
            WorkloadSpec::random_walks(4, WalkConfig::paper_default()),
            queries,
        )
        .expect("assembles")
        .run()
        .expect("runs")
        .stats
        .total_cost()
    };
    assert_eq!(run(), run());
}
