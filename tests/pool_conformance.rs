//! Pooled-client conformance: eight logical clients multiplexed over
//! **two** pipelined TCP sockets must be indistinguishable from eight
//! clients with a socket each —
//!
//! * every logical client's op stream (writes, reads, own-key
//!   aggregates) returns bit-identical results in both deployments
//!   under θ = 1, because sticky member pinning preserves per-client
//!   FIFO through the shared socket;
//! * the final metric rollups of the two serving runtimes are equal;
//! * the pool's shutdown drains both member sockets to a clean
//!   `ServerExit::Shutdown`, same as the per-socket clients do.

use std::net::TcpListener;
use std::thread;

use apcache::core::{Interval, Rng, MS_PER_SEC};
use apcache::queries::AggregateKind;
use apcache::runtime::Runtime;
use apcache::shard::ShardedStoreBuilder;
use apcache::store::{Constraint, InitialWidth, ReadResult, WriteOutcome};
use apcache::wire::{
    serve_connections, serve_pipelined, ClientPool, PooledClient, RemoteStoreClient, ServerExit,
    TcpTransport,
};

const LOGICAL_CLIENTS: usize = 8;
const POOL_SOCKETS: usize = 2;
const KEYS_PER_CLIENT: u32 = 4;
const TICKS: u64 = 60;
const SEED: u64 = 0x9001_2001;

fn key(i: u32) -> String {
    format!("sensor/{i:03}")
}

/// One logical client's op stream, over **its own** key range only — so
/// per-key op order (and with it every θ = 1 outcome) is fixed by the
/// client, not by cross-client scheduling.
#[derive(Debug, Clone)]
enum Op {
    Write { key: String, value: f64, now: u64 },
    Read { key: String, constraint: Constraint, now: u64 },
    Aggregate { kind: AggregateKind, constraint: Constraint, now: u64 },
}

/// What came back, comparable bit-for-bit across deployments.
#[derive(Debug, PartialEq)]
enum OpResult {
    Wrote(WriteOutcome),
    Answered(ReadResult),
    Aggregated { answer: Interval, refreshed: Vec<String> },
}

fn client_keys(client: usize) -> Vec<String> {
    let base = client as u32 * KEYS_PER_CLIENT;
    (base..base + KEYS_PER_CLIENT).map(key).collect()
}

fn client_trace(client: usize) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(SEED ^ client as u64);
    let keys = client_keys(client);
    let mut values: Vec<f64> = keys.iter().map(|_| 100.0 * client as f64).collect();
    let mut ops = Vec::new();
    for t in 1..=TICKS {
        let now = t * MS_PER_SEC;
        for (i, k) in keys.iter().enumerate() {
            values[i] += rng.normal_with(0.0, 4.0);
            ops.push(Op::Write { key: k.clone(), value: values[i], now });
        }
        let pick = rng.below(keys.len() as u64) as usize;
        let constraint = match rng.below(3) {
            0 => Constraint::Absolute(rng.uniform(1.0, 20.0)),
            1 => Constraint::Relative(0.05),
            _ => Constraint::Exact,
        };
        ops.push(Op::Read { key: keys[pick].clone(), constraint, now });
        if t % 12 == 0 {
            let kind = match rng.below(3) {
                0 => AggregateKind::Sum,
                1 => AggregateKind::Min,
                _ => AggregateKind::Max,
            };
            ops.push(Op::Aggregate { kind, constraint: Constraint::Relative(0.02), now });
        }
    }
    ops
}

fn launch_fleet() -> Runtime<String> {
    let mut b = ShardedStoreBuilder::new()
        .shards(2)
        .vnodes(64)
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 0xF1))
        .initial_width(InitialWidth::Fixed(8.0));
    for c in 0..LOGICAL_CLIENTS {
        for k in client_keys(c) {
            b = b.source(k, 100.0 * c as f64);
        }
    }
    Runtime::launch(b.build().expect("fleet config valid")).expect("runtime launches")
}

/// Serve `sockets` pipelined connections off one runtime; returns the
/// connected client transports and the server threads.
fn serve_sockets(
    runtime: &Runtime<String>,
    sockets: usize,
) -> (Vec<TcpTransport>, Vec<thread::JoinHandle<ServerExit>>) {
    let mut transports = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..sockets {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let handle = runtime.handle();
        servers.push(thread::spawn(move || {
            let transport = TcpTransport::accept(&listener).expect("accept");
            serve_pipelined(transport, handle).expect("serving succeeds")
        }));
        transports.push(TcpTransport::connect(addr).expect("connect"));
    }
    (transports, servers)
}

/// The three verbs a trace needs, abstracted over pooled vs dedicated
/// connections. `&String` (not `&str`) because the clients' generic API
/// takes `&K` with `K = String`.
#[allow(clippy::ptr_arg)]
trait Driver {
    fn write(&mut self, key: &String, value: f64, now: u64) -> WriteOutcome;
    fn read(&mut self, key: &String, constraint: Constraint, now: u64) -> ReadResult;
    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[String],
        constraint: Constraint,
        now: u64,
    ) -> (Interval, Vec<String>);
}

impl Driver for apcache::wire::PooledClient<String, TcpTransport> {
    fn write(&mut self, key: &String, value: f64, now: u64) -> WriteOutcome {
        PooledClient::write(self, key, value, now).expect("pooled write")
    }
    fn read(&mut self, key: &String, constraint: Constraint, now: u64) -> ReadResult {
        PooledClient::read(self, key, constraint, now).expect("pooled read")
    }
    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[String],
        constraint: Constraint,
        now: u64,
    ) -> (Interval, Vec<String>) {
        let out = PooledClient::aggregate(self, kind, keys, constraint, now).expect("pooled agg");
        (out.answer, out.refreshed)
    }
}

impl Driver for RemoteStoreClient<String, TcpTransport> {
    fn write(&mut self, key: &String, value: f64, now: u64) -> WriteOutcome {
        RemoteStoreClient::write(self, key, value, now).expect("direct write")
    }
    fn read(&mut self, key: &String, constraint: Constraint, now: u64) -> ReadResult {
        RemoteStoreClient::read(self, key, constraint, now).expect("direct read")
    }
    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[String],
        constraint: Constraint,
        now: u64,
    ) -> (Interval, Vec<String>) {
        let out =
            RemoteStoreClient::aggregate(self, kind, keys, constraint, now).expect("direct agg");
        (out.answer, out.refreshed)
    }
}

/// Run one logical client's trace through a driver.
fn run_trace(client: usize, driver: &mut dyn Driver) -> Vec<OpResult> {
    let keys = client_keys(client);
    client_trace(client)
        .into_iter()
        .map(|op| match op {
            Op::Write { key, value, now } => OpResult::Wrote(driver.write(&key, value, now)),
            Op::Read { key, constraint, now } => {
                OpResult::Answered(driver.read(&key, constraint, now))
            }
            Op::Aggregate { kind, constraint, now } => {
                let (answer, refreshed) = driver.aggregate(kind, &keys, constraint, now);
                OpResult::Aggregated { answer, refreshed }
            }
        })
        .collect()
}

/// The acceptance sweep: 8 logical clients over 2 pooled sockets vs 8
/// clients over 8 sockets, each pair of deployments fronting an
/// identically-seeded 2-shard runtime. Every per-client result stream
/// must match bit-for-bit, and so must the final serving metrics.
#[test]
fn eight_logical_clients_over_two_sockets_match_per_client_sockets_bit_for_bit() {
    // Deployment A: the pool. Two sockets, eight logical handles.
    let runtime_a = launch_fleet();
    let (transports, servers_a) = serve_sockets(&runtime_a, POOL_SOCKETS);
    let mut pool: ClientPool<String, _> = ClientPool::new(transports);
    let workers_a: Vec<_> = (0..LOGICAL_CLIENTS)
        .map(|c| {
            let mut handle = pool.handle();
            assert_eq!(handle.logical_index(), c);
            assert_eq!(handle.member_index(), c % POOL_SOCKETS);
            thread::spawn(move || run_trace(c, &mut handle))
        })
        .collect();
    let results_a: Vec<Vec<OpResult>> =
        workers_a.into_iter().map(|w| w.join().expect("pooled worker")).collect();
    let metrics_a = pool.logical(0).metrics().expect("pooled metrics");

    // Deployment B: one socket per client, same runtime shape.
    let runtime_b = launch_fleet();
    let (transports, servers_b) = serve_sockets(&runtime_b, LOGICAL_CLIENTS);
    let clients_b: Vec<RemoteStoreClient<String, _>> =
        transports.into_iter().map(RemoteStoreClient::new).collect();
    let workers_b: Vec<_> = clients_b
        .into_iter()
        .enumerate()
        .map(|(c, mut client)| {
            thread::spawn(move || {
                let results = run_trace(c, &mut client);
                (results, client)
            })
        })
        .collect();
    let mut results_b = Vec::new();
    let mut drained_b = Vec::new();
    for w in workers_b {
        let (results, client) = w.join().expect("direct worker");
        results_b.push(results);
        drained_b.push(client);
    }
    let metrics_b = drained_b[0].metrics().expect("direct metrics");

    // Bit-for-bit: every logical client saw identical traffic outcomes
    // whether it shared a socket or owned one.
    for (c, (a, b)) in results_a.iter().zip(&results_b).enumerate() {
        assert_eq!(a.len(), b.len(), "client {c}: op counts diverged");
        for (op_no, (ra, rb)) in a.iter().zip(b).enumerate() {
            assert_eq!(ra, rb, "client {c} op {op_no}: pooled result diverged");
        }
    }
    assert_eq!(metrics_a, metrics_b, "serving metrics diverged between deployments");

    // Both deployments drain to a clean server shutdown.
    pool.shutdown().expect("pool drains both sockets");
    for s in servers_a {
        assert_eq!(s.join().expect("pooled server"), ServerExit::Shutdown);
    }
    for client in drained_b {
        client.shutdown().expect("direct client drains");
    }
    for s in servers_b {
        assert_eq!(s.join().expect("direct server"), ServerExit::Shutdown);
    }
    runtime_a.shutdown().expect("runtime A drains");
    runtime_b.shutdown().expect("runtime B drains");
}

/// Regression: a pool draining through **one** `serve_connections`
/// listener. `ClientPool::shutdown` walks its members sequentially, so
/// the first member's `Shutdown` stops the accept loop while members
/// 2..n still have their own handshakes in flight. The listener must
/// give those sibling connections a drain grace instead of force-closing
/// them the instant the acceptor stops — previously the pool's own
/// orderly shutdown tripped the force-close path it was racing.
#[test]
fn pool_drains_cleanly_through_one_listener() {
    let runtime = launch_fleet();
    let stats_handle = runtime.handle();
    let serve_handle = runtime.handle();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let acceptor = thread::spawn(move || serve_connections(listener, serve_handle));

    // Three member sockets into the same listener, eight logical
    // clients multiplexed over them — the shape ClientPool deploys
    // against a single serving port.
    let transports: Vec<TcpTransport> =
        (0..3).map(|_| TcpTransport::connect(addr).expect("connect member")).collect();
    let mut pool: ClientPool<String, _> = ClientPool::new(transports);
    let workers: Vec<_> = (0..LOGICAL_CLIENTS)
        .map(|c| {
            let mut handle = pool.handle();
            thread::spawn(move || run_trace(c, &mut handle))
        })
        .collect();
    for w in workers {
        w.join().expect("pooled worker");
    }

    // The sequential member drain must complete on every socket: the
    // first member's Shutdown stops the acceptor, and members 2 and 3
    // still get to finish their own Shutdown handshakes.
    pool.shutdown().expect("pool drains all members through one listener");
    acceptor.join().expect("acceptor thread").expect("serve_connections exits cleanly");

    // Nothing was force-closed: every connection ended by handshake.
    let forced = stats_handle.telemetry().registry().counter(
        "apcache_wire_forced_closes_total",
        "Idle or lingering connections force-closed at listener teardown.",
        &[],
    );
    assert_eq!(forced.get(), 0, "pool members were force-closed mid-drain");
    runtime.shutdown().expect("runtime drains");
}
