//! End-to-end contract of the `PrecisionStore` façade:
//!
//! * a read with a constraint the cache cannot meet triggers **exactly
//!   one** query-initiated refresh and narrows the key's interval;
//! * a write escaping `[L, H]` triggers a value-initiated refresh and
//!   widens the key's interval;
//! * every answer — read or aggregate, hit or refresh — contains the true
//!   value.

use apcache::core::cost::CostModel;
use apcache::core::{Rng, MS_PER_SEC};
use apcache::queries::AggregateKind;
use apcache::store::{Answer, Constraint, InitialWidth, PolicySpec, StoreBuilder, StoreError};
use apcache::workload::walk::{RandomWalk, ValueProcess, WalkConfig};

/// θ = 1 (multiversion costs) makes every width adjustment deterministic,
/// so the narrowing/widening assertions are exact.
fn deterministic_store() -> apcache::store::PrecisionStore<&'static str> {
    StoreBuilder::new()
        .cost(CostModel::multiversion())
        .alpha(1.0)
        .initial_width(InitialWidth::Fixed(8.0))
        .source("a", 100.0)
        .source("b", -40.0)
        .build()
        .expect("valid store")
}

#[test]
fn tight_read_triggers_exactly_one_refresh_and_narrows() {
    let mut store = deterministic_store();
    let before = store.internal_width(&"a").unwrap();
    assert_eq!(before, 8.0);

    // Tighter than the cached ±4 interval: one QR, exact answer.
    let result = store.read(&"a", Constraint::Absolute(2.0), 0).unwrap();
    assert!(result.refreshed);
    assert_eq!(result.answer, Answer::Exact(100.0));
    assert_eq!(store.metrics().qr_count(), 1, "exactly one query-initiated refresh");
    assert_eq!(store.metrics().for_key(&"a").unwrap().qr_count, 1);

    // The width shrank by (1+α) and the fresh interval reflects it.
    assert_eq!(store.internal_width(&"a").unwrap(), 4.0);
    assert_eq!(store.cached_interval(&"a", 0).unwrap().width(), 4.0);

    // The shrunken interval now serves the same constraint for free.
    let result = store.read(&"a", Constraint::Absolute(4.0), 1_000).unwrap();
    assert!(!result.refreshed);
    assert_eq!(store.metrics().qr_count(), 1, "no further refresh");
}

#[test]
fn escaping_write_triggers_refresh_and_widens() {
    let mut store = deterministic_store();

    // Inside [96, 104]: no refresh, no width change.
    let outcome = store.write(&"a", 103.0, 1_000).unwrap();
    assert!(!outcome.escaped());
    assert_eq!(store.metrics().vr_count(), 0);
    assert_eq!(store.internal_width(&"a").unwrap(), 8.0);

    // Escape above 104: one VR, width doubles, interval re-centers.
    let outcome = store.write(&"a", 110.0, 2_000).unwrap();
    assert_eq!(outcome.refreshes, 1);
    assert_eq!(store.metrics().vr_count(), 1);
    assert_eq!(store.internal_width(&"a").unwrap(), 16.0);
    let interval = store.cached_interval(&"a", 2_000).unwrap();
    assert!(interval.contains(110.0));
    assert_eq!(interval.width(), 16.0);

    // Escape below also detected.
    let outcome = store.write(&"b", -100.0, 3_000).unwrap();
    assert!(outcome.escaped());
    assert!(store.cached_interval(&"b", 3_000).unwrap().contains(-100.0));
}

#[test]
fn relative_and_exact_constraints_route_correctly() {
    let mut store = deterministic_store();
    // [96, 104] certifies 8/96 ≈ 8.3 %: a 10 % read is a hit.
    let result = store.read(&"a", Constraint::Relative(0.10), 0).unwrap();
    assert!(!result.refreshed);
    // A 1 % read is not, and must come back exact-or-narrow enough.
    let result = store.read(&"a", Constraint::Relative(0.01), 0).unwrap();
    assert!(result.refreshed);
    assert_eq!(result.answer.estimate(), Some(100.0));
    // Exact always reflects the true source value.
    store.write(&"a", 101.0, 1_000).unwrap();
    let result = store.read(&"a", Constraint::Exact, 1_000).unwrap();
    assert_eq!(result.answer, Answer::Exact(101.0));
}

#[test]
fn answers_always_contain_the_true_value() {
    // Drive random-walk traffic through reads, writes, and aggregates with
    // mixed constraints; every answer must contain the ground truth.
    const N: usize = 6;
    let mut rng = Rng::seed_from_u64(2026);
    let mut walks: Vec<RandomWalk> = (0..N)
        .map(|_| RandomWalk::new(WalkConfig::paper_default(), rng.fork()).expect("valid walk"))
        .collect();
    let keys: Vec<u32> = (0..N as u32).collect();
    let mut store = StoreBuilder::new()
        .rng(rng.fork())
        .initial_width(InitialWidth::Fixed(6.0))
        .build()
        .expect("valid store");
    for (i, walk) in walks.iter().enumerate() {
        store.insert(i as u32, walk.value(), 0).unwrap();
    }

    for t in 1..=500u64 {
        let now = t * MS_PER_SEC;
        let mut truth = Vec::with_capacity(N);
        for (i, walk) in walks.iter_mut().enumerate() {
            let v = walk.step();
            store.write(&(i as u32), v, now).unwrap();
            truth.push(v);
        }

        // Point read with a rotating constraint.
        let key = (t % N as u64) as u32;
        let constraint = match t % 3 {
            0 => Constraint::Absolute(5.0),
            1 => Constraint::Relative(0.05),
            _ => Constraint::Exact,
        };
        let result = store.read(&key, constraint, now).unwrap();
        assert!(
            result.answer.contains(truth[key as usize]),
            "t={t}: read answer {} misses true value {}",
            result.answer,
            truth[key as usize]
        );

        // Aggregate over all keys every 5 ticks.
        if t % 5 == 0 {
            for (kind, agg_truth) in [
                (AggregateKind::Sum, truth.iter().sum::<f64>()),
                (AggregateKind::Max, truth.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
                (AggregateKind::Min, truth.iter().copied().fold(f64::INFINITY, f64::min)),
            ] {
                let out = store.aggregate(kind, &keys, Constraint::Absolute(8.0), now).unwrap();
                assert!(out.answer.width() <= 8.0 + 1e-9);
                assert!(
                    out.answer.contains(agg_truth),
                    "t={t}: {kind:?} answer {} misses {agg_truth}",
                    out.answer
                );
            }
        }
    }
    // The workload produced refreshes of both kinds.
    assert!(store.metrics().vr_count() > 0);
    assert!(store.metrics().qr_count() > 0);
}

#[test]
fn per_key_policies_coexist() {
    let mut store = StoreBuilder::new()
        .initial_width(InitialWidth::Fixed(8.0))
        .source("adaptive", 10.0)
        .source_with_policy("frozen", 20.0, PolicySpec::Fixed { width: 8.0 })
        .build()
        .unwrap();
    // One tight read each: the adaptive key narrows, the fixed key stays.
    store.read(&"adaptive", Constraint::Exact, 0).unwrap();
    store.read(&"frozen", Constraint::Exact, 0).unwrap();
    assert_eq!(store.internal_width(&"adaptive").unwrap(), 4.0);
    assert_eq!(store.internal_width(&"frozen").unwrap(), 8.0);
}

#[test]
fn relative_constraints_degenerate_around_zero() {
    // A zero-valued source's interval straddles 0, so no finite relative
    // error can be certified: every Relative read must refresh, however
    // loose, and the exact answer 0 is returned.
    let mut store = StoreBuilder::new()
        .initial_width(InitialWidth::Fixed(8.0))
        .source("zero", 0.0)
        .source("near_zero", 0.5)
        .build()
        .unwrap();
    for rho in [0.01, 1.0, 100.0] {
        let result = store.read(&"zero", Constraint::Relative(rho), 0).unwrap();
        assert!(result.refreshed, "ρ={rho}: straddling interval certified a relative bound");
        assert_eq!(result.answer, Answer::Exact(0.0));
    }
    // Each refresh halves the width (θ=1, α=1): 8 → 4 → 2 → 1. The
    // interval still straddles zero, so the degeneracy is permanent.
    assert_eq!(store.internal_width(&"zero").unwrap(), 1.0);
    // A near-zero source behaves the same while its interval straddles 0
    // ([−3.5, 4.5] does), even though its value is nonzero.
    let result = store.read(&"near_zero", Constraint::Relative(10.0), 0).unwrap();
    assert!(result.refreshed);
    assert_eq!(result.answer, Answer::Exact(0.5));
    // Writes that move the value away from zero eventually yield an
    // interval clear of 0, and relative reads become satisfiable again.
    store.write(&"near_zero", 100.0, 1_000).unwrap();
    let result = store.read(&"near_zero", Constraint::Relative(0.5), 1_000).unwrap();
    assert!(!result.refreshed, "interval clear of zero should certify ρ=0.5");
}

#[test]
fn aggregate_over_empty_key_set() {
    let mut store = deterministic_store();
    let no_keys: &[&str] = &[];
    // SUM of nothing is the point 0 — free, nothing fetched.
    let out = store.aggregate(AggregateKind::Sum, no_keys, Constraint::Absolute(1.0), 0).unwrap();
    assert_eq!((out.answer.lo(), out.answer.hi()), (0.0, 0.0));
    assert!(out.refreshed.is_empty());
    // MAX/MIN/AVG of nothing are undefined and must error cleanly…
    for kind in [AggregateKind::Max, AggregateKind::Min, AggregateKind::Avg] {
        assert!(
            matches!(
                store.aggregate(kind, no_keys, Constraint::Absolute(1.0), 0),
                Err(StoreError::Query(_))
            ),
            "{kind:?} over [] should be a query error"
        );
    }
    // …without charging anything.
    assert_eq!(store.metrics().total_cost(), 0.0);
    assert_eq!(store.metrics().qr_count(), 0);
}

#[test]
fn read_on_missing_key_leaves_store_untouched() {
    // An empty store rejects every verb with UnknownKey and records no
    // traffic at all — a failed routing decision must not pollute metrics.
    let mut store: apcache::store::PrecisionStore<String> = StoreBuilder::new().build().unwrap();
    assert!(store.is_empty());
    assert!(matches!(
        store.read(&"ghost".to_string(), Constraint::Absolute(1.0), 0),
        Err(StoreError::UnknownKey)
    ));
    assert_eq!(store.metrics().totals().reads, 0);
    assert!(store.metrics().for_key(&"ghost".to_string()).is_none());
    assert!(store.cached_interval(&"ghost".to_string(), 0).is_none());
    assert!(store.value(&"ghost".to_string()).is_none());
    // Inserting afterwards works and the key serves normally.
    store.insert("ghost".to_string(), 7.0, 0).unwrap();
    let r = store.read(&"ghost".to_string(), Constraint::Exact, 0).unwrap();
    assert_eq!(r.answer, Answer::Exact(7.0));
}

#[test]
fn metrics_after_capacity_bounded_build() {
    // κ = 2 with five sources: three registrations were evicted at build
    // time. Eviction is not traffic — metrics must start empty — and
    // reads on evicted keys are real refreshes that get accounted.
    let mut store: apcache::store::PrecisionStore<u32> = StoreBuilder::new()
        .capacity(2)
        .initial_width(InitialWidth::Fixed(4.0))
        .source(0, 0.0)
        .source(1, 10.0)
        .source(2, 20.0)
        .source(3, 30.0)
        .source(4, 40.0)
        .build()
        .unwrap();
    assert_eq!(store.len(), 5);
    assert!(store.cached_len() <= 2);
    let m = store.metrics();
    assert_eq!(m.totals(), &apcache::store::KeyMetrics::default());
    assert_eq!(m.iter().count(), 0, "build-time eviction recorded traffic");
    // A finite-constraint read of an evicted key refreshes and is counted.
    let victim = (0..5u32).find(|k| !store.is_cached(k)).unwrap();
    let r = store.read(&victim, Constraint::Absolute(2.0), 0).unwrap();
    assert!(r.refreshed);
    let m = store.metrics();
    assert_eq!(m.qr_count(), 1);
    assert_eq!(m.for_key(&victim).unwrap().reads, 1);
    assert_eq!(m.for_key(&victim).unwrap().cache_hits, 0);
    assert!(m.total_cost() > 0.0);
}

#[test]
fn unknown_keys_surface_clean_errors() {
    let mut store = deterministic_store();
    assert!(matches!(store.read(&"nope", Constraint::Exact, 0), Err(StoreError::UnknownKey)));
    assert!(matches!(store.write(&"nope", 1.0, 0), Err(StoreError::UnknownKey)));
    assert!(matches!(
        store.aggregate(AggregateKind::Sum, &["a", "nope"], Constraint::Exact, 0),
        Err(StoreError::UnknownKey)
    ));
    // A failed aggregate charges nothing.
    assert_eq!(store.metrics().total_cost(), 0.0);
}
