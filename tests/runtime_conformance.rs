//! Runtime-vs-sharded conformance: the actor-per-shard runtime must be
//! indistinguishable from the synchronous `ShardedStore` it wraps —
//!
//! * with a **single client**, every read, write escape count, aggregate
//!   answer and refresh plan is bit-identical under θ = 1 for every
//!   swept shard count, and the final per-key protocol state (internal
//!   widths, cached intervals, source values) and metric totals agree
//!   exactly (checked by draining the runtime back into a store);
//! * with **N clients on disjoint key sets**, each client's per-key
//!   results still match a single-threaded reference replay — per-key
//!   protocol state is key-local and θ = 1 adaptation is deterministic,
//!   so interleaving across keys must not leak between them;
//! * **shutdown drains**: every fire-and-forget write that was accepted
//!   into a mailbox is applied before the actors exit — no lost writes,
//!   even with tiny mailboxes and producers racing the shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use apcache::core::{Rng, MS_PER_SEC};
use apcache::queries::AggregateKind;
use apcache::runtime::{Runtime, RuntimeConfig, RuntimeError};
use apcache::shard::{ShardedStore, ShardedStoreBuilder};
use apcache::store::{Constraint, InitialWidth, ReadResult, WriteOutcome};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const VNODES: usize = 64;
const N_KEYS: u32 = 32;
const TICKS: u64 = 200;
const SEED: u64 = 0xAC70_2001;

fn key(i: u32) -> String {
    format!("sensor/{i:03}")
}

/// One operation of the shared trace, pre-generated so both systems
/// replay byte-identical traffic.
#[derive(Debug, Clone)]
enum Op {
    Write { key: String, value: f64, now: u64 },
    Read { key: String, constraint: Constraint, now: u64 },
    Aggregate { keys: Vec<String>, constraint: Constraint, now: u64 },
}

/// A deterministic mixed trace over all keys: per-key random walks,
/// rotating read constraints, periodic multi-shard aggregates.
fn trace(seed: u64) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..N_KEYS).map(|i| 10.0 * i as f64).collect();
    let mut ops = Vec::new();
    for t in 1..=TICKS {
        let now = t * MS_PER_SEC;
        for i in 0..N_KEYS {
            values[i as usize] += rng.normal_with(0.0, 4.0);
            ops.push(Op::Write { key: key(i), value: values[i as usize], now });
        }
        for _ in 0..3 {
            let i = rng.below(u64::from(N_KEYS)) as u32;
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(1.0, 20.0)),
                1 => Constraint::Relative(0.05),
                _ => Constraint::Exact,
            };
            ops.push(Op::Read { key: key(i), constraint, now });
        }
        if t % 10 == 0 {
            let fanout = 4 + rng.below(12) as u32;
            let keys = (0..fanout).map(|j| key((j * 7 + t as u32) % N_KEYS)).collect();
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(5.0, 100.0)),
                1 => Constraint::Relative(0.02),
                _ => Constraint::Exact,
            };
            ops.push(Op::Aggregate { keys, constraint, now });
        }
    }
    ops
}

fn fleet(shards: usize) -> ShardedStore<String> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .vnodes(VNODES)
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 2))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..N_KEYS {
        b = b.source(key(i), 10.0 * i as f64);
    }
    b.build().expect("fleet config valid")
}

/// θ = 1 (multiversion costs, the builder default): width adaptation is
/// deterministic, so one client driving the runtime must replay the trace
/// **identically** to the synchronous sharded store — every answer, every
/// escape, every aggregate plan, every final width and counter.
#[test]
fn single_client_bit_identical_for_every_shard_count() {
    let ops = trace(SEED);
    for &n in &SHARD_COUNTS {
        let mut sync = fleet(n);
        let runtime = Runtime::launch(fleet(n)).expect("runtime launches");
        let h = runtime.handle();
        for (op_no, op) in ops.iter().enumerate() {
            match op {
                Op::Write { key, value, now } => {
                    let a = sync.write(key, *value, *now).expect("known key");
                    let b = h.write(key, *value, *now).expect("known key");
                    assert_eq!(a, b, "shards={n} op={op_no}: write escape mismatch on {key}");
                }
                Op::Read { key, constraint, now } => {
                    let a = sync.read(key, *constraint, *now).expect("known key");
                    let b = h.read(key, *constraint, *now).expect("known key");
                    assert_eq!(a, b, "shards={n} op={op_no}: read mismatch on {key}");
                }
                Op::Aggregate { keys, constraint, now } => {
                    let a = sync.aggregate(AggregateKind::Sum, keys, *constraint, *now).unwrap();
                    let b = h.aggregate(AggregateKind::Sum, keys, *constraint, *now).unwrap();
                    assert_eq!(a.answer, b.answer, "shards={n} op={op_no}: answers diverged");
                    assert_eq!(a.refreshed, b.refreshed, "shards={n} op={op_no}: plans diverged");
                }
            }
        }
        // Metrics rollups agree while the runtime is still live…
        let live = h.metrics().expect("actors alive");
        assert_eq!(
            live.merged().totals(),
            sync.metrics().merged().totals(),
            "shards={n}: live metric totals diverged"
        );
        // …and the drained store is in the identical final state.
        let drained = runtime.into_store().expect("clean shutdown");
        for i in 0..N_KEYS {
            let k = key(i);
            assert_eq!(
                sync.internal_width(&k),
                drained.internal_width(&k),
                "shards={n}: width diverged on {k}"
            );
            assert_eq!(sync.value(&k), drained.value(&k), "shards={n}: value diverged on {k}");
            assert_eq!(
                sync.cached_interval(&k, TICKS * MS_PER_SEC),
                drained.cached_interval(&k, TICKS * MS_PER_SEC),
                "shards={n}: cached interval diverged on {k}"
            );
        }
    }
}

/// N clients on disjoint key sets: per-key traffic is key-local and θ = 1
/// adaptation is deterministic, so whatever the interleaving across keys,
/// each client must observe exactly the results a single-threaded replay
/// of its own ops produces.
#[test]
fn concurrent_disjoint_clients_match_reference_replay() {
    const CLIENTS: u32 = 4;
    // Per-client op sequences over its own keys (i ≡ c mod CLIENTS).
    let client_ops = |c: u32| -> Vec<Op> {
        let mut rng = Rng::seed_from_u64(SEED + u64::from(c));
        let mine: Vec<u32> = (0..N_KEYS).filter(|i| i % CLIENTS == c).collect();
        let mut values: Vec<f64> = mine.iter().map(|&i| 10.0 * i as f64).collect();
        let mut ops = Vec::new();
        for t in 1..=TICKS {
            let now = t * MS_PER_SEC;
            for (j, &i) in mine.iter().enumerate() {
                values[j] += rng.normal_with(0.0, 4.0);
                ops.push(Op::Write { key: key(i), value: values[j], now });
            }
            let j = rng.below(mine.len() as u64) as usize;
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(1.0, 20.0)),
                1 => Constraint::Relative(0.05),
                _ => Constraint::Exact,
            };
            ops.push(Op::Read { key: key(mine[j]), constraint, now });
        }
        ops
    };
    /// The per-op results one client observes (reads and write escapes),
    /// in op order.
    #[derive(Debug, PartialEq)]
    enum Outcome {
        Read(ReadResult),
        Write(WriteOutcome),
    }
    let replay = |c: u32, exec: &mut dyn FnMut(&Op) -> Option<Outcome>| -> Vec<Outcome> {
        client_ops(c).iter().filter_map(exec).collect()
    };
    // The reference: a synchronous store replays each client's ops alone
    // (on a store that still registers ALL keys, so routing and initial
    // state match the concurrent deployment).
    let reference = |c: u32| -> Vec<Outcome> {
        let mut store = fleet(4);
        replay(c, &mut |op| match op {
            Op::Write { key, value, now } => {
                Some(Outcome::Write(store.write(key, *value, *now).expect("known key")))
            }
            Op::Read { key, constraint, now } => {
                Some(Outcome::Read(store.read(key, *constraint, *now).expect("known key")))
            }
            Op::Aggregate { .. } => None,
        })
    };
    let runtime = Runtime::launch(fleet(4)).expect("runtime launches");
    let observed: Vec<(u32, Vec<Outcome>)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let h = runtime.handle();
                scope.spawn(move || {
                    // Blocking writes so the client sees its escape
                    // counts; key disjointness means no other client can
                    // perturb them.
                    let results = replay(c, &mut |op| match op {
                        Op::Write { key, value, now } => {
                            Some(Outcome::Write(h.write(key, *value, *now).expect("known key")))
                        }
                        Op::Read { key, constraint, now } => {
                            Some(Outcome::Read(h.read(key, *constraint, *now).expect("known key")))
                        }
                        Op::Aggregate { .. } => None,
                    });
                    (c, results)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });
    runtime.shutdown().expect("clean shutdown");
    for (c, results) in observed {
        assert_eq!(results, reference(c), "client {c}: concurrent results diverged");
    }
}

/// Shutdown drains: producers race the teardown; whatever each producer
/// successfully enqueued must be applied — the drained store's write
/// counter equals the number of accepted sends exactly.
#[test]
fn shutdown_drains_all_accepted_writes() {
    let runtime = Runtime::launch_with(
        fleet(4),
        RuntimeConfig { mailbox_capacity: 4, ..RuntimeConfig::default() },
    )
    .expect("runtime launches");
    let accepted = Arc::new(AtomicU64::new(0));
    let stop_count = 600u64;
    let handles: Vec<_> = (0..4u32)
        .map(|c| {
            let h = runtime.handle();
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                for i in 0..stop_count {
                    let k = key((i as u32 * 4 + c) % N_KEYS);
                    match h.write_nowait(&k, i as f64, i) {
                        Ok(()) => {
                            accepted.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(RuntimeError::Closed) => break,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            })
        })
        .collect();
    // Let the producers get going, then tear down while their mailboxes
    // are (with capacity 4) almost certainly non-empty.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let store = runtime.into_store().expect("drained shutdown");
    for h in handles {
        h.join().expect("producer thread");
    }
    let applied = store.metrics().merged().totals().writes;
    assert_eq!(
        applied,
        accepted.load(Ordering::SeqCst),
        "accepted fire-and-forget writes were lost (or invented) in shutdown"
    );
}
