//! Durability conformance: a store killed mid-burst and recovered from
//! its spool must be **bit-identical** — answers, escapes, widths — to
//! an uninterrupted reference from the last durable point, under θ = 1
//! and shard counts {1, 2, 4}.
//!
//! The matrix this file pins down:
//!
//! * warm restart of a sharded fleet (manifest + per-shard spools) with
//!   continued traffic compared op-by-op against the reference;
//! * a crash sweep over **every** op boundary with tiny segments, so
//!   kill points land mid-segment, at segment boundaries, and right
//!   before/after rotation — each one must recover to exactly the
//!   durable prefix;
//! * a crash **mid-snapshot** (fault injected inside the checkpoint's
//!   temp-file dance) falling back to the previous snapshot + full log;
//! * fs faults through the [`MemIo`] harness: short writes, lying
//!   fsyncs, hard append failures — errors surface as
//!   `StoreError::Spool` and the wreckage still recovers;
//! * recovery edge cases: empty spool dir, torn final record,
//!   snapshot newer than the last segment;
//! * what is *documented not persisted*: TTL leases and subscription
//!   watches are in-memory serving state and come back empty.

use apcache::core::Rng;
use apcache::push::{FallbackWidth, LeaseConfig, PushFilter};
use apcache::queries::AggregateKind;
use apcache::runtime::Runtime;
use apcache::shard::{ShardedStore, ShardedStoreBuilder};
use apcache::store::{
    Constraint, FsyncPolicy, InitialWidth, MemIo, PrecisionStore, ReadResult, SpoolConfig, SpoolIo,
    StoreBuilder, StoreError, WriteOutcome,
};

const SEED: u64 = 0xD0_2001;
const KEYS: usize = 12;

fn key(i: usize) -> String {
    format!("sensor/{i:03}")
}

fn temp_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("apcache-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

/// One step of a burst. Times are implicit: op `i` runs at
/// `(i + 1) * 100` ms, so both deployments see identical clocks.
#[derive(Debug, Clone)]
enum Op {
    Write { key: usize, value: f64 },
    Read { key: usize, constraint: Constraint },
    Aggregate { kind: AggregateKind },
}

/// What came back, comparable bit-for-bit across deployments.
#[derive(Debug, PartialEq)]
enum OpResult {
    Wrote(WriteOutcome),
    Answered(ReadResult),
    Aggregated { answer: apcache::core::Interval, refreshed: Vec<String> },
}

/// A deterministic mixed burst: random-walk writes, reads across the
/// constraint spectrum (tight ones force refreshes, which consume RNG
/// and must replay in order), and periodic bounded aggregates.
fn burst(keys: usize, ops: usize, seed: u64) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..keys).map(|i| 100.0 * i as f64).collect();
    let mut out = Vec::with_capacity(ops);
    for i in 0..ops {
        let k = rng.below(keys as u64) as usize;
        match rng.below(5) {
            0..=2 => {
                values[k] += rng.normal_with(0.0, 6.0);
                out.push(Op::Write { key: k, value: values[k] });
            }
            3 => {
                let constraint = match rng.below(3) {
                    0 => Constraint::Absolute(rng.uniform(0.5, 12.0)),
                    1 => Constraint::Relative(0.01),
                    _ => Constraint::Exact,
                };
                out.push(Op::Read { key: k, constraint });
            }
            _ => {
                let kind = match i % 3 {
                    0 => AggregateKind::Sum,
                    1 => AggregateKind::Min,
                    _ => AggregateKind::Max,
                };
                out.push(Op::Aggregate { kind });
            }
        }
    }
    out
}

fn now_of(op_index: usize) -> u64 {
    (op_index as u64 + 1) * 100
}

fn apply_store(s: &mut PrecisionStore<String>, op: &Op, now: u64) -> OpResult {
    match op {
        Op::Write { key: k, value } => OpResult::Wrote(s.write(&key(*k), *value, now).unwrap()),
        Op::Read { key: k, constraint } => {
            OpResult::Answered(s.read(&key(*k), *constraint, now).unwrap())
        }
        Op::Aggregate { kind } => {
            let keys: Vec<String> = (0..KEYS).map(key).collect();
            let out = s.aggregate(*kind, &keys, Constraint::Absolute(20.0), now).unwrap();
            OpResult::Aggregated { answer: out.answer, refreshed: out.refreshed }
        }
    }
}

fn apply_sharded(s: &mut ShardedStore<String>, op: &Op, now: u64) -> OpResult {
    match op {
        Op::Write { key: k, value } => OpResult::Wrote(s.write(&key(*k), *value, now).unwrap()),
        Op::Read { key: k, constraint } => {
            OpResult::Answered(s.read(&key(*k), *constraint, now).unwrap())
        }
        Op::Aggregate { kind } => {
            let keys: Vec<String> = (0..KEYS).map(key).collect();
            let out = s.aggregate(*kind, &keys, Constraint::Absolute(20.0), now).unwrap();
            OpResult::Aggregated { answer: out.answer, refreshed: out.refreshed }
        }
    }
}

/// Per-key serving state — value, converged width, cached interval —
/// must agree exactly. (Metric *hit* counters are deliberately not
/// compared here: pure cache hits are not logged, so a recovered store
/// may undercount them; everything that affects answers is.)
fn assert_same_serving_state(
    reference: &PrecisionStore<String>,
    recovered: &PrecisionStore<String>,
    now: u64,
    ctx: &str,
) {
    for i in 0..KEYS {
        let k = key(i);
        if !reference.contains_key(&k) {
            continue;
        }
        assert_eq!(reference.value(&k), recovered.value(&k), "{ctx}: value of {k}");
        assert_eq!(
            reference.internal_width(&k),
            recovered.internal_width(&k),
            "{ctx}: width of {k}"
        );
        assert_eq!(
            reference.cached_interval(&k, now),
            recovered.cached_interval(&k, now),
            "{ctx}: interval of {k}"
        );
    }
}

fn store_with_mem_spool(cfg: SpoolConfig) -> PrecisionStore<String> {
    let mut s = plain_store();
    s.attach_spool_io(Box::new(MemIo::new()), "spool", cfg).unwrap();
    s
}

fn plain_store() -> PrecisionStore<String> {
    let mut b = StoreBuilder::new()
        .rng(Rng::seed_from_u64(SEED ^ 0xA5))
        .initial_width(InitialWidth::Fixed(16.0));
    for i in 0..KEYS {
        b = b.source(key(i), 100.0 * i as f64);
    }
    b.build().unwrap()
}

/// Take the `MemIo` back out of a killed store and crash it, keeping
/// `keep_pending` bytes of every unsynced tail.
fn crash_io(store: &mut PrecisionStore<String>, keep_pending: usize) -> Box<dyn SpoolIo> {
    let mut io = store.detach_spool().expect("subject has a spool");
    io.as_any_mut().downcast_mut::<MemIo>().expect("MemIo subject").crash(keep_pending);
    io
}

// ---------------------------------------------------------------------
// The conformance bar: sharded warm restart, θ = 1, shards {1, 2, 4}.
// ---------------------------------------------------------------------

/// Kill a sharded fleet mid-burst, recover it from its per-shard spools
/// and manifest, and drive the remaining burst through both
/// deployments: every answer, escape, and width must match the
/// uninterrupted reference bit for bit.
#[test]
fn sharded_warm_restart_is_bit_identical_for_1_2_4_shards() {
    let ops = burst(KEYS, 160, SEED);
    let kill_at = 96; // mid-burst, mid-segment

    for shards in [1usize, 2, 4] {
        let dir = temp_dir(&format!("fleet-{shards}"));
        let build = || {
            let mut b = ShardedStoreBuilder::new()
                .shards(shards)
                .vnodes(32)
                .rng(Rng::seed_from_u64(SEED ^ shards as u64))
                .initial_width(InitialWidth::Fixed(16.0));
            for i in 0..KEYS {
                b = b.source(key(i), 100.0 * i as f64);
            }
            b
        };
        let mut reference = build().build().unwrap();
        let mut subject = build().with_spool(dir.as_str()).build().unwrap();

        for (i, op) in ops[..kill_at].iter().enumerate() {
            let a = apply_sharded(&mut reference, op, now_of(i));
            let b = apply_sharded(&mut subject, op, now_of(i));
            assert_eq!(a, b, "shards={shards}: pre-kill op {i} diverged");
        }

        // Kill: the process dies mid-burst. Everything not in the spool
        // is gone; fsync-per-append means every applied op is durable.
        drop(subject);
        let mut recovered = ShardedStore::<String>::recover(&dir).unwrap();

        assert_eq!(recovered.shard_count(), shards, "shards={shards}: shard count");
        for i in 0..KEYS {
            let k = key(i);
            assert_eq!(
                reference.shard_of(&k),
                recovered.shard_of(&k),
                "shards={shards}: routing of {k}"
            );
        }
        for s in 0..shards {
            assert_same_serving_state(
                reference.shard(s).unwrap(),
                recovered.shard(s).unwrap(),
                now_of(kill_at),
                &format!("shards={shards} shard {s}"),
            );
        }

        // The rest of the burst: op-by-op bit-identity, both still live.
        for (i, op) in ops[kill_at..].iter().enumerate() {
            let now = now_of(kill_at + i);
            let a = apply_sharded(&mut reference, op, now);
            let b = apply_sharded(&mut recovered, op, now);
            assert_eq!(a, b, "shards={shards}: post-recovery op {} diverged", kill_at + i);
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Crash matrix: kill points swept across every op boundary.
// ---------------------------------------------------------------------

/// With 256-byte segments a 48-op burst rotates many times, so sweeping
/// the kill point over **every** op boundary exercises mid-segment,
/// at-boundary, pre-rotate, and post-rotate crashes. Each recovery must
/// equal the reference at exactly that durable prefix, then keep
/// serving identically.
#[test]
fn crash_sweep_recovers_every_op_boundary_exactly() {
    let cfg = SpoolConfig { segment_bytes: 256, fsync: FsyncPolicy::Always };
    let ops = burst(KEYS, 48, SEED ^ 0x11);

    for kill_at in 1..=ops.len() {
        let mut reference = plain_store();
        let mut subject = store_with_mem_spool(cfg);
        for (i, op) in ops[..kill_at].iter().enumerate() {
            apply_store(&mut reference, op, now_of(i));
            apply_store(&mut subject, op, now_of(i));
        }
        let io = crash_io(&mut subject, 0);
        let mut recovered = PrecisionStore::<String>::recover_with_io(io, "spool", cfg).unwrap();
        assert_same_serving_state(
            &reference,
            &recovered,
            now_of(kill_at),
            &format!("kill at op {kill_at}"),
        );

        // A few continued ops — the recovered store serves (and logs)
        // from where the reference is.
        for (i, op) in ops.iter().take(6).enumerate() {
            let now = now_of(kill_at + 1 + i);
            let a = apply_store(&mut reference, op, now);
            let b = apply_store(&mut recovered, op, now);
            assert_eq!(a, b, "kill at op {kill_at}: continued op {i} diverged");
        }
    }
}

/// Crash **mid-snapshot**: a fault lands inside the final checkpoint's
/// temp-write/sync/rename dance. Whatever step it hits, the previous
/// snapshot + the (uncompacted) log still reconstruct the full state,
/// and a stale `.tmp` left behind never breaks reopening.
#[test]
fn crash_mid_snapshot_falls_back_to_the_previous_durable_state() {
    let cfg = SpoolConfig { segment_bytes: 512, fsync: FsyncPolicy::Always };
    let ops = burst(KEYS, 40, SEED ^ 0x22);
    let run = |mut subject: PrecisionStore<String>| -> PrecisionStore<String> {
        for (i, op) in ops[..20].iter().enumerate() {
            apply_store(&mut subject, op, now_of(i));
        }
        subject.checkpoint().unwrap(); // a good snapshot to fall back to
        for (i, op) in ops[20..].iter().enumerate() {
            apply_store(&mut subject, op, now_of(20 + i));
        }
        subject
    };

    // Probe pass: count the io mutations the scenario consumes before
    // the final checkpoint, so the fault can be pinned *inside* it.
    let mutations_before_final = {
        let mut probe = store_with_mem_spool(cfg);
        probe = run(probe);
        let mut io = probe.detach_spool().unwrap();
        io.as_any_mut().downcast_mut::<MemIo>().unwrap().mutations()
    };

    // `arm` pins the kill to the n-th mutating io op of the final
    // checkpoint: temp create, temp append, temp sync, rename — none of
    // which may install a half-written snapshot.
    for arm in 1..=4u64 {
        let mut reference = plain_store();
        for (i, op) in ops.iter().enumerate() {
            apply_store(&mut reference, op, now_of(i));
        }

        let mut io = MemIo::new();
        io.fail_after_ops(mutations_before_final + arm);
        let mut subject = plain_store();
        subject.attach_spool_io(Box::new(io), "spool", cfg).unwrap();
        let mut subject = run(subject);
        let err = subject.checkpoint().expect_err("checkpoint dies mid-snapshot");
        assert!(matches!(err, StoreError::Spool(_)), "arm={arm}: {err:?}");

        let io = crash_io(&mut subject, 0);
        let recovered = PrecisionStore::<String>::recover_with_io(io, "spool", cfg).unwrap();
        assert_same_serving_state(
            &reference,
            &recovered,
            now_of(ops.len()),
            &format!("mid-snapshot arm={arm}"),
        );
    }
}

// ---------------------------------------------------------------------
// Filesystem faults through the injection harness.
// ---------------------------------------------------------------------

/// Short writes: the io layer accepts at most 3 bytes per append call,
/// so every record append goes through the retry loop. Serving is
/// unaffected and a crash + recovery still lands on the full state.
#[test]
fn short_writes_retry_and_recover_cleanly() {
    let cfg = SpoolConfig::default();
    let ops = burst(KEYS, 30, SEED ^ 0x33);

    let mut reference = plain_store();
    let mut io = MemIo::new();
    io.short_writes(3);
    let mut subject = plain_store();
    subject.attach_spool_io(Box::new(io), "spool", cfg).unwrap();

    for (i, op) in ops.iter().enumerate() {
        let a = apply_store(&mut reference, op, now_of(i));
        let b = apply_store(&mut subject, op, now_of(i));
        assert_eq!(a, b, "op {i} diverged under short writes");
    }
    let io = crash_io(&mut subject, 0);
    let recovered = PrecisionStore::<String>::recover_with_io(io, "spool", cfg).unwrap();
    assert_same_serving_state(&reference, &recovered, now_of(ops.len()), "short writes");
}

/// A lying disk: fsync reports failure while the bytes stay pending.
/// With fsync-per-append the write surfaces a `StoreError::Spool`, and
/// the un-synced record is gone after the crash — recovery lands on the
/// state *before* the failed op, never on a half-acknowledged one.
#[test]
fn failed_fsync_surfaces_and_loses_only_the_unacknowledged_op() {
    let cfg = SpoolConfig::default();
    let ops = burst(KEYS, 24, SEED ^ 0x44);

    let mut reference = plain_store();
    let mut subject = store_with_mem_spool(cfg);
    for (i, op) in ops.iter().enumerate() {
        apply_store(&mut reference, op, now_of(i));
        apply_store(&mut subject, op, now_of(i));
    }

    // Arm the lying disk, then try one more write: it must error.
    {
        let mut io = subject.detach_spool().unwrap();
        io.as_any_mut().downcast_mut::<MemIo>().unwrap().fail_syncs(true);
        // Re-wire by recovering through the same io: the spool reopens
        // on the intact durable image…
        subject =
            PrecisionStore::<String>::recover_with_io(io, "spool", cfg).expect("reopen is clean");
    }
    let now = now_of(ops.len() + 1);
    let err = subject.write(&key(0), 1.0e6, now).expect_err("sync failure must surface");
    assert!(matches!(err, StoreError::Spool(_)), "{err:?}");

    // …and after the crash the failed op's bytes are gone.
    let io = crash_io(&mut subject, 0);
    let recovered = PrecisionStore::<String>::recover_with_io(io, "spool", cfg).unwrap();
    assert_same_serving_state(&reference, &recovered, now, "failed fsync");
    assert_ne!(recovered.value(&key(0)), Some(1.0e6), "unacknowledged write resurfaced");
}

/// Hard append failure mid-burst: the op surfaces the error, and the
/// crash recovers exactly the ops that were acknowledged before it.
#[test]
fn append_failure_surfaces_and_recovery_keeps_the_acknowledged_prefix() {
    let cfg = SpoolConfig { segment_bytes: 256, fsync: FsyncPolicy::Always };
    let prefix = 18usize;

    let mut reference = plain_store();
    let mut subject = store_with_mem_spool(cfg);
    let ops = burst(KEYS, prefix, SEED ^ 0x55);
    for (i, op) in ops.iter().enumerate() {
        apply_store(&mut reference, op, now_of(i));
        apply_store(&mut subject, op, now_of(i));
    }

    {
        let mut io = subject.detach_spool().unwrap();
        io.as_any_mut().downcast_mut::<MemIo>().unwrap().fail_after_ops(1);
        subject =
            PrecisionStore::<String>::recover_with_io(io, "spool", cfg).expect("reopen is clean");
    }
    let err =
        subject.write(&key(1), 42.0, now_of(prefix + 1)).expect_err("append failure surfaces");
    assert!(matches!(err, StoreError::Spool(_)), "{err:?}");

    let io = crash_io(&mut subject, 0);
    let recovered = PrecisionStore::<String>::recover_with_io(io, "spool", cfg).unwrap();
    assert_same_serving_state(&reference, &recovered, now_of(prefix + 1), "append failure");
}

// ---------------------------------------------------------------------
// Recovery edge cases.
// ---------------------------------------------------------------------

/// An empty (or missing) spool directory has nothing to recover: the
/// error says so instead of conjuring an empty store.
#[test]
fn empty_spool_dir_has_nothing_to_recover() {
    let err = PrecisionStore::<String>::recover_with_io(
        Box::new(MemIo::new()),
        "spool",
        SpoolConfig::default(),
    )
    .expect_err("nothing durable, nothing to recover");
    match err {
        StoreError::Spool(msg) => {
            assert!(msg.contains("nothing to recover"), "unhelpful message: {msg}")
        }
        other => panic!("unexpected error: {other:?}"),
    }

    // Same through the real filesystem on a fresh directory.
    let dir = temp_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let err = PrecisionStore::<String>::recover(&dir).expect_err("empty fs dir");
    assert!(matches!(err, StoreError::Spool(_)), "{err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn final record (the classic half-written tail after power loss)
/// is truncated away; everything before it replays.
#[test]
fn truncated_tail_drops_only_the_torn_record() {
    let cfg = SpoolConfig::default();
    // Writes only: exactly one log record per op, so "last record torn"
    // maps to "last op lost".
    let writes = 20usize;

    let mut reference = plain_store();
    let mut subject = store_with_mem_spool(cfg);
    for i in 0..writes {
        let reference_op = Op::Write { key: i % KEYS, value: 7.0 * i as f64 };
        if i + 1 < writes {
            apply_store(&mut reference, &reference_op, now_of(i));
        }
        apply_store(&mut subject, &reference_op, now_of(i));
    }

    let mut io = crash_io(&mut subject, 0);
    // Tear the final record: chop 3 bytes off the one live segment.
    let seg = {
        let names = io.list("spool").unwrap();
        let mut segs: Vec<&String> =
            names.iter().filter(|n| n.starts_with("seg-") && n.ends_with(".log")).collect();
        segs.sort();
        format!("spool/{}", segs.last().expect("a live segment"))
    };
    let mem = io.as_any_mut().downcast_mut::<MemIo>().unwrap();
    let bytes = mem.contents(&seg).unwrap();
    mem.install(&seg, bytes[..bytes.len() - 3].to_vec());

    let recovered = PrecisionStore::<String>::recover_with_io(io, "spool", cfg).unwrap();
    // The reference skipped the final write; the torn tail must land on
    // exactly that state.
    assert_same_serving_state(&reference, &recovered, now_of(writes), "torn tail");
}

/// A snapshot with no segment after it (the crash hit between the
/// snapshot rename and the fresh segment's creation): recovery serves
/// the snapshot and recreates the missing segment.
#[test]
fn snapshot_newer_than_last_segment_recovers_and_resumes_logging() {
    let cfg = SpoolConfig::default();
    let ops = burst(KEYS, 30, SEED ^ 0x66);

    let mut reference = plain_store();
    let mut subject = store_with_mem_spool(cfg);
    for (i, op) in ops.iter().enumerate() {
        apply_store(&mut reference, op, now_of(i));
        apply_store(&mut subject, op, now_of(i));
    }
    subject.checkpoint().unwrap();

    let mut io = crash_io(&mut subject, 0);
    // Delete every segment at or after the snapshot's sequence — the
    // snapshot alone must carry the state.
    let segs: Vec<String> = io
        .list("spool")
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("seg-") && n.ends_with(".log"))
        .collect();
    let snaps: Vec<String> = io
        .list("spool")
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("snap-") && n.ends_with(".snap"))
        .collect();
    assert!(!snaps.is_empty(), "checkpoint left a snapshot");
    let mem = io.as_any_mut().downcast_mut::<MemIo>().unwrap();
    for seg in &segs {
        mem.delete(&format!("spool/{seg}"));
    }

    let mut recovered = PrecisionStore::<String>::recover_with_io(io, "spool", cfg).unwrap();
    assert_same_serving_state(&reference, &recovered, now_of(ops.len()), "snapshot-only");

    // Logging resumed into a recreated segment: another crash + recovery
    // keeps the post-recovery traffic too.
    for (i, op) in ops.iter().take(8).enumerate() {
        let now = now_of(ops.len() + 1 + i);
        let a = apply_store(&mut reference, op, now);
        let b = apply_store(&mut recovered, op, now);
        assert_eq!(a, b, "continued op {i} diverged");
    }
    let io = crash_io(&mut recovered, 0);
    let recovered_again = PrecisionStore::<String>::recover_with_io(io, "spool", cfg).unwrap();
    assert_same_serving_state(
        &reference,
        &recovered_again,
        now_of(ops.len() + 9),
        "second generation",
    );
}

// ---------------------------------------------------------------------
// Documented not-persisted: push-side serving state.
// ---------------------------------------------------------------------

/// TTL leases and subscription watches are in-memory serving state, not
/// durable state: a warm restart recovers every key's value and width,
/// but subscribers must resubscribe and leases must be re-granted.
#[test]
fn leases_and_watches_are_documented_not_persisted() {
    let dir = temp_dir("push");
    let mut b = ShardedStoreBuilder::new()
        .shards(2)
        .vnodes(32)
        .rng(Rng::seed_from_u64(SEED ^ 0x77))
        .initial_width(InitialWidth::Fixed(16.0))
        .with_spool(dir.as_str());
    for i in 0..4 {
        b = b.source(key(i), 100.0 * i as f64);
    }
    let runtime = Runtime::launch(b.build().unwrap()).unwrap();
    let handle = runtime.handle();

    for t in 1..=10u64 {
        for i in 0..4 {
            handle.write(&key(i), 100.0 * i as f64 + t as f64, t * 100).unwrap();
        }
    }
    let (_sub, _snapshot) = handle.subscribe(&key(0), PushFilter::Always, 1_100).unwrap();
    handle
        .lease(&key(1), LeaseConfig { ttl_ms: 60_000, fallback: FallbackWidth::Unbounded }, 1_100)
        .unwrap();
    let live = handle.push_stats().unwrap();
    assert_eq!(live.subscribers, 1);
    assert_eq!(live.watched_keys, 1);
    assert_eq!(live.leases, 1);

    // Make the fleet durable, then kill it without farewell.
    handle.checkpoint().unwrap();
    drop(handle);
    runtime.shutdown().unwrap();

    let recovered = ShardedStore::<String>::recover(&dir).unwrap();
    let runtime = Runtime::launch(recovered).unwrap();
    let handle = runtime.handle();

    // Data survived…
    let r = handle.read(&key(0), Constraint::Exact, 2_000).unwrap();
    assert_eq!(r.answer.estimate(), Some(10.0), "key 0's last written value survives");
    // …push-side serving state did not (and is documented not to).
    let cold = handle.push_stats().unwrap();
    assert_eq!(cold.subscribers, 0, "subscriptions are not persisted");
    assert_eq!(cold.watched_keys, 0, "watches are not persisted");
    assert_eq!(cold.leases, 0, "leases are not persisted");

    drop(handle);
    runtime.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
