//! Telemetry conformance: the Prometheus-style text exposition must be
//! a faithful, machine-parseable projection of the store's own
//! accounting.
//!
//! * **Parseability** — every scrape parses with the hand-rolled
//!   exposition parser below (`# HELP` then `# TYPE` then samples, one
//!   family at a time; no duplicate series; histogram buckets cumulative
//!   with `+Inf == _count`).
//! * **Bit-equality** — after a randomized workload at shards ∈
//!   {1, 2, 4}, the `apcache_*_total` counter samples equal the drained
//!   [`StoreMetrics`] rollup *bit for bit*: values are rendered with
//!   Rust's shortest round-trip `Display`, so parsing the text recovers
//!   the exact `f64` the store holds.
//! * **Monotonicity** — counters and histogram buckets never decrease
//!   across scrapes of a live deployment.
//! * **Migration-following** — a ring flip (live `add_shard` /
//!   `remove_shard`) moves per-key counters with the keys, so the
//!   post-flip exposition still agrees with the post-flip rollup and
//!   never goes backwards.
//! * **HTTP door** — a raw-TCP `GET /metrics` against a
//!   `serve_connections` port returns valid Prometheus text (0.0.4
//!   content type) whose counters equal the rollup; any other path is a
//!   404; frame peers on the same port are unaffected.

use std::collections::BTreeMap;
use std::io::{Read as IoRead, Write as IoWrite};
use std::net::{TcpListener, TcpStream};
use std::thread;

use apcache::core::cost::CostModel;
use apcache::core::{Rng, MS_PER_SEC};
use apcache::queries::AggregateKind;
use apcache::runtime::Runtime;
use apcache::shard::ShardedStoreBuilder;
use apcache::store::{Constraint, InitialWidth, KeyMetrics, PrecisionStore, StoreBuilder};
use apcache::telemetry::TraceKind;
use apcache::wire::{serve_connections, RemoteStoreClient, TcpTransport};

const N_KEYS: u32 = 16;
const TICKS: u64 = 60;
const VNODES: usize = 64;
const SEED: u64 = 0x0B5E_2001;

fn key(i: u32) -> String {
    format!("probe/{i:03}")
}

fn fleet(shards: usize) -> Runtime<String> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .vnodes(VNODES)
        .cost(CostModel::multiversion())
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..N_KEYS {
        b = b.source(key(i), 5.0 * f64::from(i));
    }
    Runtime::launch(b.build().expect("fleet config valid")).expect("launch")
}

/// An empty shard with the fleet's tuning, ready to receive migrated keys.
fn empty_shard(salt: u64) -> PrecisionStore<String> {
    StoreBuilder::new()
        .cost(CostModel::multiversion())
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ salt))
        .initial_width(InitialWidth::Fixed(8.0))
        .build()
        .expect("empty shard config valid")
}

/// Drive a deterministic randomized workload through the handle's
/// blocking verbs: per-key random walks, mixed-constraint reads, and
/// periodic aggregates. `epoch` offsets the clock so consecutive rounds
/// keep advancing time.
fn drive(handle: &apcache::runtime::RuntimeHandle<String>, seed: u64, epoch: u64) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..N_KEYS).map(|i| 5.0 * f64::from(i)).collect();
    for t in 1..=TICKS {
        let now = (epoch * TICKS + t) * MS_PER_SEC;
        for i in 0..N_KEYS {
            values[i as usize] += rng.normal_with(0.0, 3.0);
            handle.write(&key(i), values[i as usize], now).expect("write");
        }
        for _ in 0..3 {
            let i = rng.below(u64::from(N_KEYS)) as u32;
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(1.0, 16.0)),
                1 => Constraint::Relative(0.05),
                _ => Constraint::Exact,
            };
            handle.read(&key(i), constraint, now).expect("read");
        }
        if t % 10 == 0 {
            let keys: Vec<String> = (0..N_KEYS / 2).map(key).collect();
            handle
                .aggregate(AggregateKind::Sum, &keys, Constraint::Absolute(100.0), now)
                .expect("aggregate");
        }
    }
}

// ---------------------------------------------------------------------
// The hand-rolled exposition parser.
// ---------------------------------------------------------------------

/// One parsed scrape: declared family kinds plus every sample, keyed by
/// its full series identity (`name{labels}` exactly as rendered).
#[derive(Debug, Default)]
struct Scrape {
    types: BTreeMap<String, String>,
    samples: BTreeMap<String, f64>,
}

impl Scrape {
    /// Parse a text exposition, enforcing the format invariants:
    /// `# HELP` immediately before `# TYPE`, samples only under an
    /// announced family, no duplicate series, and every value a valid
    /// `f64`.
    fn parse(text: &str) -> Scrape {
        let mut scrape = Scrape::default();
        let mut announced: Option<String> = None;
        let mut pending_help: Option<String> = None;
        for (idx, line) in text.lines().enumerate() {
            let n = idx + 1;
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().expect("HELP names a family").to_string();
                assert!(!rest[name.len()..].trim().is_empty(), "line {n}: empty HELP text");
                pending_help = Some(name);
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().expect("TYPE names a family").to_string();
                let kind = parts.next().expect("TYPE declares a kind").to_string();
                assert!(
                    matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                    "line {n}: unknown kind {kind}"
                );
                assert_eq!(
                    pending_help.take().as_deref(),
                    Some(name.as_str()),
                    "line {n}: TYPE without immediately preceding HELP"
                );
                assert!(
                    scrape.types.insert(name.clone(), kind).is_none(),
                    "line {n}: family {name} announced twice"
                );
                announced = Some(name);
                continue;
            }
            assert!(!line.starts_with('#'), "line {n}: unknown comment form: {line}");
            let (series, value) = line.rsplit_once(' ').expect("sample is `series value`");
            let base = series.split('{').next().unwrap();
            let family = announced.as_deref().expect("sample before any TYPE");
            // Histogram samples hang off their family's base name.
            let owner = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    base.strip_suffix(suffix).filter(|stripped| {
                        *stripped == family && scrape.types[family] == "histogram"
                    })
                })
                .unwrap_or(base);
            assert_eq!(owner, family, "line {n}: sample {series} outside its family block");
            let value: f64 = value.parse().unwrap_or_else(|_| panic!("line {n}: bad value"));
            assert!(
                scrape.samples.insert(series.to_string(), value).is_none(),
                "line {n}: duplicate series {series}"
            );
        }
        assert!(pending_help.is_none(), "trailing HELP without TYPE");
        scrape.check_histograms();
        scrape
    }

    /// Every histogram family: buckets cumulative in `le` order, and the
    /// `+Inf` bucket equal to `_count`.
    fn check_histograms(&self) {
        for (family, kind) in &self.types {
            if kind != "histogram" {
                continue;
            }
            // Group bucket series by their non-`le` label set.
            let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
            for (series, value) in &self.samples {
                let Some(labels) = series
                    .strip_prefix(&format!("{family}_bucket{{"))
                    .and_then(|rest| rest.strip_suffix('}'))
                else {
                    continue;
                };
                let mut le = None;
                let rest: Vec<&str> = labels
                    .split(',')
                    .filter(|part| match part.strip_prefix("le=\"") {
                        Some(bound) => {
                            let bound = bound.strip_suffix('"').expect("quoted le");
                            le = Some(if bound == "+Inf" {
                                f64::INFINITY
                            } else {
                                bound.parse().expect("numeric le")
                            });
                            false
                        }
                        None => true,
                    })
                    .collect();
                groups
                    .entry(rest.join(","))
                    .or_default()
                    .push((le.expect("bucket has le"), *value));
            }
            for (labels, mut buckets) in groups {
                buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut prev = 0.0;
                for (le, count) in &buckets {
                    assert!(
                        *count >= prev,
                        "{family}{{{labels}}}: bucket le={le} decreases ({count} < {prev})"
                    );
                    prev = *count;
                }
                let (last_le, last) = buckets.last().expect("at least +Inf");
                assert!(last_le.is_infinite(), "{family}{{{labels}}}: no +Inf bucket");
                let count_series = if labels.is_empty() {
                    format!("{family}_count")
                } else {
                    format!("{family}_count{{{labels}}}")
                };
                assert_eq!(
                    self.samples.get(&count_series),
                    Some(last),
                    "{family}{{{labels}}}: +Inf bucket != _count"
                );
            }
        }
    }

    fn get(&self, series: &str) -> f64 {
        *self.samples.get(series).unwrap_or_else(|| panic!("series {series} missing from scrape"))
    }
}

/// Assert the scrape's store counter families are bit-equal to a drained
/// rollup's totals.
fn assert_matches_rollup(scrape: &Scrape, t: &KeyMetrics) {
    assert_eq!(scrape.get("apcache_reads_total").to_bits(), (t.reads as f64).to_bits());
    assert_eq!(scrape.get("apcache_cache_hits_total").to_bits(), (t.cache_hits as f64).to_bits());
    assert_eq!(scrape.get("apcache_writes_total").to_bits(), (t.writes as f64).to_bits());
    assert_eq!(
        scrape.get("apcache_refreshes_total{kind=\"qr\"}").to_bits(),
        (t.qr_count as f64).to_bits()
    );
    assert_eq!(
        scrape.get("apcache_refreshes_total{kind=\"vr\"}").to_bits(),
        (t.vr_count as f64).to_bits()
    );
    assert_eq!(
        scrape.get("apcache_refresh_cost_total{kind=\"qr\"}").to_bits(),
        t.qr_cost.to_bits()
    );
    assert_eq!(
        scrape.get("apcache_refresh_cost_total{kind=\"vr\"}").to_bits(),
        t.vr_cost.to_bits()
    );
}

// ---------------------------------------------------------------------
// The suites.
// ---------------------------------------------------------------------

#[test]
fn exposition_agrees_bitwise_with_drained_rollup_across_shard_counts() {
    for shards in [1usize, 2, 4] {
        let runtime = fleet(shards);
        let handle = runtime.handle();
        drive(&handle, SEED ^ shards as u64, 0);
        let scrape = Scrape::parse(&handle.render_exposition().expect("scrape"));
        let gathered = handle.metrics().expect("metrics");
        assert_matches_rollup(&scrape, gathered.merged().totals());
        // The counter families carry the declared kind.
        for family in [
            "apcache_reads_total",
            "apcache_cache_hits_total",
            "apcache_writes_total",
            "apcache_refreshes_total",
            "apcache_refresh_cost_total",
            "apcache_pushes_total",
        ] {
            assert_eq!(scrape.types.get(family).map(String::as_str), Some("counter"), "{family}");
        }
        assert_eq!(
            scrape.types.get("apcache_verb_latency_seconds").map(String::as_str),
            Some("histogram"),
            "shards={shards}"
        );
        runtime.shutdown().expect("shutdown");
    }
}

#[test]
fn counters_and_histograms_are_monotone_across_scrapes() {
    let runtime = fleet(2);
    let handle = runtime.handle();
    drive(&handle, SEED ^ 0xA, 0);
    let first = Scrape::parse(&handle.render_exposition().expect("scrape"));
    drive(&handle, SEED ^ 0xB, 1);
    let second = Scrape::parse(&handle.render_exposition().expect("scrape"));
    let mut compared = 0usize;
    for (series, value) in &first.samples {
        let base = series.split('{').next().unwrap();
        let monotone = base.ends_with("_total")
            || base.ends_with("_bucket")
            || base.ends_with("_sum")
            || base.ends_with("_count");
        if !monotone {
            continue; // gauges may go either way
        }
        let later = second.get(series);
        assert!(later >= *value, "{series} went backwards: {later} < {value}");
        compared += 1;
    }
    assert!(compared > 30, "expected a broad monotone surface, compared only {compared}");
    // The second round really moved the needle somewhere.
    assert!(second.get("apcache_writes_total") > first.get("apcache_writes_total"));
    runtime.shutdown().expect("shutdown");
}

#[test]
fn counters_survive_a_ring_flip() {
    let mut runtime = fleet(2);
    let handle = runtime.handle();
    drive(&handle, SEED ^ 0xC, 0);
    let before = Scrape::parse(&handle.render_exposition().expect("scrape"));
    let pre_flip = handle.metrics().expect("metrics");
    let pre_flip = *pre_flip.merged().totals();

    // Grow, then shrink back: every resident key migrates at least once
    // (grow remaps a subset; shrink remaps the retired shard's whole
    // residency). Per-key counters travel inside the migrated KeyState.
    let new_id = runtime.add_shard(empty_shard(0xF1)).expect("grow");
    let mid = Scrape::parse(&handle.render_exposition().expect("scrape"));
    assert_matches_rollup(&mid, &pre_flip);
    runtime.remove_shard(new_id).expect("shrink");

    let after = Scrape::parse(&handle.render_exposition().expect("scrape"));
    assert_matches_rollup(&after, &pre_flip);
    for series in [
        "apcache_reads_total",
        "apcache_writes_total",
        "apcache_refreshes_total{kind=\"qr\"}",
        "apcache_refreshes_total{kind=\"vr\"}",
    ] {
        assert_eq!(after.get(series).to_bits(), before.get(series).to_bits(), "{series}");
    }
    // And the deployment still serves + accounts correctly post-flip.
    drive(&handle, SEED ^ 0xD, 1);
    let settled = Scrape::parse(&handle.render_exposition().expect("scrape"));
    let regathered = handle.metrics().expect("metrics");
    assert_matches_rollup(&settled, regathered.merged().totals());
    runtime.shutdown().expect("shutdown");
}

#[test]
fn trace_ring_records_the_request_lifecycle() {
    let runtime = fleet(1);
    let handle = runtime.handle();
    handle.write(&key(0), 1.0, MS_PER_SEC).expect("write");
    handle.read(&key(0), Constraint::Exact, MS_PER_SEC).expect("read");
    let events = handle.trace_dump();
    for kind in [TraceKind::Submit, TraceKind::Dispatch, TraceKind::Completion] {
        assert!(
            events.iter().any(|e| e.kind == kind && e.verb == "read"),
            "no {kind:?} event for the read: {events:?}"
        );
    }
    // Events are in recording order with strictly increasing sequence.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    runtime.shutdown().expect("shutdown");
}

/// The acceptance path: a plain-HTTP scraper and frame-protocol clients
/// share one `serve_connections` port, and the scrape agrees with the
/// drained rollup bit for bit.
#[test]
fn http_get_metrics_on_the_serving_port_matches_rollup() {
    let runtime = fleet(2);
    let handle = runtime.handle();
    let stats_handle = runtime.handle();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let acceptor = thread::spawn(move || serve_connections(listener, handle));

    // Frame traffic first, so the counters are interesting.
    let mut client: RemoteStoreClient<String, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).expect("connect"));
    for t in 1..=20u64 {
        let now = t * MS_PER_SEC;
        client.write(&key(0), 3.0 * t as f64, now).expect("write");
        client.read(&key(0), Constraint::Absolute(2.0), now).expect("read");
        client.read(&key(1), Constraint::Exact, now).expect("read");
    }

    // An off-the-shelf scraper: raw TCP, plain HTTP/1.1.
    let body = {
        let mut sock = TcpStream::connect(addr).expect("connect http");
        sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: apcache\r\nAccept: text/plain\r\n\r\n")
            .expect("send request");
        let mut response = String::new();
        sock.read_to_string(&mut response).expect("read response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "status line: {head}");
        let content_type = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Type: "))
            .expect("content type present");
        assert_eq!(content_type, "text/plain; version=0.0.4; charset=utf-8");
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content length present")
            .parse()
            .expect("numeric length");
        assert_eq!(length, body.len(), "Content-Length disagrees with body");
        body.to_string()
    };
    let scrape = Scrape::parse(&body);
    let drained = stats_handle.metrics().expect("metrics");
    assert_matches_rollup(&scrape, drained.merged().totals());
    // The wire layer's own series are on the same page.
    assert!(scrape.samples.contains_key("apcache_wire_frames_total{dir=\"in\"}"));
    assert!(scrape.types.contains_key("apcache_http_scrapes_total"));

    // Any other path is refused without touching the frame protocol.
    {
        let mut sock = TcpStream::connect(addr).expect("connect http");
        sock.write_all(b"GET /healthz HTTP/1.1\r\nHost: apcache\r\n\r\n").expect("send");
        let mut response = String::new();
        sock.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 404 Not Found\r\n"), "{response}");
    }

    // The frame client on the shared port is unaffected by the scrapes.
    client.read(&key(0), Constraint::Exact, 21 * MS_PER_SEC).expect("read after scrape");
    client.shutdown().expect("shutdown frame client");
    acceptor.join().expect("acceptor").expect("serve_connections");
    runtime.shutdown().expect("runtime shutdown");
}
