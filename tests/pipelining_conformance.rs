//! Pipelining conformance: a windowed client speaking the v2 wire
//! protocol to the out-of-order pipelined server (`serve_pipelined` in
//! front of the actor runtime) must be **bit-identical** to the same
//! operation sequence issued sequentially against a local
//! `ShardedStore` under θ = 1 — answers, escape counts, refresh plans,
//! final per-key protocol state, and metric totals — for window ∈
//! {1, 4, 32} and shards ∈ {1, 2, 4}.
//!
//! Why this holds even out of order: submission order fixes each shard
//! mailbox's order (the pipelined reader submits frames as they arrive,
//! and single-round aggregates issue all their legs at submit time), so
//! per-key state transitions replay exactly; only the *responses* travel
//! out of order, and the client reassembles them by ticket. The one
//! genuinely asynchronous case — a multi-shard Relative aggregate, whose
//! escalation rounds are issued later by the server's drainer — is
//! harvested to completion before dependent traffic is submitted (the
//! trace flushes the window after each Relative aggregate), mirroring
//! what a correct application does with a data-dependent query.

use std::thread;

use apcache::core::{Rng, MS_PER_SEC};
use apcache::queries::AggregateKind;
use apcache::runtime::Runtime;
use apcache::shard::{ShardedStore, ShardedStoreBuilder};
use apcache::store::{Constraint, InitialWidth, ReadResult, WriteOutcome};
use apcache::wire::{loopback, serve_pipelined, RemoteStoreClient, ServerExit, Ticket};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const WINDOWS: [usize; 3] = [1, 4, 32];
const VNODES: usize = 64;
const N_KEYS: u32 = 24;
const TICKS: u64 = 120;
const SEED: u64 = 0x41BE_2001;

fn key(i: u32) -> String {
    format!("sensor/{i:03}")
}

/// One operation of the shared trace, pre-generated so both systems
/// replay byte-identical traffic.
#[derive(Debug, Clone)]
enum Op {
    Write { key: String, value: f64, now: u64 },
    Read { key: String, constraint: Constraint, now: u64 },
    Aggregate { kind: AggregateKind, keys: Vec<String>, constraint: Constraint, now: u64 },
}

/// A deterministic interleaved read/write/aggregate trace: per-key
/// random walks, rotating read constraints, periodic aggregates of all
/// four kinds (Absolute/Exact mixed into the window; Relative present
/// too, flushed at submission as documented above).
fn trace(seed: u64) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..N_KEYS).map(|i| 10.0 + 10.0 * i as f64).collect();
    let mut ops = Vec::new();
    let kinds = [AggregateKind::Sum, AggregateKind::Max, AggregateKind::Min, AggregateKind::Avg];
    for t in 1..=TICKS {
        let now = t * MS_PER_SEC;
        for i in 0..N_KEYS {
            values[i as usize] += rng.normal_with(0.0, 4.0);
            ops.push(Op::Write { key: key(i), value: values[i as usize], now });
        }
        for _ in 0..4 {
            let i = rng.below(u64::from(N_KEYS)) as u32;
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(1.0, 20.0)),
                1 => Constraint::Relative(0.05),
                _ => Constraint::Exact,
            };
            ops.push(Op::Read { key: key(i), constraint, now });
        }
        if t % 5 == 0 {
            let fanout = 4 + rng.below(10) as u32;
            let keys: Vec<String> = (0..fanout).map(|j| key((j * 5 + t as u32) % N_KEYS)).collect();
            let kind = kinds[(t / 5) as usize % kinds.len()];
            let constraint = match rng.below(4) {
                0 => Constraint::Absolute(rng.uniform(5.0, 100.0)),
                1 => Constraint::Relative(0.02),
                2 => Constraint::Relative(0.5),
                _ => Constraint::Exact,
            };
            ops.push(Op::Aggregate { kind, keys, constraint, now });
        }
    }
    ops
}

fn fleet(shards: usize) -> ShardedStore<String> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .vnodes(VNODES)
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 2))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..N_KEYS {
        b = b.source(key(i), 10.0 + 10.0 * i as f64);
    }
    b.build().expect("fleet config valid")
}

/// Per-op observable results, compared across the two executions.
#[derive(Debug, PartialEq)]
enum Outcome {
    Read(ReadResult),
    Write(WriteOutcome),
    Aggregate { lo_bits: u64, hi_bits: u64, refreshed: Vec<String> },
}

/// The sequential reference: every op applied in order on the local
/// fleet.
fn run_sequential(shards: usize, ops: &[Op]) -> (Vec<Outcome>, ShardedStore<String>) {
    let mut store = fleet(shards);
    let mut outcomes = Vec::with_capacity(ops.len());
    for op in ops {
        let outcome = match op {
            Op::Write { key, value, now } => {
                Outcome::Write(store.write(key, *value, *now).expect("known key"))
            }
            Op::Read { key, constraint, now } => {
                Outcome::Read(store.read(key, *constraint, *now).expect("known key"))
            }
            Op::Aggregate { kind, keys, constraint, now } => {
                let out = store.aggregate(*kind, keys, *constraint, *now).expect("valid query");
                let (lo, hi) = out.answer.to_bits();
                Outcome::Aggregate { lo_bits: lo, hi_bits: hi, refreshed: out.refreshed }
            }
        };
        outcomes.push(outcome);
    }
    (outcomes, store)
}

/// The pipelined execution: ops submitted through a `window`-deep wire
/// client against `serve_pipelined` + runtime, harvested in submission
/// order whenever the window fills (and immediately after a Relative
/// aggregate — its escalation rounds are data-dependent).
fn run_pipelined(shards: usize, window: usize, ops: &[Op]) -> (Vec<Outcome>, ShardedStore<String>) {
    let runtime = Runtime::launch(fleet(shards)).expect("runtime launches");
    let handle = runtime.handle();
    let (server_end, client_end) = loopback();
    let server = thread::spawn(move || serve_pipelined(server_end, handle).expect("serves"));
    let mut client: RemoteStoreClient<String, _> =
        RemoteStoreClient::with_window(client_end, window);

    enum Pending {
        Read(Ticket),
        Write(Ticket),
        Aggregate(Ticket),
    }
    let mut outcomes = Vec::with_capacity(ops.len());
    let mut in_flight: Vec<Pending> = Vec::with_capacity(window);
    let flush = |client: &mut RemoteStoreClient<String, _>,
                 in_flight: &mut Vec<Pending>,
                 outcomes: &mut Vec<Outcome>| {
        for pending in in_flight.drain(..) {
            outcomes.push(match pending {
                Pending::Read(t) => Outcome::Read(client.wait_read(t).expect("known key")),
                Pending::Write(t) => Outcome::Write(client.wait_write(t).expect("known key")),
                Pending::Aggregate(t) => {
                    let out = client.wait_aggregate(t).expect("valid query");
                    let (lo, hi) = out.answer.to_bits();
                    Outcome::Aggregate { lo_bits: lo, hi_bits: hi, refreshed: out.refreshed }
                }
            });
        }
    };
    for op in ops {
        if in_flight.len() >= window {
            flush(&mut client, &mut in_flight, &mut outcomes);
        }
        match op {
            Op::Write { key, value, now } => {
                in_flight.push(Pending::Write(client.submit_write(key, *value, *now).unwrap()));
            }
            Op::Read { key, constraint, now } => {
                in_flight.push(Pending::Read(client.submit_read(key, *constraint, *now).unwrap()));
            }
            Op::Aggregate { kind, keys, constraint, now } => {
                in_flight.push(Pending::Aggregate(
                    client.submit_aggregate(*kind, keys, *constraint, *now).unwrap(),
                ));
                if matches!(constraint, Constraint::Relative(_)) {
                    flush(&mut client, &mut in_flight, &mut outcomes);
                }
            }
        }
    }
    flush(&mut client, &mut in_flight, &mut outcomes);
    client.shutdown().expect("clean shutdown");
    assert_eq!(server.join().expect("server thread"), ServerExit::Shutdown);
    let store = runtime.into_store().expect("drain");
    (outcomes, store)
}

/// Final-state equality: every key's protocol state and the metric
/// totals.
fn assert_stores_identical(a: &ShardedStore<String>, b: &ShardedStore<String>, tag: &str) {
    let final_now = (TICKS + 1) * MS_PER_SEC;
    for i in 0..N_KEYS {
        let k = key(i);
        assert_eq!(a.value(&k), b.value(&k), "{tag}: value of {k}");
        assert_eq!(a.internal_width(&k), b.internal_width(&k), "{tag}: width of {k}");
        let (ia, ib) = (a.cached_interval(&k, final_now), b.cached_interval(&k, final_now));
        match (ia, ib) {
            (Some(ia), Some(ib)) => {
                assert_eq!(ia.to_bits(), ib.to_bits(), "{tag}: interval of {k}")
            }
            (None, None) => {}
            other => panic!("{tag}: cache residency of {k} differs: {other:?}"),
        }
    }
    assert_eq!(
        a.metrics().merged().totals(),
        b.metrics().merged().totals(),
        "{tag}: metric totals"
    );
}

#[test]
fn pipelined_window_is_bit_identical_to_sequential() {
    let ops = trace(SEED);
    for &shards in &SHARD_COUNTS {
        let (reference, reference_store) = run_sequential(shards, &ops);
        for &window in &WINDOWS {
            let tag = format!("shards={shards} window={window}");
            let (piped, piped_store) = run_pipelined(shards, window, &ops);
            assert_eq!(piped.len(), reference.len(), "{tag}: op count");
            for (i, (p, r)) in piped.iter().zip(&reference).enumerate() {
                assert_eq!(p, r, "{tag}: op #{i} ({:?})", ops[i]);
            }
            assert_stores_identical(&piped_store, &reference_store, &tag);
        }
    }
}

#[test]
fn remote_metrics_match_the_drained_fleet() {
    // The metrics snapshot crosses the pipelined path too: what the
    // client reads over the wire equals the drained fleet's own rollup.
    let ops = trace(SEED ^ 7);
    let runtime = Runtime::launch(fleet(2)).expect("runtime launches");
    let handle = runtime.handle();
    let (server_end, client_end) = loopback();
    let server = thread::spawn(move || serve_pipelined(server_end, handle).expect("serves"));
    let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::with_window(client_end, 8);
    for op in ops.iter().take(400) {
        match op {
            Op::Write { key, value, now } => {
                client.write(key, *value, *now).expect("known key");
            }
            Op::Read { key, constraint, now } => {
                client.read(key, *constraint, *now).expect("known key");
            }
            Op::Aggregate { kind, keys, constraint, now } => {
                client.aggregate(*kind, keys, *constraint, *now).expect("valid query");
            }
        }
    }
    let remote = client.metrics().expect("metrics");
    client.shutdown().expect("clean shutdown");
    server.join().expect("server thread");
    let store = runtime.into_store().expect("drain");
    assert_eq!(remote.totals(), store.metrics().merged().totals());
}
