//! Failure injection: invalid inputs and protocol misuse must surface as
//! structured errors everywhere — the library never panics on bad input.

use apcache::core::cost::CostModel;
use apcache::core::policy::{AdaptiveParams, AdaptivePolicy, PrecisionPolicy};
use apcache::core::source::Source;
use apcache::core::{CacheId, Key, Rng};
use apcache::queries::{evaluate, AggregateKind, ItemBound, PrecisionConstraint, QueryError};
use apcache::sim::systems::{AdaptiveSystem, AdaptiveSystemConfig};
use apcache::sim::{CacheSystem, SimConfig, Stats};
use apcache::workload::query::GeneratedQuery;

#[test]
fn non_finite_updates_are_rejected_not_propagated() {
    let mut system =
        AdaptiveSystem::new(&AdaptiveSystemConfig::default(), &[1.0], Rng::seed_from_u64(0))
            .expect("builds");
    let mut stats = Stats::new();
    stats.begin_measurement();
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = system.on_update(Key(0), bad, 1_000, &mut stats);
        assert!(err.is_err(), "update {bad} must error");
    }
    // No cost was charged for the rejected updates...
    assert_eq!(stats.total_cost(), 0.0);
    // ...and the system is still usable afterwards.
    assert!(system.on_update(Key(0), 2.0, 2_000, &mut stats).is_ok());
}

#[test]
fn queries_for_unknown_keys_error_cleanly() {
    let mut system =
        AdaptiveSystem::new(&AdaptiveSystemConfig::default(), &[1.0], Rng::seed_from_u64(0))
            .expect("builds");
    let mut stats = Stats::new();
    let query =
        GeneratedQuery { kind: AggregateKind::Sum, keys: vec![Key(0), Key(99)], delta: 0.0 };
    // Key 99 has no source: the planner's fetch fails and the error
    // propagates as a protocol error (not a panic, not a NaN answer).
    assert!(system.on_query(&query, 0, &mut stats).is_err());
}

#[test]
fn planner_reports_broken_fetchers() {
    let items =
        vec![ItemBound::new(Key(0), apcache::core::Interval::new(0.0, 10.0).expect("valid"))];
    for bad in [f64::NAN, f64::INFINITY] {
        let out = evaluate(AggregateKind::Sum, PrecisionConstraint::exact(), &items, |_| bad);
        assert!(matches!(out, Err(QueryError::NonFiniteFetch { .. })));
    }
}

#[test]
fn source_misuse_is_structured() {
    let cost = CostModel::multiversion();
    let params = AdaptiveParams::new(&cost, 1.0).expect("valid");
    let mut source = Source::new(Key(0), 5.0).expect("valid");
    let mut rng = Rng::seed_from_u64(1);
    // Serving a cache that never registered.
    assert!(source.serve_exact(CacheId(3), 0, &mut rng).is_err());
    // Double registration.
    let p1: Box<dyn PrecisionPolicy> = Box::new(AdaptivePolicy::new(params, 1.0).expect("valid"));
    let p2: Box<dyn PrecisionPolicy> = Box::new(AdaptivePolicy::new(params, 1.0).expect("valid"));
    assert!(source.register(CacheId(0), p1, 0).is_ok());
    assert!(source.register(CacheId(0), p2, 0).is_err());
}

#[test]
fn config_validation_is_exhaustive_at_the_boundaries() {
    // SimConfig.
    assert!(SimConfig::builder().duration_secs(0).build().is_err());
    assert!(SimConfig::builder().duration_secs(5).warmup_secs(5).build().is_err());
    // Costs.
    assert!(CostModel::new(f64::MIN_POSITIVE, 1.0).is_ok());
    assert!(CostModel::new(0.0, 1.0).is_err());
    // Params.
    assert!(AdaptiveParams::from_theta(f64::INFINITY, 1.0).is_err());
    assert!(AdaptiveParams::from_theta(1.0, f64::INFINITY).is_err());
    let p = AdaptiveParams::from_theta(1.0, 1.0).expect("valid");
    assert!(p.with_thresholds(f64::NAN, 1.0).is_err());
    assert!(p.with_thresholds(0.0, f64::NAN).is_err());
    // System assembly.
    assert!(
        AdaptiveSystem::new(&AdaptiveSystemConfig::default(), &[], Rng::seed_from_u64(0)).is_err()
    );
    let bad_alpha = AdaptiveSystemConfig { alpha: -1.0, ..AdaptiveSystemConfig::default() };
    assert!(AdaptiveSystem::new(&bad_alpha, &[1.0], Rng::seed_from_u64(0)).is_err());
    let bad_gamma =
        AdaptiveSystemConfig { gamma0: 5.0, gamma1: 1.0, ..AdaptiveSystemConfig::default() };
    assert!(AdaptiveSystem::new(&bad_gamma, &[1.0], Rng::seed_from_u64(0)).is_err());
    let zero_cache =
        AdaptiveSystemConfig { cache_capacity: Some(0), ..AdaptiveSystemConfig::default() };
    assert!(AdaptiveSystem::new(&zero_cache, &[1.0], Rng::seed_from_u64(0)).is_err());
}

#[test]
fn hierarchy_misuse_is_structured() {
    use apcache::hier::{LeafId, MultiLevelConfig, MultiLevelSystem};
    let mut sys =
        MultiLevelSystem::new(&MultiLevelConfig::default(), &[1.0], Rng::seed_from_u64(0))
            .expect("builds");
    let mut stats = Stats::new();
    assert!(sys.read_bounded(LeafId(99), Key(0), 1.0, 0, &mut stats).is_err());
    assert!(sys.read_bounded(LeafId(0), Key(99), 1.0, 0, &mut stats).is_err());
    assert!(sys.on_update(Key(99), 1.0, 0, &mut stats).is_err());
}

#[test]
fn trace_loader_rejects_malformed_files() {
    use apcache::workload::trace::{TraceError, TraceSet};
    let cases = [
        ("", "empty"),
        ("host,second,value\nx,0,1.0", "bad host"),
        ("host,second,value\n0,y,1.0", "bad second"),
        ("host,second,value\n0,0,zz", "bad value"),
        ("host,second,value\n0,0,inf", "non-finite"),
        ("host,second,value\n0,0,1.0\n1,0,1.0\n1,1,1.0", "ragged"),
    ];
    for (input, label) in cases {
        let out = TraceSet::from_csv_str(input);
        assert!(
            matches!(out, Err(TraceError::Parse { .. }) | Err(TraceError::Inconsistent(_))),
            "case {label} should fail"
        );
    }
}
