//! Migration conformance: elastic resharding must be invisible to
//! callers. A fleet that grows and shrinks mid-trace — live-migrating
//! resident keys with their full protocol state — is driven op-for-op
//! against a never-resharded reference store, under θ = 1 where width
//! adaptation is deterministic:
//!
//! * every read answer and write escape is bit-identical to the
//!   reference, before and after each ring flip;
//! * final per-key state (adaptive widths, values, cached intervals)
//!   and merged metric totals are identical — migration moves the
//!   converged width instead of discarding it (the stranded-key bug
//!   this suite pins down);
//! * the same holds for the actor runtime's live `add_shard` /
//!   `remove_shard`, whose migrations drain mailboxes and flip the
//!   ring under traffic;
//! * concurrent writers riding across random ring flips lose nothing:
//!   every acknowledged write is readable afterwards and the write
//!   counters balance exactly.

use std::thread;

use apcache::core::cost::CostModel;
use apcache::core::{Rng, MS_PER_SEC};
use apcache::runtime::Runtime;
use apcache::shard::ShardedStoreBuilder;
use apcache::store::{Constraint, InitialWidth, PrecisionStore, StoreBuilder};

const START_SHARDS: [usize; 3] = [1, 2, 4];
const MAX_SHARDS: usize = 6;
const VNODES: usize = 64;
const N_KEYS: u32 = 32;
const TICKS: u64 = 160;
const SEED: u64 = 0x01_5701;

fn key(i: u32) -> String {
    format!("sensor/{i:03}")
}

/// One operation of the shared trace. Reshard events carry a pre-drawn
/// pick so every system under test retires the same ring id; the
/// reference store simply ignores them.
#[derive(Debug, Clone)]
enum Op {
    Write { key: String, value: f64, now: u64 },
    Read { key: String, constraint: Constraint, now: u64 },
    Grow,
    Shrink { pick: u64 },
}

/// A deterministic mixed trace with reshard events sprinkled between
/// ticks: every key follows its own random walk, reads rotate through
/// the three constraint forms, and roughly every fourth tick the ring
/// grows or shrinks.
fn trace(seed: u64) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..N_KEYS).map(|i| 10.0 * i as f64).collect();
    let mut ops = Vec::new();
    for t in 1..=TICKS {
        let now = t * MS_PER_SEC;
        for i in 0..N_KEYS {
            values[i as usize] += rng.normal_with(0.0, 4.0);
            ops.push(Op::Write { key: key(i), value: values[i as usize], now });
        }
        for _ in 0..3 {
            let i = rng.below(u64::from(N_KEYS)) as u32;
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(1.0, 20.0)),
                1 => Constraint::Relative(0.05),
                _ => Constraint::Exact,
            };
            ops.push(Op::Read { key: key(i), constraint, now });
        }
        if rng.below(4) == 0 {
            ops.push(match rng.below(2) {
                0 => Op::Grow,
                _ => Op::Shrink { pick: rng.below(u64::from(u32::MAX)) },
            });
        }
    }
    ops
}

/// The never-resharded reference everything is compared against.
fn reference() -> PrecisionStore<String> {
    let mut b = StoreBuilder::new()
        .cost(CostModel::multiversion())
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 1))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..N_KEYS {
        b = b.source(key(i), 10.0 * i as f64);
    }
    b.build().expect("reference store config valid")
}

fn fleet_builder(shards: usize) -> ShardedStoreBuilder<String> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .vnodes(VNODES)
        .cost(CostModel::multiversion())
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 2))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..N_KEYS {
        b = b.source(key(i), 10.0 * i as f64);
    }
    b
}

/// An empty shard with the fleet's tuning, ready to receive migrated
/// keys (the RNG seed is irrelevant at θ = 1: adaptation is
/// deterministic).
fn empty_shard(salt: u64) -> PrecisionStore<String> {
    StoreBuilder::new()
        .cost(CostModel::multiversion())
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ salt))
        .initial_width(InitialWidth::Fixed(8.0))
        .build()
        .expect("empty shard config valid")
}

/// Synchronous fleet: a randomized add/remove schedule interleaved with
/// the trace must replay bit-identically to the unresharded reference —
/// every answer, every escape, every final width and counter.
#[test]
fn randomized_reshard_schedule_is_bit_identical_to_reference() {
    for &n in &START_SHARDS {
        let ops = trace(SEED ^ n as u64);
        let mut single = reference();
        let mut fleet = fleet_builder(n).build().expect("fleet config valid");
        let (mut grows, mut shrinks) = (0u32, 0u32);
        for (op_no, op) in ops.iter().enumerate() {
            match op {
                Op::Write { key, value, now } => {
                    let a = single.write(key, *value, *now).expect("known key");
                    let b = fleet.write(key, *value, *now).expect("known key");
                    assert_eq!(a, b, "start={n} op={op_no}: write escape mismatch on {key}");
                }
                Op::Read { key, constraint, now } => {
                    let a = single.read(key, *constraint, *now).expect("known key");
                    let b = fleet.read(key, *constraint, *now).expect("known key");
                    assert_eq!(a, b, "start={n} op={op_no}: read mismatch on {key}");
                }
                Op::Grow => {
                    if fleet.shard_count() < MAX_SHARDS {
                        fleet
                            .add_shard_backend(empty_shard(3 + u64::from(grows)))
                            .expect("grow migrates cleanly");
                        grows += 1;
                    }
                }
                Op::Shrink { pick } => {
                    if fleet.shard_count() > 1 {
                        let ids = fleet.shard_ids().to_vec();
                        let id = ids[(*pick as usize) % ids.len()];
                        fleet.remove_shard(id).expect("shrink migrates cleanly");
                        shrinks += 1;
                    }
                }
            }
        }
        assert!(grows > 0 && shrinks > 0, "start={n}: schedule never resharded");
        // Post-migration per-key protocol state is bit-identical: the
        // converged adaptive width travelled with every remapped key.
        for i in 0..N_KEYS {
            let k = key(i);
            assert_eq!(
                single.internal_width(&k),
                fleet.internal_width(&k),
                "start={n}: width diverged on {k} after {grows} grows / {shrinks} shrinks"
            );
            assert_eq!(single.value(&k), fleet.value(&k), "start={n}: value diverged on {k}");
            assert_eq!(
                single.cached_interval(&k, TICKS * MS_PER_SEC),
                fleet.cached_interval(&k, TICKS * MS_PER_SEC),
                "start={n}: cached interval diverged on {k}"
            );
        }
        // Per-key metrics migrated too: the rollup balances exactly.
        assert_eq!(
            single.metrics().totals(),
            fleet.metrics().merged().totals(),
            "start={n}: merged totals diverged"
        );
    }
}

/// The actor runtime's live migration (mailbox drain → state transfer →
/// ring flip) replays the same schedule bit-identically, and the drained
/// final stores carry the same per-key state as the reference.
#[test]
fn live_runtime_resharding_is_bit_identical_to_reference() {
    for &n in &START_SHARDS {
        let ops = trace(SEED ^ (0x99 + n as u64));
        let mut single = reference();
        let mut runtime = Runtime::launch(fleet_builder(n).build().expect("fleet config valid"))
            .expect("runtime launches");
        let handle = runtime.handle();
        let (mut grows, mut shrinks) = (0u32, 0u32);
        for (op_no, op) in ops.iter().enumerate() {
            match op {
                Op::Write { key, value, now } => {
                    let a = single.write(key, *value, *now).expect("known key");
                    let b = handle.write(key, *value, *now).expect("known key");
                    assert_eq!(a, b, "start={n} op={op_no}: write escape mismatch on {key}");
                }
                Op::Read { key, constraint, now } => {
                    let a = single.read(key, *constraint, *now).expect("known key");
                    let b = handle.read(key, *constraint, *now).expect("known key");
                    assert_eq!(a, b, "start={n} op={op_no}: read mismatch on {key}");
                }
                Op::Grow => {
                    if runtime.shard_count() < MAX_SHARDS {
                        runtime
                            .add_shard(empty_shard(7 + u64::from(grows)))
                            .expect("live grow migrates cleanly");
                        grows += 1;
                    }
                }
                Op::Shrink { pick } => {
                    if runtime.shard_count() > 1 {
                        let ids = runtime.shard_ids();
                        let id = ids[(*pick as usize) % ids.len()];
                        let drained = runtime.remove_shard(id).expect("live shrink migrates");
                        assert!(drained.is_empty(), "start={n}: retired shard kept keys");
                        shrinks += 1;
                    }
                }
            }
        }
        assert!(grows > 0 && shrinks > 0, "start={n}: schedule never resharded");
        let settled = runtime.into_store().expect("runtime drains");
        for i in 0..N_KEYS {
            let k = key(i);
            assert_eq!(
                single.internal_width(&k),
                settled.internal_width(&k),
                "start={n}: width diverged on {k} after {grows} grows / {shrinks} shrinks"
            );
            assert_eq!(single.value(&k), settled.value(&k), "start={n}: value diverged on {k}");
            assert_eq!(
                single.cached_interval(&k, TICKS * MS_PER_SEC),
                settled.cached_interval(&k, TICKS * MS_PER_SEC),
                "start={n}: cached interval diverged on {k}"
            );
        }
        assert_eq!(
            single.metrics().totals(),
            settled.metrics().merged().totals(),
            "start={n}: merged totals diverged"
        );
    }
}

/// Writers hammering disjoint key ranges from their own logical handles
/// while the main thread flips the ring at random: zero lost writes.
/// Every acknowledged write is readable after the dust settles (each
/// key's final exact answer is its last written value) and the write
/// counters balance — migrated counters included.
#[test]
fn concurrent_writes_survive_live_resharding_with_zero_lost_writes() {
    const WRITERS: u32 = 4;
    const KEYS_PER_WRITER: u32 = 8;
    const WRITES_PER_KEY: u64 = 50;

    let mut b = ShardedStoreBuilder::new()
        .shards(2)
        .vnodes(VNODES)
        .cost(CostModel::multiversion())
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 0xC0))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..WRITERS * KEYS_PER_WRITER {
        b = b.source(key(i), 0.0);
    }
    let mut runtime =
        Runtime::launch(b.build().expect("fleet config valid")).expect("runtime launches");

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let handle = runtime.handle();
            thread::spawn(move || {
                for seq in 1..=WRITES_PER_KEY {
                    for i in 0..KEYS_PER_WRITER {
                        let k = key(w * KEYS_PER_WRITER + i);
                        let value = f64::from(w + 1) * 1_000_000.0 + seq as f64;
                        handle.write(&k, value, seq * MS_PER_SEC).expect("write acknowledged");
                    }
                }
            })
        })
        .collect();

    // Flip the ring under the writers' feet: grow, shrink, repeat.
    let mut rng = Rng::seed_from_u64(SEED ^ 0xC1);
    for flip in 0..8u64 {
        thread::sleep(std::time::Duration::from_millis(3));
        if runtime.shard_count() < MAX_SHARDS && (flip % 2 == 0 || runtime.shard_count() == 1) {
            runtime.add_shard(empty_shard(0xD0 + flip)).expect("live grow under traffic");
        } else {
            let ids = runtime.shard_ids();
            let id = ids[rng.below(ids.len() as u64) as usize];
            let drained = runtime.remove_shard(id).expect("live shrink under traffic");
            assert!(drained.is_empty(), "retired shard kept keys mid-traffic");
        }
    }
    for writer in writers {
        writer.join().expect("writer thread survived resharding");
    }

    // Zero lost writes: the final exact answer on every key is the last
    // value its writer acknowledged.
    let handle = runtime.handle();
    let settle = (WRITES_PER_KEY + 1) * MS_PER_SEC;
    for w in 0..WRITERS {
        let last = f64::from(w + 1) * 1_000_000.0 + WRITES_PER_KEY as f64;
        for i in 0..KEYS_PER_WRITER {
            let k = key(w * KEYS_PER_WRITER + i);
            let r = handle.read(&k, Constraint::Exact, settle).expect("key survived flips");
            assert!(
                r.answer.contains(last) && r.answer.width() == 0.0,
                "lost write on {k}: exact answer {} != last acknowledged {last}",
                r.answer
            );
        }
    }
    // The write counters moved with their keys and balance exactly.
    let metrics = handle.metrics().expect("metrics gather");
    assert_eq!(
        metrics.merged().totals().writes,
        u64::from(WRITERS * KEYS_PER_WRITER) * WRITES_PER_KEY,
        "write counters lost in migration"
    );
    drop(handle);
    runtime.shutdown().expect("clean shutdown");
}
