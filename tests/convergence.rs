//! Convergence of the adaptive algorithm (the Section 3/4.2 claims, at
//! test scale): the adaptive policy approaches the best fixed width, is
//! insensitive to its starting width, and balances the two refresh rates
//! at the cost factor's ratio.

use apcache::core::cost::CostModel;
use apcache::core::Key;
use apcache::sim::systems::{
    build_adaptive_simulation, AdaptiveSystemConfig, InitialWidth, PolicyKind, QuerySpec,
    WorkloadSpec,
};
use apcache::sim::SimConfig;
use apcache::workload::query::KindMix;
use apcache::workload::walk::WalkConfig;

const DURATION: u64 = 12_000;

fn queries() -> QuerySpec {
    QuerySpec {
        period_secs: 2.0,
        fanout: 1,
        delta_avg: 20.0,
        delta_rho: 1.0,
        kind_mix: KindMix::SumOnly,
    }
}

fn run(sys: &AdaptiveSystemConfig, seed: u64) -> (f64, f64, f64, f64) {
    let cfg = SimConfig::builder()
        .duration_secs(DURATION)
        .warmup_secs(DURATION / 10)
        .seed(seed)
        .build()
        .expect("valid");
    let report = build_adaptive_simulation(
        &cfg,
        sys,
        WorkloadSpec::random_walks(1, WalkConfig::paper_default()),
        queries(),
    )
    .expect("assembles")
    .run()
    .expect("runs");
    let w = report.system.internal_width_of(Key(0)).expect("exists");
    (report.stats.cost_rate(), w, report.stats.p_vr(), report.stats.p_qr())
}

#[test]
fn adaptive_beats_bad_fixed_widths_and_approaches_best() {
    // Sweep fixed widths to find the empirical best.
    let mut best = f64::MAX;
    let mut worst = f64::MIN;
    for (i, w) in [1.0, 2.0, 4.0, 6.0, 8.0, 16.0, 32.0].into_iter().enumerate() {
        let sys = AdaptiveSystemConfig {
            policy: PolicyKind::Fixed { width: w },
            ..AdaptiveSystemConfig::default()
        };
        let (omega, _, _, _) = run(&sys, 100 + i as u64);
        best = best.min(omega);
        worst = worst.max(omega);
    }
    let sys = AdaptiveSystemConfig {
        alpha: 0.05,
        initial_width: InitialWidth::Fixed(4.0),
        ..AdaptiveSystemConfig::default()
    };
    let (omega_adaptive, _, _, _) = run(&sys, 200);
    // Within 15% of the best fixed width (paper: 1-5% on much longer
    // runs) and far from the worst.
    assert!(
        omega_adaptive < best * 1.15,
        "adaptive {omega_adaptive} not within 15% of best fixed {best}"
    );
    assert!(omega_adaptive < worst * 0.5, "adaptive should crush bad fixed widths");
}

#[test]
fn converged_width_is_insensitive_to_initial_width() {
    let mut widths = Vec::new();
    for (i, w0) in [0.5, 4.0, 512.0].into_iter().enumerate() {
        let sys = AdaptiveSystemConfig {
            alpha: 0.1,
            initial_width: InitialWidth::Fixed(w0),
            ..AdaptiveSystemConfig::default()
        };
        let (_, w, _, _) = run(&sys, 300 + i as u64);
        widths.push(w);
    }
    let min = widths.iter().copied().fold(f64::MAX, f64::min);
    let max = widths.iter().copied().fold(f64::MIN, f64::max);
    assert!(
        max / min < 2.5,
        "converged widths too spread: {widths:?} (multiplicative adaptation should forget w0)"
    );
}

#[test]
fn refresh_rates_balance_at_theta_ratio() {
    // theta = 1: the stationary point equalizes the two refresh rates.
    let sys = AdaptiveSystemConfig {
        alpha: 0.05,
        cost: CostModel::multiversion(),
        initial_width: InitialWidth::Fixed(4.0),
        ..AdaptiveSystemConfig::default()
    };
    let (_, _, p_vr, p_qr) = run(&sys, 400);
    assert!(p_vr > 0.0 && p_qr > 0.0);
    let ratio = p_vr / p_qr;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "theta=1 should balance refresh rates, got P_vr/P_qr = {ratio}"
    );

    // theta = 4: stationary point at theta*P_vr = P_qr, but adjustment
    // gating (shrink with prob 1/4) means the *event* rates satisfy
    // grow ~= shrink: P_vr ~= P_qr/4.
    let sys = AdaptiveSystemConfig {
        alpha: 0.05,
        cost: CostModel::two_phase_locking(),
        initial_width: InitialWidth::Fixed(4.0),
        ..AdaptiveSystemConfig::default()
    };
    let (_, _, p_vr, p_qr) = run(&sys, 500);
    let ratio = 4.0 * p_vr / p_qr;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "theta=4 should balance theta*P_vr with P_qr, got scaled ratio {ratio}"
    );
}

#[test]
fn walk_scale_shifts_converged_width() {
    // A walk with 4x larger steps needs wider intervals: W* scales as
    // (K1)^(1/3) ~ (step^2)^(1/3) ~ 2.5x.
    let run_scaled = |step_scale: f64, seed: u64| {
        let cfg = SimConfig::builder()
            .duration_secs(DURATION)
            .warmup_secs(DURATION / 10)
            .seed(seed)
            .build()
            .expect("valid");
        let walk = WalkConfig {
            step_lo: 0.5 * step_scale,
            step_hi: 1.5 * step_scale,
            ..WalkConfig::paper_default()
        };
        let sys = AdaptiveSystemConfig {
            alpha: 0.05,
            initial_width: InitialWidth::Fixed(4.0),
            ..AdaptiveSystemConfig::default()
        };
        let report = build_adaptive_simulation(
            &cfg,
            &sys,
            WorkloadSpec::random_walks(1, walk),
            QuerySpec { delta_avg: 80.0, ..queries() },
        )
        .expect("assembles")
        .run()
        .expect("runs");
        report.system.internal_width_of(Key(0)).expect("exists")
    };
    let w1 = run_scaled(1.0, 600);
    let w4 = run_scaled(4.0, 601);
    let ratio = w4 / w1;
    assert!(
        (1.5..=4.5).contains(&ratio),
        "4x steps should widen intervals ~2.5x, got {w1} -> {w4} (ratio {ratio})"
    );
}
