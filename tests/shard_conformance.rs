//! Sharded-vs-single conformance: a `ShardedStore` with N shards and a
//! plain `PrecisionStore`, driven by the same seeded RNG and the same
//! read/write trace, must be indistinguishable to callers —
//!
//! * every point read returns the identical answer (hit or refresh);
//! * every write reports the identical escape count;
//! * per-key protocol state (internal widths, cached intervals) ends
//!   identical, and total costs match within the paper's amortization
//!   bounds (exactly, for θ = 1, where width adaptation is deterministic);
//! * aggregates fanned out across shards stay within the requested
//!   precision and contain the ground truth, and key sets that collide on
//!   one shard reproduce the single-store plan bit-for-bit;
//! * the routing ring is stable: deterministic across instances, and
//!   elastic growth/shrink only moves the keys it must.

use apcache::core::cost::CostModel;
use apcache::core::{Rng, MS_PER_SEC};
use apcache::queries::AggregateKind;
use apcache::shard::{ShardRouter, ShardedStore, ShardedStoreBuilder};
use apcache::store::{Constraint, InitialWidth, PrecisionStore, StoreBuilder};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const VNODES: usize = 64;
const N_KEYS: u32 = 48;
const TICKS: u64 = 400;
const SEED: u64 = 0x5EED_2001;

fn key(i: u32) -> String {
    format!("sensor/{i:03}")
}

/// One operation of the shared trace, pre-generated so every system under
/// test replays byte-identical traffic.
#[derive(Debug, Clone)]
enum Op {
    Write { key: String, value: f64, now: u64 },
    Read { key: String, constraint: Constraint, now: u64 },
}

/// A deterministic mixed trace: every key follows its own random walk;
/// reads rotate through absolute/relative/exact constraints.
fn point_trace(seed: u64) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..N_KEYS).map(|i| 10.0 * i as f64).collect();
    let mut ops = Vec::new();
    for t in 1..=TICKS {
        let now = t * MS_PER_SEC;
        for i in 0..N_KEYS {
            values[i as usize] += rng.normal_with(0.0, 4.0);
            ops.push(Op::Write { key: key(i), value: values[i as usize], now });
        }
        for _ in 0..3 {
            let i = rng.below(u64::from(N_KEYS)) as u32;
            let constraint = match rng.below(3) {
                0 => Constraint::Absolute(rng.uniform(1.0, 20.0)),
                1 => Constraint::Relative(0.05),
                _ => Constraint::Exact,
            };
            ops.push(Op::Read { key: key(i), constraint, now });
        }
    }
    ops
}

fn single_store(cost: CostModel) -> PrecisionStore<String> {
    let mut b = StoreBuilder::new()
        .cost(cost)
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 1))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..N_KEYS {
        b = b.source(key(i), 10.0 * i as f64);
    }
    b.build().expect("single store config valid")
}

fn sharded_store(shards: usize, cost: CostModel) -> ShardedStore<String> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .vnodes(VNODES)
        .cost(cost)
        .alpha(1.0)
        .rng(Rng::seed_from_u64(SEED ^ 2))
        .initial_width(InitialWidth::Fixed(8.0));
    for i in 0..N_KEYS {
        b = b.source(key(i), 10.0 * i as f64);
    }
    b.build().expect("sharded store config valid")
}

/// θ = 1: width adaptation is deterministic, so a sharded fleet must
/// replay the trace **identically** to the single store — every answer,
/// every escape, every counter, every final width.
#[test]
fn point_ops_identical_for_every_shard_count() {
    let trace = point_trace(SEED);
    for &n in &SHARD_COUNTS {
        let mut single = single_store(CostModel::multiversion());
        let mut sharded = sharded_store(n, CostModel::multiversion());
        for (op_no, op) in trace.iter().enumerate() {
            match op {
                Op::Write { key, value, now } => {
                    let a = single.write(key, *value, *now).expect("known key");
                    let b = sharded.write(key, *value, *now).expect("known key");
                    assert_eq!(a, b, "shards={n} op={op_no}: write escape mismatch on {key}");
                }
                Op::Read { key, constraint, now } => {
                    let a = single.read(key, *constraint, *now).expect("known key");
                    let b = sharded.read(key, *constraint, *now).expect("known key");
                    assert_eq!(a, b, "shards={n} op={op_no}: read mismatch on {key}");
                }
            }
        }
        // Final per-key protocol state is identical.
        for i in 0..N_KEYS {
            let k = key(i);
            assert_eq!(
                single.internal_width(&k),
                sharded.internal_width(&k),
                "shards={n}: width diverged on {k}"
            );
            assert_eq!(single.value(&k), sharded.value(&k));
            assert_eq!(
                single.cached_interval(&k, TICKS * MS_PER_SEC),
                sharded.cached_interval(&k, TICKS * MS_PER_SEC)
            );
        }
        // Metrics rollup matches the single store's totals exactly.
        let sm = sharded.metrics();
        let merged = sm.merged().totals();
        let totals = single.metrics().totals();
        assert_eq!(totals, merged, "shards={n}: merged totals diverged");
        // …and the per-shard views add up to the rollup.
        let shard_reads: u64 = sm.per_shard().iter().map(|m| m.totals().reads).sum();
        assert_eq!(shard_reads, merged.reads);
    }
}

/// θ ≠ 1: adaptation is probabilistic and each shard owns an independent
/// RNG stream, so exact equality is not defined — but the protocol's
/// amortization argument (costs move by at most a factor of (1+α) per
/// refresh decision) keeps the two deployments' total costs within a
/// constant factor on the same trace.
#[test]
fn costs_within_amortization_bounds_for_probabilistic_theta() {
    let trace = point_trace(SEED ^ 0xABCD);
    let alpha = 1.0f64;
    let bound = (1.0 + alpha) * (1.0 + alpha);
    for &n in &SHARD_COUNTS {
        let mut single = single_store(CostModel::two_phase_locking());
        let mut sharded = sharded_store(n, CostModel::two_phase_locking());
        for op in &trace {
            match op {
                Op::Write { key, value, now } => {
                    single.write(key, *value, *now).expect("known key");
                    sharded.write(key, *value, *now).expect("known key");
                }
                Op::Read { key, constraint, now } => {
                    let a = single.read(key, *constraint, *now).expect("known key");
                    let b = sharded.read(key, *constraint, *now).expect("known key");
                    // Whatever the widths did, both answers must contain
                    // the (shared) true value.
                    let truth = single.value(key).unwrap();
                    assert!(a.answer.contains(truth));
                    assert!(b.answer.contains(truth));
                }
            }
        }
        let single_cost = single.metrics().total_cost();
        let sharded_cost = sharded.metrics().merged().total_cost();
        assert!(single_cost > 0.0 && sharded_cost > 0.0);
        let ratio = sharded_cost / single_cost;
        assert!(
            (1.0 / bound..=bound).contains(&ratio),
            "shards={n}: cost ratio {ratio:.3} outside amortization bound {bound}"
        );
    }
}

/// Aggregates fanned out across shards keep the bounded-answer contract:
/// within the constraint, containing the ground truth — for every kind
/// and every shard count.
#[test]
fn fanned_out_aggregates_stay_bounded_and_valid() {
    let keys: Vec<String> = (0..N_KEYS).map(key).collect();
    let truth: Vec<f64> = (0..N_KEYS).map(|i| 10.0 * i as f64).collect();
    let sum: f64 = truth.iter().sum();
    let max = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = truth.iter().cloned().fold(f64::INFINITY, f64::min);
    let avg = sum / truth.len() as f64;
    for &n in &SHARD_COUNTS {
        for delta in [200.0, 24.0, 4.0, 0.0] {
            let mut sharded = sharded_store(n, CostModel::multiversion());
            for (kind, expected) in [
                (AggregateKind::Sum, sum),
                (AggregateKind::Max, max),
                (AggregateKind::Min, min),
                (AggregateKind::Avg, avg),
            ] {
                let out = sharded
                    .aggregate(kind, &keys, Constraint::Absolute(delta), 0)
                    .expect("known keys");
                assert!(
                    out.answer.width() <= delta + 1e-9,
                    "shards={n} {kind:?} δ={delta}: width {} too wide",
                    out.answer.width()
                );
                assert!(
                    out.answer.contains(expected),
                    "shards={n} {kind:?} δ={delta}: {} misses truth {expected}",
                    out.answer
                );
            }
        }
    }
}

/// Keys that collide on the ring (all owned by one shard) must reproduce
/// the single store's aggregate plan bit-for-bit: same answer interval,
/// same refresh set, in the same order.
#[test]
fn colliding_key_sets_reproduce_single_store_plans() {
    let router = ShardRouter::new(4, VNODES).expect("ring valid");
    let colliding: Vec<String> = (0..N_KEYS).map(key).filter(|k| router.route(k) == 0).collect();
    assert!(
        colliding.len() >= 4,
        "expected several of {N_KEYS} keys on shard 0, got {}",
        colliding.len()
    );
    let mut single = single_store(CostModel::multiversion());
    let mut sharded = sharded_store(4, CostModel::multiversion());
    for (i, delta) in [50.0, 10.0, 2.0, 0.0].into_iter().enumerate() {
        let now = i as u64 * MS_PER_SEC;
        let a = single
            .aggregate(AggregateKind::Sum, &colliding, Constraint::Absolute(delta), now)
            .expect("known keys");
        let b = sharded
            .aggregate(AggregateKind::Sum, &colliding, Constraint::Absolute(delta), now)
            .expect("known keys");
        assert_eq!(a.answer, b.answer, "δ={delta}: answers diverged");
        assert_eq!(a.refreshed, b.refreshed, "δ={delta}: refresh plans diverged");
    }
    // The other shards saw none of this traffic.
    let m = sharded.metrics();
    for s in 1..4 {
        assert_eq!(m.shard(s).unwrap().qr_count(), 0, "shard {s} was charged");
    }
}

/// Ring stability (the acceptance-criteria properties, via the umbrella
/// crate): deterministic routing for extreme vnode counts, bounded
/// remapping on growth, and no lost keys on shrink.
#[test]
fn ring_stability_properties_hold() {
    let keys: Vec<String> = (0..2_000u32).map(key).collect();
    // Determinism for vnode counts 1 and 128.
    for vnodes in [1usize, 128] {
        let a = ShardRouter::new(5, vnodes).unwrap();
        let b = ShardRouter::new(5, vnodes).unwrap();
        for k in &keys {
            assert_eq!(a.route(k), b.route(k), "vnodes={vnodes}: nondeterministic route");
        }
    }
    // Growth: remapped keys only move to the new shard, bounded count.
    for n in [2usize, 4, 8] {
        let mut router = ShardRouter::new(n, VNODES).unwrap();
        let before: Vec<u32> = keys.iter().map(|k| router.route(k)).collect();
        let new_id = router.add_shard();
        let mut moved = 0;
        for (k, old) in keys.iter().zip(&before) {
            let now = router.route(k);
            if now != *old {
                assert_eq!(now, new_id, "n={n}: key moved between surviving shards");
                moved += 1;
            }
        }
        let ceiling = keys.len() / n + keys.len() / 10;
        assert!(moved <= ceiling, "n={n}: {moved} keys moved, ceiling {ceiling}");
    }
    // Shrink: nothing is lost, untouched keys stay put.
    let mut router = ShardRouter::new(4, VNODES).unwrap();
    let before: Vec<u32> = keys.iter().map(|k| router.route(k)).collect();
    router.remove_shard(1).unwrap();
    for (k, old) in keys.iter().zip(&before) {
        let now = router.route(k);
        assert!(router.shard_ids().contains(&now), "key routed to removed shard");
        if *old != 1 {
            assert_eq!(now, *old, "survivor key moved on shrink");
        }
    }
}
