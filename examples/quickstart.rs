//! Quickstart: the `PrecisionStore` façade on one value.
//!
//! Walks through the paper's Figure 1 against the public API: an
//! application reads a value "to within ±δ" and pushes updates; behind the
//! façade a value-initiated refresh grows the cached interval and a
//! query-initiated refresh shrinks it, steering each key's precision to
//! the cost-optimal width.
//!
//! Run with: `cargo run --example quickstart`

use apcache::core::cost::CostModel;
use apcache::store::{Constraint, InitialWidth, StoreBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Costs: updates are pushed (C_vr = 1), remote reads are a round trip
    // (C_qr = 2), so the cost factor is theta = 2*C_vr/C_qr = 1 and the
    // width adjusts on every refresh. alpha = 1 doubles/halves widths —
    // the paper's recommended tuning.
    let cost = CostModel::multiversion();
    println!(
        "cost model: C_vr = {}, C_qr = {}, theta = {}",
        cost.c_vr(),
        cost.c_qr(),
        cost.theta()
    );

    let mut store = StoreBuilder::new()
        .cost(cost)
        .alpha(1.0)
        .initial_width(InitialWidth::Fixed(2.0))
        .source("sensor", 5.0)
        .build()?;

    // A tolerant read is answered from the cached interval — no messages.
    let r = store.read(&"sensor", Constraint::Absolute(2.0), 0)?;
    println!("t=0s  read ±1 -> {} (cache hit, zero cost)", r.answer);

    // The value drifts inside the interval: nothing happens (writes in
    // [L, H] are free).
    let w = store.write(&"sensor", 5.5, 1_000)?;
    assert!(!w.escaped());
    println!("t=1s  write 5.5 stayed inside {}", store.cached_interval(&"sensor", 1_000).unwrap());

    // Figure 1(a): the value escapes -> value-initiated refresh; the store
    // concludes the interval was too narrow and doubles the width.
    let w = store.write(&"sensor", 7.0, 2_000)?;
    assert!(w.escaped());
    println!(
        "t=2s  write 7 escaped! value-initiated refresh installs {} (width doubled)",
        store.cached_interval(&"sensor", 2_000).unwrap()
    );

    // Figure 1(b): a read needs more precision than the interval offers
    // and fetches the exact value -> query-initiated refresh; the store
    // concludes the interval was too wide and halves the width.
    let r = store.read(&"sensor", Constraint::Absolute(1.0), 3_000)?;
    assert!(r.refreshed);
    println!(
        "t=3s  read ±0.5 fetched exact value {}; query-initiated refresh installs {} (width halved)",
        r.answer,
        store.cached_interval(&"sensor", 3_000).unwrap()
    );
    assert!(r.answer.width() <= 1.0, "answer must satisfy the precision constraint");

    let m = store.metrics();
    println!(
        "internal width now {} — the algorithm keeps balancing the two refresh rates,\n\
         which is exactly the cost-optimal width (paper, Section 3).\n\
         metrics: {} VRs + {} QRs, total cost {}",
        store.internal_width(&"sensor").unwrap(),
        m.vr_count(),
        m.qr_count(),
        m.total_cost()
    );
    Ok(())
}
