//! Quickstart: the adaptive precision-setting protocol on one value.
//!
//! Walks through the paper's Figure 1 by hand: a source holding an exact
//! value, a cache holding an interval approximation, a value-initiated
//! refresh growing the interval, and a query-initiated refresh shrinking
//! it.
//!
//! Run with: `cargo run --example quickstart`

use apcache::core::cache::Cache;
use apcache::core::cost::CostModel;
use apcache::core::policy::{AdaptiveParams, AdaptivePolicy};
use apcache::core::source::Source;
use apcache::core::{CacheId, Key, Rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Costs: updates are pushed (C_vr = 1), remote reads are a round trip
    // (C_qr = 2), so the cost factor is theta = 2*C_vr/C_qr = 1 and the
    // width adjusts on every refresh.
    let cost = CostModel::multiversion();
    println!("cost model: C_vr = {}, C_qr = {}, theta = {}", cost.c_vr(), cost.c_qr(), cost.theta());

    // The paper's recommended tuning: alpha = 1 doubles/halves the width.
    let params = AdaptiveParams::new(&cost, 1.0)?;
    let policy = AdaptivePolicy::new(params, 2.0)?;

    let mut rng = Rng::seed_from_u64(7);
    let cache_id = CacheId(0);
    let mut source = Source::new(Key(0), 5.0)?;
    let mut cache = Cache::new(cache_id, 16)?;

    // Register the cache at the source; install the initial approximation.
    let refresh = source.register(cache_id, Box::new(policy), 0)?;
    cache.apply_refresh(refresh);
    println!("t=0s  value = 5, cached interval = {}", cache.interval_at(Key(0), 0).unwrap());

    // The value drifts inside the interval: nothing happens (cache hit
    // territory -- approximate reads are free).
    let refreshes = source.apply_update(5.5, 1_000, &mut rng)?;
    assert!(refreshes.is_empty());
    println!("t=1s  value = 5.5, still valid: {}", cache.interval_at(Key(0), 1_000).unwrap());

    // Figure 1(a): the value escapes -> value-initiated refresh; the
    // source concludes the interval was too narrow and doubles the width.
    let refreshes = source.apply_update(7.0, 2_000, &mut rng)?;
    for (_, refresh) in refreshes {
        println!(
            "t=2s  value = 7 escaped! value-initiated refresh installs {} (width doubled)",
            refresh.spec.interval_at(2_000)
        );
        cache.apply_refresh(refresh);
    }

    // Figure 1(b): a query needs more precision than the interval offers
    // and fetches the exact value -> query-initiated refresh; the source
    // concludes the interval was too wide and halves the width.
    let response = source.serve_exact(cache_id, 3_000, &mut rng)?;
    println!(
        "t=3s  query fetched exact value {}; query-initiated refresh installs {} (width halved)",
        response.value,
        response.refresh.spec.interval_at(3_000)
    );
    cache.apply_refresh(response.refresh);

    println!(
        "internal width now {} — the algorithm keeps balancing the two refresh rates,\n\
         which is exactly the cost-optimal width (paper, Section 3).",
        source.internal_width_for(cache_id).unwrap()
    );
    Ok(())
}
