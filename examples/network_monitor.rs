//! Network monitoring — the paper's motivating scenario (Section 4.3).
//!
//! Fifty hosts report traffic levels (one-minute moving averages); a
//! monitoring station caches interval approximations and runs bounded SUM
//! queries ("total traffic over these 10 hosts, to within δ bytes/s")
//! every second. The example contrasts three precision regimes and shows
//! how the adaptive algorithm converts tolerance into network savings.
//!
//! Run with: `cargo run --release --example network_monitor`

use apcache::sim::systems::{
    build_adaptive_simulation, AdaptiveSystemConfig, QuerySpec, WorkloadSpec,
};
use apcache::sim::SimConfig;
use apcache::workload::query::KindMix;
use apcache::workload::trace::{TraceConfig, TraceSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two hours of synthetic wide-area traffic (self-similar ON/OFF
    // construction; substitute real traces via TraceSet::from_csv_path).
    let trace = TraceSet::generate(&TraceConfig::paper_like(), 2024)?;
    println!(
        "generated trace: {} hosts x {} s, peak {:.2e} B/s",
        trace.n_hosts(),
        trace.duration_secs(),
        trace.peak()
    );

    let sim_cfg = SimConfig::builder().duration_secs(7_200).warmup_secs(600).seed(1).build()?;

    println!(
        "\n{:>22} {:>12} {:>10} {:>10} {:>10}",
        "precision constraint", "cost rate", "VRs", "QRs", "saving"
    );
    let mut exact_cost = None;
    for delta_avg in [0.0, 50_000.0, 500_000.0] {
        let queries = QuerySpec {
            period_secs: 1.0,
            fanout: 10,
            delta_avg,
            delta_rho: 0.5,
            kind_mix: KindMix::SumOnly,
        };
        let sys = AdaptiveSystemConfig {
            alpha: 1.0,
            gamma0: 1_000.0,
            gamma1: f64::INFINITY,
            ..AdaptiveSystemConfig::default()
        };
        let report =
            build_adaptive_simulation(&sim_cfg, &sys, WorkloadSpec::trace(trace.clone()), queries)?
                .run()?;
        let omega = report.stats.cost_rate();
        let exact = *exact_cost.get_or_insert(omega);
        let label = if delta_avg == 0.0 {
            "exact answers".to_string()
        } else {
            format!("±{:.0}K B/s", delta_avg / 1_000.0)
        };
        println!(
            "{:>22} {:>12.3} {:>10} {:>10} {:>9.0}%",
            label,
            omega,
            report.stats.vr_count(),
            report.stats.qr_count(),
            (1.0 - omega / exact) * 100.0
        );
    }
    println!(
        "\nTolerating bounded imprecision cuts refresh traffic by a large factor;\n\
         the adaptive algorithm finds the interval widths without any workload knowledge."
    );
    Ok(())
}
