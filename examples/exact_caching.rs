//! Subsumption of exact caching (paper, Section 4.6).
//!
//! With `γ1 = γ0` the adaptive precision algorithm degenerates to an
//! adaptive *exact* caching scheme — every value is either replicated
//! exactly or not cached at all — and competes directly with the
//! WJH97-derived baseline. This example runs both over the same workload
//! and prints the comparison, plus the payoff once imprecision is allowed.
//!
//! Run with: `cargo run --release --example exact_caching`

use apcache::baselines::exact::{ExactCachingConfig, ExactCachingSystem};
use apcache::core::cost::CostModel;
use apcache::core::Rng;
use apcache::sim::systems::{
    build_adaptive_simulation, AdaptiveSystemConfig, QuerySpec, WorkloadSpec,
};
use apcache::sim::{SimConfig, Simulation};
use apcache::workload::query::{KindMix, QueryGenerator};
use apcache::workload::trace::{TraceConfig, TraceSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceSet::generate(&TraceConfig::paper_like(), 99)?;
    let sim_cfg = SimConfig::builder().duration_secs(7_200).warmup_secs(600).seed(5).build()?;
    let queries = QuerySpec {
        period_secs: 1.0,
        fanout: 10,
        delta_avg: 0.0, // exact answers demanded
        delta_rho: 0.0,
        kind_mix: KindMix::SumOnly,
    };

    // WJH97 baseline, best reevaluation period from a small sweep.
    let mut best = (0u32, f64::MAX);
    for x in [3u32, 9, 21, 45] {
        let mut master = Rng::seed_from_u64(sim_cfg.seed());
        let workload = WorkloadSpec::trace(trace.clone());
        let processes = workload.build_processes(&mut master)?;
        let initial: Vec<f64> = processes.iter().map(|p| p.value()).collect();
        let system = ExactCachingSystem::new(
            ExactCachingConfig { cost: CostModel::multiversion(), x, cache_capacity: None },
            &initial,
        )?;
        let query_gen = QueryGenerator::new(queries, initial.len(), master.fork())?;
        let stats = Simulation::new(sim_cfg, system, processes, query_gen)?.run()?.stats;
        if stats.cost_rate() < best.1 {
            best = (x, stats.cost_rate());
        }
    }
    println!("WJH97 exact caching (best x = {:>2}): cost rate {:.3}", best.0, best.1);

    // Ours, collapsed to exact caching via gamma1 = gamma0.
    let ours_exact = AdaptiveSystemConfig {
        gamma0: 1_000.0,
        gamma1: 1_000.0,
        ..AdaptiveSystemConfig::default()
    };
    let report = build_adaptive_simulation(
        &sim_cfg,
        &ours_exact,
        WorkloadSpec::trace(trace.clone()),
        queries,
    )?
    .run()?;
    println!(
        "ours with gamma1 = gamma0:          cost rate {:.3}  ({:+.0}% vs WJH97)",
        report.stats.cost_rate(),
        (report.stats.cost_rate() / best.1 - 1.0) * 100.0
    );

    // And the payoff the generalization buys: allow ±100K B/s.
    let ours_approx = AdaptiveSystemConfig {
        gamma0: 1_000.0,
        gamma1: f64::INFINITY,
        ..AdaptiveSystemConfig::default()
    };
    let loose = QuerySpec { delta_avg: 100_000.0, delta_rho: 0.5, ..queries };
    let report =
        build_adaptive_simulation(&sim_cfg, &ours_approx, WorkloadSpec::trace(trace), loose)?
            .run()?;
    println!(
        "ours with gamma1 = inf, delta=100K: cost rate {:.3}  ({:.1}x cheaper than exact)",
        report.stats.cost_rate(),
        best.1 / report.stats.cost_rate()
    );
    println!(
        "\nThe same algorithm spans both regimes: set gamma1 = gamma0 when every query\n\
         demands exactness, leave gamma1 = inf when queries carry precision constraints."
    );
    Ok(())
}
