//! Scaling out: the same four verbs, served by a shard fleet.
//!
//! Builds a 4-shard `ShardedStore` behind a consistent-hash ring, drives
//! reads/writes/aggregates exactly as the single-store quickstart does,
//! then inspects where keys landed and how the per-shard metrics roll up.
//!
//! Run with: `cargo run --example sharded_deployment`

use apcache::queries::AggregateKind;
use apcache::shard::{Constraint, InitialWidth, ShardedStoreBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sixteen sensors partitioned across four shards. Callers never see
    // the ring: the builder line `.shards(4)` is the entire difference
    // from a single-store deployment.
    let mut builder =
        ShardedStoreBuilder::new().shards(4).vnodes(64).initial_width(InitialWidth::Fixed(4.0));
    for i in 0..16u32 {
        builder = builder.source(format!("sensor/{i:02}"), 100.0 + f64::from(i));
    }
    let mut fleet = builder.build()?;

    println!("fleet: {} keys on {} shards", fleet.len(), fleet.shard_count());
    for s in 0..fleet.shard_count() {
        let shard = fleet.shard(s).unwrap();
        let keys: Vec<&String> = shard.keys().collect();
        println!("  shard {s}: {:2} keys {keys:?}", shard.len());
    }

    // Point traffic routes to the owning shard; semantics are unchanged.
    let r = fleet.read(&"sensor/03".to_string(), Constraint::Absolute(4.0), 0)?;
    println!("\nread sensor/03 ±2 -> {} (hit on shard {})", r.answer, {
        fleet.shard_of(&"sensor/03".to_string())
    });
    let w = fleet.write(&"sensor/03".to_string(), 150.0, 1_000)?;
    println!("write sensor/03 = 150 escaped: {}", w.escaped());

    // Aggregates fan out to every shard owning a requested key and merge
    // the bounded partial answers; the constraint still holds end-to-end.
    let keys: Vec<String> = (0..16).map(|i| format!("sensor/{i:02}")).collect();
    let out = fleet.aggregate(AggregateKind::Sum, &keys, Constraint::Absolute(20.0), 2_000)?;
    println!(
        "\nSUM over all 16 keys ±10 -> {} ({} keys fetched exactly)",
        out.answer,
        out.refreshed.len()
    );
    assert!(out.answer.width() <= 20.0 + 1e-9);

    // metrics() exposes both views: one rollup, per-shard breakdowns.
    let m = fleet.metrics();
    println!(
        "\nmerged: {} reads / {} writes / {} QRs / {} VRs, total cost {}",
        m.merged().totals().reads,
        m.merged().totals().writes,
        m.merged().qr_count(),
        m.merged().vr_count(),
        m.merged().total_cost()
    );
    for (s, sm) in m.per_shard().iter().enumerate() {
        println!(
            "  shard {s}: {} reads, {} QRs, cost {}",
            sm.totals().reads,
            sm.qr_count(),
            sm.total_cost()
        );
    }
    Ok(())
}
