//! Remote serving: the shard fleet on the far side of a TCP socket.
//!
//! Launches an actor-per-shard `Runtime`, puts `serve_connections` in
//! front of it on an ephemeral localhost port, and drives it from two
//! `RemoteStoreClient`s on real sockets — every read, write, and bounded
//! aggregate crosses the wire as a compact binary frame (the paper's
//! `Refresh`/`ExactResponse` vocabulary plus the serving verbs). A final
//! client asks for the deployment metrics and sends `Shutdown`, which
//! closes the front door; the runtime then drains normally.
//!
//! Run with: `cargo run --example remote_serving`

use std::net::TcpListener;
use std::thread;

use apcache::queries::AggregateKind;
use apcache::runtime::Runtime;
use apcache::shard::{Constraint, InitialWidth, ShardedStoreBuilder};
use apcache::wire::{serve_connections, RemoteStoreClient, TcpTransport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sixteen sensors on four shards behind the actor runtime.
    let mut builder =
        ShardedStoreBuilder::new().shards(4).vnodes(64).initial_width(InitialWidth::Fixed(4.0));
    for i in 0..16u32 {
        builder = builder.source(format!("sensor/{i:02}"), 100.0 + f64::from(i));
    }
    let runtime = Runtime::launch(builder.build()?)?;
    let handle = runtime.handle();

    // The front door: accept TCP connections, serve each on its own
    // thread with a cloned runtime handle.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    println!("serving {} shard actors on {addr}", runtime.shard_count());
    let acceptor = thread::spawn(move || serve_connections(listener, handle));

    const TICKS: u64 = 200;
    let workers: Vec<_> = (0..2u32)
        .map(|c| {
            thread::spawn(
                move || -> Result<(u64, u64), Box<dyn std::error::Error + Send + Sync>> {
                    let mut client: RemoteStoreClient<String, _> =
                        RemoteStoreClient::new(TcpTransport::connect(addr)?);
                    // Each client owns half the sensors: writes go up as one
                    // frame per tick (WriteBatch), reads come back bounded.
                    let mine: Vec<String> = (0..16u32)
                        .filter(|i| i % 2 == c)
                        .map(|i| format!("sensor/{i:02}"))
                        .collect();
                    let (mut escapes, mut refreshing_reads) = (0u64, 0u64);
                    for t in 1..=TICKS {
                        let batch: Vec<(String, f64)> = mine
                            .iter()
                            .enumerate()
                            .map(|(j, key)| {
                                let wobble = ((t + j as u64) as f64 / 7.0).sin() * 9.0;
                                (key.clone(), 100.0 + j as f64 + wobble)
                            })
                            .collect();
                        escapes += client.write_batch(&batch, t)?.refreshes as u64;
                        let key = &mine[(t % mine.len() as u64) as usize];
                        let read = client.read(key, Constraint::Absolute(6.0), t)?;
                        refreshing_reads += u64::from(read.refreshed);
                        if t % 50 == 0 {
                            let sum = client.aggregate(
                                AggregateKind::Sum,
                                &mine,
                                Constraint::Absolute(20.0),
                                t,
                            )?;
                            println!(
                                "client {c} t={t}: SUM(own 8 sensors) = {} ({} exact fetches)",
                                sum.answer,
                                sum.refreshed.len()
                            );
                        }
                    }
                    Ok((escapes, refreshing_reads))
                },
            )
        })
        .collect();
    for (c, worker) in workers.into_iter().enumerate() {
        let (escapes, refreshing_reads) = worker.join().expect("client thread").unwrap();
        println!("client {c}: {escapes} write escapes, {refreshing_reads} refreshing reads");
    }

    // A last client reads the merged deployment metrics over the wire and
    // closes the front door with `Shutdown`.
    let mut closer: RemoteStoreClient<String, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr)?);
    let metrics = closer.metrics().map_err(|e| e.to_string())?;
    let totals = metrics.totals();
    println!(
        "remote metrics: {} writes, {} reads ({} hits), {} VRs, {} QRs, cost {:.1}",
        totals.writes,
        totals.reads,
        totals.cache_hits,
        totals.vr_count,
        totals.qr_count,
        totals.total_cost()
    );
    closer.shutdown().map_err(|e| e.to_string())?;
    acceptor.join().expect("acceptor thread")?;

    // The wire is closed; the runtime drains and hands the fleet back.
    let store = runtime.into_store()?;
    println!(
        "drained: {} keys resident, counters match = {}",
        store.cached_len(),
        store.metrics().merged().totals() == totals
    );
    Ok(())
}
