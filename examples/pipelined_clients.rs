//! Pipelined serving: tickets and completion queues, locally and over
//! the wire.
//!
//! Part 1 drives the actor runtime's ticketed surface directly: a single
//! thread submits a burst of reads, writes, and an aggregate — each
//! `submit_*` returns immediately with a `Ticket` — then harvests the
//! `Completion`s out of order from the handle's queue. Part 2 runs the
//! same idea across a real TCP socket: a `RemoteStoreClient` with an
//! in-flight window keeps many requests on the wire at once, and the
//! pipelined server (`serve_connections`) answers them as the shard
//! actors finish, correlated by the v2 frame header's request id.
//!
//! Run with: `cargo run --example pipelined_clients`

use std::net::TcpListener;
use std::thread;

use apcache::queries::AggregateKind;
use apcache::runtime::{Outcome, Runtime};
use apcache::shard::{Constraint, InitialWidth, ShardedStoreBuilder};
use apcache::wire::{serve_connections, RemoteStoreClient, TcpTransport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sixteen sensors on four shard actors.
    let mut builder =
        ShardedStoreBuilder::new().shards(4).vnodes(64).initial_width(InitialWidth::Fixed(4.0));
    for i in 0..16u32 {
        builder = builder.source(format!("sensor/{i:02}"), 100.0 + f64::from(i));
    }
    let runtime = Runtime::launch(builder.build()?)?;

    // ---- Part 1: one thread, many in-flight tickets -----------------
    let handle = runtime.handle();
    let mut tickets = Vec::new();
    for i in 0..16u32 {
        let key = format!("sensor/{i:02}");
        tickets.push(handle.submit_write(&key, 100.0 + f64::from(i) * 1.5, 1_000)?);
        tickets.push(handle.submit_read(&key, Constraint::Absolute(6.0), 1_000)?);
    }
    let keys: Vec<String> = (0..16u32).map(|i| format!("sensor/{i:02}")).collect();
    let sum =
        handle.submit_aggregate(AggregateKind::Sum, &keys, Constraint::Absolute(24.0), 1_000)?;
    println!("submitted {} tickets without blocking once", tickets.len() + 1);
    // Harvest everything out of order; the aggregate's probe/refine
    // rounds advance as part of the harvesting.
    let (mut reads, mut writes) = (0, 0);
    while let Some(completion) = handle.wait() {
        match completion.outcome? {
            Outcome::Read(_) => reads += 1,
            Outcome::Write(_) => writes += 1,
            Outcome::Aggregate(out) => {
                println!("SUM of all sensors = {} (ticket {})", out.answer, completion.ticket.0)
            }
            // No metrics/subscription tickets were submitted above.
            other => println!("unexpected completion: {other:?}"),
        }
    }
    println!("harvested {reads} reads + {writes} writes, queue drained");
    let _ = sum; // settled through wait() like everything else

    // ---- Part 2: the same pipeline over a TCP socket ----------------
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let door_handle = runtime.handle();
    let acceptor = thread::spawn(move || serve_connections(listener, door_handle));

    const TICKS: u64 = 100;
    const WINDOW: usize = 16;
    let mut client: RemoteStoreClient<String, _> =
        RemoteStoreClient::with_window(TcpTransport::connect(addr)?, WINDOW);
    let mut escapes = 0u64;
    for t in 1..=TICKS {
        // Fill the window with this tick's writes, then harvest them all:
        // sixteen requests ride the connection concurrently instead of
        // sixteen ping-pong round trips.
        let mut in_flight = Vec::with_capacity(16);
        for (j, key) in keys.iter().enumerate() {
            let wobble = ((t + j as u64) as f64 / 7.0).sin() * 9.0;
            in_flight.push(client.submit_write(key, 100.0 + j as f64 + wobble, 2_000 + t)?);
        }
        for ticket in in_flight {
            escapes += client.wait_write(ticket)?.refreshes as u64;
        }
        if t % 50 == 0 {
            let sum = client.aggregate(
                AggregateKind::Sum,
                &keys,
                Constraint::Absolute(20.0),
                2_000 + t,
            )?;
            println!("t={t}: SUM = {} ({} exact fetches)", sum.answer, sum.refreshed.len());
        }
    }
    println!("wire client: {escapes} write escapes across {TICKS} ticks at window {WINDOW}");
    let metrics = client.metrics()?;
    println!(
        "remote metrics: {} writes, {} reads, cost {:.1}",
        metrics.totals().writes,
        metrics.totals().reads,
        metrics.totals().total_cost()
    );
    client.shutdown()?;
    acceptor.join().expect("acceptor thread")?;

    // The door is closed; the runtime drains and hands the fleet back.
    let store = runtime.into_store()?;
    println!("drained fleet: {} keys resident", store.cached_len());
    Ok(())
}
