//! Concurrent serving: the shard fleet behind actor mailboxes.
//!
//! Launches an actor-per-shard `Runtime` over a 4-shard `ShardedStore`,
//! then serves it from real threads: four writers streaming
//! fire-and-forget updates (bounded mailboxes park them if a shard falls
//! behind), two readers issuing bounded point reads, and the main thread
//! running scatter/gather aggregates. A draining shutdown hands back the
//! final `ShardedStore` with every accepted write applied.
//!
//! Run with: `cargo run --example concurrent_serving`

use apcache::queries::AggregateKind;
use apcache::runtime::{Runtime, RuntimeConfig};
use apcache::shard::{Constraint, InitialWidth, ShardedStoreBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sixteen sensors on four shards, exactly as in the sharded example —
    // the runtime wraps the same store.
    let mut builder =
        ShardedStoreBuilder::new().shards(4).vnodes(64).initial_width(InitialWidth::Fixed(4.0));
    for i in 0..16u32 {
        builder = builder.source(format!("sensor/{i:02}"), 100.0 + f64::from(i));
    }
    let runtime = Runtime::launch_with(
        builder.build()?,
        RuntimeConfig { mailbox_capacity: 256, ..RuntimeConfig::default() },
    )?;
    println!("runtime: {} shard actors serving 16 keys", runtime.shard_count());

    const TICKS: u64 = 500;
    std::thread::scope(|scope| {
        // Four writers, four sensors each: new measurements stream in as
        // fire-and-forget writes — the caller never waits for the refresh
        // decision, it only pays backpressure at the mailbox.
        for w in 0..4u32 {
            let h = runtime.handle();
            scope.spawn(move || {
                for t in 1..=TICKS {
                    for i in (w * 4)..(w * 4 + 4) {
                        let key = format!("sensor/{i:02}");
                        let value = 100.0 + f64::from(i) + (t as f64 / 9.0).sin() * 10.0;
                        h.write_nowait(&key, value, t).expect("accepted while running");
                    }
                }
            });
        }
        // Two readers polling bounded point reads concurrently.
        for r in 0..2u32 {
            let h = runtime.handle();
            scope.spawn(move || {
                for t in 1..=TICKS {
                    let key = format!("sensor/{:02}", (t as u32 * 3 + r) % 16);
                    let res = h.read(&key, Constraint::Absolute(8.0), t).expect("known key");
                    assert!(res.answer.width() <= 8.0);
                }
            });
        }
        // The main thread interleaves scatter/gather aggregates: the
        // precision budget splits across the shard actors and the partial
        // answers merge back under the same bound.
        let h = runtime.handle();
        let keys: Vec<String> = (0..16).map(|i| format!("sensor/{i:02}")).collect();
        for t in 1..=10u64 {
            let out = h
                .aggregate(AggregateKind::Sum, &keys, Constraint::Absolute(40.0), t * 50)
                .expect("known keys");
            assert!(out.answer.width() <= 40.0 + 1e-9);
            if t % 5 == 0 {
                println!("SUM over 16 keys ±20 at t={:4} -> {}", t * 50, out.answer);
            }
        }
    });

    // Live metrics while the actors still run…
    let m = runtime.handle().metrics()?;
    println!(
        "\nlive: {} reads / {} writes / {} QRs / {} VRs across {} shards",
        m.merged().totals().reads,
        m.merged().totals().writes,
        m.merged().qr_count(),
        m.merged().vr_count(),
        m.per_shard().len()
    );

    // …then a draining shutdown: every accepted fire-and-forget write is
    // applied before the actors exit, and the synchronous store comes
    // back for inspection.
    let store = runtime.into_store()?;
    println!(
        "drained: {} writes applied, sensor/05 = {:?}",
        store.metrics().merged().totals().writes,
        store.value(&"sensor/05".to_string())
    );
    assert_eq!(store.metrics().merged().totals().writes, 4 * 4 * TICKS);
    Ok(())
}
