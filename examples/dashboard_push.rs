//! Push-based dashboards: one volatile quote, four subscribers over
//! real TCP, each with a different *relative* precision requirement.
//!
//! Each dashboard subscribes to the same hot key with
//! `PushFilter::Violates(Constraint::Relative(ρ))`: the server streams a
//! push only when the cached interval becomes too wide to certify that
//! dashboard's ρ. A burst of escaping writes widens the interval step by
//! step (W ← W·(1+α) on every escape), so the tight ρ = 0.1 % dashboard
//! hears about nearly every change while the loose ρ = 20 % dashboard
//! stays quiet until the quote gets genuinely volatile — the paper's
//! value-initiated refresh, delivered only to the users whose precision
//! contract it breaks.
//!
//! Run with: `cargo run --example dashboard_push`

use std::net::TcpListener;
use std::thread;

use apcache::push::PushFilter;
use apcache::runtime::Runtime;
use apcache::shard::ShardedStoreBuilder;
use apcache::store::{Constraint, InitialWidth};
use apcache::wire::{serve_connections, RemoteStoreClient, TcpTransport};

const KEY: &str = "quote/ACME";
const RHOS: [f64; 4] = [0.001, 0.01, 0.05, 0.2];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One hot key behind the full deployment: sharded store → actor
    // runtime → TCP front door.
    let runtime = Runtime::launch(
        ShardedStoreBuilder::new()
            .shards(1)
            .initial_width(InitialWidth::Fixed(0.2))
            .source(KEY.to_string(), 100.0)
            .build()?,
    )?;
    let handle = runtime.handle();
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let acceptor = thread::spawn(move || serve_connections(listener, handle));
    println!("serving {KEY} on {addr}\n");

    // Four dashboards, four precision contracts, four TCP connections.
    let mut dashboards: Vec<(f64, RemoteStoreClient<String, TcpTransport>)> = Vec::new();
    for rho in RHOS {
        let mut client: RemoteStoreClient<String, TcpTransport> =
            RemoteStoreClient::new(TcpTransport::connect(addr)?);
        let filter = PushFilter::Violates(Constraint::Relative(rho));
        let (_sub, snapshot) = client.subscribe(&KEY.to_string(), filter, 0)?;
        println!(
            "dashboard rho={:>5.1}% subscribed; starting interval [{:.2}, {:.2}]",
            rho * 100.0,
            snapshot.lo(),
            snapshot.hi()
        );
        dashboards.push((rho, client));
    }

    // The feed: a burst of escaping writes. Every escape recenters the
    // interval AND widens it (W ← W·(1+α)), so the quote's certified
    // relative precision decays from 0.2 % toward tens of percent.
    let mut feed: RemoteStoreClient<String, TcpTransport> =
        RemoteStoreClient::new(TcpTransport::connect(addr)?);
    println!("\nburst: 14 escaping writes on {KEY} ...");
    let mut price = 100.0;
    let mut jump = 0.3;
    for t in 1..=14u64 {
        price += jump;
        jump *= 1.9; // each move bigger than the widened interval
        feed.write(&KEY.to_string(), price, t * 1_000)?;
    }

    // Each dashboard pumps its connection once (an always-satisfied read;
    // server-initiated push frames queued ahead of its response are
    // harvested with it), then drains its pushes.
    println!();
    for (rho, client) in &mut dashboards {
        client.read(&KEY.to_string(), Constraint::Absolute(f64::INFINITY), 15_000)?;
        let mut events = Vec::new();
        while let Some((_sub, event)) = client.poll_push() {
            events.push(event);
        }
        let widths: Vec<String> =
            events.iter().map(|e| format!("{:.2}", e.interval.width())).collect();
        println!(
            "dashboard rho={:>5.1}%: {:>2} pushes (violating widths: {})",
            *rho * 100.0,
            events.len(),
            if widths.is_empty() { "none".to_string() } else { widths.join(", ") }
        );
    }

    // Dashboards hang up (their subscriptions die with the connection);
    // the feed closes the front door.
    drop(dashboards);
    feed.shutdown()?;
    acceptor.join().expect("acceptor thread")?;
    let store = runtime.into_store()?;
    println!(
        "\nfinal {KEY}: value {:.2}, interval width {:.2}",
        store.value(&KEY.to_string()).unwrap(),
        store.cached_interval(&KEY.to_string(), 15_000).map(|iv| iv.width()).unwrap_or(f64::NAN)
    );
    Ok(())
}
