//! Multi-level caching (the paper's Section 5 future work).
//!
//! A regional mid-tier cache sits between a remote source (expensive WAN
//! hop) and several leaf caches (cheap LAN hop). The adaptive precision
//! algorithm runs independently per hop: the mid-tier interval balances
//! WAN refresh costs, each leaf interval balances LAN refresh costs — and
//! one WAN refresh serves every leaf.
//!
//! Run with: `cargo run --release -p apcache --example hierarchy`

use apcache::core::{Key, Rng, MS_PER_SEC};
use apcache::hier::{FlatFanoutSystem, MultiLevelConfig, MultiLevelSystem};
use apcache::sim::{CacheSystem, Stats};
use apcache::workload::walk::{RandomWalk, ValueProcess, WalkConfig};

fn drive<S: CacheSystem>(
    system: &mut S,
    read: &mut dyn FnMut(&mut S, Key, f64, u64, &mut Stats) -> f64,
    seed: u64,
) -> Stats {
    let mut stats = Stats::new();
    stats.begin_measurement();
    let mut rng = Rng::seed_from_u64(seed);
    let mut walks: Vec<RandomWalk> = (0..4)
        .map(|_| RandomWalk::new(WalkConfig::paper_default(), rng.fork()).expect("valid"))
        .collect();
    let horizon = 3_600u64;
    for t in 1..=horizon {
        let now = t * MS_PER_SEC;
        for (i, w) in walks.iter_mut().enumerate() {
            let v = w.step();
            system.on_update(Key(i as u32), v, now, &mut stats).expect("update");
        }
        // Each second one leaf reads one value with a mixed tolerance.
        let key = Key(rng.below(4) as u32);
        let delta = [0.0, 5.0, 20.0, 80.0][rng.below(4) as usize];
        read(system, key, delta, now, &mut stats);
    }
    stats.finalize(horizon as f64);
    stats
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:>8} {:>16} {:>16} {:>10}", "leaves", "hierarchy cost", "flat cost", "saving");
    for n_leaves in [1usize, 2, 4, 8, 16] {
        let cfg = MultiLevelConfig { n_leaves, ..MultiLevelConfig::default() };
        let initial = [0.0, 0.0, 0.0, 0.0];

        let mut hier = MultiLevelSystem::new(&cfg, &initial, Rng::seed_from_u64(10))?;
        let hier_stats = drive(
            &mut hier,
            &mut |s, key, delta, now, stats| {
                let leaf = apcache::hier::LeafId((now % n_leaves as u64) as u32);
                s.read_bounded(leaf, key, delta, now, stats).expect("read").width()
            },
            42,
        );

        let mut flat = FlatFanoutSystem::new(&cfg, &initial, Rng::seed_from_u64(10))?;
        let flat_stats = drive(
            &mut flat,
            &mut |s, key, delta, now, stats| {
                let leaf = apcache::hier::LeafId((now % n_leaves as u64) as u32);
                s.read_bounded(leaf, key, delta, now, stats).expect("read").width()
            },
            42,
        );

        println!(
            "{:>8} {:>16.3} {:>16.3} {:>9.0}%",
            n_leaves,
            hier_stats.cost_rate(),
            flat_stats.cost_rate(),
            (1.0 - hier_stats.cost_rate() / flat_stats.cost_rate()) * 100.0
        );
    }
    println!(
        "\nThe hierarchy amortizes the expensive source hop across leaves; the flat\n\
         deployment pays it once per leaf per refresh. Precision still adapts per hop."
    );
    Ok(())
}
