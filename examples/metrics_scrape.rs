//! Metrics scrape: Prometheus-style observability on the serving port.
//!
//! Launches an actor-per-shard `Runtime` behind `serve_connections`, puts
//! some frame traffic through it, then demonstrates both telemetry doors
//! on the *same* TCP port:
//!
//! 1. the wire-v3 `Exposition` verb — a framed client asks the runtime
//!    for the deployment's full text exposition (plus `PushStats` for the
//!    refresh-subscription fan-out report);
//! 2. a plain-HTTP `GET /metrics` — any Prometheus scraper can point at
//!    the serving address with no frame protocol at all, because the
//!    server sniffs the first bytes of each connection.
//!
//! The counters in both answers are rendered from the same per-key
//! `StoreMetrics` the paper's experiments report (Ω as
//! `apcache_refresh_cost_total`, VR/QR as `apcache_refreshes_total`),
//! so a scrape is bit-equal with the in-process rollup.
//!
//! Run with: `cargo run --example metrics_scrape`

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

use apcache::runtime::Runtime;
use apcache::shard::{Constraint, InitialWidth, ShardedStoreBuilder};
use apcache::wire::{serve_connections, RemoteStoreClient, TcpTransport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder =
        ShardedStoreBuilder::new().shards(2).vnodes(64).initial_width(InitialWidth::Fixed(4.0));
    for i in 0..8u32 {
        builder = builder.source(format!("sensor/{i:02}"), 100.0 + f64::from(i));
    }
    let runtime = Runtime::launch(builder.build()?)?;
    let handle = runtime.handle();

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    println!("serving on {addr} (frames and GET /metrics share the port)");
    let acceptor = thread::spawn(move || serve_connections(listener, handle));

    // Some framed traffic so the counters have something to say.
    let mut client: RemoteStoreClient<String, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr)?);
    for t in 1..=50u64 {
        let key = format!("sensor/{:02}", t % 8);
        client.write(&key, 100.0 + (t as f64 / 5.0).sin() * 9.0, t)?;
        client.read(&key, Constraint::Absolute(6.0), t)?;
    }

    // Door 1: the wire-v3 telemetry verbs, as frames.
    let report = client.push_stats().map_err(|e| e.to_string())?;
    println!(
        "push stats: {} subscribers watching {} keys, {} leases ({} expired)",
        report.subscribers, report.watched_keys, report.leases, report.expired
    );
    let exposition = client.exposition().map_err(|e| e.to_string())?;
    println!("exposition verb returned {} bytes", exposition.len());

    // Door 2: plain HTTP on the same port — what a Prometheus scraper does.
    let mut scraper = TcpStream::connect(addr)?;
    scraper.write_all(b"GET /metrics HTTP/1.1\r\nHost: apcache\r\nAccept: text/plain\r\n\r\n")?;
    let mut response = String::new();
    scraper.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or("malformed HTTP response")?;
    println!("HTTP scrape: {}", head.lines().next().unwrap_or_default());

    // Show the families the paper's vocabulary maps onto.
    for line in body.lines() {
        if line.starts_with("# TYPE apcache_re")
            || line.starts_with("apcache_refreshes_total")
            || line.starts_with("apcache_refresh_cost_total")
            || line.starts_with("apcache_reads_total")
            || line.starts_with("apcache_cache_hits_total")
        {
            println!("  {line}");
        }
    }

    // Both doors render from the same rollup: the verb's text and the
    // HTTP body agree series-for-series (modulo the moving gauges).
    println!(
        "scrape and verb agree on refresh cost: {}",
        body.lines()
            .any(|l| exposition.contains(l.trim()) && l.starts_with("apcache_refresh_cost_total"))
    );

    client.shutdown().map_err(|e| e.to_string())?;
    acceptor.join().expect("acceptor thread")?;
    runtime.shutdown()?;
    Ok(())
}
