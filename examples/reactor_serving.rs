//! Event-driven serving: hundreds of connections, a handful of threads.
//!
//! Launches an actor-per-shard `Runtime` and puts `serve_reactor` — the
//! poll/epoll readiness loop — in front of it on an ephemeral localhost
//! port. Two hundred clients connect at once and pipeline a window of
//! reads and writes each; the reactor multiplexes every socket over its
//! fixed worker pool (no thread per connection), batches completions,
//! and coalesces frames that become ready together into shared socket
//! writes. A final client scrapes the reactor's own counters off the
//! same port over plain HTTP and sends `Shutdown` to close the door.
//!
//! Run with: `cargo run --example reactor_serving`

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

use apcache::reactor::{serve_reactor, ReactorConfig};
use apcache::runtime::Runtime;
use apcache::shard::{Constraint, InitialWidth, ShardedStoreBuilder};
use apcache::wire::{RemoteStoreClient, TcpTransport};

const CLIENTS: usize = 200;
const OPS_PER_CLIENT: u64 = 50;
const WINDOW: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sixteen sensors on four shards behind the actor runtime.
    let mut builder =
        ShardedStoreBuilder::new().shards(4).vnodes(64).initial_width(InitialWidth::Fixed(4.0));
    for i in 0..16u32 {
        builder = builder.source(format!("sensor/{i:02}"), 100.0 + f64::from(i));
    }
    let runtime = Runtime::launch(builder.build()?)?;
    let handle = runtime.handle();

    // The event-driven door: a fixed pool of poller-driven workers
    // (default: up to four) serves every connection this listener
    // accepts — the same wire contract as `serve_connections`, minus
    // the two-threads-per-connection cost.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let server = thread::spawn(move || serve_reactor(listener, handle, ReactorConfig::default()));
    println!("reactor serving on {addr} ({CLIENTS} clients incoming)");

    // Two hundred concurrent clients, each pipelining WINDOW ops deep.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || -> Result<f64, Box<dyn std::error::Error + Send + Sync>> {
                let mut client: RemoteStoreClient<String, _> =
                    RemoteStoreClient::with_window(TcpTransport::connect(addr)?, WINDOW);
                let key = format!("sensor/{:02}", c % 16);
                let mut tickets = Vec::with_capacity(WINDOW);
                let mut last = 0.0;
                for i in 0..OPS_PER_CLIENT {
                    if tickets.len() >= WINDOW {
                        for t in tickets.drain(..) {
                            client.wait_write(t)?;
                        }
                    }
                    tickets.push(client.submit_write(
                        &key,
                        100.0 + (c as f64) + (i as f64) * 0.25,
                        i,
                    )?);
                    if i % 10 == 9 {
                        for t in tickets.drain(..) {
                            client.wait_write(t)?;
                        }
                        last = client
                            .read(&key, Constraint::Absolute(2.0), i)?
                            .answer
                            .estimate()
                            .unwrap_or(f64::NAN);
                    }
                }
                for t in tickets.drain(..) {
                    client.wait_write(t)?;
                }
                drop(client); // plain disconnect: the reactor reaps the socket
                Ok(last)
            })
        })
        .collect();
    let mut served = 0usize;
    for w in workers {
        w.join().expect("client thread").expect("client trace");
        served += 1;
    }
    println!("{served} clients served their traces through the fixed worker pool");

    // The same port answers plain HTTP: scrape the reactor's counters.
    let mut scraper = TcpStream::connect(addr)?;
    write!(scraper, "GET /metrics HTTP/1.1\r\nHost: apcache\r\n\r\n")?;
    let mut response = String::new();
    scraper.read_to_string(&mut response)?;
    for series in [
        "apcache_push_frames_coalesced_total",
        "apcache_connections_open",
        "apcache_reactor_wakeups_total",
    ] {
        let line = response.lines().find(|l| l.starts_with(series)).unwrap_or("(series missing)");
        println!("scrape: {line}");
    }

    // One last client closes the front door; the runtime drains after.
    let closer: RemoteStoreClient<String, _> = RemoteStoreClient::new(TcpTransport::connect(addr)?);
    closer.shutdown()?;
    server.join().expect("server thread")?;
    let store = runtime.into_store()?;
    let metrics = store.metrics();
    let totals = metrics.merged().totals();
    println!(
        "drained: {} reads and {} writes served across the fleet ({} cache hits)",
        totals.reads, totals.writes, totals.cache_hits
    );
    Ok(())
}
