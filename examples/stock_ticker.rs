//! Stock ticker — approximate caching for dashboards.
//!
//! A brokerage dashboard tracks a basket of instruments whose prices
//! random-walk at the exchange (one source per instrument). The dashboard
//! needs the *portfolio value* (a SUM) to within a dollar tolerance and
//! the *top mover* (a MAX) — exact prices are only fetched when the cached
//! price intervals cannot answer within tolerance.
//!
//! Demonstrates driving [`AdaptiveSystem`] directly (no simulator): the
//! application owns the clock and the query points.
//!
//! Run with: `cargo run --release --example stock_ticker`

use apcache::core::{Key, Rng, MS_PER_SEC};
use apcache::queries::AggregateKind;
use apcache::sim::systems::{AdaptiveSystem, AdaptiveSystemConfig, InitialWidth};
use apcache::sim::{CacheSystem, Stats};
use apcache::workload::query::GeneratedQuery;
use apcache::workload::walk::{RandomWalk, ValueProcess, WalkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 12; // instruments in the basket
    let mut rng = Rng::seed_from_u64(0xF00D);

    // Prices start around $100 and move ±[0.05, 0.25] per second.
    let walk_cfg = WalkConfig { initial: 100.0, step_lo: 0.05, step_hi: 0.25, p_up: 0.5 };
    let mut prices: Vec<RandomWalk> =
        (0..N).map(|_| RandomWalk::new(walk_cfg, rng.fork()).expect("valid walk")).collect();

    // Cache tuning: dollar-scale thresholds; alpha=1.
    let sys_cfg = AdaptiveSystemConfig {
        alpha: 1.0,
        gamma0: 0.01,
        gamma1: f64::INFINITY,
        initial_width: InitialWidth::Fixed(1.0),
        ..AdaptiveSystemConfig::default()
    };
    let initial: Vec<f64> = prices.iter().map(|p| p.value()).collect();
    let mut dashboard = AdaptiveSystem::new(&sys_cfg, &initial, rng.fork())?;
    let mut stats = Stats::new();
    stats.begin_measurement();

    let all_keys: Vec<Key> = (0..N as u32).map(Key).collect();
    let mut portfolio_answers = Vec::new();
    let horizon_secs: u64 = 1_800;
    for t in 1..=horizon_secs {
        let now = t * MS_PER_SEC;
        // Exchange ticks: every instrument moves once a second.
        for (i, price) in prices.iter_mut().enumerate() {
            let v = price.step();
            dashboard.on_update(Key(i as u32), v, now, &mut stats)?;
        }
        // Dashboard refresh every 5 s: portfolio value to within $2.50.
        if t % 5 == 0 {
            let q =
                GeneratedQuery { kind: AggregateKind::Sum, keys: all_keys.clone(), delta: 2.50 };
            let summary = dashboard.on_query(&q, now, &mut stats)?;
            stats.record_query();
            if let Some(answer) = summary.answer {
                portfolio_answers.push((t, answer, summary.refreshes));
            }
        }
        // Top mover every 30 s: which instrument trades highest, to within 50c.
        if t % 30 == 0 {
            let q =
                GeneratedQuery { kind: AggregateKind::Max, keys: all_keys.clone(), delta: 0.50 };
            dashboard.on_query(&q, now, &mut stats)?;
            stats.record_query();
        }
    }
    stats.finalize(horizon_secs as f64);

    let (t, answer, refreshes) = portfolio_answers.last().expect("queries ran");
    println!(
        "after {t} s: portfolio value in [{:.2}, {:.2}] (width {:.2}, {} exact fetches)",
        answer.lo(),
        answer.hi(),
        answer.width(),
        refreshes
    );
    println!(
        "totals: {} queries, {} value-initiated refreshes, {} exact fetches",
        stats.query_count(),
        stats.vr_count(),
        stats.qr_count()
    );
    println!("average message cost rate: {:.3} per second", stats.cost_rate());
    let naive = N as f64; // push every tick of every instrument
    println!(
        "naively streaming every tick would cost {:.1} per second — the interval cache\n\
         answers the same bounded queries at {:.1}% of that traffic.",
        naive,
        stats.cost_rate() / naive * 100.0
    );
    Ok(())
}
