//! Simulation run configuration.

use crate::error::SimError;

/// Global parameters of a simulation run: how long, how much warm-up to
/// discard (the paper discards an initial warm-up period in every reported
/// experiment), and the master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    duration_secs: u64,
    warmup_secs: u64,
    seed: u64,
}

impl SimConfig {
    /// Start building a configuration. Defaults: two simulated hours
    /// (7200 s, the paper's trace length), 600 s warm-up, seed 0.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Total simulated duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.duration_secs
    }

    /// Warm-up period (statistics discarded) in seconds.
    pub fn warmup_secs(&self) -> u64 {
        self.warmup_secs
    }

    /// Seconds over which statistics are measured.
    pub fn measured_secs(&self) -> u64 {
        self.duration_secs - self.warmup_secs
    }

    /// Master RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    duration_secs: u64,
    warmup_secs: u64,
    seed: u64,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder { duration_secs: 7_200, warmup_secs: 600, seed: 0 }
    }
}

impl SimConfigBuilder {
    /// Set the total duration in simulated seconds.
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.duration_secs = secs;
        self
    }

    /// Set the warm-up period in simulated seconds.
    pub fn warmup_secs(mut self, secs: u64) -> Self {
        self.warmup_secs = secs;
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<SimConfig, SimError> {
        if self.duration_secs == 0 {
            return Err(SimError::Config("duration must be at least 1 second".into()));
        }
        if self.warmup_secs >= self.duration_secs {
            return Err(SimError::Config(format!(
                "warmup ({}) must be shorter than the duration ({})",
                self.warmup_secs, self.duration_secs
            )));
        }
        Ok(SimConfig {
            duration_secs: self.duration_secs,
            warmup_secs: self.warmup_secs,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let c = SimConfig::builder().build().unwrap();
        assert_eq!(c.duration_secs(), 7_200);
        assert_eq!(c.warmup_secs(), 600);
        assert_eq!(c.measured_secs(), 6_600);
    }

    #[test]
    fn builder_validation() {
        assert!(SimConfig::builder().duration_secs(0).build().is_err());
        assert!(SimConfig::builder().duration_secs(10).warmup_secs(10).build().is_err());
        assert!(SimConfig::builder().duration_secs(10).warmup_secs(9).build().is_ok());
    }

    #[test]
    fn builder_setters() {
        let c = SimConfig::builder().duration_secs(100).warmup_secs(5).seed(9).build().unwrap();
        assert_eq!((c.duration_secs(), c.warmup_secs(), c.seed()), (100, 5, 9));
    }
}
