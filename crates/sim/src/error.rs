//! Simulator error type.

use std::fmt;

use apcache_core::error::{ParamError, ProtocolError};
use apcache_queries::QueryError;
use apcache_store::StoreError;

/// Errors raised while configuring or running a simulation.
#[derive(Debug)]
pub enum SimError {
    /// Invalid simulation configuration.
    Config(String),
    /// Parameter validation failure from the core crate.
    Param(ParamError),
    /// Protocol misuse (source/cache API).
    Protocol(ProtocolError),
    /// Query engine failure.
    Query(QueryError),
    /// Serving façade failure.
    Store(StoreError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(m) => write!(f, "invalid simulation config: {m}"),
            SimError::Param(e) => write!(f, "parameter error: {e}"),
            SimError::Protocol(e) => write!(f, "protocol error: {e}"),
            SimError::Query(e) => write!(f, "query error: {e}"),
            SimError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(_) => None,
            SimError::Param(e) => Some(e),
            SimError::Protocol(e) => Some(e),
            SimError::Query(e) => Some(e),
            SimError::Store(e) => Some(e),
        }
    }
}

impl From<ParamError> for SimError {
    fn from(e: ParamError) -> Self {
        SimError::Param(e)
    }
}

impl From<ProtocolError> for SimError {
    fn from(e: ProtocolError) -> Self {
        SimError::Protocol(e)
    }
}

impl From<QueryError> for SimError {
    fn from(e: QueryError) -> Self {
        SimError::Query(e)
    }
}

impl From<StoreError> for SimError {
    fn from(e: StoreError) -> Self {
        SimError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SimError = ParamError::InvalidAlpha(-1.0).into();
        assert!(e.to_string().contains("alpha"));
        let e: SimError = QueryError::EmptyInput.into();
        assert!(e.to_string().contains("query"));
        let e = SimError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
