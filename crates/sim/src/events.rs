//! Discrete event queue.
//!
//! A small binary-heap scheduler with deterministic ordering: events fire
//! in `(time, class, sequence)` order, so same-timestamp updates always
//! precede same-timestamp queries, and ties within a class fire in
//! scheduling order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use apcache_core::TimeMs;

/// Kinds of events the driver schedules. The discriminant doubles as the
/// same-timestamp priority: updates (0) before queries (1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Advance every source process by one second.
    UpdateTick = 0,
    /// Execute one query at the cache.
    Query = 1,
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Firing time.
    pub time: TimeMs,
    /// What fires.
    pub kind: EventKind,
}

type HeapKey = (TimeMs, u8, u64);

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(HeapKey, EventKind)>>,
    seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` at `time`.
    pub fn schedule(&mut self, time: TimeMs, kind: EventKind) {
        let class = kind as u8;
        self.seq += 1;
        self.heap.push(Reverse(((time, class, self.seq), kind)));
    }

    /// Pop the next event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(((time, _, _), kind))| Event { time, kind })
    }

    /// Next firing time without popping.
    pub fn peek_time(&self) -> Option<TimeMs> {
        self.heap.peek().map(|Reverse(((time, _, _), _))| *time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3_000, EventKind::Query);
        q.schedule(1_000, EventKind::UpdateTick);
        q.schedule(2_000, EventKind::Query);
        let times: Vec<TimeMs> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1_000, 2_000, 3_000]);
    }

    #[test]
    fn updates_before_queries_at_same_time() {
        let mut q = EventQueue::new();
        q.schedule(1_000, EventKind::Query);
        q.schedule(1_000, EventKind::UpdateTick);
        assert_eq!(q.pop().unwrap().kind, EventKind::UpdateTick);
        assert_eq!(q.pop().unwrap().kind, EventKind::Query);
    }

    #[test]
    fn same_class_fires_in_scheduling_order() {
        // Two queries at the same instant: FIFO by sequence number.
        let mut q = EventQueue::new();
        q.schedule(1_000, EventKind::Query);
        q.schedule(1_000, EventKind::Query);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().time, 1_000);
        assert_eq!(q.pop().unwrap().time, 1_000);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(5_000, EventKind::UpdateTick);
        assert_eq!(q.peek_time(), Some(5_000));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
    }
}
