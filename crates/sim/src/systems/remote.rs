//! The remotely-served deployment: the paper's system behind the wire
//! protocol (`apcache-wire`), with the simulator as the client.
//!
//! A [`ShardedStore`](apcache_shard::ShardedStore) fleet is moved onto a
//! server thread and served frame-by-frame over an in-process loopback
//! transport; the simulator drives a [`RemoteStoreClient`] through the
//! standard [`CacheSystem`] event loop. Every update and every query is
//! encoded, shipped, decoded, dispatched, and answered through the full
//! codec stack — so a run of this system checks the wire end-to-end
//! against [`ShardedAdaptiveSystem`](super::ShardedAdaptiveSystem) under
//! the exact same workload (`build_remote_simulation` forks RNG streams in
//! the same order).

use std::thread;

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Key, Rng, TimeMs};
use apcache_shard::ShardedStore;
use apcache_store::{Constraint, StoreMetrics};
use apcache_wire::{
    loopback, LoopbackTransport, RemoteError, RemoteStoreClient, ServerExit, StoreServer,
};
use apcache_workload::query::GeneratedQuery;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::simulation::Simulation;
use crate::stats::Stats;
use crate::system::{CacheSystem, QuerySummary};
use crate::systems::adaptive::WorkloadSpec;
use crate::systems::sharded::ShardedSystemConfig;

/// The paper's system on the far side of a wire: a served
/// [`ShardedStore`] fleet driven through frames, under the simulator's
/// cost accounting.
pub struct RemoteAdaptiveSystem {
    client: Option<RemoteStoreClient<Key, LoopbackTransport>>,
    server: Option<thread::JoinHandle<Result<ShardedStore<Key>, SimError>>>,
    cost: CostModel,
}

/// Wire/remote errors surface in the simulator's vocabulary.
fn remote_error(e: RemoteError) -> SimError {
    SimError::Config(e.to_string())
}

impl RemoteAdaptiveSystem {
    /// Build the fleet, move it onto a serving thread, and connect the
    /// loopback client.
    pub fn new(
        cfg: &ShardedSystemConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        let store = cfg.build_store(initial_values, rng.fork())?;
        let cost = *store.cost_model();
        let (mut server_end, client_end) = loopback();
        let server = thread::Builder::new()
            .name("apcache-wire-sim".into())
            .spawn(move || {
                let mut server = StoreServer::new(store);
                match server.serve::<Key, _>(&mut server_end) {
                    Ok(ServerExit::Shutdown | ServerExit::Disconnected) => {
                        Ok(server.into_service())
                    }
                    Err(e) => Err(SimError::Config(format!("wire serving failed: {e}"))),
                }
            })
            .map_err(|e| SimError::Config(format!("failed to spawn server thread: {e}")))?;
        Ok(RemoteAdaptiveSystem {
            client: Some(RemoteStoreClient::new(client_end)),
            server: Some(server),
            cost,
        })
    }

    fn client(&mut self) -> &mut RemoteStoreClient<Key, LoopbackTransport> {
        self.client.as_mut().expect("client lives until shutdown()")
    }

    /// End the session and take the served store back — its final
    /// protocol state (widths, intervals, counters) for inspection.
    pub fn shutdown(mut self) -> Result<ShardedStore<Key>, SimError> {
        let client = self.client.take().expect("shutdown runs once");
        client.shutdown().map_err(remote_error)?;
        let server = self.server.take().expect("server thread present");
        server.join().map_err(|_| SimError::Config("server thread panicked".into()))?
    }

    /// Deployment-wide metrics observed through the wire.
    pub fn remote_metrics(&mut self) -> Result<StoreMetrics<Key>, SimError> {
        self.client().metrics().map_err(remote_error)
    }
}

impl Drop for RemoteAdaptiveSystem {
    fn drop(&mut self) {
        // An abandoned system (no explicit shutdown) still hangs up: the
        // dropped client closes the loopback, the server sees a clean
        // disconnect and exits, and the join keeps the thread from
        // outliving its owner.
        drop(self.client.take());
        if let Some(server) = self.server.take() {
            let _ = server.join();
        }
    }
}

impl CacheSystem for RemoteAdaptiveSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.client().write(&key, value, now).map_err(remote_error)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.cost.c_vr());
        }
        Ok(())
    }

    fn on_update_batch(
        &mut self,
        updates: &[(Key, f64)],
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.client().write_batch(updates, now).map_err(remote_error)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.cost.c_vr());
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let outcome = self
            .client()
            .aggregate(query.kind, &query.keys, Constraint::Absolute(query.delta), now)
            .map_err(remote_error)?;
        for _ in &outcome.refreshed {
            stats.record_qr(self.cost.c_qr());
        }
        Ok(QuerySummary { answer: Some(outcome.answer), refreshes: outcome.refreshed.len() })
    }

    fn interval_of(&self, _key: Key, _now: TimeMs) -> Option<Interval> {
        // Cached intervals live on the server thread; the wire offers no
        // passive peek (a read would perturb the protocol), so the
        // recorder sees no interval trace for this system.
        None
    }
}

/// Assemble a full simulation of the wire-served deployment. RNG streams
/// fork from the master seed in the same order as
/// [`build_sharded_simulation`](super::build_sharded_simulation), so a run
/// replays the identical workload — under θ = 1 the two must agree
/// exactly, frame codec and all.
pub fn build_remote_simulation(
    sim_cfg: &SimConfig,
    sys_cfg: &ShardedSystemConfig,
    workload: WorkloadSpec,
    queries: apcache_workload::query::QueryConfig,
) -> Result<Simulation<RemoteAdaptiveSystem>, SimError> {
    let mut master = Rng::seed_from_u64(sim_cfg.seed());
    let processes = workload.build_processes(&mut master)?;
    let initial_values: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let system = RemoteAdaptiveSystem::new(sys_cfg, &initial_values, master.fork())?;
    let query_gen =
        apcache_workload::query::QueryGenerator::new(queries, initial_values.len(), master.fork())?;
    Simulation::new(*sim_cfg, system, processes, query_gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::adaptive::AdaptiveSystemConfig;
    use crate::systems::build_sharded_simulation;
    use apcache_workload::query::{KindMix, QueryConfig};
    use apcache_workload::walk::WalkConfig;

    fn quick_sim_cfg(seed: u64) -> SimConfig {
        SimConfig::builder().duration_secs(200).warmup_secs(20).seed(seed).build().unwrap()
    }

    fn quick_queries(period: f64, fanout: usize, delta_avg: f64) -> QueryConfig {
        QueryConfig {
            period_secs: period,
            fanout,
            delta_avg,
            delta_rho: 1.0,
            kind_mix: KindMix::SumOnly,
        }
    }

    #[test]
    fn wire_served_simulation_matches_sharded_store_exactly() {
        // θ = 1: adaptation is deterministic and the workloads replay
        // identically, so pushing every event through encode → frame →
        // decode → dispatch must not change a single counter.
        for shards in [1, 2] {
            let sharded_cfg = ShardedSystemConfig {
                shards,
                base: AdaptiveSystemConfig::default(),
                ..ShardedSystemConfig::default()
            };
            let local = build_sharded_simulation(
                &quick_sim_cfg(29),
                &sharded_cfg,
                WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
                quick_queries(1.0, 4, 20.0),
            )
            .unwrap()
            .run()
            .unwrap();
            let remote = build_remote_simulation(
                &quick_sim_cfg(29),
                &sharded_cfg,
                WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
                quick_queries(1.0, 4, 20.0),
            )
            .unwrap()
            .run()
            .unwrap();
            assert_eq!(local.stats.vr_count(), remote.stats.vr_count(), "shards={shards}");
            assert_eq!(local.stats.qr_count(), remote.stats.qr_count(), "shards={shards}");
            assert_eq!(local.stats.total_cost(), remote.stats.total_cost(), "shards={shards}");
        }
    }

    #[test]
    fn shutdown_returns_the_served_store_with_its_state() {
        let cfg = ShardedSystemConfig { shards: 2, ..ShardedSystemConfig::default() };
        let mut system =
            RemoteAdaptiveSystem::new(&cfg, &[1.0, 2.0, 3.0], Rng::seed_from_u64(5)).unwrap();
        let mut stats = Stats::new();
        system.on_update(Key(0), 500.0, 1_000, &mut stats).unwrap(); // escapes
        let remote_metrics = system.remote_metrics().unwrap();
        let store = system.shutdown().unwrap();
        assert_eq!(store.value(&Key(0)), Some(500.0));
        assert_eq!(store.metrics().merged().totals(), remote_metrics.totals());
        assert_eq!(remote_metrics.totals().writes, 1);
    }

    #[test]
    fn dropping_without_shutdown_does_not_hang() {
        let cfg = ShardedSystemConfig::default();
        let system = RemoteAdaptiveSystem::new(&cfg, &[1.0], Rng::seed_from_u64(6)).unwrap();
        drop(system); // Drop impl hangs up and joins the server thread.
    }
}
