//! Concrete caching systems.
//!
//! [`AdaptiveSystem`] is the paper's contribution assembled from
//! `apcache-core` parts: sources running a precision policy per cached
//! value, a widest-first-eviction cache, and the OW00 bounded-aggregate
//! engine answering queries. The baselines crate provides additional
//! implementations of [`crate::system::CacheSystem`].

mod adaptive;
mod concurrent;
mod pipelined;
mod push;
mod remote;
mod sharded;

pub use adaptive::{
    build_adaptive_simulation, AdaptiveSystem, AdaptiveSystemConfig, InitialWidth, PolicyKind,
    WorkloadSpec,
};
pub use concurrent::{
    build_concurrent_simulation, drive_concurrent_clients, ConcurrentAdaptiveSystem,
    ConcurrentLoad, ConcurrentRunTotals, ConcurrentSystemConfig,
};
pub use pipelined::{build_pipelined_simulation, PipelinedRemoteSystem, PipelinedSystemConfig};
pub use push::{build_push_simulation, PushMirrorSystem};
pub use remote::{build_remote_simulation, RemoteAdaptiveSystem};
pub use sharded::{build_sharded_simulation, ShardedAdaptiveSystem, ShardedSystemConfig};

/// Query workload specification (re-export of the workload crate's config:
/// period, fanout, constraint distribution, aggregate mix).
pub use apcache_workload::query::QueryConfig as QuerySpec;
