//! The push-based remote deployment: the pipelined stack of
//! [`PipelinedRemoteSystem`](super::PipelinedRemoteSystem) with a v3
//! push subscription on **every** cached key.
//!
//! At startup the system subscribes (`PushFilter::Always`) to each key
//! and seeds a client-side mirror from the subscription snapshots. From
//! then on it never asks for an interval: the server streams a
//! [`PushEvent`] whenever a cached interval changes (value-initiated or
//! query-initiated refresh), and the mirror applies each event as it is
//! drained. Because the shard actor queues pushes **before** it sends
//! the completion that triggered them, every blocking verb returning
//! implies its pushes are already harvestable — draining after each
//! verb keeps the mirror exactly one protocol step behind nothing.
//!
//! Under θ = 1 the push-fed mirror must be **bit-identical** to what a
//! polling client would read out of the cache; `push_conformance.rs`
//! holds the system to that.

use std::collections::HashMap;
use std::thread;

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Key, Rng, TimeMs};
use apcache_push::{PushEvent, PushFilter};
use apcache_runtime::Runtime;
use apcache_shard::ShardedStore;
use apcache_store::{Answer, Constraint};
use apcache_wire::{
    loopback, serve_pipelined, LoopbackTransport, RemoteError, RemoteStoreClient, ServerExit,
};
use apcache_workload::query::GeneratedQuery;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::simulation::Simulation;
use crate::stats::Stats;
use crate::system::{CacheSystem, QuerySummary};
use crate::systems::adaptive::WorkloadSpec;
use crate::systems::pipelined::PipelinedSystemConfig;

/// The paper's system consumed through value-initiated streaming: a
/// pipelined runtime server pushing every interval change to a mirror
/// that answers `interval_of` without a wire round trip.
pub struct PushMirrorSystem {
    client: Option<RemoteStoreClient<Key, LoopbackTransport>>,
    runtime: Option<Runtime<Key>>,
    server: Option<thread::JoinHandle<Result<ServerExit, SimError>>>,
    cost: CostModel,
    /// Push-fed replica of every cached interval.
    mirror: HashMap<Key, Interval>,
    /// Push events applied since startup (snapshots excluded).
    applied: u64,
}

fn remote_error(e: RemoteError) -> SimError {
    SimError::Config(e.to_string())
}

impl PushMirrorSystem {
    /// Build the fleet, serve it pipelined over loopback, subscribe to
    /// every key, and seed the mirror from the snapshots.
    pub fn new(
        cfg: &PipelinedSystemConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        let store = cfg.base.build_store(initial_values, rng.fork())?;
        let cost = *store.cost_model();
        let runtime = Runtime::launch(store)
            .map_err(|e| SimError::Config(format!("runtime launch failed: {e}")))?;
        let handle = runtime.handle();
        let (server_end, client_end) = loopback();
        let server = thread::Builder::new()
            .name("apcache-wire-push-sim".into())
            .spawn(move || {
                serve_pipelined(server_end, handle)
                    .map_err(|e| SimError::Config(format!("pipelined serving failed: {e}")))
            })
            .map_err(|e| SimError::Config(format!("failed to spawn server thread: {e}")))?;
        let mut client = RemoteStoreClient::with_window(client_end, cfg.window);
        let mut mirror = HashMap::with_capacity(initial_values.len());
        for i in 0..initial_values.len() {
            let key = Key(i as u32);
            let (_sub, snapshot) =
                client.subscribe(&key, PushFilter::Always, 0).map_err(remote_error)?;
            mirror.insert(key, snapshot);
        }
        Ok(PushMirrorSystem {
            client: Some(client),
            runtime: Some(runtime),
            server: Some(server),
            cost,
            mirror,
            applied: 0,
        })
    }

    fn client(&mut self) -> &mut RemoteStoreClient<Key, LoopbackTransport> {
        self.client.as_mut().expect("client lives until shutdown()")
    }

    /// Apply every queued push to the mirror. Called after each verb:
    /// the actor's push-before-reply ordering means the events for that
    /// verb have already been harvested (or are queued) by the time the
    /// verb's own response was redeemed.
    fn drain_pushes(&mut self) {
        let mut events: Vec<PushEvent<Key>> = Vec::new();
        if let Some(client) = self.client.as_mut() {
            while let Some((_sub, event)) = client.poll_push() {
                events.push(event);
            }
        }
        for event in events {
            self.mirror.insert(event.key, event.interval);
            self.applied += 1;
        }
    }

    /// Push events applied to the mirror so far.
    pub fn pushes_applied(&self) -> u64 {
        self.applied
    }

    /// Keys currently mirrored.
    pub fn mirrored_keys(&self) -> usize {
        self.mirror.len()
    }

    /// Poll the server for `key`'s cached interval with an
    /// always-satisfied constraint — a pure cache hit that cannot
    /// trigger a refresh, so polling never perturbs the protocol state
    /// it is checking. This is the reference the push mirror must
    /// bit-match.
    pub fn poll_interval(&mut self, key: Key, now: TimeMs) -> Result<Interval, SimError> {
        let result = self
            .client()
            .read(&key, Constraint::Absolute(f64::INFINITY), now)
            .map_err(remote_error)?;
        debug_assert!(!result.refreshed, "an infinite constraint can never force a refresh");
        self.drain_pushes();
        match result.answer {
            Answer::Interval(interval) => Ok(interval),
            Answer::Exact(v) => Err(SimError::Config(format!(
                "infinite-constraint read of {key:?} returned an exact value {v}"
            ))),
        }
    }

    /// End the session (cancelling the subscriptions) and take the
    /// drained fleet back for inspection.
    pub fn shutdown(mut self) -> Result<ShardedStore<Key>, SimError> {
        let client = self.client.take().expect("shutdown runs once");
        client.shutdown().map_err(remote_error)?;
        let server = self.server.take().expect("server thread present");
        let exit =
            server.join().map_err(|_| SimError::Config("server thread panicked".into()))??;
        debug_assert_eq!(exit, ServerExit::Shutdown);
        let runtime = self.runtime.take().expect("runtime present");
        runtime.into_store().map_err(|e| SimError::Config(format!("runtime drain failed: {e}")))
    }
}

impl Drop for PushMirrorSystem {
    fn drop(&mut self) {
        // Hanging up drops the subscriptions with the connection; the
        // server cancels them before its drainer retires.
        drop(self.client.take());
        if let Some(server) = self.server.take() {
            let _ = server.join();
        }
        drop(self.runtime.take());
    }
}

impl CacheSystem for PushMirrorSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.client().write(&key, value, now).map_err(remote_error)?;
        self.drain_pushes();
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.cost.c_vr());
        }
        Ok(())
    }

    fn on_update_batch(
        &mut self,
        updates: &[(Key, f64)],
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let c_vr = self.cost.c_vr();
        let client = self.client();
        let mut tickets = Vec::with_capacity(updates.len());
        for (key, value) in updates {
            tickets.push(client.submit_write(key, *value, now).map_err(remote_error)?);
        }
        let mut refreshes = 0;
        for ticket in tickets {
            refreshes += client.wait_write(ticket).map_err(remote_error)?.refreshes;
        }
        self.drain_pushes();
        for _ in 0..refreshes {
            stats.record_vr(c_vr);
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let outcome = self
            .client()
            .aggregate(query.kind, &query.keys, Constraint::Absolute(query.delta), now)
            .map_err(remote_error)?;
        // Query-initiated refreshes shrink cached intervals, so they
        // stream back as pushes too — the mirror tracks QRs for free.
        self.drain_pushes();
        for _ in &outcome.refreshed {
            stats.record_qr(self.cost.c_qr());
        }
        Ok(QuerySummary { answer: Some(outcome.answer), refreshes: outcome.refreshed.len() })
    }

    fn interval_of(&self, key: Key, _now: TimeMs) -> Option<Interval> {
        // Answered from the push-fed mirror: no wire round trip, no
        // protocol perturbation — the whole point of the subscription.
        self.mirror.get(&key).copied()
    }
}

/// Assemble a full simulation of the push-mirrored deployment. RNG
/// streams fork exactly as in
/// [`build_pipelined_simulation`](super::build_pipelined_simulation),
/// so the two replay identical workloads; under θ = 1 the push mirror
/// must bit-match what that polling system's fleet caches.
pub fn build_push_simulation(
    sim_cfg: &SimConfig,
    sys_cfg: &PipelinedSystemConfig,
    workload: WorkloadSpec,
    queries: apcache_workload::query::QueryConfig,
) -> Result<Simulation<PushMirrorSystem>, SimError> {
    let mut master = Rng::seed_from_u64(sim_cfg.seed());
    let processes = workload.build_processes(&mut master)?;
    let initial_values: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let system = PushMirrorSystem::new(sys_cfg, &initial_values, master.fork())?;
    let query_gen =
        apcache_workload::query::QueryGenerator::new(queries, initial_values.len(), master.fork())?;
    Simulation::new(*sim_cfg, system, processes, query_gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::sharded::ShardedSystemConfig;

    #[test]
    fn mirror_is_seeded_and_tracks_escaping_writes() {
        let cfg = PipelinedSystemConfig {
            base: ShardedSystemConfig { shards: 2, ..ShardedSystemConfig::default() },
            window: 4,
            pool_sockets: 0,
        };
        let mut system =
            PushMirrorSystem::new(&cfg, &[10.0, 20.0, 30.0], Rng::seed_from_u64(7)).unwrap();
        assert_eq!(system.mirrored_keys(), 3);
        for key in [Key(0), Key(1), Key(2)] {
            let mirrored = system.interval_of(key, 0).unwrap();
            let polled = system.poll_interval(key, 0).unwrap();
            assert_eq!(mirrored.lo().to_bits(), polled.lo().to_bits());
            assert_eq!(mirrored.hi().to_bits(), polled.hi().to_bits());
        }

        // An escaping write pushes the new interval into the mirror.
        let mut stats = Stats::new();
        system.on_update(Key(1), 900.0, 1_000, &mut stats).unwrap();
        assert!(system.pushes_applied() >= 1);
        let mirrored = system.interval_of(Key(1), 1_000).unwrap();
        assert!(mirrored.contains(900.0));
        let polled = system.poll_interval(Key(1), 1_000).unwrap();
        assert_eq!(mirrored.lo().to_bits(), polled.lo().to_bits());
        assert_eq!(mirrored.hi().to_bits(), polled.hi().to_bits());

        let store = system.shutdown().unwrap();
        assert_eq!(store.value(&Key(1)), Some(900.0));
    }

    #[test]
    fn dropping_without_shutdown_does_not_hang() {
        let cfg = PipelinedSystemConfig::default();
        let system = PushMirrorSystem::new(&cfg, &[1.0], Rng::seed_from_u64(9)).unwrap();
        drop(system); // subscriptions die with the connection
    }
}
