//! The concurrently-served deployment: the paper's system behind the
//! actor-per-shard runtime (`apcache-runtime`), with real client threads.
//!
//! Two ways to drive it:
//!
//! * Through the standard single-threaded [`Simulation`] loop, via the
//!   [`CacheSystem`] impl — every event goes through the actor mailboxes
//!   and back, so this checks the runtime against
//!   [`ShardedAdaptiveSystem`](super::ShardedAdaptiveSystem) under the
//!   exact same workload (`build_concurrent_simulation` forks RNG streams
//!   in the same order).
//! * Through [`drive_concurrent_clients`], which spawns `clients` OS
//!   threads, partitions the key space round-robin among them, and
//!   replays a deterministic per-client tick loop of fire-and-forget
//!   writes, reads, and scatter/gather aggregates — the "many client
//!   tasks interleave" scenario the runtime exists for.

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Key, Rng, TimeMs, MS_PER_SEC};
use apcache_runtime::{Runtime, RuntimeConfig, RuntimeError, RuntimeHandle};
use apcache_shard::AggregateKind;
use apcache_store::{Constraint, StoreMetrics};
use apcache_workload::query::GeneratedQuery;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::simulation::Simulation;
use crate::stats::Stats;
use crate::system::{CacheSystem, QuerySummary};
use crate::systems::adaptive::WorkloadSpec;
use crate::systems::sharded::ShardedSystemConfig;

/// Configuration of a concurrently-served deployment: the sharded fleet
/// shape plus the runtime's mailbox depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrentSystemConfig {
    /// Fleet shape and per-shard protocol knobs.
    pub base: ShardedSystemConfig,
    /// Mailbox capacity per shard actor (the backpressure bound).
    pub mailbox_capacity: usize,
}

impl Default for ConcurrentSystemConfig {
    fn default() -> Self {
        ConcurrentSystemConfig {
            base: ShardedSystemConfig::default(),
            mailbox_capacity: apcache_runtime::DEFAULT_MAILBOX_CAPACITY,
        }
    }
}

/// The paper's system served by shard actors: a [`Runtime`] over the
/// [`ShardedStore`](apcache_shard::ShardedStore) fleet, under the
/// simulator's cost accounting.
pub struct ConcurrentAdaptiveSystem {
    runtime: Runtime<Key>,
    handle: RuntimeHandle<Key>,
    cost: CostModel,
}

impl ConcurrentAdaptiveSystem {
    /// Build the fleet and launch one actor per shard.
    pub fn new(
        cfg: &ConcurrentSystemConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        let store = cfg.base.build_store(initial_values, rng.fork())?;
        let cost = *store.cost_model();
        let runtime = Runtime::launch_with(
            store,
            RuntimeConfig { mailbox_capacity: cfg.mailbox_capacity, ..RuntimeConfig::default() },
        )
        .map_err(runtime_error)?;
        let handle = runtime.handle();
        Ok(ConcurrentAdaptiveSystem { runtime, handle, cost })
    }

    /// A serving handle (clone one per client thread).
    pub fn handle(&self) -> RuntimeHandle<Key> {
        self.runtime.handle()
    }

    /// Number of shard actors.
    pub fn shard_count(&self) -> usize {
        self.runtime.shard_count()
    }

    /// Drain the actors and return the merged deployment metrics.
    pub fn shutdown(self) -> Result<StoreMetrics<Key>, SimError> {
        let store = self.runtime.into_store().map_err(runtime_error)?;
        Ok(store.metrics().merged().clone())
    }
}

/// Runtime errors surface as store/config errors in the simulator's
/// vocabulary.
fn runtime_error(e: RuntimeError) -> SimError {
    match e {
        RuntimeError::Store(e) => SimError::Store(e),
        other => SimError::Config(other.to_string()),
    }
}

impl CacheSystem for ConcurrentAdaptiveSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.handle.write(&key, value, now).map_err(runtime_error)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.cost.c_vr());
        }
        Ok(())
    }

    fn on_update_batch(
        &mut self,
        updates: &[(Key, f64)],
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.handle.write_batch(updates, now).map_err(runtime_error)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.cost.c_vr());
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let outcome = self
            .handle
            .aggregate(query.kind, &query.keys, Constraint::Absolute(query.delta), now)
            .map_err(runtime_error)?;
        for _ in &outcome.refreshed {
            stats.record_qr(self.cost.c_qr());
        }
        Ok(QuerySummary { answer: Some(outcome.answer), refreshes: outcome.refreshed.len() })
    }

    fn interval_of(&self, _key: Key, _now: TimeMs) -> Option<Interval> {
        // Cached intervals live on the actor threads; the runtime exposes
        // no passive peek (a read would perturb the protocol), so the
        // recorder sees no interval trace for this system.
        None
    }
}

/// Assemble a full simulation of the runtime-backed deployment. RNG
/// streams fork from the master seed in the same order as
/// [`build_sharded_simulation`](super::build_sharded_simulation), so a
/// run replays the identical workload — under θ = 1 the two must agree
/// exactly.
pub fn build_concurrent_simulation(
    sim_cfg: &SimConfig,
    sys_cfg: &ConcurrentSystemConfig,
    workload: WorkloadSpec,
    queries: apcache_workload::query::QueryConfig,
) -> Result<Simulation<ConcurrentAdaptiveSystem>, SimError> {
    let mut master = Rng::seed_from_u64(sim_cfg.seed());
    let processes = workload.build_processes(&mut master)?;
    let initial_values: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let system = ConcurrentAdaptiveSystem::new(sys_cfg, &initial_values, master.fork())?;
    let query_gen =
        apcache_workload::query::QueryGenerator::new(queries, initial_values.len(), master.fork())?;
    Simulation::new(*sim_cfg, system, processes, query_gen)
}

/// Load profile for [`drive_concurrent_clients`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrentLoad {
    /// Number of client threads (keys are partitioned round-robin).
    pub clients: usize,
    /// Ticks each client replays (one write per owned key per tick).
    pub ticks: u64,
    /// Probability per tick that a client issues a point read.
    pub read_fraction: f64,
    /// Period (in ticks) of each client's aggregate over its own keys;
    /// `0` disables aggregates.
    pub aggregate_every: u64,
    /// Absolute precision budget of reads and aggregates.
    pub delta: f64,
}

/// Totals observed by a multi-client drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrentRunTotals {
    /// Fire-and-forget writes enqueued (all guaranteed applied).
    pub writes: u64,
    /// Blocking point reads served.
    pub reads: u64,
    /// Scatter/gather aggregates served.
    pub aggregates: u64,
}

/// Drive `system` from `load.clients` OS threads: each client owns the
/// keys `k ≡ c (mod clients)` and replays a deterministic tick loop —
/// fire-and-forget writes of a per-key sine walk (backpressure parks the
/// client when a shard falls behind), periodic bounded reads, and
/// periodic scatter/gather aggregates over its own keys. Returns the
/// clients' combined op totals. Reads and aggregates are blocking; the
/// tail of fire-and-forget writes is only guaranteed applied after the
/// runtime's draining shutdown.
pub fn drive_concurrent_clients(
    system: &ConcurrentAdaptiveSystem,
    load: ConcurrentLoad,
) -> Result<ConcurrentRunTotals, SimError> {
    if load.clients == 0 {
        return Err(SimError::Config("at least one client required".into()));
    }
    let n_keys = system.handle.len();
    if n_keys == 0 {
        return Err(SimError::Config("at least one source required".into()));
    }
    let totals = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..load.clients)
            .map(|c| {
                let handle = system.handle();
                scope.spawn(move || -> Result<ConcurrentRunTotals, RuntimeError> {
                    let mine: Vec<Key> = (0..n_keys)
                        .filter(|k| k % load.clients == c)
                        .map(|k| Key(k as u32))
                        .collect();
                    let mut totals = ConcurrentRunTotals { writes: 0, reads: 0, aggregates: 0 };
                    if mine.is_empty() {
                        return Ok(totals);
                    }
                    let mut rng = Rng::seed_from_u64(0xC0C0 + c as u64);
                    for t in 1..=load.ticks {
                        let now = t * MS_PER_SEC;
                        for key in &mine {
                            let value = (t as f64 / 7.0 + key.0 as f64).sin() * 50.0 + key.0 as f64;
                            handle.write_nowait(key, value, now)?;
                            totals.writes += 1;
                        }
                        if rng.bernoulli(load.read_fraction) {
                            let key = mine[(t % mine.len() as u64) as usize];
                            handle.read(&key, Constraint::Absolute(load.delta), now)?;
                            totals.reads += 1;
                        }
                        if load.aggregate_every > 0 && t % load.aggregate_every == 0 {
                            handle.aggregate(
                                AggregateKind::Sum,
                                &mine,
                                Constraint::Absolute(load.delta * mine.len() as f64),
                                now,
                            )?;
                            totals.aggregates += 1;
                        }
                    }
                    Ok(totals)
                })
            })
            .collect();
        let mut totals = ConcurrentRunTotals { writes: 0, reads: 0, aggregates: 0 };
        for worker in workers {
            let t = worker.join().expect("client thread panicked")?;
            totals.writes += t.writes;
            totals.reads += t.reads;
            totals.aggregates += t.aggregates;
        }
        Ok::<_, RuntimeError>(totals)
    })
    .map_err(runtime_error)?;
    Ok(totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::adaptive::AdaptiveSystemConfig;
    use crate::systems::{build_sharded_simulation, ShardedSystemConfig};
    use apcache_workload::query::{KindMix, QueryConfig};
    use apcache_workload::walk::WalkConfig;

    fn quick_sim_cfg(seed: u64) -> SimConfig {
        SimConfig::builder().duration_secs(200).warmup_secs(20).seed(seed).build().unwrap()
    }

    fn quick_queries(period: f64, fanout: usize, delta_avg: f64) -> QueryConfig {
        QueryConfig {
            period_secs: period,
            fanout,
            delta_avg,
            delta_rho: 1.0,
            kind_mix: KindMix::SumOnly,
        }
    }

    #[test]
    fn runtime_backed_simulation_matches_sharded_store_exactly() {
        // θ = 1 (multiversion costs): adaptation is deterministic, the
        // workloads are identical, and every event round-trips through the
        // actor mailboxes — the runtime must reproduce the synchronous
        // sharded run to the last counter.
        for shards in [1, 2, 4] {
            let sharded_cfg = ShardedSystemConfig {
                shards,
                base: AdaptiveSystemConfig::default(),
                ..ShardedSystemConfig::default()
            };
            let sync = build_sharded_simulation(
                &quick_sim_cfg(23),
                &sharded_cfg,
                WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
                quick_queries(1.0, 4, 20.0),
            )
            .unwrap()
            .run()
            .unwrap();
            let concurrent = build_concurrent_simulation(
                &quick_sim_cfg(23),
                &ConcurrentSystemConfig { base: sharded_cfg, ..ConcurrentSystemConfig::default() },
                WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
                quick_queries(1.0, 4, 20.0),
            )
            .unwrap()
            .run()
            .unwrap();
            assert_eq!(sync.stats.vr_count(), concurrent.stats.vr_count(), "shards={shards}");
            assert_eq!(sync.stats.qr_count(), concurrent.stats.qr_count(), "shards={shards}");
            assert_eq!(sync.stats.total_cost(), concurrent.stats.total_cost(), "shards={shards}");
        }
    }

    #[test]
    fn multi_client_drive_applies_every_write() {
        let cfg = ConcurrentSystemConfig {
            base: ShardedSystemConfig { shards: 4, ..ShardedSystemConfig::default() },
            mailbox_capacity: 64,
        };
        let initial: Vec<f64> = (0..24).map(|k| k as f64).collect();
        let system = ConcurrentAdaptiveSystem::new(&cfg, &initial, Rng::seed_from_u64(3)).unwrap();
        let load = ConcurrentLoad {
            clients: 6,
            ticks: 40,
            read_fraction: 0.5,
            aggregate_every: 8,
            delta: 10.0,
        };
        let totals = drive_concurrent_clients(&system, load).unwrap();
        assert_eq!(totals.writes, 24 * 40);
        assert_eq!(totals.aggregates, 6 * (40 / 8));
        let metrics = system.shutdown().unwrap();
        // The draining shutdown guarantees every fire-and-forget write
        // reached its shard's store.
        assert_eq!(metrics.totals().writes, 24 * 40);
        assert_eq!(metrics.totals().reads, totals.reads);
    }

    #[test]
    fn zero_clients_rejected() {
        let cfg = ConcurrentSystemConfig::default();
        let system =
            ConcurrentAdaptiveSystem::new(&cfg, &[1.0, 2.0], Rng::seed_from_u64(4)).unwrap();
        let load = ConcurrentLoad {
            clients: 0,
            ticks: 1,
            read_fraction: 0.0,
            aggregate_every: 0,
            delta: 1.0,
        };
        assert!(drive_concurrent_clients(&system, load).is_err());
    }
}
