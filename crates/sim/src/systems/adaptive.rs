//! The paper's adaptive-interval caching system, wired for the simulator.
//!
//! Since the `apcache-store` façade landed, this system owns **no protocol
//! state of its own**: it drives a [`PrecisionStore`] keyed by the
//! simulator's [`Key`] and forwards the store's refresh outcomes into the
//! simulator's cost accounting. The refresh protocol — escape detection,
//! width adaptation, eviction, refresh-set selection — lives in one place
//! (the store) for every consumer.

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Key, Rng, TimeMs};
use apcache_store::{Constraint, PolicySpec, PrecisionStore, StoreBuilder};
use apcache_workload::query::{GeneratedQuery, QueryConfig};
use apcache_workload::trace::TraceSet;
use apcache_workload::walk::{RandomWalk, ValueProcess, WalkConfig};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::simulation::Simulation;
use crate::stats::Stats;
use crate::system::{CacheSystem, QuerySummary};

pub use apcache_store::InitialWidth;

/// Which precision policy each source runs (paper Section 2, plus the
/// Section 4.5 variants for the ablation experiments). This is the store's
/// policy constructor enum, re-exported under its historical simulator
/// name.
pub type PolicyKind = PolicySpec;

/// Configuration of the adaptive-interval system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSystemConfig {
    /// Refresh costs (determines the cost factor θ).
    pub cost: CostModel,
    /// Adaptivity parameter α.
    pub alpha: f64,
    /// Lower threshold γ0 (widths below snap to exact).
    pub gamma0: f64,
    /// Upper threshold γ1 (widths at/above snap to uncached).
    pub gamma1: f64,
    /// Cache capacity κ; `None` caches every source (κ = n).
    pub cache_capacity: Option<usize>,
    /// Initial interval widths.
    pub initial_width: InitialWidth,
    /// Which policy variant runs at the sources.
    pub policy: PolicyKind,
}

impl Default for AdaptiveSystemConfig {
    fn default() -> Self {
        AdaptiveSystemConfig {
            cost: CostModel::multiversion(),
            alpha: 1.0,
            gamma0: 0.0,
            gamma1: f64::INFINITY,
            cache_capacity: None,
            initial_width: InitialWidth::Relative { frac: 0.1, floor: 1.0 },
            policy: PolicyKind::Adaptive,
        }
    }
}

impl AdaptiveSystemConfig {
    /// Assemble the façade this configuration describes, with one source
    /// per initial value (`Key(0), Key(1), …`).
    pub fn build_store(
        &self,
        initial_values: &[f64],
        rng: Rng,
    ) -> Result<PrecisionStore<Key>, SimError> {
        if initial_values.is_empty() {
            return Err(SimError::Config("at least one source required".into()));
        }
        let mut builder: StoreBuilder<Key> = StoreBuilder::new()
            .cost(self.cost)
            .alpha(self.alpha)
            .thresholds(self.gamma0, self.gamma1)
            .initial_width(self.initial_width)
            .default_policy(self.policy)
            .rng(rng);
        if let Some(k) = self.cache_capacity {
            builder = builder.capacity(k);
        }
        for (i, &v) in initial_values.iter().enumerate() {
            builder = builder.source(Key(i as u32), v);
        }
        Ok(builder.build()?)
    }
}

/// The paper's system: the [`PrecisionStore`] façade under the simulator's
/// cost accounting.
#[derive(Debug)]
pub struct AdaptiveSystem {
    store: PrecisionStore<Key>,
}

impl AdaptiveSystem {
    /// Assemble the system for sources with the given initial values.
    pub fn new(
        cfg: &AdaptiveSystemConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        Ok(AdaptiveSystem { store: cfg.build_store(initial_values, rng.fork())? })
    }

    /// The façade under test, for direct inspection.
    pub fn store(&self) -> &PrecisionStore<Key> {
        &self.store
    }

    /// The source policy's internal width for `key` (e.g. the converged
    /// width after a Figure 3 run).
    pub fn internal_width_of(&self, key: Key) -> Option<f64> {
        self.store.internal_width(&key)
    }

    /// The current exact value at the source for `key`.
    pub fn source_value(&self, key: Key) -> Option<f64> {
        self.store.value(&key)
    }

    /// Number of entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.store.cached_len()
    }

    /// Whether `key` is currently cached.
    pub fn is_cached(&self, key: Key) -> bool {
        self.store.is_cached(&key)
    }
}

impl CacheSystem for AdaptiveSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.store.write(&key, value, now)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.store.cost_model().c_vr());
        }
        Ok(())
    }

    fn on_update_batch(
        &mut self,
        updates: &[(Key, f64)],
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.store.write_batch(updates, now)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.store.cost_model().c_vr());
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let outcome = self.store.aggregate(
            query.kind,
            &query.keys,
            Constraint::Absolute(query.delta),
            now,
        )?;
        for _ in &outcome.refreshed {
            stats.record_qr(self.store.cost_model().c_qr());
        }
        Ok(QuerySummary { answer: Some(outcome.answer), refreshes: outcome.refreshed.len() })
    }

    fn interval_of(&self, key: Key, now: TimeMs) -> Option<Interval> {
        self.store.cached_interval(&key, now)
    }
}

/// The data side of an experiment: what the source values do.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// `n` independent random walks with the given configuration.
    RandomWalks {
        /// Number of sources.
        n: usize,
        /// Walk parameters.
        cfg: WalkConfig,
    },
    /// Replay a trace set (one source per host).
    Trace(TraceSet),
}

impl WorkloadSpec {
    /// `n` independent random walks.
    pub fn random_walks(n: usize, cfg: WalkConfig) -> Self {
        WorkloadSpec::RandomWalks { n, cfg }
    }

    /// Replay the given traces.
    pub fn trace(set: TraceSet) -> Self {
        WorkloadSpec::Trace(set)
    }

    /// Number of sources this workload drives.
    pub fn n_sources(&self) -> usize {
        match self {
            WorkloadSpec::RandomWalks { n, .. } => *n,
            WorkloadSpec::Trace(set) => set.n_hosts(),
        }
    }

    /// Materialize the value processes, drawing per-process RNG streams
    /// from `rng`.
    pub fn build_processes(&self, rng: &mut Rng) -> Result<Vec<Box<dyn ValueProcess>>, SimError> {
        match self {
            WorkloadSpec::RandomWalks { n, cfg } => {
                if *n == 0 {
                    return Err(SimError::Config("need at least one walk".into()));
                }
                let mut out: Vec<Box<dyn ValueProcess>> = Vec::with_capacity(*n);
                for _ in 0..*n {
                    out.push(Box::new(RandomWalk::new(*cfg, rng.fork())?));
                }
                Ok(out)
            }
            WorkloadSpec::Trace(set) => {
                Ok((0..set.n_hosts()).map(|h| Box::new(set.process(h)) as _).collect())
            }
        }
    }
}

/// Assemble a full simulation of the paper's system: workload → store
/// façade → query load. RNG streams are forked from the master seed in a
/// fixed order so runs are bit-reproducible.
pub fn build_adaptive_simulation(
    sim_cfg: &SimConfig,
    sys_cfg: &AdaptiveSystemConfig,
    workload: WorkloadSpec,
    queries: QueryConfig,
) -> Result<Simulation<AdaptiveSystem>, SimError> {
    let mut master = Rng::seed_from_u64(sim_cfg.seed());
    let processes = workload.build_processes(&mut master)?;
    let initial_values: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let system = AdaptiveSystem::new(sys_cfg, &initial_values, master.fork())?;
    let query_gen =
        apcache_workload::query::QueryGenerator::new(queries, initial_values.len(), master.fork())?;
    Simulation::new(*sim_cfg, system, processes, query_gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_core::policy::GrowthLaw;
    use apcache_core::policy::Weighting;
    use apcache_workload::query::KindMix;

    fn quick_sim_cfg() -> SimConfig {
        SimConfig::builder().duration_secs(300).warmup_secs(50).seed(11).build().unwrap()
    }

    fn quick_queries(period: f64, fanout: usize, delta_avg: f64) -> QueryConfig {
        QueryConfig {
            period_secs: period,
            fanout,
            delta_avg,
            delta_rho: 1.0,
            kind_mix: KindMix::SumOnly,
        }
    }

    #[test]
    fn single_walk_run_produces_both_refresh_kinds() {
        let report = build_adaptive_simulation(
            &quick_sim_cfg(),
            &AdaptiveSystemConfig {
                initial_width: InitialWidth::Fixed(5.0),
                ..AdaptiveSystemConfig::default()
            },
            WorkloadSpec::random_walks(1, WalkConfig::paper_default()),
            quick_queries(2.0, 1, 20.0),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(report.stats.vr_count() > 0, "no value-initiated refreshes");
        assert!(report.stats.qr_count() > 0, "no query-initiated refreshes");
        assert!(report.stats.cost_rate() > 0.0);
        // The adaptive width stays positive and finite.
        let w = report.system.internal_width_of(Key(0)).unwrap();
        assert!(w.is_finite() && w > 0.0);
    }

    #[test]
    fn store_metrics_mirror_simulator_stats() {
        // The façade's own counters see the whole run (the simulator's
        // Stats discard warm-up), so store totals >= measured totals.
        let report = build_adaptive_simulation(
            &quick_sim_cfg(),
            &AdaptiveSystemConfig::default(),
            WorkloadSpec::random_walks(2, WalkConfig::paper_default()),
            quick_queries(1.0, 2, 10.0),
        )
        .unwrap()
        .run()
        .unwrap();
        let metrics = report.system.store().metrics();
        assert!(metrics.vr_count() >= report.stats.vr_count());
        assert!(metrics.qr_count() >= report.stats.qr_count());
        assert!(metrics.total_cost() >= report.stats.total_cost());
        // Per-key counters exist for every touched key.
        assert!(metrics.for_key(&Key(0)).is_some());
    }

    #[test]
    fn exact_caching_special_case_has_zero_or_infinite_widths() {
        // γ1 = γ0: every cached interval must be a point (or absent).
        let cfg =
            AdaptiveSystemConfig { gamma0: 1.0, gamma1: 1.0, ..AdaptiveSystemConfig::default() };
        let report = build_adaptive_simulation(
            &quick_sim_cfg(),
            &cfg,
            WorkloadSpec::random_walks(4, WalkConfig::paper_default()),
            quick_queries(1.0, 2, 10.0),
        )
        .unwrap()
        .run()
        .unwrap();
        let system = &report.system;
        for k in 0..4 {
            if let Some(iv) = system.interval_of(Key(k), 300_000) {
                let w = iv.width();
                assert!(w == 0.0 || w.is_infinite(), "width {w} violates γ1=γ0");
            }
        }
    }

    #[test]
    fn capacity_limits_cached_entries() {
        let cfg =
            AdaptiveSystemConfig { cache_capacity: Some(3), ..AdaptiveSystemConfig::default() };
        let report = build_adaptive_simulation(
            &quick_sim_cfg(),
            &cfg,
            WorkloadSpec::random_walks(10, WalkConfig::paper_default()),
            quick_queries(1.0, 5, 50.0),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(report.system.cached_entries() <= 3);
    }

    #[test]
    fn queries_meet_their_constraints() {
        // Smoke-check through the full stack: run with a tight constraint
        // and make sure the system doesn't blow up; the planner guarantee
        // is separately unit-tested.
        let report = build_adaptive_simulation(
            &quick_sim_cfg(),
            &AdaptiveSystemConfig::default(),
            WorkloadSpec::random_walks(5, WalkConfig::paper_default()),
            quick_queries(1.0, 3, 1.0),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(report.stats.qr_count() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg =
                SimConfig::builder().duration_secs(200).warmup_secs(20).seed(seed).build().unwrap();
            build_adaptive_simulation(
                &cfg,
                &AdaptiveSystemConfig::default(),
                WorkloadSpec::random_walks(3, WalkConfig::paper_default()),
                quick_queries(1.0, 2, 15.0),
            )
            .unwrap()
            .run()
            .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.stats.vr_count(), b.stats.vr_count());
        assert_eq!(a.stats.qr_count(), b.stats.qr_count());
        assert_eq!(a.stats.total_cost(), b.stats.total_cost());
        let c = run(6);
        // Different seed should (virtually always) differ.
        assert_ne!(
            (a.stats.vr_count(), a.stats.qr_count()),
            (c.stats.vr_count(), c.stats.qr_count())
        );
    }

    #[test]
    fn policy_variants_all_run() {
        for policy in [
            PolicyKind::Adaptive,
            PolicyKind::Uncentered,
            PolicyKind::TimeVarying(GrowthLaw::sqrt(1.0).unwrap()),
            PolicyKind::Drifting { rate_per_sec: 0.5 },
            PolicyKind::History { r: 3, weighting: Weighting::Uniform },
            PolicyKind::Fixed { width: 10.0 },
        ] {
            let cfg = AdaptiveSystemConfig { policy, ..AdaptiveSystemConfig::default() };
            let report = build_adaptive_simulation(
                &quick_sim_cfg(),
                &cfg,
                WorkloadSpec::random_walks(2, WalkConfig::paper_default()),
                quick_queries(1.0, 2, 20.0),
            )
            .unwrap()
            .run()
            .unwrap();
            assert!(report.stats.cost_rate() >= 0.0, "policy {policy:?} failed");
        }
    }

    #[test]
    fn trace_workload_runs() {
        let set = apcache_workload::trace::TraceSet::generate(
            &apcache_workload::trace::TraceConfig::small(),
            3,
        )
        .unwrap();
        let n = set.n_hosts();
        let report = build_adaptive_simulation(
            &quick_sim_cfg(),
            &AdaptiveSystemConfig::default(),
            WorkloadSpec::trace(set),
            quick_queries(1.0, n.min(10), 100_000.0),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(report.stats.query_count() > 0);
    }
}
