//! The sharded deployment of the paper's system, wired for the simulator.
//!
//! Same protocol, different topology: instead of one `PrecisionStore`, an
//! [`apcache_shard::ShardedStore`] partitions the key space across `N`
//! stores behind a consistent-hash ring. The simulator drives it through
//! the same [`CacheSystem`] trait as the single-store
//! [`AdaptiveSystem`](super::AdaptiveSystem), so every experiment can
//! sweep shard counts with no other change.

use apcache_core::{Interval, Key, Rng, TimeMs};
use apcache_shard::{Constraint, ShardedStore, ShardedStoreBuilder};
use apcache_workload::query::GeneratedQuery;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::simulation::Simulation;
use crate::stats::Stats;
use crate::system::{CacheSystem, QuerySummary};
use crate::systems::adaptive::{AdaptiveSystemConfig, WorkloadSpec};

/// Configuration of a sharded adaptive deployment: the single-store
/// protocol knobs plus the fleet shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedSystemConfig {
    /// Per-shard protocol configuration (cost, α, γ0/γ1, policy, …).
    ///
    /// `base.cache_capacity` is interpreted as the **total** capacity κ of
    /// the deployment, divided across shards as `ceil(κ/shards)` each —
    /// when κ does not divide evenly, the rounding grants the fleet up to
    /// `shards − 1` extra slots, so sweep capacities divisible by every
    /// shard count under comparison to hold the cache budget truly fixed.
    pub base: AdaptiveSystemConfig,
    /// Number of `PrecisionStore` shards behind the ring.
    pub shards: usize,
    /// Virtual nodes per shard on the routing ring.
    pub vnodes: usize,
}

impl Default for ShardedSystemConfig {
    fn default() -> Self {
        ShardedSystemConfig {
            base: AdaptiveSystemConfig::default(),
            shards: 1,
            vnodes: apcache_shard::DEFAULT_VNODES,
        }
    }
}

impl ShardedSystemConfig {
    /// Assemble the sharded façade this configuration describes, with one
    /// source per initial value (`Key(0), Key(1), …`).
    pub fn build_store(
        &self,
        initial_values: &[f64],
        rng: Rng,
    ) -> Result<ShardedStore<Key>, SimError> {
        if initial_values.is_empty() {
            return Err(SimError::Config("at least one source required".into()));
        }
        if self.shards == 0 {
            return Err(SimError::Config("at least one shard required".into()));
        }
        let mut builder: ShardedStoreBuilder<Key> = ShardedStoreBuilder::new()
            .shards(self.shards)
            .vnodes(self.vnodes)
            .cost(self.base.cost)
            .alpha(self.base.alpha)
            .thresholds(self.base.gamma0, self.base.gamma1)
            .initial_width(self.base.initial_width)
            .default_policy(self.base.policy)
            .rng(rng);
        if let Some(total) = self.base.cache_capacity {
            builder = builder.capacity_per_shard(total.div_ceil(self.shards));
        }
        for (i, &v) in initial_values.iter().enumerate() {
            builder = builder.source(Key(i as u32), v);
        }
        Ok(builder.build()?)
    }
}

/// The paper's system scaled out: a [`ShardedStore`] fleet under the
/// simulator's cost accounting.
#[derive(Debug)]
pub struct ShardedAdaptiveSystem {
    store: ShardedStore<Key>,
}

impl ShardedAdaptiveSystem {
    /// Assemble the system for sources with the given initial values.
    pub fn new(
        cfg: &ShardedSystemConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        Ok(ShardedAdaptiveSystem { store: cfg.build_store(initial_values, rng.fork())? })
    }

    /// The sharded façade under test, for direct inspection.
    pub fn store(&self) -> &ShardedStore<Key> {
        &self.store
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.store.shard_count()
    }

    /// Total entries cached across the fleet.
    pub fn cached_entries(&self) -> usize {
        self.store.cached_len()
    }

    /// The source policy's internal width for `key`.
    pub fn internal_width_of(&self, key: Key) -> Option<f64> {
        self.store.internal_width(&key)
    }

    /// The current exact value at the source for `key`.
    pub fn source_value(&self, key: Key) -> Option<f64> {
        self.store.value(&key)
    }
}

impl CacheSystem for ShardedAdaptiveSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.store.write(&key, value, now)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.store.cost_model().c_vr());
        }
        Ok(())
    }

    fn on_update_batch(
        &mut self,
        updates: &[(Key, f64)],
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.store.write_batch(updates, now)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.store.cost_model().c_vr());
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let outcome = self.store.aggregate(
            query.kind,
            &query.keys,
            Constraint::Absolute(query.delta),
            now,
        )?;
        for _ in &outcome.refreshed {
            stats.record_qr(self.store.cost_model().c_qr());
        }
        Ok(QuerySummary { answer: Some(outcome.answer), refreshes: outcome.refreshed.len() })
    }

    fn interval_of(&self, key: Key, now: TimeMs) -> Option<Interval> {
        self.store.cached_interval(&key, now)
    }
}

/// Assemble a full simulation of a sharded deployment: workload → ring →
/// shard fleet → query load. RNG streams are forked from the master seed
/// in the same order as [`build_adaptive_simulation`], so a 1-shard run
/// sees the same workload as the unsharded system with the same seed.
///
/// [`build_adaptive_simulation`]: super::build_adaptive_simulation
pub fn build_sharded_simulation(
    sim_cfg: &SimConfig,
    sys_cfg: &ShardedSystemConfig,
    workload: WorkloadSpec,
    queries: apcache_workload::query::QueryConfig,
) -> Result<Simulation<ShardedAdaptiveSystem>, SimError> {
    let mut master = Rng::seed_from_u64(sim_cfg.seed());
    let processes = workload.build_processes(&mut master)?;
    let initial_values: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let system = ShardedAdaptiveSystem::new(sys_cfg, &initial_values, master.fork())?;
    let query_gen =
        apcache_workload::query::QueryGenerator::new(queries, initial_values.len(), master.fork())?;
    Simulation::new(*sim_cfg, system, processes, query_gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_workload::query::{KindMix, QueryConfig};
    use apcache_workload::walk::WalkConfig;

    fn quick_sim_cfg(seed: u64) -> SimConfig {
        SimConfig::builder().duration_secs(300).warmup_secs(50).seed(seed).build().unwrap()
    }

    fn quick_queries(period: f64, fanout: usize, delta_avg: f64) -> QueryConfig {
        QueryConfig {
            period_secs: period,
            fanout,
            delta_avg,
            delta_rho: 1.0,
            kind_mix: KindMix::SumOnly,
        }
    }

    fn run_sharded(shards: usize, seed: u64) -> crate::Report<ShardedAdaptiveSystem> {
        build_sharded_simulation(
            &quick_sim_cfg(seed),
            &ShardedSystemConfig { shards, ..ShardedSystemConfig::default() },
            WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
            quick_queries(1.0, 4, 20.0),
        )
        .unwrap()
        .run()
        .unwrap()
    }

    #[test]
    fn sharded_run_produces_both_refresh_kinds() {
        for shards in [1, 2, 4, 8] {
            let report = run_sharded(shards, 11);
            assert!(report.stats.vr_count() > 0, "shards={shards}: no VRs");
            assert!(report.stats.qr_count() > 0, "shards={shards}: no QRs");
            assert_eq!(report.system.shard_count(), shards);
        }
    }

    #[test]
    fn deterministic_given_seed_for_every_shard_count() {
        for shards in [1, 2, 4] {
            let a = run_sharded(shards, 5);
            let b = run_sharded(shards, 5);
            assert_eq!(a.stats.vr_count(), b.stats.vr_count(), "shards={shards}");
            assert_eq!(a.stats.qr_count(), b.stats.qr_count(), "shards={shards}");
            assert_eq!(a.stats.total_cost(), b.stats.total_cost(), "shards={shards}");
        }
    }

    #[test]
    fn sharding_keeps_cost_near_the_unsharded_system() {
        // The fan-out splits query precision budgets, so refresh schedules
        // (and through width adaptation, even VR counts) drift from the
        // unsharded run — exact point-op conformance is asserted in
        // tests/shard_conformance.rs on a query-free trace. Here we check
        // the end-to-end mixed workload stays within loose amortization
        // factors of the single store.
        let single = crate::systems::build_adaptive_simulation(
            &quick_sim_cfg(7),
            &AdaptiveSystemConfig::default(),
            WorkloadSpec::random_walks(6, WalkConfig::paper_default()),
            quick_queries(1.0, 3, 25.0),
        )
        .unwrap()
        .run()
        .unwrap();
        let sharded = build_sharded_simulation(
            &quick_sim_cfg(7),
            &ShardedSystemConfig { shards: 4, ..ShardedSystemConfig::default() },
            WorkloadSpec::random_walks(6, WalkConfig::paper_default()),
            quick_queries(1.0, 3, 25.0),
        )
        .unwrap()
        .run()
        .unwrap();
        // Not identical in general (query refreshes shrink widths on
        // different schedules), but the workloads are identical and both
        // systems must serve them: compare against loose amortization
        // factors rather than exact counts.
        assert!(sharded.stats.vr_count() > 0);
        let ratio = sharded.stats.total_cost() / single.stats.total_cost();
        assert!((0.2..5.0).contains(&ratio), "cost ratio {ratio} out of bounds");
    }

    #[test]
    fn total_capacity_is_divided_across_shards() {
        let cfg = ShardedSystemConfig {
            base: AdaptiveSystemConfig {
                cache_capacity: Some(6),
                ..AdaptiveSystemConfig::default()
            },
            shards: 3,
            ..ShardedSystemConfig::default()
        };
        let report = build_sharded_simulation(
            &quick_sim_cfg(11),
            &cfg,
            WorkloadSpec::random_walks(12, WalkConfig::paper_default()),
            quick_queries(1.0, 6, 50.0),
        )
        .unwrap()
        .run()
        .unwrap();
        // ceil(6/3) = 2 per shard; the fleet may cache up to 6 total.
        assert!(report.system.cached_entries() <= 6);
    }

    #[test]
    fn one_shard_matches_the_unsharded_system() {
        // With a single shard the ShardedStore delegates every verb
        // untouched; the only difference is one extra RNG fork, which θ=1
        // never consumes. The whole run must agree with AdaptiveSystem.
        let single = crate::systems::build_adaptive_simulation(
            &quick_sim_cfg(13),
            &AdaptiveSystemConfig::default(),
            WorkloadSpec::random_walks(5, WalkConfig::paper_default()),
            quick_queries(1.0, 3, 15.0),
        )
        .unwrap()
        .run()
        .unwrap();
        let sharded = run_one_shard(13);
        assert_eq!(single.stats.vr_count(), sharded.stats.vr_count());
        assert_eq!(single.stats.qr_count(), sharded.stats.qr_count());
        assert_eq!(single.stats.total_cost(), sharded.stats.total_cost());
    }

    fn run_one_shard(seed: u64) -> crate::Report<ShardedAdaptiveSystem> {
        build_sharded_simulation(
            &quick_sim_cfg(seed),
            &ShardedSystemConfig::default(),
            WorkloadSpec::random_walks(5, WalkConfig::paper_default()),
            quick_queries(1.0, 3, 15.0),
        )
        .unwrap()
        .run()
        .unwrap()
    }
}
