//! The pipelined remote deployment: the actor runtime behind the v2
//! wire protocol, driven through a windowed [`RemoteStoreClient`].
//!
//! Where [`RemoteAdaptiveSystem`](super::RemoteAdaptiveSystem) speaks
//! strict call-reply to a sequential `StoreServer`, this system runs the
//! full pipelined stack: a [`Runtime`] (one actor per shard) fronted by
//! [`serve_pipelined`] over an in-process loopback transport, with the
//! simulator's tick updates **submitted as a window of tickets** and
//! harvested out of order — every update and query still crosses the
//! codec, but requests overlap on the connection and on the shard actors
//! exactly as the million-user deployment's would. Under θ = 1 a run is
//! bit-identical to [`ShardedAdaptiveSystem`](super::ShardedAdaptiveSystem)
//! (`build_pipelined_simulation` forks RNG streams in the same order).

use std::thread;

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Key, Rng, TimeMs};
use apcache_runtime::Runtime;
use apcache_shard::ShardedStore;
use apcache_store::Constraint;
use apcache_wire::{
    loopback, serve_pipelined, ClientPool, LoopbackTransport, PooledClient, RemoteError,
    RemoteStoreClient, ServerExit,
};
use apcache_workload::query::GeneratedQuery;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::simulation::Simulation;
use crate::stats::Stats;
use crate::system::{CacheSystem, QuerySummary};
use crate::systems::adaptive::WorkloadSpec;
use crate::systems::sharded::ShardedSystemConfig;

/// Configuration of the pipelined remote deployment.
#[derive(Debug, Clone)]
pub struct PipelinedSystemConfig {
    /// The fleet behind the wire (shards, vnodes, per-shard protocol).
    pub base: ShardedSystemConfig,
    /// The client's in-flight window (1 = strict call-reply).
    pub window: usize,
    /// `0` (the default): one dedicated pipelined socket. `n > 0`: a
    /// [`ClientPool`] of `n` member sockets, with each key pinned to one
    /// logical client (`key % n·POOL_FANOUT`) — the many-logical-clients
    /// / few-sockets deployment shape. Per-key FIFO is preserved by the
    /// sticky pinning, so θ = 1 runs stay bit-identical to the
    /// single-socket and local deployments.
    pub pool_sockets: usize,
}

impl Default for PipelinedSystemConfig {
    fn default() -> Self {
        PipelinedSystemConfig { base: ShardedSystemConfig::default(), window: 8, pool_sockets: 0 }
    }
}

/// Logical clients per pool socket (eight logical clients over two
/// sockets at `pool_sockets = 2`, the acceptance-criteria shape).
const POOL_FANOUT: usize = 4;

/// The client side of the deployment: one dedicated socket, or a pool
/// of a few sockets multiplexing many logical clients.
enum ClientSide {
    Direct(Box<RemoteStoreClient<Key, LoopbackTransport>>),
    Pooled {
        pool: ClientPool<Key, LoopbackTransport>,
        /// Pre-pinned logical handles; a key's traffic always rides
        /// handle `key % handles.len()` (and so one member socket).
        handles: Vec<PooledClient<Key, LoopbackTransport>>,
    },
}

/// The paper's system behind a pipelined wire: runtime actors served
/// out of order, driven through a windowed client, under the simulator's
/// cost accounting.
pub struct PipelinedRemoteSystem {
    client: Option<ClientSide>,
    runtime: Option<Runtime<Key>>,
    servers: Vec<thread::JoinHandle<Result<ServerExit, SimError>>>,
    cost: CostModel,
}

/// Wire/remote errors surface in the simulator's vocabulary.
fn remote_error(e: RemoteError) -> SimError {
    SimError::Config(e.to_string())
}

impl PipelinedRemoteSystem {
    /// Build the fleet, launch the actor runtime, put one pipelined
    /// server per socket in front of it, and connect the client side —
    /// a dedicated windowed client, or a pool of member sockets.
    pub fn new(
        cfg: &PipelinedSystemConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        let store = cfg.base.build_store(initial_values, rng.fork())?;
        let cost = *store.cost_model();
        let runtime = Runtime::launch(store)
            .map_err(|e| SimError::Config(format!("runtime launch failed: {e}")))?;
        let sockets = cfg.pool_sockets.max(1);
        let mut servers = Vec::with_capacity(sockets);
        let mut transports = Vec::with_capacity(sockets);
        for i in 0..sockets {
            let handle = runtime.handle();
            let (server_end, client_end) = loopback();
            let server = thread::Builder::new()
                .name(format!("apcache-wire-pipelined-sim-{i}"))
                .spawn(move || {
                    serve_pipelined(server_end, handle)
                        .map_err(|e| SimError::Config(format!("pipelined serving failed: {e}")))
                })
                .map_err(|e| SimError::Config(format!("failed to spawn server thread: {e}")))?;
            servers.push(server);
            transports.push(client_end);
        }
        let client = if cfg.pool_sockets == 0 {
            let transport = transports.pop().expect("one dedicated transport");
            ClientSide::Direct(Box::new(RemoteStoreClient::with_window(transport, cfg.window)))
        } else {
            let mut pool = ClientPool::with_window(transports, cfg.window);
            let handles = (0..cfg.pool_sockets * POOL_FANOUT).map(|_| pool.handle()).collect();
            ClientSide::Pooled { pool, handles }
        };
        Ok(PipelinedRemoteSystem { client: Some(client), runtime: Some(runtime), servers, cost })
    }

    fn client(&mut self) -> &mut ClientSide {
        self.client.as_mut().expect("client lives until shutdown()")
    }

    /// End the session and take the drained fleet back — its final
    /// protocol state (widths, intervals, counters) for inspection.
    pub fn shutdown(mut self) -> Result<ShardedStore<Key>, SimError> {
        match self.client.take().expect("shutdown runs once") {
            ClientSide::Direct(client) => client.shutdown().map_err(remote_error)?,
            ClientSide::Pooled { pool, handles } => {
                drop(handles);
                pool.shutdown().map_err(remote_error)?;
            }
        }
        for server in self.servers.drain(..) {
            let exit =
                server.join().map_err(|_| SimError::Config("server thread panicked".into()))??;
            debug_assert_eq!(exit, ServerExit::Shutdown);
        }
        let runtime = self.runtime.take().expect("runtime present");
        runtime.into_store().map_err(|e| SimError::Config(format!("runtime drain failed: {e}")))
    }
}

impl Drop for PipelinedRemoteSystem {
    fn drop(&mut self) {
        // An abandoned system still hangs up: dropping the client side
        // closes every loopback, each pipelined reader sees a clean
        // disconnect, the drainers follow, and the runtime joins its
        // actors.
        drop(self.client.take());
        for server in self.servers.drain(..) {
            let _ = server.join();
        }
        drop(self.runtime.take());
    }
}

impl ClientSide {
    /// The logical client `key` is pinned to (pooled mode).
    fn handle_of(handles: &[PooledClient<Key, LoopbackTransport>], key: Key) -> usize {
        key.0 as usize % handles.len()
    }

    fn write(
        &mut self,
        key: &Key,
        value: f64,
        now: TimeMs,
    ) -> Result<apcache_store::WriteOutcome, RemoteError> {
        match self {
            ClientSide::Direct(client) => client.write(key, value, now),
            ClientSide::Pooled { handles, .. } => {
                handles[Self::handle_of(handles, *key)].write(key, value, now)
            }
        }
    }

    /// Submit every update of a tick (filling the in-flight windows),
    /// then harvest all outcomes. Per-key order is fixed — by the single
    /// connection (direct) or by sticky member pinning (pooled) — so the
    /// result is bit-identical to the sequential path either way.
    fn write_wave(
        &mut self,
        updates: &[(Key, f64)],
        now: TimeMs,
    ) -> Result<Vec<apcache_store::WriteOutcome>, RemoteError> {
        match self {
            ClientSide::Direct(client) => {
                let mut tickets = Vec::with_capacity(updates.len());
                for (key, value) in updates {
                    tickets.push(client.submit_write(key, *value, now)?);
                }
                tickets.into_iter().map(|t| client.wait_write(t)).collect()
            }
            ClientSide::Pooled { handles, .. } => {
                let mut tickets = Vec::with_capacity(updates.len());
                for (key, value) in updates {
                    let h = Self::handle_of(handles, *key);
                    tickets.push((h, handles[h].submit_write(key, *value, now)?));
                }
                tickets.into_iter().map(|(h, t)| handles[h].wait_write(t)).collect()
            }
        }
    }

    fn aggregate(
        &mut self,
        kind: apcache_queries::AggregateKind,
        keys: &[Key],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<apcache_wire::RemoteAggregateOutcome<Key>, RemoteError> {
        match self {
            ClientSide::Direct(client) => client.aggregate(kind, keys, constraint, now),
            // Aggregates ride the first logical client: ticks are fully
            // harvested before the simulator queries, so every member
            // socket is quiescent and the choice cannot reorder traffic.
            ClientSide::Pooled { handles, .. } => handles[0].aggregate(kind, keys, constraint, now),
        }
    }
}

impl CacheSystem for PipelinedRemoteSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.client().write(&key, value, now).map_err(remote_error)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.cost.c_vr());
        }
        Ok(())
    }

    fn on_update_batch(
        &mut self,
        updates: &[(Key, f64)],
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        // The pipelined path: every update of the tick is submitted as
        // its own ticket (filling the window before the first response is
        // read) and the outcomes harvested afterwards, out of order.
        // Submission order fixes each shard's mailbox order, so the
        // result is bit-identical to the batched sequential path.
        let c_vr = self.cost.c_vr();
        for outcome in self.client().write_wave(updates, now).map_err(remote_error)? {
            for _ in 0..outcome.refreshes {
                stats.record_vr(c_vr);
            }
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let outcome = self
            .client()
            .aggregate(query.kind, &query.keys, Constraint::Absolute(query.delta), now)
            .map_err(remote_error)?;
        for _ in &outcome.refreshed {
            stats.record_qr(self.cost.c_qr());
        }
        Ok(QuerySummary { answer: Some(outcome.answer), refreshes: outcome.refreshed.len() })
    }

    fn interval_of(&self, _key: Key, _now: TimeMs) -> Option<Interval> {
        // Cached intervals live on the actor threads; the wire offers no
        // passive peek (a read would perturb the protocol), so the
        // recorder sees no interval trace for this system.
        None
    }
}

/// Assemble a full simulation of the pipelined deployment. RNG streams
/// fork from the master seed in the same order as
/// [`build_sharded_simulation`](super::build_sharded_simulation), so a
/// run replays the identical workload — under θ = 1 the two must agree
/// exactly, window, codec, out-of-order serving and all.
pub fn build_pipelined_simulation(
    sim_cfg: &SimConfig,
    sys_cfg: &PipelinedSystemConfig,
    workload: WorkloadSpec,
    queries: apcache_workload::query::QueryConfig,
) -> Result<Simulation<PipelinedRemoteSystem>, SimError> {
    let mut master = Rng::seed_from_u64(sim_cfg.seed());
    let processes = workload.build_processes(&mut master)?;
    let initial_values: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let system = PipelinedRemoteSystem::new(sys_cfg, &initial_values, master.fork())?;
    let query_gen =
        apcache_workload::query::QueryGenerator::new(queries, initial_values.len(), master.fork())?;
    Simulation::new(*sim_cfg, system, processes, query_gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::adaptive::AdaptiveSystemConfig;
    use crate::systems::build_sharded_simulation;
    use apcache_workload::query::{KindMix, QueryConfig};
    use apcache_workload::walk::WalkConfig;

    fn quick_sim_cfg(seed: u64) -> SimConfig {
        SimConfig::builder().duration_secs(200).warmup_secs(20).seed(seed).build().unwrap()
    }

    fn quick_queries(period: f64, fanout: usize, delta_avg: f64) -> QueryConfig {
        QueryConfig {
            period_secs: period,
            fanout,
            delta_avg,
            delta_rho: 1.0,
            kind_mix: KindMix::SumOnly,
        }
    }

    #[test]
    fn pipelined_simulation_matches_sharded_store_exactly() {
        // θ = 1: adaptation is deterministic and the workloads replay
        // identically, so pushing every event through submit → frame →
        // out-of-order serving → harvest must not change a counter, at
        // any window size.
        for (shards, window) in [(1, 1), (1, 8), (2, 8), (2, 32)] {
            let sharded_cfg = ShardedSystemConfig {
                shards,
                base: AdaptiveSystemConfig::default(),
                ..ShardedSystemConfig::default()
            };
            let local = build_sharded_simulation(
                &quick_sim_cfg(31),
                &sharded_cfg,
                WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
                quick_queries(1.0, 4, 20.0),
            )
            .unwrap()
            .run()
            .unwrap();
            let pipelined = build_pipelined_simulation(
                &quick_sim_cfg(31),
                &PipelinedSystemConfig { base: sharded_cfg, window, pool_sockets: 0 },
                WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
                quick_queries(1.0, 4, 20.0),
            )
            .unwrap()
            .run()
            .unwrap();
            let tag = format!("shards={shards} window={window}");
            assert_eq!(local.stats.vr_count(), pipelined.stats.vr_count(), "{tag}");
            assert_eq!(local.stats.qr_count(), pipelined.stats.qr_count(), "{tag}");
            assert_eq!(local.stats.total_cost(), pipelined.stats.total_cost(), "{tag}");
        }
    }

    #[test]
    fn pooled_simulation_matches_sharded_store_exactly() {
        // The acceptance shape: eight logical clients over two member
        // sockets (pool_sockets = 2 × POOL_FANOUT = 4). Sticky per-key
        // pinning keeps per-key FIFO, so the pooled deployment must
        // replay bit-identically to the local sharded store.
        let sharded_cfg = ShardedSystemConfig {
            shards: 2,
            base: AdaptiveSystemConfig::default(),
            ..ShardedSystemConfig::default()
        };
        let local = build_sharded_simulation(
            &quick_sim_cfg(47),
            &sharded_cfg,
            WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
            quick_queries(1.0, 4, 20.0),
        )
        .unwrap()
        .run()
        .unwrap();
        let pooled = build_pipelined_simulation(
            &quick_sim_cfg(47),
            &PipelinedSystemConfig { base: sharded_cfg, window: 8, pool_sockets: 2 },
            WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
            quick_queries(1.0, 4, 20.0),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(local.stats.vr_count(), pooled.stats.vr_count());
        assert_eq!(local.stats.qr_count(), pooled.stats.qr_count());
        assert_eq!(local.stats.total_cost(), pooled.stats.total_cost());
    }

    #[test]
    fn shutdown_returns_the_drained_fleet_with_its_state() {
        let cfg = PipelinedSystemConfig {
            base: ShardedSystemConfig { shards: 2, ..ShardedSystemConfig::default() },
            window: 4,
            pool_sockets: 0,
        };
        let mut system =
            PipelinedRemoteSystem::new(&cfg, &[1.0, 2.0, 3.0], Rng::seed_from_u64(5)).unwrap();
        let mut stats = Stats::new();
        system
            .on_update_batch(&[(Key(0), 500.0), (Key(1), 2.0), (Key(2), 700.0)], 1_000, &mut stats)
            .unwrap();
        let store = system.shutdown().unwrap();
        assert_eq!(store.value(&Key(0)), Some(500.0));
        assert_eq!(store.value(&Key(2)), Some(700.0));
        assert_eq!(store.metrics().merged().totals().writes, 3);
    }

    #[test]
    fn dropping_without_shutdown_does_not_hang() {
        let cfg = PipelinedSystemConfig::default();
        let system = PipelinedRemoteSystem::new(&cfg, &[1.0], Rng::seed_from_u64(6)).unwrap();
        drop(system); // Drop impl hangs up and joins server + actors.
    }
}
