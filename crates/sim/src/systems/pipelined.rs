//! The pipelined remote deployment: the actor runtime behind the v2
//! wire protocol, driven through a windowed [`RemoteStoreClient`].
//!
//! Where [`RemoteAdaptiveSystem`](super::RemoteAdaptiveSystem) speaks
//! strict call-reply to a sequential `StoreServer`, this system runs the
//! full pipelined stack: a [`Runtime`] (one actor per shard) fronted by
//! [`serve_pipelined`] over an in-process loopback transport, with the
//! simulator's tick updates **submitted as a window of tickets** and
//! harvested out of order — every update and query still crosses the
//! codec, but requests overlap on the connection and on the shard actors
//! exactly as the million-user deployment's would. Under θ = 1 a run is
//! bit-identical to [`ShardedAdaptiveSystem`](super::ShardedAdaptiveSystem)
//! (`build_pipelined_simulation` forks RNG streams in the same order).

use std::thread;

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Key, Rng, TimeMs};
use apcache_runtime::Runtime;
use apcache_shard::ShardedStore;
use apcache_store::Constraint;
use apcache_wire::{
    loopback, serve_pipelined, LoopbackTransport, RemoteError, RemoteStoreClient, ServerExit,
};
use apcache_workload::query::GeneratedQuery;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::simulation::Simulation;
use crate::stats::Stats;
use crate::system::{CacheSystem, QuerySummary};
use crate::systems::adaptive::WorkloadSpec;
use crate::systems::sharded::ShardedSystemConfig;

/// Configuration of the pipelined remote deployment.
#[derive(Debug, Clone)]
pub struct PipelinedSystemConfig {
    /// The fleet behind the wire (shards, vnodes, per-shard protocol).
    pub base: ShardedSystemConfig,
    /// The client's in-flight window (1 = strict call-reply).
    pub window: usize,
}

impl Default for PipelinedSystemConfig {
    fn default() -> Self {
        PipelinedSystemConfig { base: ShardedSystemConfig::default(), window: 8 }
    }
}

/// The paper's system behind a pipelined wire: runtime actors served
/// out of order, driven through a windowed client, under the simulator's
/// cost accounting.
pub struct PipelinedRemoteSystem {
    client: Option<RemoteStoreClient<Key, LoopbackTransport>>,
    runtime: Option<Runtime<Key>>,
    server: Option<thread::JoinHandle<Result<ServerExit, SimError>>>,
    cost: CostModel,
}

/// Wire/remote errors surface in the simulator's vocabulary.
fn remote_error(e: RemoteError) -> SimError {
    SimError::Config(e.to_string())
}

impl PipelinedRemoteSystem {
    /// Build the fleet, launch the actor runtime, put the pipelined
    /// server in front of it, and connect the windowed loopback client.
    pub fn new(
        cfg: &PipelinedSystemConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        let store = cfg.base.build_store(initial_values, rng.fork())?;
        let cost = *store.cost_model();
        let runtime = Runtime::launch(store)
            .map_err(|e| SimError::Config(format!("runtime launch failed: {e}")))?;
        let handle = runtime.handle();
        let (server_end, client_end) = loopback();
        let server = thread::Builder::new()
            .name("apcache-wire-pipelined-sim".into())
            .spawn(move || {
                serve_pipelined(server_end, handle)
                    .map_err(|e| SimError::Config(format!("pipelined serving failed: {e}")))
            })
            .map_err(|e| SimError::Config(format!("failed to spawn server thread: {e}")))?;
        Ok(PipelinedRemoteSystem {
            client: Some(RemoteStoreClient::with_window(client_end, cfg.window)),
            runtime: Some(runtime),
            server: Some(server),
            cost,
        })
    }

    fn client(&mut self) -> &mut RemoteStoreClient<Key, LoopbackTransport> {
        self.client.as_mut().expect("client lives until shutdown()")
    }

    /// End the session and take the drained fleet back — its final
    /// protocol state (widths, intervals, counters) for inspection.
    pub fn shutdown(mut self) -> Result<ShardedStore<Key>, SimError> {
        let client = self.client.take().expect("shutdown runs once");
        client.shutdown().map_err(remote_error)?;
        let server = self.server.take().expect("server thread present");
        let exit =
            server.join().map_err(|_| SimError::Config("server thread panicked".into()))??;
        debug_assert_eq!(exit, ServerExit::Shutdown);
        let runtime = self.runtime.take().expect("runtime present");
        runtime.into_store().map_err(|e| SimError::Config(format!("runtime drain failed: {e}")))
    }
}

impl Drop for PipelinedRemoteSystem {
    fn drop(&mut self) {
        // An abandoned system still hangs up: dropping the client closes
        // the loopback, the pipelined reader sees a clean disconnect, the
        // drainer follows, and the runtime joins its actors.
        drop(self.client.take());
        if let Some(server) = self.server.take() {
            let _ = server.join();
        }
        drop(self.runtime.take());
    }
}

impl CacheSystem for PipelinedRemoteSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let outcome = self.client().write(&key, value, now).map_err(remote_error)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.cost.c_vr());
        }
        Ok(())
    }

    fn on_update_batch(
        &mut self,
        updates: &[(Key, f64)],
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        // The pipelined path: every update of the tick is submitted as
        // its own ticket (filling the window before the first response is
        // read) and the outcomes harvested afterwards, out of order.
        // Submission order fixes each shard's mailbox order, so the
        // result is bit-identical to the batched sequential path.
        let c_vr = self.cost.c_vr();
        let client = self.client();
        let mut tickets = Vec::with_capacity(updates.len());
        for (key, value) in updates {
            tickets.push(client.submit_write(key, *value, now).map_err(remote_error)?);
        }
        for ticket in tickets {
            let outcome = client.wait_write(ticket).map_err(remote_error)?;
            for _ in 0..outcome.refreshes {
                stats.record_vr(c_vr);
            }
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let outcome = self
            .client()
            .aggregate(query.kind, &query.keys, Constraint::Absolute(query.delta), now)
            .map_err(remote_error)?;
        for _ in &outcome.refreshed {
            stats.record_qr(self.cost.c_qr());
        }
        Ok(QuerySummary { answer: Some(outcome.answer), refreshes: outcome.refreshed.len() })
    }

    fn interval_of(&self, _key: Key, _now: TimeMs) -> Option<Interval> {
        // Cached intervals live on the actor threads; the wire offers no
        // passive peek (a read would perturb the protocol), so the
        // recorder sees no interval trace for this system.
        None
    }
}

/// Assemble a full simulation of the pipelined deployment. RNG streams
/// fork from the master seed in the same order as
/// [`build_sharded_simulation`](super::build_sharded_simulation), so a
/// run replays the identical workload — under θ = 1 the two must agree
/// exactly, window, codec, out-of-order serving and all.
pub fn build_pipelined_simulation(
    sim_cfg: &SimConfig,
    sys_cfg: &PipelinedSystemConfig,
    workload: WorkloadSpec,
    queries: apcache_workload::query::QueryConfig,
) -> Result<Simulation<PipelinedRemoteSystem>, SimError> {
    let mut master = Rng::seed_from_u64(sim_cfg.seed());
    let processes = workload.build_processes(&mut master)?;
    let initial_values: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let system = PipelinedRemoteSystem::new(sys_cfg, &initial_values, master.fork())?;
    let query_gen =
        apcache_workload::query::QueryGenerator::new(queries, initial_values.len(), master.fork())?;
    Simulation::new(*sim_cfg, system, processes, query_gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::adaptive::AdaptiveSystemConfig;
    use crate::systems::build_sharded_simulation;
    use apcache_workload::query::{KindMix, QueryConfig};
    use apcache_workload::walk::WalkConfig;

    fn quick_sim_cfg(seed: u64) -> SimConfig {
        SimConfig::builder().duration_secs(200).warmup_secs(20).seed(seed).build().unwrap()
    }

    fn quick_queries(period: f64, fanout: usize, delta_avg: f64) -> QueryConfig {
        QueryConfig {
            period_secs: period,
            fanout,
            delta_avg,
            delta_rho: 1.0,
            kind_mix: KindMix::SumOnly,
        }
    }

    #[test]
    fn pipelined_simulation_matches_sharded_store_exactly() {
        // θ = 1: adaptation is deterministic and the workloads replay
        // identically, so pushing every event through submit → frame →
        // out-of-order serving → harvest must not change a counter, at
        // any window size.
        for (shards, window) in [(1, 1), (1, 8), (2, 8), (2, 32)] {
            let sharded_cfg = ShardedSystemConfig {
                shards,
                base: AdaptiveSystemConfig::default(),
                ..ShardedSystemConfig::default()
            };
            let local = build_sharded_simulation(
                &quick_sim_cfg(31),
                &sharded_cfg,
                WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
                quick_queries(1.0, 4, 20.0),
            )
            .unwrap()
            .run()
            .unwrap();
            let pipelined = build_pipelined_simulation(
                &quick_sim_cfg(31),
                &PipelinedSystemConfig { base: sharded_cfg, window },
                WorkloadSpec::random_walks(8, WalkConfig::paper_default()),
                quick_queries(1.0, 4, 20.0),
            )
            .unwrap()
            .run()
            .unwrap();
            let tag = format!("shards={shards} window={window}");
            assert_eq!(local.stats.vr_count(), pipelined.stats.vr_count(), "{tag}");
            assert_eq!(local.stats.qr_count(), pipelined.stats.qr_count(), "{tag}");
            assert_eq!(local.stats.total_cost(), pipelined.stats.total_cost(), "{tag}");
        }
    }

    #[test]
    fn shutdown_returns_the_drained_fleet_with_its_state() {
        let cfg = PipelinedSystemConfig {
            base: ShardedSystemConfig { shards: 2, ..ShardedSystemConfig::default() },
            window: 4,
        };
        let mut system =
            PipelinedRemoteSystem::new(&cfg, &[1.0, 2.0, 3.0], Rng::seed_from_u64(5)).unwrap();
        let mut stats = Stats::new();
        system
            .on_update_batch(&[(Key(0), 500.0), (Key(1), 2.0), (Key(2), 700.0)], 1_000, &mut stats)
            .unwrap();
        let store = system.shutdown().unwrap();
        assert_eq!(store.value(&Key(0)), Some(500.0));
        assert_eq!(store.value(&Key(2)), Some(700.0));
        assert_eq!(store.metrics().merged().totals().writes, 3);
    }

    #[test]
    fn dropping_without_shutdown_does_not_hang() {
        let cfg = PipelinedSystemConfig::default();
        let system = PipelinedRemoteSystem::new(&cfg, &[1.0], Rng::seed_from_u64(6)).unwrap();
        drop(system); // Drop impl hangs up and joins server + actors.
    }
}
