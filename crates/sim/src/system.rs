//! The caching-system abstraction the simulator drives.

use apcache_core::{Interval, Key, TimeMs};
use apcache_workload::query::GeneratedQuery;

use crate::error::SimError;
use crate::stats::Stats;

/// Summary of one executed query, for assertions and reporting.
#[derive(Debug, Clone)]
pub struct QuerySummary {
    /// The answer interval (absent for systems that don't produce interval
    /// answers, e.g. exact caching returns points).
    pub answer: Option<Interval>,
    /// Number of query-initiated refreshes / remote reads the query caused.
    pub refreshes: usize,
}

/// A caching system under evaluation: the paper's adaptive-interval scheme,
/// WJH97 exact caching, HSW94 divergence caching, or anything else that can
/// respond to value updates and cache-side queries.
///
/// The driver owns the value processes and the query generator; systems own
/// everything protocol-side (source registries, caches, counters). All
/// refresh costs must be recorded through `stats` so every system is scored
/// identically.
pub trait CacheSystem: Send {
    /// The value of source `key` changed to `value` at time `now`.
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError>;

    /// One simulation tick's worth of value changes, in slice order.
    ///
    /// The driver delivers each tick as one batch (the paper's
    /// environment updates every source once per time unit), so systems
    /// backed by a batch-capable store can route the whole tick in one
    /// pass. The default forwards to [`on_update`](CacheSystem::on_update)
    /// per item, which every implementation must remain equivalent to —
    /// batching is a delivery optimization, never a semantic change.
    fn on_update_batch(
        &mut self,
        updates: &[(Key, f64)],
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        for &(key, value) in updates {
            self.on_update(key, value, now, stats)?;
        }
        Ok(())
    }

    /// Execute a query at the cache at time `now`.
    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError>;

    /// The interval the cache currently holds for `key` (for time-series
    /// recording); `None` when the key is uncached or the system has no
    /// interval representation.
    fn interval_of(&self, key: Key, now: TimeMs) -> Option<Interval>;
}
