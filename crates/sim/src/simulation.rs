//! The simulation driver.
//!
//! Owns the clock, the event queue, the value processes, and the query
//! generator; routes updates and queries into the system under test and
//! accounts costs in [`Stats`]. Updates fire every simulated second
//! (paper: "exact values are updated every time unit (which we set to be
//! one second)"); queries fire every `T_q` seconds. A value process
//! returning an unchanged value generates no update event.

use apcache_core::{Key, TimeMs, MS_PER_SEC};
use apcache_workload::query::QueryGenerator;
use apcache_workload::walk::ValueProcess;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::events::{EventKind, EventQueue};
use crate::stats::{Recorder, Stats};
use crate::system::CacheSystem;

/// Result of a completed run.
#[derive(Debug)]
pub struct Report<S> {
    /// Cost statistics over the measured (post-warm-up) span.
    pub stats: Stats,
    /// Time-series recording, when one was requested.
    pub recorder: Option<Recorder>,
    /// The system in its final state, for inspection (e.g. converged
    /// interval widths).
    pub system: S,
}

/// A configured simulation, ready to run.
pub struct Simulation<S> {
    cfg: SimConfig,
    system: S,
    processes: Vec<Box<dyn ValueProcess>>,
    prev_values: Vec<f64>,
    query_gen: QueryGenerator,
    query_period_ms: TimeMs,
    recorder: Option<Recorder>,
}

impl<S: CacheSystem> Simulation<S> {
    /// Assemble a simulation. `processes[i]` drives the value of `Key(i)`.
    pub fn new(
        cfg: SimConfig,
        system: S,
        processes: Vec<Box<dyn ValueProcess>>,
        query_gen: QueryGenerator,
    ) -> Result<Self, SimError> {
        if processes.is_empty() {
            return Err(SimError::Config("at least one value process is required".into()));
        }
        let period_secs = query_gen.config().period_secs;
        let query_period_ms = (period_secs * MS_PER_SEC as f64).round() as TimeMs;
        if query_period_ms == 0 {
            return Err(SimError::Config(format!(
                "query period {period_secs}s rounds to zero milliseconds"
            )));
        }
        let prev_values = processes.iter().map(|p| p.value()).collect();
        Ok(Simulation {
            cfg,
            system,
            processes,
            prev_values,
            query_gen,
            query_period_ms,
            recorder: None,
        })
    }

    /// Attach a time-series recorder watching `key`.
    pub fn with_recorder(mut self, key: Key) -> Self {
        self.recorder = Some(Recorder::new(key));
        self
    }

    /// Number of sources.
    pub fn n_sources(&self) -> usize {
        self.processes.len()
    }

    /// Run to completion.
    pub fn run(mut self) -> Result<Report<S>, SimError> {
        let end_ms = self.cfg.duration_secs() * MS_PER_SEC;
        let warmup_ms = self.cfg.warmup_secs() * MS_PER_SEC;
        let mut stats = Stats::new();
        let mut queue = EventQueue::new();
        queue.schedule(MS_PER_SEC, EventKind::UpdateTick);
        queue.schedule(self.query_period_ms, EventKind::Query);

        while let Some(event) = queue.pop() {
            if event.time > end_ms {
                break;
            }
            if !stats.is_measuring() && event.time > warmup_ms {
                stats.begin_measurement();
            }
            match event.kind {
                EventKind::UpdateTick => {
                    self.update_tick(event.time, &mut stats)?;
                    if event.time + MS_PER_SEC <= end_ms {
                        queue.schedule(event.time + MS_PER_SEC, EventKind::UpdateTick);
                    }
                }
                EventKind::Query => {
                    let query = self.query_gen.next_query();
                    self.system.on_query(&query, event.time, &mut stats)?;
                    stats.record_query();
                    if event.time + self.query_period_ms <= end_ms {
                        queue.schedule(event.time + self.query_period_ms, EventKind::Query);
                    }
                }
            }
        }

        stats.finalize(self.cfg.measured_secs() as f64);
        Ok(Report { stats, recorder: self.recorder, system: self.system })
    }

    /// Advance every process one second; deliver the values that actually
    /// changed as one batch; feed the recorder.
    fn update_tick(&mut self, now: TimeMs, stats: &mut Stats) -> Result<(), SimError> {
        let mut batch = Vec::new();
        for (i, process) in self.processes.iter_mut().enumerate() {
            let value = process.step();
            if value != self.prev_values[i] {
                self.prev_values[i] = value;
                stats.record_update();
                batch.push((Key(i as u32), value));
            }
        }
        if !batch.is_empty() {
            self.system.on_update_batch(&batch, now, stats)?;
        }
        if let Some(recorder) = &mut self.recorder {
            let key = recorder.key();
            let value = self.prev_values[key.0 as usize];
            let interval = self.system.interval_of(key, now);
            recorder.record(now, value, interval);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_core::Interval;
    use apcache_workload::query::{GeneratedQuery, KindMix, QueryConfig};
    use apcache_workload::walk::ConstantProcess;
    use apcache_workload::RandomWalk;
    use apcache_workload::WalkConfig;

    /// A probe system that just counts calls.
    #[derive(Debug, Default)]
    struct Probe {
        updates: usize,
        queries: usize,
        last_update_time: TimeMs,
    }

    impl CacheSystem for Probe {
        fn on_update(
            &mut self,
            _key: Key,
            _value: f64,
            now: TimeMs,
            _stats: &mut Stats,
        ) -> Result<(), SimError> {
            self.updates += 1;
            self.last_update_time = now;
            Ok(())
        }

        fn on_query(
            &mut self,
            _query: &GeneratedQuery,
            _now: TimeMs,
            stats: &mut Stats,
        ) -> Result<crate::system::QuerySummary, SimError> {
            self.queries += 1;
            stats.record_qr(2.0);
            Ok(crate::system::QuerySummary { answer: None, refreshes: 1 })
        }

        fn interval_of(&self, _key: Key, _now: TimeMs) -> Option<Interval> {
            Some(Interval::new(0.0, 1.0).unwrap())
        }
    }

    fn query_gen(period: f64, n: usize) -> QueryGenerator {
        let cfg = QueryConfig {
            period_secs: period,
            fanout: 1,
            delta_avg: 10.0,
            delta_rho: 0.0,
            kind_mix: KindMix::SumOnly,
        };
        QueryGenerator::new(cfg, n, apcache_core::Rng::seed_from_u64(1)).unwrap()
    }

    fn walk(seed: u64) -> Box<dyn ValueProcess> {
        Box::new(RandomWalk::seeded(WalkConfig::paper_default(), seed).unwrap())
    }

    #[test]
    fn event_counts_match_schedule() {
        let cfg = SimConfig::builder().duration_secs(100).warmup_secs(10).build().unwrap();
        let sim = Simulation::new(cfg, Probe::default(), vec![walk(1)], query_gen(2.0, 1)).unwrap();
        let report = sim.run().unwrap();
        // A random walk changes every second: 100 update ticks.
        assert_eq!(report.system.updates, 100);
        // Queries at t = 2, 4, ..., 100 → 50.
        assert_eq!(report.system.queries, 50);
        // Stats measured only post-warm-up: 45 queries in (10, 100].
        assert_eq!(report.stats.qr_count(), 45);
        assert_eq!(report.stats.measured_secs(), 90.0);
        assert!((report.stats.cost_rate() - 45.0 * 2.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn constant_processes_generate_no_updates() {
        let cfg = SimConfig::builder().duration_secs(50).warmup_secs(1).build().unwrap();
        let sim = Simulation::new(
            cfg,
            Probe::default(),
            vec![Box::new(ConstantProcess(5.0))],
            query_gen(1.0, 1),
        )
        .unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.system.updates, 0);
        assert_eq!(report.stats.update_count(), 0);
    }

    #[test]
    fn sub_second_query_periods() {
        let cfg = SimConfig::builder().duration_secs(10).warmup_secs(1).build().unwrap();
        let sim = Simulation::new(cfg, Probe::default(), vec![walk(3)], query_gen(0.5, 1)).unwrap();
        let report = sim.run().unwrap();
        // Queries at 0.5, 1.0, ..., 10.0 → 20.
        assert_eq!(report.system.queries, 20);
    }

    #[test]
    fn recorder_samples_every_second() {
        let cfg = SimConfig::builder().duration_secs(30).warmup_secs(1).build().unwrap();
        let sim = Simulation::new(cfg, Probe::default(), vec![walk(4)], query_gen(1.0, 1))
            .unwrap()
            .with_recorder(Key(0));
        let report = sim.run().unwrap();
        let samples = report.recorder.unwrap();
        assert_eq!(samples.samples().len(), 30);
        assert_eq!(samples.samples()[0].t_secs, 1);
        assert_eq!(samples.samples()[29].t_secs, 30);
        // The probe always reports [0,1].
        assert_eq!(samples.samples()[0].lo, 0.0);
    }

    #[test]
    fn empty_process_list_rejected() {
        let cfg = SimConfig::builder().duration_secs(10).warmup_secs(1).build().unwrap();
        assert!(Simulation::new(cfg, Probe::default(), vec![], query_gen(1.0, 1)).is_err());
    }

    #[test]
    fn runs_are_deterministic() {
        let mk = || {
            let cfg = SimConfig::builder().duration_secs(200).warmup_secs(20).build().unwrap();
            Simulation::new(cfg, Probe::default(), vec![walk(9)], query_gen(1.0, 1))
                .unwrap()
                .run()
                .unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.stats.qr_count(), b.stats.qr_count());
        assert_eq!(a.system.updates, b.system.updates);
    }
}
