//! Cost statistics and time-series recording.

use apcache_core::{Interval, Key, TimeMs, MS_PER_SEC};

/// Refresh and cost counters for one simulation run.
///
/// Counters only accumulate while measurement is enabled; the driver turns
/// it on once the warm-up period has elapsed, matching the paper's
/// "measurements taken during an initial warm-up period were discarded".
#[derive(Debug, Clone, Default)]
pub struct Stats {
    measuring: bool,
    measured_secs: f64,
    vr_count: u64,
    qr_count: u64,
    vr_cost: f64,
    qr_cost: f64,
    query_count: u64,
    update_count: u64,
}

impl Stats {
    /// Fresh, non-measuring statistics.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Enable measurement (called by the driver at the warm-up boundary).
    pub fn begin_measurement(&mut self) {
        self.measuring = true;
    }

    /// Whether measurement is currently enabled.
    pub fn is_measuring(&self) -> bool {
        self.measuring
    }

    /// Record the measured wall-clock span (called once by the driver).
    pub fn finalize(&mut self, measured_secs: f64) {
        self.measured_secs = measured_secs;
    }

    /// Record one value-initiated refresh of the given cost.
    pub fn record_vr(&mut self, cost: f64) {
        if self.measuring {
            self.vr_count += 1;
            self.vr_cost += cost;
        }
    }

    /// Record one query-initiated refresh of the given cost.
    pub fn record_qr(&mut self, cost: f64) {
        if self.measuring {
            self.qr_count += 1;
            self.qr_cost += cost;
        }
    }

    /// Record one executed query.
    pub fn record_query(&mut self) {
        if self.measuring {
            self.query_count += 1;
        }
    }

    /// Record one source update (a value actually changing).
    pub fn record_update(&mut self) {
        if self.measuring {
            self.update_count += 1;
        }
    }

    /// Number of value-initiated refreshes measured.
    pub fn vr_count(&self) -> u64 {
        self.vr_count
    }

    /// Number of query-initiated refreshes measured.
    pub fn qr_count(&self) -> u64 {
        self.qr_count
    }

    /// Number of queries measured.
    pub fn query_count(&self) -> u64 {
        self.query_count
    }

    /// Number of source updates measured.
    pub fn update_count(&self) -> u64 {
        self.update_count
    }

    /// Total cost of all measured refreshes.
    pub fn total_cost(&self) -> f64 {
        self.vr_cost + self.qr_cost
    }

    /// Measured span in seconds.
    pub fn measured_secs(&self) -> f64 {
        self.measured_secs
    }

    /// The paper's objective: average cost rate `Ω` per simulated second.
    pub fn cost_rate(&self) -> f64 {
        if self.measured_secs > 0.0 {
            self.total_cost() / self.measured_secs
        } else {
            0.0
        }
    }

    /// Measured value-initiated refresh rate per second (`P_vr` when the
    /// run has a single source, as in the Figure 3 experiment).
    pub fn p_vr(&self) -> f64 {
        if self.measured_secs > 0.0 {
            self.vr_count as f64 / self.measured_secs
        } else {
            0.0
        }
    }

    /// Measured query-initiated refresh rate per second.
    pub fn p_qr(&self) -> f64 {
        if self.measured_secs > 0.0 {
            self.qr_count as f64 / self.measured_secs
        } else {
            0.0
        }
    }
}

/// One recorded (time, value, interval) sample for the Figure 4/5 style
/// time-series plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecorderSample {
    /// Simulated time in seconds.
    pub t_secs: u64,
    /// Exact source value at that time.
    pub value: f64,
    /// Cached interval lower bound (NaN when uncached).
    pub lo: f64,
    /// Cached interval upper bound (NaN when uncached).
    pub hi: f64,
}

/// Records the exact value and cached interval of one key every second.
#[derive(Debug, Clone)]
pub struct Recorder {
    key: Key,
    samples: Vec<RecorderSample>,
}

impl Recorder {
    /// Create a recorder watching `key`.
    pub fn new(key: Key) -> Self {
        Recorder { key, samples: Vec::new() }
    }

    /// The watched key.
    pub fn key(&self) -> Key {
        self.key
    }

    /// Append a sample (driver API).
    pub fn record(&mut self, now: TimeMs, value: f64, interval: Option<Interval>) {
        let (lo, hi) = match interval {
            Some(iv) => (iv.lo(), iv.hi()),
            None => (f64::NAN, f64::NAN),
        };
        self.samples.push(RecorderSample { t_secs: now / MS_PER_SEC, value, lo, hi });
    }

    /// All recorded samples in time order.
    pub fn samples(&self) -> &[RecorderSample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_discards_events() {
        let mut s = Stats::new();
        s.record_vr(1.0);
        s.record_qr(2.0);
        s.record_query();
        assert_eq!(s.vr_count(), 0);
        assert_eq!(s.total_cost(), 0.0);
        s.begin_measurement();
        s.record_vr(1.0);
        s.record_qr(2.0);
        s.record_query();
        s.record_update();
        assert_eq!(s.vr_count(), 1);
        assert_eq!(s.qr_count(), 1);
        assert_eq!(s.query_count(), 1);
        assert_eq!(s.update_count(), 1);
        assert_eq!(s.total_cost(), 3.0);
    }

    #[test]
    fn rates_divide_by_measured_span() {
        let mut s = Stats::new();
        s.begin_measurement();
        for _ in 0..10 {
            s.record_vr(1.0);
        }
        for _ in 0..5 {
            s.record_qr(2.0);
        }
        s.finalize(100.0);
        assert!((s.cost_rate() - 0.2).abs() < 1e-12);
        assert!((s.p_vr() - 0.1).abs() < 1e-12);
        assert!((s.p_qr() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_span_rates_are_zero() {
        let s = Stats::new();
        assert_eq!(s.cost_rate(), 0.0);
        assert_eq!(s.p_vr(), 0.0);
    }

    #[test]
    fn recorder_tracks_intervals_and_gaps() {
        let mut r = Recorder::new(Key(3));
        r.record(5_000, 10.0, Some(Interval::new(8.0, 12.0).unwrap()));
        r.record(6_000, 11.0, None);
        let s = r.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].t_secs, 5);
        assert_eq!((s[0].lo, s[0].hi), (8.0, 12.0));
        assert!(s[1].lo.is_nan());
        assert_eq!(r.key(), Key(3));
    }
}
