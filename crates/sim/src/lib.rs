//! # apcache-sim
//!
//! Discrete event simulator for approximate-caching environments,
//! reproducing the environment of the paper's performance study
//! (Section 4.1): `n` data sources each holding one numeric value, one
//! cache holding up to `κ` interval approximations, values updated every
//! second, and a bounded-aggregate query executed at the cache every `T_q`
//! seconds.
//!
//! The simulator is generic over the *caching system* being evaluated via
//! the [`system::CacheSystem`] trait. This crate ships the paper's
//! adaptive-interval system ([`systems::AdaptiveSystem`]); the
//! `apcache-baselines` crate plugs in WJH97 exact caching and HSW94
//! divergence caching through the same trait, so every algorithm is
//! measured by the same driver, the same workloads, and the same cost
//! accounting.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod events;
pub mod simulation;
pub mod stats;
pub mod system;
pub mod systems;

pub use config::SimConfig;
pub use error::SimError;
pub use simulation::{Report, Simulation};
pub use stats::{Recorder, RecorderSample, Stats};
pub use system::{CacheSystem, QuerySummary};
