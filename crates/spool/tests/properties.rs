//! Property-based tests for the spool record framing and replay.
//!
//! Gated behind the `proptest-tests` feature because the `proptest` crate
//! is not vendored in the offline build image; CI's gated-suites job adds
//! the dev-dependency and enables the feature.

use proptest::prelude::*;

use apcache_spool::{parse_records, FsyncPolicy, MemIo, ParseEnd, Record, Spool, SpoolConfig};

fn arb_record() -> impl Strategy<Value = (u8, Vec<u8>)> {
    // Kind 0 is reserved for snapshots.
    (1u8..=255, proptest::collection::vec(any::<u8>(), 0..512))
}

proptest! {
    /// Any sequence of records survives an append → reopen round trip.
    #[test]
    fn records_round_trip_through_a_spool(records in proptest::collection::vec(arb_record(), 0..40)) {
        let (mut spool, _) =
            Spool::open(MemIo::new(), "spool", SpoolConfig::default()).unwrap();
        for (kind, payload) in &records {
            spool.append(*kind, payload).unwrap();
        }
        let (_, rec) = Spool::open(spool.into_io(), "spool", SpoolConfig::default()).unwrap();
        let expect: Vec<Record> = records
            .iter()
            .map(|(kind, payload)| Record { kind: *kind, payload: payload.clone() })
            .collect();
        prop_assert_eq!(rec.records, expect);
        prop_assert_eq!(rec.truncated_bytes, 0);
    }

    /// Truncating the byte stream at ANY point yields a (possibly empty)
    /// prefix of the original records, never garbage and never a panic.
    #[test]
    fn arbitrary_truncation_replays_a_clean_prefix(
        records in proptest::collection::vec(arb_record(), 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for (kind, payload) in &records {
            let mut one = Vec::new();
            // Re-encode through a throwaway spool so framing stays the
            // production code path, not a test re-implementation.
            let (mut s, _) = Spool::open(MemIo::new(), "d", SpoolConfig::default()).unwrap();
            s.append(*kind, payload).unwrap();
            one.extend_from_slice(&s.into_io().contents("d/seg-0000000000000000.log").unwrap());
            buf.extend_from_slice(&one);
            boundaries.push(buf.len());
        }
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        let (parsed, end) = parse_records(&buf[..cut]);
        // Parsed records are exactly the records whose frames fit.
        let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(parsed.len(), whole);
        for (got, (kind, payload)) in parsed.iter().zip(records.iter()) {
            prop_assert_eq!(got.kind, *kind);
            prop_assert_eq!(&got.payload, payload);
        }
        if cut == buf.len() {
            prop_assert_eq!(end, ParseEnd::Clean);
        } else {
            // A partial frame remains: replay must flag the torn tail at
            // the last whole-record boundary.
            let last_boundary = boundaries.iter().filter(|&&b| b <= cut).max().copied().unwrap();
            prop_assert_eq!(end, match end {
                ParseEnd::Torn { what, .. } => ParseEnd::Torn { offset: last_boundary as u64, what },
                clean => clean,
            });
            prop_assert!(matches!(end, ParseEnd::Torn { .. }));
        }
    }

    /// A crash keeping an arbitrary prefix of unsynced bytes always
    /// recovers the durable records and drops at most the torn suffix.
    #[test]
    fn crash_with_arbitrary_kept_prefix_recovers_durable_records(
        durable in proptest::collection::vec(arb_record(), 0..10),
        pending in proptest::collection::vec(arb_record(), 1..6),
        keep in 0usize..2048,
    ) {
        let cfg = SpoolConfig { segment_bytes: 1 << 20, fsync: FsyncPolicy::OnRotate };
        let (mut spool, _) = Spool::open(MemIo::new(), "spool", cfg).unwrap();
        for (kind, payload) in &durable {
            spool.append(*kind, payload).unwrap();
        }
        spool.sync().unwrap();
        for (kind, payload) in &pending {
            spool.append(*kind, payload).unwrap();
        }
        let mut io = spool.into_io();
        io.crash(keep);
        let (_, rec) = Spool::open(io, "spool", cfg).unwrap();
        // Everything synced must survive; anything extra must be a clean
        // prefix of the pending records, in order.
        prop_assert!(rec.records.len() >= durable.len());
        prop_assert!(rec.records.len() <= durable.len() + pending.len());
        let all: Vec<Record> = durable
            .iter()
            .chain(pending.iter())
            .map(|(kind, payload)| Record { kind: *kind, payload: payload.clone() })
            .collect();
        prop_assert_eq!(&rec.records[..], &all[..rec.records.len()]);
    }
}
