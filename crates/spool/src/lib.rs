//! Append-only write-ahead spool for warm restarts.
//!
//! Everything above this crate is in-memory: a process restart discards
//! the converged per-key interval widths the paper's adaptive algorithm
//! spends its whole run learning. This crate is the durability floor that
//! makes restarts warm — a **segmented log** of opaque records plus
//! periodic **snapshots**, std-only, with the layout conventions of
//! production spool directories (one file per segment, monotonically
//! increasing hex sequence numbers, snapshot files installed by
//! write-temp → fsync → rename):
//!
//! ```text
//! <dir>/seg-0000000000000003.log    append-only record segments
//! <dir>/seg-0000000000000004.log
//! <dir>/snap-0000000000000004.snap  state as of the START of segment 4
//! ```
//!
//! * **Records** are CRC-framed (`[len][crc32][kind][payload]`, little
//!   endian); a torn tail — a partial append from a crash — is detected
//!   and truncated on replay instead of poisoning the log. Corruption
//!   anywhere *other* than the final segment's tail is a hard
//!   [`SpoolError::Corrupt`].
//! * **Segments** rotate at a configured size so replay cost and disk
//!   usage stay bounded.
//! * **Snapshots** compact the log: `snap-S` holds the caller's full
//!   state as of the start of segment `S`, so every segment `< S` (and
//!   every older snapshot) is deleted once `snap-S` is durably renamed
//!   into place. Recovery = newest valid snapshot ⊕ the records of the
//!   segments `≥ S`, replayed in order.
//!
//! The crate knows nothing about keys, intervals, or policies — payloads
//! are opaque bytes with a caller-defined `kind` tag. `apcache-store`
//! layers the actual `KeyState` codec on top.
//!
//! All filesystem access goes through the [`SpoolIo`] trait: [`StdFsIo`]
//! is the real `std::fs` implementation, and [`MemIo`] is a deterministic
//! in-memory fake whose fault injection (short writes, failed fsyncs,
//! fail-after-N-operations, crash-discarding-unsynced-bytes) drives the
//! durability conformance suite's crash matrix.

mod io;
mod record;
mod spool;

pub use io::{MemIo, SpoolIo, StdFsIo};
pub use record::{parse_records, ParseEnd, Record, MAX_RECORD_BYTES};
pub use spool::{FsyncPolicy, Recovery, Spool, SpoolConfig};

use std::fmt;

/// Errors raised by the spool layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpoolError {
    /// An I/O operation failed (or a fault was injected).
    Io(String),
    /// A record failed validation somewhere replay cannot repair (only
    /// the final segment's tail may legally be torn).
    Corrupt {
        /// File the bad frame was found in.
        file: String,
        /// Byte offset of the bad frame within the file.
        offset: u64,
        /// What was wrong with it.
        what: &'static str,
    },
}

impl fmt::Display for SpoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpoolError::Io(m) => write!(f, "spool i/o error: {m}"),
            SpoolError::Corrupt { file, offset, what } => {
                write!(f, "corrupt spool record in {file} at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for SpoolError {}
