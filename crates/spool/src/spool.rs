//! The spool proper: segment rotation, snapshot compaction, replay.

use crate::io::SpoolIo;
use crate::record::{encode_record, encoded_len, parse_records, parse_single_record, ParseEnd};
use crate::{Record, SpoolError};

/// Record kind reserved for the single record inside a snapshot file.
/// Callers' log-record kinds must not use it.
pub(crate) const SNAPSHOT_KIND: u8 = 0;

/// When appends are made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append — nothing acknowledged is ever lost.
    Always,
    /// fsync only at segment rotation and snapshots — a crash may lose
    /// the unsynced tail of the current segment (replay truncates it).
    OnRotate,
    /// Never fsync segments (snapshots still sync their temp file before
    /// the rename) — fastest, weakest.
    Never,
}

/// Spool tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SpoolConfig {
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes (checked before each append; a single record may overshoot).
    pub segment_bytes: u64,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
}

impl Default for SpoolConfig {
    fn default() -> Self {
        SpoolConfig { segment_bytes: 1 << 20, fsync: FsyncPolicy::Always }
    }
}

/// What [`Spool::open`] found on disk: the latest durable state.
#[derive(Debug)]
pub struct Recovery {
    /// Payload of the newest valid snapshot, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Every intact record logged after that snapshot, oldest first.
    pub records: Vec<Record>,
    /// Bytes cut from the final segment's torn tail (0 on a clean log).
    pub truncated_bytes: u64,
    /// Corrupt snapshot files that were skipped in favor of an older one.
    pub skipped_snapshots: usize,
}

/// An open spool directory. All mutation goes through [`append`]
/// (log one record) and [`snapshot`] (compact the log under a full-state
/// record); [`open`] replays whatever a previous process left behind.
///
/// [`append`]: Spool::append
/// [`snapshot`]: Spool::snapshot
/// [`open`]: Spool::open
#[derive(Debug)]
pub struct Spool<I: SpoolIo> {
    io: I,
    dir: String,
    cfg: SpoolConfig,
    /// Sequence number of the segment currently being appended to.
    seq: u64,
    /// Bytes already in the current segment.
    seg_len: u64,
    buf: Vec<u8>,
}

fn seg_name(seq: u64) -> String {
    format!("seg-{seq:016x}.log")
}

fn snap_name(seq: u64) -> String {
    format!("snap-{seq:016x}.snap")
}

fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let hex = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

impl<I: SpoolIo> Spool<I> {
    /// Open (or initialise) the spool in `dir`, replaying existing state.
    ///
    /// Stray `.tmp` files (snapshots that never got renamed into place)
    /// are deleted. The newest snapshot that parses cleanly wins; corrupt
    /// newer ones are skipped and counted. Segments older than the chosen
    /// snapshot are deleted. A torn tail is legal only in the final
    /// segment — it is truncated away; corruption anywhere else is a hard
    /// [`SpoolError::Corrupt`].
    pub fn open(io: I, dir: &str, cfg: SpoolConfig) -> Result<(Self, Recovery), SpoolError> {
        let mut io = io;
        io.create_dir_all(dir)?;

        let mut segments: Vec<u64> = Vec::new();
        let mut snapshots: Vec<u64> = Vec::new();
        for name in io.list(dir)? {
            if name.ends_with(".tmp") {
                io.remove(&format!("{dir}/{name}"))?;
            } else if let Some(seq) = parse_name(&name, "seg-", ".log") {
                segments.push(seq);
            } else if let Some(seq) = parse_name(&name, "snap-", ".snap") {
                snapshots.push(seq);
            }
        }
        segments.sort_unstable();
        snapshots.sort_unstable();

        // Newest snapshot that parses cleanly wins; fall back through
        // corrupt ones (a half-written snapshot can only exist if the
        // rename protocol was subverted, but recovery stays graceful).
        let mut snapshot = None;
        let mut snap_seq = 0u64;
        let mut skipped_snapshots = 0usize;
        for &seq in snapshots.iter().rev() {
            let path = format!("{dir}/{}", snap_name(seq));
            let bytes = io.read(&path)?;
            match parse_single_record(&bytes, &path) {
                Ok(rec) if rec.kind == SNAPSHOT_KIND => {
                    snapshot = Some(rec.payload);
                    snap_seq = seq;
                    break;
                }
                _ => skipped_snapshots += 1,
            }
        }

        // Everything older than the chosen snapshot is garbage.
        for &seq in &segments {
            if snapshot.is_some() && seq < snap_seq {
                io.remove(&format!("{dir}/{}", seg_name(seq)))?;
            }
        }
        for &seq in &snapshots {
            if seq < snap_seq {
                io.remove(&format!("{dir}/{}", snap_name(seq)))?;
            }
        }
        segments.retain(|&seq| snapshot.is_none() || seq >= snap_seq);

        // Replay the live segments oldest-first. Only the final one may
        // legally end in a torn record.
        let mut records = Vec::new();
        let mut truncated_bytes = 0u64;
        let mut seg_len = 0u64;
        let last = segments.last().copied();
        for &seq in &segments {
            let path = format!("{dir}/{}", seg_name(seq));
            let bytes = io.read(&path)?;
            let (mut recs, end) = parse_records(&bytes);
            match end {
                ParseEnd::Clean => {}
                ParseEnd::Torn { offset, what } if Some(seq) == last => {
                    truncated_bytes = bytes.len() as u64 - offset;
                    io.truncate(&path, offset)?;
                    let _ = what;
                }
                ParseEnd::Torn { offset, what } => {
                    return Err(SpoolError::Corrupt { file: path, offset, what });
                }
            }
            if Some(seq) == last {
                seg_len = bytes.len() as u64 - truncated_bytes;
            }
            records.append(&mut recs);
        }

        // Resume appending into the last segment — or start a fresh one
        // when the directory is empty or the snapshot outlives every
        // segment (its seg-S was lost or never created).
        let seq = match last {
            Some(seq) => seq,
            None => {
                io.create(&format!("{dir}/{}", seg_name(snap_seq)))?;
                snap_seq
            }
        };

        let spool = Spool { io, dir: dir.to_string(), cfg, seq, seg_len, buf: Vec::new() };
        Ok((spool, Recovery { snapshot, records, truncated_bytes, skipped_snapshots }))
    }

    /// Append one record to the log, rotating segments and fsyncing per
    /// the configured policy.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), SpoolError> {
        debug_assert_ne!(kind, SNAPSHOT_KIND, "kind 0 is reserved for snapshots");
        let framed = encoded_len(payload.len()) as u64;
        if self.seg_len > 0 && self.seg_len + framed > self.cfg.segment_bytes {
            self.rotate()?;
        }
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        encode_record(kind, payload, &mut buf);
        let path = self.seg_path();
        let result = self.write_all(&path, &buf);
        self.buf = buf;
        result?;
        self.seg_len += framed;
        if self.cfg.fsync == FsyncPolicy::Always {
            self.io.sync(&path)?;
        }
        Ok(())
    }

    /// Compact the log: record the caller's full state as a snapshot and
    /// delete every segment it supersedes. On return the spool is
    /// appending into a fresh segment and recovery needs only the
    /// snapshot plus records logged after this call.
    pub fn snapshot(&mut self, payload: &[u8]) -> Result<(), SpoolError> {
        let old_seq = self.seq;
        let new_seq = self.seq + 1;

        // Open the new segment first: if we crash between here and the
        // snapshot rename, recovery simply replays the old snapshot plus
        // all segments, including this empty one.
        self.io.create(&format!("{}/{}", self.dir, seg_name(new_seq)))?;

        // write-temp → fsync → rename, so a crash never leaves a
        // half-written file under the snapshot name.
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        encode_record(SNAPSHOT_KIND, payload, &mut buf);
        let tmp = format!("{}/{}.tmp", self.dir, snap_name(new_seq));
        let finished = format!("{}/{}", self.dir, snap_name(new_seq));
        self.io.create(&tmp)?;
        let write = self.write_all(&tmp, &buf);
        self.buf = buf;
        write?;
        self.io.sync(&tmp)?;
        self.io.rename(&tmp, &finished)?;

        // The snapshot is durable; everything it supersedes can go.
        for name in self.io.list(&self.dir)? {
            let stale = parse_name(&name, "seg-", ".log").is_some_and(|s| s < new_seq)
                || parse_name(&name, "snap-", ".snap").is_some_and(|s| s < new_seq);
            if stale {
                self.io.remove(&format!("{}/{}", self.dir, name))?;
            }
        }

        debug_assert!(old_seq < new_seq);
        self.seq = new_seq;
        self.seg_len = 0;
        Ok(())
    }

    /// Close the current segment (fsync unless policy is `Never`) and
    /// start appending into the next one.
    fn rotate(&mut self) -> Result<(), SpoolError> {
        if self.cfg.fsync != FsyncPolicy::Never {
            let path = self.seg_path();
            self.io.sync(&path)?;
        }
        self.seq += 1;
        self.seg_len = 0;
        self.io.create(&self.seg_path())?;
        Ok(())
    }

    /// Append `data` fully, riding out short writes.
    fn write_all(&mut self, path: &str, data: &[u8]) -> Result<(), SpoolError> {
        let mut at = 0;
        while at < data.len() {
            at += self.io.append(path, &data[at..])?;
        }
        Ok(())
    }

    fn seg_path(&self) -> String {
        format!("{}/{}", self.dir, seg_name(self.seq))
    }

    /// Make the current segment durable regardless of the append policy.
    pub fn sync(&mut self) -> Result<(), SpoolError> {
        let path = self.seg_path();
        self.io.sync(&path)
    }

    /// Sequence number of the segment currently receiving appends.
    pub fn segment_seq(&self) -> u64 {
        self.seq
    }

    /// The active configuration.
    pub fn config(&self) -> &SpoolConfig {
        &self.cfg
    }

    /// The spool directory.
    pub fn dir(&self) -> &str {
        &self.dir
    }

    /// Borrow the underlying I/O (test inspection).
    pub fn io(&self) -> &I {
        &self.io
    }

    /// Mutably borrow the underlying I/O (fault arming in tests).
    pub fn io_mut(&mut self) -> &mut I {
        &mut self.io
    }

    /// Tear down the spool, returning the I/O (crash simulation in tests:
    /// take the `MemIo` back, call `crash`, reopen).
    pub fn into_io(self) -> I {
        self.io
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;

    fn open_mem(io: MemIo, cfg: SpoolConfig) -> (Spool<MemIo>, Recovery) {
        Spool::open(io, "spool", cfg).expect("open")
    }

    #[test]
    fn empty_dir_initialises_segment_zero() {
        let (spool, rec) = open_mem(MemIo::new(), SpoolConfig::default());
        assert_eq!(spool.segment_seq(), 0);
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncated_bytes, 0);
        assert!(spool.io().contents("spool/seg-0000000000000000.log").is_some());
    }

    #[test]
    fn appends_replay_after_reopen() {
        let (mut spool, _) = open_mem(MemIo::new(), SpoolConfig::default());
        spool.append(1, b"alpha").unwrap();
        spool.append(2, b"beta").unwrap();
        let (_, rec) = open_mem(spool.into_io(), SpoolConfig::default());
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0], Record { kind: 1, payload: b"alpha".to_vec() });
        assert_eq!(rec.records[1], Record { kind: 2, payload: b"beta".to_vec() });
    }

    #[test]
    fn torn_tail_is_truncated_on_replay() {
        let (mut spool, _) = open_mem(MemIo::new(), SpoolConfig::default());
        spool.append(1, b"durable-record").unwrap();
        // Second record reaches the OS but the crash keeps only 5 bytes.
        let mut io = spool.into_io();
        io.fail_syncs(true);
        let (mut spool, _) = open_mem(io, SpoolConfig::default());
        let before = spool.io().contents("spool/seg-0000000000000000.log").unwrap().len();
        let _ = spool.append(3, b"torn-record");
        let mut io = spool.into_io();
        io.crash(5);
        let (spool, rec) = open_mem(io, SpoolConfig::default());
        assert_eq!(rec.records.len(), 1, "torn record dropped");
        assert_eq!(rec.truncated_bytes, 5);
        let after = spool.io().contents("spool/seg-0000000000000000.log").unwrap().len();
        assert_eq!(after, before, "file physically truncated back to the last good frame");
    }

    #[test]
    fn rotation_splits_records_across_segments_and_replays_in_order() {
        let cfg = SpoolConfig { segment_bytes: 64, fsync: FsyncPolicy::Always };
        let (mut spool, _) = open_mem(MemIo::new(), cfg);
        for i in 0..10u8 {
            spool.append(1, &[i; 24]).unwrap();
        }
        assert!(spool.segment_seq() > 0, "rotation happened");
        let (_, rec) = open_mem(spool.into_io(), cfg);
        assert_eq!(rec.records.len(), 10);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.payload, vec![i as u8; 24], "order preserved across segments");
        }
    }

    #[test]
    fn snapshot_compacts_and_recovery_is_snapshot_plus_suffix() {
        let (mut spool, _) = open_mem(MemIo::new(), SpoolConfig::default());
        spool.append(1, b"before-1").unwrap();
        spool.append(1, b"before-2").unwrap();
        spool.snapshot(b"full-state").unwrap();
        spool.append(1, b"after").unwrap();
        let files = spool.io().list("spool").unwrap();
        assert!(
            !files.contains(&"seg-0000000000000000.log".to_string()),
            "pre-snapshot segment deleted, files: {files:?}"
        );
        let (_, rec) = open_mem(spool.into_io(), SpoolConfig::default());
        assert_eq!(rec.snapshot.as_deref(), Some(&b"full-state"[..]));
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"after");
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_one() {
        let (mut spool, _) = open_mem(MemIo::new(), SpoolConfig::default());
        spool.snapshot(b"old-state").unwrap();
        spool.append(1, b"x").unwrap();
        spool.snapshot(b"new-state").unwrap();
        let mut io = spool.into_io();
        // Flip a byte inside the newest snapshot; keep an older copy around.
        let newest = "spool/snap-0000000000000002.snap";
        let mut bytes = io.read(newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        io.install(newest, bytes);
        let mut old = Vec::new();
        crate::record::encode_record(SNAPSHOT_KIND, b"old-state", &mut old);
        io.install("spool/snap-0000000000000001.snap", old);
        io.install("spool/seg-0000000000000001.log", Vec::new());
        let (_, rec) = open_mem(io, SpoolConfig::default());
        assert_eq!(rec.skipped_snapshots, 1);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"old-state"[..]));
    }

    #[test]
    fn corruption_in_non_final_segment_is_a_hard_error() {
        let cfg = SpoolConfig { segment_bytes: 32, fsync: FsyncPolicy::Always };
        let (mut spool, _) = open_mem(MemIo::new(), cfg);
        spool.append(1, &[7u8; 24]).unwrap();
        spool.append(1, &[8u8; 24]).unwrap();
        assert!(spool.segment_seq() >= 1, "two segments exist");
        let mut io = spool.into_io();
        let first = "spool/seg-0000000000000000.log";
        let mut bytes = io.read(first).unwrap();
        bytes.truncate(bytes.len() - 3);
        io.install(first, bytes);
        let err = Spool::open(io, "spool", cfg).unwrap_err();
        assert!(
            matches!(err, SpoolError::Corrupt { ref file, .. } if file.contains("seg-0000000000000000")),
            "got {err:?}"
        );
    }

    #[test]
    fn snapshot_newer_than_last_segment_recovers_and_recreates_segment() {
        let (mut spool, _) = open_mem(MemIo::new(), SpoolConfig::default());
        spool.append(1, b"pre").unwrap();
        spool.snapshot(b"state-at-snap").unwrap();
        let mut io = spool.into_io();
        io.delete("spool/seg-0000000000000001.log");
        let (spool, rec) = open_mem(io, SpoolConfig::default());
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state-at-snap"[..]));
        assert!(rec.records.is_empty());
        assert_eq!(spool.segment_seq(), 1);
        assert!(spool.io().contents("spool/seg-0000000000000001.log").is_some());
    }

    #[test]
    fn stray_tmp_files_are_swept_on_open() {
        let mut io = MemIo::new();
        io.install("spool/snap-0000000000000005.snap.tmp", b"half-written".to_vec());
        let (spool, rec) = open_mem(io, SpoolConfig::default());
        assert!(rec.snapshot.is_none());
        assert!(spool.io().contents("spool/snap-0000000000000005.snap.tmp").is_none());
    }

    #[test]
    fn short_writes_are_retried_to_completion() {
        let (mut spool, _) = open_mem(MemIo::new(), SpoolConfig::default());
        spool.io_mut().short_writes(3);
        spool.append(1, b"a-payload-much-longer-than-three-bytes").unwrap();
        let (_, rec) = open_mem(spool.into_io(), SpoolConfig::default());
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"a-payload-much-longer-than-three-bytes");
    }

    #[test]
    fn fsync_failure_surfaces_as_error_under_always_policy() {
        let (mut spool, _) = open_mem(MemIo::new(), SpoolConfig::default());
        spool.io_mut().fail_syncs(true);
        assert!(spool.append(1, b"x").is_err());
    }

    #[test]
    fn on_rotate_policy_loses_only_the_unsynced_tail() {
        let cfg = SpoolConfig { segment_bytes: 1 << 20, fsync: FsyncPolicy::OnRotate };
        let (mut spool, _) = open_mem(MemIo::new(), cfg);
        spool.append(1, b"unsynced").unwrap();
        let mut io = spool.into_io();
        io.crash(0);
        let (_, rec) = open_mem(io, cfg);
        assert!(rec.records.is_empty(), "OnRotate append was not durable yet");

        let (mut spool, _) = open_mem(MemIo::new(), cfg);
        spool.append(1, b"synced-explicitly").unwrap();
        spool.sync().unwrap();
        let mut io = spool.into_io();
        io.crash(0);
        let (_, rec) = open_mem(io, cfg);
        assert_eq!(rec.records.len(), 1);
    }

    #[test]
    fn crash_mid_snapshot_keeps_previous_state() {
        let (mut spool, _) = open_mem(MemIo::new(), SpoolConfig::default());
        spool.append(1, b"logged").unwrap();
        // Fail on the snapshot's tmp-file sync: the rename never happens.
        spool.io_mut().fail_syncs(true);
        assert!(spool.snapshot(b"state").is_err());
        let mut io = spool.into_io();
        io.crash(0);
        let (_, rec) = open_mem(io, SpoolConfig::default());
        assert!(rec.snapshot.is_none(), "half-finished snapshot never installed");
        assert_eq!(rec.records.len(), 1, "log intact");
    }
}
