//! Filesystem abstraction: the [`SpoolIo`] trait, the real
//! [`StdFsIo`] implementation, and the fault-injecting in-memory
//! [`MemIo`] the durability conformance suite crashes deterministically.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};

use crate::SpoolError;

/// Everything the spool needs from a filesystem.
///
/// Paths are plain strings (the spool joins its directory and file names
/// with `/`). Implementations must honor two contracts the recovery
/// story leans on:
///
/// * [`append`](SpoolIo::append) may write **fewer** bytes than asked
///   (a short write) — the spool retries the remainder; and
/// * bytes are only guaranteed durable after [`sync`](SpoolIo::sync)
///   returns `Ok` — a crash may keep any prefix of the unsynced suffix
///   (the torn tail replay truncates).
pub trait SpoolIo: Send + std::fmt::Debug {
    /// Create `dir` (and parents) if missing.
    fn create_dir_all(&mut self, dir: &str) -> Result<(), SpoolError>;
    /// File names (not paths) directly inside `dir`, in no particular order.
    fn list(&self, dir: &str) -> Result<Vec<String>, SpoolError>;
    /// Read a whole file.
    fn read(&self, path: &str) -> Result<Vec<u8>, SpoolError>;
    /// Create an empty file, truncating any existing content.
    fn create(&mut self, path: &str) -> Result<(), SpoolError>;
    /// Append bytes; returns how many were written (possibly short, never 0
    /// for a non-empty `data` unless an error is returned).
    fn append(&mut self, path: &str, data: &[u8]) -> Result<usize, SpoolError>;
    /// Truncate the file to `len` bytes.
    fn truncate(&mut self, path: &str, len: u64) -> Result<(), SpoolError>;
    /// Make the file's current content durable.
    fn sync(&mut self, path: &str) -> Result<(), SpoolError>;
    /// Atomically rename `from` to `to` (the snapshot install step).
    fn rename(&mut self, from: &str, to: &str) -> Result<(), SpoolError>;
    /// Delete a file.
    fn remove(&mut self, path: &str) -> Result<(), SpoolError>;
    /// Downcast support, so crash harnesses can recover their concrete
    /// I/O (e.g. [`MemIo`], to call `crash`) from a `Box<dyn SpoolIo>`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl SpoolIo for Box<dyn SpoolIo> {
    fn create_dir_all(&mut self, dir: &str) -> Result<(), SpoolError> {
        (**self).create_dir_all(dir)
    }
    fn list(&self, dir: &str) -> Result<Vec<String>, SpoolError> {
        (**self).list(dir)
    }
    fn read(&self, path: &str) -> Result<Vec<u8>, SpoolError> {
        (**self).read(path)
    }
    fn create(&mut self, path: &str) -> Result<(), SpoolError> {
        (**self).create(path)
    }
    fn append(&mut self, path: &str, data: &[u8]) -> Result<usize, SpoolError> {
        (**self).append(path, data)
    }
    fn truncate(&mut self, path: &str, len: u64) -> Result<(), SpoolError> {
        (**self).truncate(path, len)
    }
    fn sync(&mut self, path: &str) -> Result<(), SpoolError> {
        (**self).sync(path)
    }
    fn rename(&mut self, from: &str, to: &str) -> Result<(), SpoolError> {
        (**self).rename(from, to)
    }
    fn remove(&mut self, path: &str) -> Result<(), SpoolError> {
        (**self).remove(path)
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        (**self).as_any_mut()
    }
}

fn io_err(op: &str, path: &str, e: std::io::Error) -> SpoolError {
    SpoolError::Io(format!("{op} {path}: {e}"))
}

/// The real filesystem. Append handles are kept open per path so a hot
/// append path does not re-open its segment on every record; handles are
/// dropped on rename/remove/truncate.
#[derive(Debug, Default)]
pub struct StdFsIo {
    handles: HashMap<String, File>,
}

impl StdFsIo {
    /// A fresh instance with no cached handles.
    pub fn new() -> Self {
        StdFsIo::default()
    }

    fn handle(&mut self, path: &str) -> Result<&mut File, SpoolError> {
        if !self.handles.contains_key(path) {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| io_err("open", path, e))?;
            self.handles.insert(path.to_string(), file);
        }
        Ok(self.handles.get_mut(path).expect("just inserted"))
    }
}

impl SpoolIo for StdFsIo {
    fn create_dir_all(&mut self, dir: &str) -> Result<(), SpoolError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create_dir_all", dir, e))
    }

    fn list(&self, dir: &str) -> Result<Vec<String>, SpoolError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| io_err("read_dir", dir, e))? {
            let entry = entry.map_err(|e| io_err("read_dir", dir, e))?;
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, SpoolError> {
        let mut buf = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut buf))
            .map_err(|e| io_err("read", path, e))?;
        Ok(buf)
    }

    fn create(&mut self, path: &str) -> Result<(), SpoolError> {
        self.handles.remove(path);
        File::create(path).map(drop).map_err(|e| io_err("create", path, e))
    }

    fn append(&mut self, path: &str, data: &[u8]) -> Result<usize, SpoolError> {
        let file = self.handle(path)?;
        let n = file.write(data).map_err(|e| io_err("append", path, e))?;
        if n == 0 && !data.is_empty() {
            return Err(SpoolError::Io(format!("append {path}: wrote 0 bytes")));
        }
        Ok(n)
    }

    fn truncate(&mut self, path: &str, len: u64) -> Result<(), SpoolError> {
        self.handles.remove(path);
        OpenOptions::new()
            .write(true)
            .open(path)
            .and_then(|f| f.set_len(len))
            .map_err(|e| io_err("truncate", path, e))
    }

    fn sync(&mut self, path: &str) -> Result<(), SpoolError> {
        match self.handles.get(path) {
            Some(file) => file.sync_all().map_err(|e| io_err("sync", path, e)),
            None => {
                File::open(path).and_then(|f| f.sync_all()).map_err(|e| io_err("sync", path, e))
            }
        }
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), SpoolError> {
        self.handles.remove(from);
        self.handles.remove(to);
        std::fs::rename(from, to).map_err(|e| io_err("rename", from, e))
    }

    fn remove(&mut self, path: &str) -> Result<(), SpoolError> {
        self.handles.remove(path);
        std::fs::remove_file(path).map_err(|e| io_err("remove", path, e))
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One in-memory file: what a crash would keep (`synced`) vs what it may
/// lose (`pending`, written but not yet fsynced).
#[derive(Debug, Default, Clone)]
struct MemFile {
    synced: Vec<u8>,
    pending: Vec<u8>,
}

/// Deterministic in-memory filesystem with fault injection, for the
/// crash-matrix and fs-fault tests.
///
/// * [`fail_after_ops`](MemIo::fail_after_ops) — the N-th subsequent
///   *mutating* operation (create/append/truncate/sync/rename/remove)
///   and everything after it fails with an injected [`SpoolError::Io`],
///   pinning a kill point anywhere in a write schedule;
/// * [`short_writes`](MemIo::short_writes) — appends accept at most N
///   bytes per call, exercising the retry loop;
/// * [`fail_syncs`](MemIo::fail_syncs) — fsync reports failure while the
///   bytes stay pending (the classic lying-disk scenario);
/// * [`crash`](MemIo::crash) — discard unsynced bytes everywhere, keeping
///   a caller-chosen prefix of the pending tail (the torn record), and
///   clear all injected faults so the reopened spool serves normally.
#[derive(Debug, Default)]
pub struct MemIo {
    files: std::collections::BTreeMap<String, MemFile>,
    ops_until_fail: Option<u64>,
    max_append: Option<usize>,
    fail_syncs: bool,
    mutations: u64,
}

impl MemIo {
    /// An empty in-memory filesystem with no faults armed.
    pub fn new() -> Self {
        MemIo::default()
    }

    /// Arm a kill point: the `n`-th mutating operation from now (1-based)
    /// and every one after it fail.
    pub fn fail_after_ops(&mut self, n: u64) {
        self.ops_until_fail = Some(n);
    }

    /// Limit every append to at most `n` bytes per call.
    pub fn short_writes(&mut self, n: usize) {
        self.max_append = Some(n.max(1));
    }

    /// Make every fsync fail (bytes stay pending — a crash loses them).
    pub fn fail_syncs(&mut self, fail: bool) {
        self.fail_syncs = fail;
    }

    /// Mutating operations served so far (fault-armed or not).
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    /// Simulate a crash: every file keeps its synced bytes plus at most
    /// `keep_pending` bytes of its unsynced suffix (the torn tail), and
    /// all armed faults are cleared.
    pub fn crash(&mut self, keep_pending: usize) {
        for file in self.files.values_mut() {
            let keep = keep_pending.min(file.pending.len());
            let tail: Vec<u8> = file.pending[..keep].to_vec();
            file.synced.extend_from_slice(&tail);
            file.pending.clear();
        }
        self.ops_until_fail = None;
        self.max_append = None;
        self.fail_syncs = false;
    }

    /// Durable + pending content of `path`, if it exists (test inspection).
    pub fn contents(&self, path: &str) -> Option<Vec<u8>> {
        self.files.get(path).map(|f| {
            let mut all = f.synced.clone();
            all.extend_from_slice(&f.pending);
            all
        })
    }

    /// Overwrite a file's content as already-durable bytes (test setup for
    /// corruption scenarios).
    pub fn install(&mut self, path: &str, bytes: Vec<u8>) {
        self.files.insert(path.to_string(), MemFile { synced: bytes, pending: Vec::new() });
    }

    /// Remove a file without going through the fault machinery (test setup).
    pub fn delete(&mut self, path: &str) {
        self.files.remove(path);
    }

    fn mutate(&mut self, op: &str) -> Result<(), SpoolError> {
        self.mutations += 1;
        if let Some(left) = &mut self.ops_until_fail {
            if *left <= 1 {
                return Err(SpoolError::Io(format!("injected fault at {op}")));
            }
            *left -= 1;
        }
        Ok(())
    }
}

impl SpoolIo for MemIo {
    fn create_dir_all(&mut self, _dir: &str) -> Result<(), SpoolError> {
        Ok(())
    }

    fn list(&self, dir: &str) -> Result<Vec<String>, SpoolError> {
        let prefix = format!("{dir}/");
        Ok(self
            .files
            .keys()
            .filter_map(|p| p.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(String::from)
            .collect())
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, SpoolError> {
        self.contents(path).ok_or_else(|| SpoolError::Io(format!("read {path}: not found")))
    }

    fn create(&mut self, path: &str) -> Result<(), SpoolError> {
        self.mutate("create")?;
        self.files.insert(path.to_string(), MemFile::default());
        Ok(())
    }

    fn append(&mut self, path: &str, data: &[u8]) -> Result<usize, SpoolError> {
        self.mutate("append")?;
        let cap = self.max_append.unwrap_or(usize::MAX);
        let file = self
            .files
            .get_mut(path)
            .ok_or_else(|| SpoolError::Io(format!("append {path}: not found")))?;
        let n = data.len().min(cap);
        file.pending.extend_from_slice(&data[..n]);
        Ok(n)
    }

    fn truncate(&mut self, path: &str, len: u64) -> Result<(), SpoolError> {
        self.mutate("truncate")?;
        let file = self
            .files
            .get_mut(path)
            .ok_or_else(|| SpoolError::Io(format!("truncate {path}: not found")))?;
        let mut all = std::mem::take(&mut file.synced);
        all.extend_from_slice(&file.pending);
        file.pending.clear();
        all.truncate(len as usize);
        file.synced = all;
        Ok(())
    }

    fn sync(&mut self, path: &str) -> Result<(), SpoolError> {
        self.mutate("sync")?;
        if self.fail_syncs {
            return Err(SpoolError::Io(format!("injected fsync failure on {path}")));
        }
        let file = self
            .files
            .get_mut(path)
            .ok_or_else(|| SpoolError::Io(format!("sync {path}: not found")))?;
        let pending = std::mem::take(&mut file.pending);
        file.synced.extend_from_slice(&pending);
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), SpoolError> {
        self.mutate("rename")?;
        let file = self
            .files
            .remove(from)
            .ok_or_else(|| SpoolError::Io(format!("rename {from}: not found")))?;
        self.files.insert(to.to_string(), file);
        Ok(())
    }

    fn remove(&mut self, path: &str) -> Result<(), SpoolError> {
        self.mutate("remove")?;
        self.files
            .remove(path)
            .map(drop)
            .ok_or_else(|| SpoolError::Io(format!("remove {path}: not found")))
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memio_crash_discards_unsynced_bytes() {
        let mut io = MemIo::new();
        io.create("d/f").unwrap();
        io.append("d/f", b"durable").unwrap();
        io.sync("d/f").unwrap();
        io.append("d/f", b"lost").unwrap();
        io.crash(0);
        assert_eq!(io.read("d/f").unwrap(), b"durable");
    }

    #[test]
    fn memio_crash_keeps_a_torn_prefix() {
        let mut io = MemIo::new();
        io.create("d/f").unwrap();
        io.append("d/f", b"ok").unwrap();
        io.sync("d/f").unwrap();
        io.append("d/f", b"abcdef").unwrap();
        io.crash(3);
        assert_eq!(io.read("d/f").unwrap(), b"okabc");
    }

    #[test]
    fn memio_short_writes_cap_each_append() {
        let mut io = MemIo::new();
        io.create("d/f").unwrap();
        io.short_writes(2);
        assert_eq!(io.append("d/f", b"abcdef").unwrap(), 2);
        assert_eq!(io.contents("d/f").unwrap(), b"ab");
    }

    #[test]
    fn memio_kill_point_counts_mutations() {
        let mut io = MemIo::new();
        io.create("d/f").unwrap();
        io.fail_after_ops(2);
        assert!(io.append("d/f", b"x").is_ok());
        assert!(io.append("d/f", b"y").is_err());
        assert!(io.sync("d/f").is_err(), "every later mutation keeps failing");
    }

    #[test]
    fn memio_failed_sync_leaves_bytes_pending() {
        let mut io = MemIo::new();
        io.create("d/f").unwrap();
        io.append("d/f", b"data").unwrap();
        io.fail_syncs(true);
        assert!(io.sync("d/f").is_err());
        io.crash(0);
        assert_eq!(io.read("d/f").unwrap(), b"");
    }

    #[test]
    fn memio_list_is_dir_scoped() {
        let mut io = MemIo::new();
        io.create("a/one").unwrap();
        io.create("a/two").unwrap();
        io.create("a/sub/three").unwrap();
        io.create("b/four").unwrap();
        let mut names = io.list("a").unwrap();
        names.sort();
        assert_eq!(names, vec!["one", "two"]);
    }

    #[test]
    fn stdfs_round_trip_in_temp_dir() {
        let dir = std::env::temp_dir().join(format!("apcache-spool-io-{}", std::process::id()));
        let dir = dir.to_string_lossy().into_owned();
        let mut io = StdFsIo::new();
        io.create_dir_all(&dir).unwrap();
        let path = format!("{dir}/seg.log");
        io.create(&path).unwrap();
        let mut written = 0;
        while written < 5 {
            written += io.append(&path, &b"hello"[written..]).unwrap();
        }
        io.sync(&path).unwrap();
        assert_eq!(io.read(&path).unwrap(), b"hello");
        io.truncate(&path, 2).unwrap();
        assert_eq!(io.read(&path).unwrap(), b"he");
        let renamed = format!("{dir}/seg2.log");
        io.rename(&path, &renamed).unwrap();
        assert!(io.list(&dir).unwrap().contains(&"seg2.log".to_string()));
        io.remove(&renamed).unwrap();
        assert!(io.list(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
