//! CRC-framed record encoding.
//!
//! One record on disk is
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][kind: u8][payload: len-1 bytes]
//! ```
//!
//! where `len` counts the kind byte plus the payload and `crc` is the
//! CRC-32 (IEEE) of the kind byte plus the payload. The frame is
//! self-delimiting, so a reader walks a segment front to back; the first
//! frame that is incomplete or fails its checksum marks the **torn tail**
//! — everything before it is intact, everything from it on is discarded
//! by replay (legal only in the final segment of a spool).

use crate::SpoolError;

/// Hard ceiling on a single record's framed `len`, so a corrupt length
/// word cannot ask replay to allocate gigabytes. Snapshots of very large
/// stores are the biggest records we write; 256 MiB is orders of
/// magnitude above any realistic per-record size.
pub const MAX_RECORD_BYTES: u32 = 256 << 20;

/// Framing overhead per record: length word + checksum word.
pub(crate) const FRAME_HEADER: usize = 8;

/// One decoded record: the caller-defined kind tag and the opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Caller-defined record type tag.
    pub kind: u8,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// How a segment parse ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseEnd {
    /// Every byte belonged to a valid frame.
    Clean,
    /// Parsing stopped at `offset`: the bytes from there on are an
    /// incomplete or checksum-failing frame (a torn tail if this is the
    /// final segment, corruption otherwise).
    Torn {
        /// Byte offset of the first bad frame.
        offset: u64,
        /// Why the frame was rejected.
        what: &'static str,
    },
}

/// Append one framed record to `buf`.
pub(crate) fn encode_record(kind: u8, payload: &[u8], buf: &mut Vec<u8>) {
    let len = 1 + payload.len();
    debug_assert!(len <= MAX_RECORD_BYTES as usize, "record exceeds MAX_RECORD_BYTES");
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(payload);
    buf.extend_from_slice(&crc.finish().to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(payload);
}

/// Encoded size of a record with the given payload length.
pub(crate) fn encoded_len(payload_len: usize) -> usize {
    FRAME_HEADER + 1 + payload_len
}

/// Walk `bytes` front to back, decoding every intact frame. Returns the
/// records plus where (and why) parsing stopped.
pub fn parse_records(bytes: &[u8]) -> (Vec<Record>, ParseEnd) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < FRAME_HEADER {
            return (records, ParseEnd::Torn { offset: at as u64, what: "partial frame header" });
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        if len == 0 || len > MAX_RECORD_BYTES as usize {
            return (records, ParseEnd::Torn { offset: at as u64, what: "invalid record length" });
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if rest.len() < FRAME_HEADER + len {
            return (records, ParseEnd::Torn { offset: at as u64, what: "partial record body" });
        }
        let body = &rest[FRAME_HEADER..FRAME_HEADER + len];
        let mut check = Crc32::new();
        check.update(body);
        if check.finish() != crc {
            return (records, ParseEnd::Torn { offset: at as u64, what: "checksum mismatch" });
        }
        records.push(Record { kind: body[0], payload: body[1..].to_vec() });
        at += FRAME_HEADER + len;
    }
    (records, ParseEnd::Clean)
}

/// Parse a snapshot file: exactly one intact frame, nothing after it.
pub(crate) fn parse_single_record(bytes: &[u8], file: &str) -> Result<Record, SpoolError> {
    let (mut records, end) = parse_records(bytes);
    match (records.len(), end) {
        (1, ParseEnd::Clean) => Ok(records.pop().expect("one record")),
        (_, ParseEnd::Torn { offset, what }) => {
            Err(SpoolError::Corrupt { file: file.to_string(), offset, what })
        }
        (n, ParseEnd::Clean) => Err(SpoolError::Corrupt {
            file: file.to_string(),
            offset: 0,
            what: if n == 0 { "empty snapshot" } else { "trailing data after snapshot record" },
        }),
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip and zip frames use, implemented table-driven and
/// std-only.
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC_TABLE[idx];
        }
    }

    fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// The byte-indexed CRC-32 lookup table, computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_reference_vector() {
        // The canonical check value: CRC-32("123456789") = 0xCBF43926.
        let mut crc = Crc32::new();
        crc.update(b"123456789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn round_trip_multiple_records() {
        let mut buf = Vec::new();
        encode_record(1, b"hello", &mut buf);
        encode_record(2, b"", &mut buf);
        encode_record(255, &[0u8; 1000], &mut buf);
        let (records, end) = parse_records(&buf);
        assert_eq!(end, ParseEnd::Clean);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], Record { kind: 1, payload: b"hello".to_vec() });
        assert_eq!(records[1], Record { kind: 2, payload: Vec::new() });
        assert_eq!(records[2].payload.len(), 1000);
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let mut buf = Vec::new();
        encode_record(1, b"abc", &mut buf);
        encode_record(2, b"defg", &mut buf);
        let first_len = encoded_len(3);
        for cut in 0..buf.len() {
            let (records, end) = parse_records(&buf[..cut]);
            if cut < first_len {
                assert!(records.is_empty(), "cut={cut}");
                if cut > 0 {
                    assert!(matches!(end, ParseEnd::Torn { offset: 0, .. }), "cut={cut}");
                }
            } else {
                assert_eq!(records.len(), 1, "cut={cut}");
                if cut == first_len {
                    assert_eq!(end, ParseEnd::Clean, "cut={cut}");
                } else {
                    assert!(
                        matches!(end, ParseEnd::Torn { offset, .. } if offset == first_len as u64),
                        "cut={cut}"
                    );
                }
            }
        }
        let (records, end) = parse_records(&buf);
        assert_eq!(records.len(), 2);
        assert_eq!(end, ParseEnd::Clean);
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let mut buf = Vec::new();
        encode_record(7, b"payload-bytes", &mut buf);
        for i in FRAME_HEADER..buf.len() {
            let mut copy = buf.clone();
            copy[i] ^= 0x40;
            let (records, end) = parse_records(&copy);
            assert!(records.is_empty(), "flip at {i} went undetected");
            assert!(matches!(end, ParseEnd::Torn { what: "checksum mismatch", .. }), "at {i}");
        }
    }

    #[test]
    fn absurd_length_word_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 100]);
        let (records, end) = parse_records(&buf);
        assert!(records.is_empty());
        assert!(matches!(end, ParseEnd::Torn { what: "invalid record length", .. }));
    }

    #[test]
    fn single_record_parser_rejects_trailing_and_torn() {
        let mut good = Vec::new();
        encode_record(9, b"snapshot", &mut good);
        assert_eq!(parse_single_record(&good, "snap").unwrap().kind, 9);
        let mut trailing = good.clone();
        encode_record(9, b"extra", &mut trailing);
        assert!(parse_single_record(&trailing, "snap").is_err());
        assert!(parse_single_record(&good[..good.len() - 1], "snap").is_err());
        assert!(parse_single_record(&[], "snap").is_err());
    }
}
