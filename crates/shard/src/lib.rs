//! # apcache-shard
//!
//! The **scale-out layer** of the workspace: partition the key space of a
//! [`PrecisionStore`](apcache_store::PrecisionStore) fleet with a
//! consistent-hash ring, behind the same four verbs callers already know —
//! so an application written against one store serves the same traffic
//! from `N` shards by changing one builder line.
//!
//! * [`ShardRouter`] — a 64-bit consistent-hash ring with configurable
//!   virtual nodes per shard. Stable shard ids, deterministic routing
//!   (FNV-1a + SplitMix64 finalizer, no per-process seeding), and the
//!   classical elasticity property: adding a shard moves roughly
//!   `keys/(n+1)` keys, all of them **to** the new shard; removing one
//!   only moves the keys it owned.
//! * [`ShardedStore`] — `N` `PrecisionStore` shards behind the ring.
//!   Point [`read`](ShardedStore::read)s and
//!   [`write`](ShardedStore::write)s route to the owning shard and behave
//!   exactly as on a single store (per-key protocol state is
//!   shard-local). [`aggregate`](ShardedStore::aggregate) fans out to the
//!   shards owning keys of the query and merges the bounded partial
//!   answers with interval arithmetic — the precision constraint is split
//!   so the merged answer still satisfies it.
//!   [`metrics`](ShardedStore::metrics) returns per-shard
//!   [`apcache_store::StoreMetrics`] plus a merged rollup.
//!
//! ## Quick example
//!
//! ```
//! use apcache_shard::{AggregateKind, Constraint, ShardedStoreBuilder};
//!
//! let mut fleet = ShardedStoreBuilder::new()
//!     .shards(4)
//!     .vnodes(64)
//!     .source("cpu_load", 40.0)
//!     .source("mem_used", 900.0)
//!     .source("disk_io", 120.0)
//!     .build()
//!     .unwrap();
//!
//! // Callers are shard-oblivious: same verbs, same semantics.
//! let r = fleet.read(&"cpu_load", Constraint::Absolute(5.0), 0).unwrap();
//! assert!(r.answer.contains(40.0));
//! fleet.write(&"mem_used", 905.0, 1_000).unwrap();
//!
//! // Aggregates fan out and merge; the bound still holds.
//! let out = fleet
//!     .aggregate(
//!         AggregateKind::Sum,
//!         &["cpu_load", "mem_used", "disk_io"],
//!         Constraint::Absolute(50.0),
//!         2_000,
//!     )
//!     .unwrap();
//! assert!(out.answer.width() <= 50.0 + 1e-9);
//! assert!(out.answer.contains(40.0 + 905.0 + 120.0));
//!
//! // Per-shard metrics plus the deployment-wide rollup.
//! let m = fleet.metrics();
//! assert_eq!(m.per_shard().len(), 4);
//! assert_eq!(m.merged().totals().reads, 1);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod hash;
pub mod manifest;
pub mod plan;
pub mod router;
pub mod store;

pub use backend::ShardBackend;
pub use router::ShardRouter;
pub use store::{ShardedMetrics, ShardedStore, ShardedStoreBuilder, DEFAULT_VNODES};

// Re-export the façade vocabulary so sharded callers need one import root.
pub use apcache_queries::AggregateKind;
pub use apcache_store::{
    AggregateOutcome, Answer, Constraint, InitialWidth, KeyState, PolicySpec, ReadResult,
    StoreError, StoreMetrics, WriteOutcome,
};
