//! Stable hashing for ring placement and key routing.
//!
//! Routing must be deterministic across runs and processes, so the router
//! cannot use `std::collections::hash_map::RandomState` (randomly seeded
//! per process). Instead keys are hashed with FNV-1a (64-bit), a tiny
//! dependency-free algorithm with a published reference construction, and
//! the result is passed through the SplitMix64 finalizer to spread FNV's
//! weak low bits over the whole ring space.

use std::hash::Hasher;

use apcache_core::rng::SplitMix64;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`Hasher`] implementing 64-bit FNV-1a. Deterministic: no per-process
/// seeding, and integer writes are pinned to little-endian so the same
/// key routes identically on every architecture (the std `Hasher`
/// defaults feed native-endian bytes, which would break cross-process
/// routing once sources and caches span machines).
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64 { state: FNV_OFFSET }
    }
}

impl Hasher for Fnv1a64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u16(&mut self, n: u16) {
        self.write(&n.to_le_bytes());
    }

    fn write_u32(&mut self, n: u32) {
        self.write(&n.to_le_bytes());
    }

    fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    fn write_u128(&mut self, n: u128) {
        self.write(&n.to_le_bytes());
    }

    // usize/isize widths vary by platform; hash them as 64-bit so a key
    // routes identically on 32- and 64-bit hosts.
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write_i16(&mut self, n: i16) {
        self.write_u16(n as u16);
    }

    fn write_i32(&mut self, n: i32) {
        self.write_u32(n as u32);
    }

    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }

    fn write_i128(&mut self, n: i128) {
        self.write_u128(n as u128);
    }

    fn write_isize(&mut self, n: isize) {
        self.write_u64(n as u64);
    }
}

/// Mix a raw 64-bit hash through the SplitMix64 finalizer so that inputs
/// differing in few bits land far apart on the ring.
pub fn mix(h: u64) -> u64 {
    let mut sm = SplitMix64::new(h);
    sm.next_u64()
}

/// The ring position of key `key`: FNV-1a over its `Hash` encoding,
/// finalized with [`mix`].
pub fn key_point<K: std::hash::Hash>(key: &K) -> u64 {
    let mut hasher = Fnv1a64::default();
    key.hash(&mut hasher);
    mix(hasher.finish())
}

/// The ring position of virtual node `vnode` of shard `shard`.
pub fn vnode_point(shard: u32, vnode: u32) -> u64 {
    mix((u64::from(shard) << 32) | u64::from(vnode))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors (empty string, "a", "foobar").
        let hash = |s: &str| {
            let mut h = Fnv1a64::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_point_is_deterministic_and_spread() {
        assert_eq!(key_point(&"alpha"), key_point(&"alpha"));
        assert_ne!(key_point(&"alpha"), key_point(&"beta"));
        // Sequential integers must not land sequentially on the ring.
        let a = key_point(&0u64);
        let b = key_point(&1u64);
        assert!(a.abs_diff(b) > u64::MAX / 1_000_000);
    }

    #[test]
    fn integer_keys_hash_as_little_endian_bytes() {
        // The overrides must make `Hash` on integers equivalent to feeding
        // the little-endian encoding, regardless of the host's endianness.
        let via_hash = {
            let mut h = Fnv1a64::default();
            std::hash::Hash::hash(&0xDEAD_BEEF_u32, &mut h);
            h.finish()
        };
        let via_bytes = {
            let mut h = Fnv1a64::default();
            h.write(&[0xEF, 0xBE, 0xAD, 0xDE]);
            h.finish()
        };
        assert_eq!(via_hash, via_bytes);
        // usize hashes with 64-bit width so 32- and 64-bit hosts agree.
        let a = {
            let mut h = Fnv1a64::default();
            std::hash::Hash::hash(&7usize, &mut h);
            h.finish()
        };
        let b = {
            let mut h = Fnv1a64::default();
            std::hash::Hash::hash(&7u64, &mut h);
            h.finish()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn vnode_points_are_distinct() {
        let mut points: Vec<u64> =
            (0..8u32).flat_map(|s| (0..128u32).map(move |v| vnode_point(s, v))).collect();
        let n = points.len();
        points.sort_unstable();
        points.dedup();
        assert_eq!(points.len(), n, "vnode point collision");
    }
}
