//! Pluggable shard backends: where a shard's verbs actually execute.
//!
//! The ring decides *which* shard owns a key; a [`ShardBackend`] decides
//! *how* that shard serves it. The local backend is a
//! [`PrecisionStore`] owned in-process (implemented here). The runtime
//! crate implements the trait for its actor handle, and the wire crate
//! for its pipelined remote client — so one
//! [`ShardedStore`](crate::ShardedStore) can mix in-process and remote
//! shards behind the same ring, and elastic resharding
//! ([`ShardedStore::add_shard_backend`](crate::ShardedStore::add_shard_backend) /
//! [`ShardedStore::remove_shard`](crate::ShardedStore::remove_shard))
//! moves resident keys between them with full protocol state.
//!
//! Every method takes `&mut self` and returns `Result` even where the
//! local store could answer infallibly from `&self`: a remote backend
//! performs I/O for each verb, and the trait is shaped for the most
//! constrained implementor.

use std::hash::Hash;

use apcache_core::TimeMs;
use apcache_queries::AggregateKind;
use apcache_store::{
    AggregateOutcome, Constraint, KeyState, PolicySpec, PrecisionStore, ReadResult, StoreError,
    StoreMetrics, WriteOutcome,
};

/// One shard's executor: the four serving verbs plus the population and
/// migration surface elastic resharding needs.
pub trait ShardBackend<K> {
    /// Read `key` to the given precision.
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, StoreError>;

    /// Push a new exact value for `key`.
    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, StoreError>;

    /// Apply a batch of writes in slice order (all-or-nothing validation).
    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, StoreError>;

    /// Bounded aggregate over keys this shard owns.
    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, StoreError>;

    /// A snapshot of the shard's serving metrics.
    fn metrics_snapshot(&mut self) -> Result<StoreMetrics<K>, StoreError>;

    /// Register a new source (with an optional per-key policy override).
    fn insert(
        &mut self,
        key: K,
        value: f64,
        spec: Option<PolicySpec>,
        now: TimeMs,
    ) -> Result<(), StoreError>;

    /// Whether `key` has a registered source on this shard.
    fn contains_key(&mut self, key: &K) -> Result<bool, StoreError>;

    /// Every key registered on this shard, in registration order.
    fn key_list(&mut self) -> Result<Vec<K>, StoreError>;

    /// Detach the given keys with their complete protocol state (the
    /// export half of migration). Fails atomically: either every key is
    /// exported or none is.
    fn export_keys(&mut self, keys: &[K]) -> Result<Vec<KeyState<K>>, StoreError>;

    /// Attach keys previously detached from another shard (the import
    /// half of migration).
    fn import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<(), StoreError>;
}

/// Boxed backends are backends, so one ring can mix heterogeneous shards
/// — `ShardedStore<K, Box<dyn ShardBackend<K> + Send>>` routes some
/// slots to in-process stores, some to runtime deployments, some to
/// remote servers, and elastic resharding migrates keys between them.
impl<K> ShardBackend<K> for Box<dyn ShardBackend<K> + Send> {
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, StoreError> {
        (**self).read(key, constraint, now)
    }

    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, StoreError> {
        (**self).write(key, value, now)
    }

    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, StoreError> {
        (**self).write_batch(items, now)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, StoreError> {
        (**self).aggregate(kind, keys, constraint, now)
    }

    fn metrics_snapshot(&mut self) -> Result<StoreMetrics<K>, StoreError> {
        (**self).metrics_snapshot()
    }

    fn insert(
        &mut self,
        key: K,
        value: f64,
        spec: Option<PolicySpec>,
        now: TimeMs,
    ) -> Result<(), StoreError> {
        (**self).insert(key, value, spec, now)
    }

    fn contains_key(&mut self, key: &K) -> Result<bool, StoreError> {
        (**self).contains_key(key)
    }

    fn key_list(&mut self) -> Result<Vec<K>, StoreError> {
        (**self).key_list()
    }

    fn export_keys(&mut self, keys: &[K]) -> Result<Vec<KeyState<K>>, StoreError> {
        (**self).export_keys(keys)
    }

    fn import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<(), StoreError> {
        (**self).import_keys(states)
    }
}

impl<K: Hash + Ord + Clone> ShardBackend<K> for PrecisionStore<K> {
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, StoreError> {
        PrecisionStore::read(self, key, constraint, now)
    }

    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, StoreError> {
        PrecisionStore::write(self, key, value, now)
    }

    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, StoreError> {
        PrecisionStore::write_batch(self, items, now)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, StoreError> {
        PrecisionStore::aggregate(self, kind, keys, constraint, now)
    }

    fn metrics_snapshot(&mut self) -> Result<StoreMetrics<K>, StoreError> {
        Ok(PrecisionStore::metrics(self).clone())
    }

    fn insert(
        &mut self,
        key: K,
        value: f64,
        spec: Option<PolicySpec>,
        now: TimeMs,
    ) -> Result<(), StoreError> {
        match spec {
            Some(spec) => PrecisionStore::insert_with_policy(self, key, value, spec, now),
            None => PrecisionStore::insert(self, key, value, now),
        }
    }

    fn contains_key(&mut self, key: &K) -> Result<bool, StoreError> {
        Ok(PrecisionStore::contains_key(self, key))
    }

    fn key_list(&mut self) -> Result<Vec<K>, StoreError> {
        Ok(PrecisionStore::keys(self).cloned().collect())
    }

    fn export_keys(&mut self, keys: &[K]) -> Result<Vec<KeyState<K>>, StoreError> {
        // Check the whole set first so a miss exports nothing.
        for key in keys {
            if !PrecisionStore::contains_key(self, key) {
                return Err(StoreError::UnknownKey);
            }
        }
        keys.iter().map(|key| self.export_key(key)).collect()
    }

    fn import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<(), StoreError> {
        for state in states {
            self.import_key(state)?;
        }
        Ok(())
    }
}
