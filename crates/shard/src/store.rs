//! The sharded serving façade: N shard backends behind one ring.

use std::hash::Hash;
use std::marker::PhantomData;

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Rng, TimeMs};
use apcache_queries::AggregateKind;
use apcache_store::{
    AggregateOutcome, Constraint, InitialWidth, KeyState, PolicySpec, PrecisionStore, ReadResult,
    SpoolConfig, SpoolKey, StoreBuilder, StoreError, StoreMetrics, WriteOutcome,
};

use crate::backend::ShardBackend;
use crate::manifest;
use crate::plan::{empty_aggregate, evaluate_constraint};
use crate::router::ShardRouter;

/// Builder for [`ShardedStore`]: the same protocol knobs as
/// [`StoreBuilder`], plus the deployment shape (shard count, virtual
/// nodes per shard) and a master seed that derives one independent RNG
/// stream per shard.
///
/// ```
/// use apcache_shard::{Constraint, ShardedStoreBuilder};
///
/// let mut store = ShardedStoreBuilder::new()
///     .shards(4)
///     .source("alpha", 10.0)
///     .source("beta", 20.0)
///     .build()
///     .unwrap();
/// assert!(store.read(&"beta", Constraint::Absolute(10.0), 0).unwrap().answer.contains(20.0));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedStoreBuilder<K> {
    proto: StoreBuilder<K>,
    shards: usize,
    vnodes: usize,
    rng: Rng,
    sources: Vec<(K, f64, Option<PolicySpec>)>,
    spool: Option<FleetSpool<K>>,
}

/// A pending fleet-wide spool: the root directory plus the attach hook
/// captured while the `K: SpoolKey` bound was in scope (the same fn-
/// pointer erasure trick [`StoreBuilder`] itself uses), so the rest of
/// the builder needs no spool bounds.
#[derive(Debug, Clone)]
struct FleetSpool<K> {
    dir: String,
    cfg: SpoolConfig,
    attach: fn(StoreBuilder<K>, String, SpoolConfig) -> StoreBuilder<K>,
}

impl<K> Default for ShardedStoreBuilder<K> {
    fn default() -> Self {
        ShardedStoreBuilder {
            proto: StoreBuilder::default(),
            shards: 1,
            vnodes: DEFAULT_VNODES,
            rng: Rng::seed_from_u64(0),
            sources: Vec::new(),
            spool: None,
        }
    }
}

/// Default virtual nodes per shard: enough to keep partitions within a
/// few tens of percent of fair share for typical fleet sizes.
pub const DEFAULT_VNODES: usize = 64;

impl<K: Hash + Ord + Clone> ShardedStoreBuilder<K> {
    /// Start from the paper's recommended tuning on a single shard.
    pub fn new() -> Self {
        ShardedStoreBuilder::default()
    }

    /// Number of shards (≥ 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Virtual nodes per shard on the routing ring (≥ 1).
    pub fn vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes;
        self
    }

    /// Refresh cost model (determines the cost factor θ) for every shard.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.proto = self.proto.cost(cost);
        self
    }

    /// Adaptivity parameter α for every shard.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.proto = self.proto.alpha(alpha);
        self
    }

    /// Snapping thresholds γ0 / γ1 for every shard.
    pub fn thresholds(mut self, gamma0: f64, gamma1: f64) -> Self {
        self.proto = self.proto.thresholds(gamma0, gamma1);
        self
    }

    /// Cache capacity κ **per shard** (widest-first eviction); unbounded
    /// by default. A fleet of `n` shards caches up to `n·κ` keys total.
    pub fn capacity_per_shard(mut self, capacity: usize) -> Self {
        self.proto = self.proto.capacity(capacity);
        self
    }

    /// Rule for choosing starting interval widths.
    pub fn initial_width(mut self, rule: InitialWidth) -> Self {
        self.proto = self.proto.initial_width(rule);
        self
    }

    /// Policy used for keys without a per-key override.
    pub fn default_policy(mut self, spec: PolicySpec) -> Self {
        self.proto = self.proto.default_policy(spec);
        self
    }

    /// Master random stream; each shard gets an independent fork, so a
    /// shard's behavior never depends on how many siblings it has.
    pub fn rng(mut self, rng: Rng) -> Self {
        self.rng = rng;
        self
    }

    /// Give every shard a durable write-ahead spool under `dir`: shard
    /// `i` logs to `dir/shard-<ring id>/`, and `dir/fleet.manifest`
    /// records the ring shape so [`ShardedStore::recover`] can rebuild
    /// the identical fleet after a crash or restart.
    pub fn with_spool(self, dir: impl Into<String>) -> Self
    where
        K: SpoolKey,
    {
        self.with_spool_config(dir, SpoolConfig::default())
    }

    /// [`with_spool`](ShardedStoreBuilder::with_spool) with explicit
    /// segment-size and fsync tuning applied to every shard's spool.
    pub fn with_spool_config(mut self, dir: impl Into<String>, cfg: SpoolConfig) -> Self
    where
        K: SpoolKey,
    {
        self.spool = Some(FleetSpool {
            dir: dir.into(),
            cfg,
            attach: |b, dir, cfg| b.with_spool_config(dir, cfg),
        });
        self
    }

    /// Register a source with the default policy (routed at build time).
    pub fn source(mut self, key: K, initial_value: f64) -> Self {
        self.sources.push((key, initial_value, None));
        self
    }

    /// Register a source with a per-key policy override.
    pub fn source_with_policy(mut self, key: K, initial_value: f64, spec: PolicySpec) -> Self {
        self.sources.push((key, initial_value, Some(spec)));
        self
    }

    /// Assemble the fleet: build the ring, route every registered source
    /// to its owning shard, and construct the per-shard stores.
    pub fn build(mut self) -> Result<ShardedStore<K>, StoreError> {
        let router = ShardRouter::new(self.shards, self.vnodes)?;
        // Duplicate registrations route to the same shard, so the per-shard
        // builder's own DuplicateKey check covers the whole fleet.
        let mut builders: Vec<StoreBuilder<K>> =
            (0..self.shards).map(|_| self.proto.clone().rng(self.rng.fork())).collect();
        for (key, value, spec) in self.sources {
            let shard = router.route(&key) as usize;
            // Take/put-back instead of clone: the builder accumulates its
            // routed sources, so cloning here would be quadratic in fleet
            // size.
            let b = std::mem::take(&mut builders[shard]);
            builders[shard] = match spec {
                Some(spec) => b.source_with_policy(key, value, spec),
                None => b.source(key, value),
            };
        }
        if let Some(plan) = &self.spool {
            manifest::write_manifest(&plan.dir, self.vnodes, router.shard_ids())?;
            for (slot, b) in builders.iter_mut().enumerate() {
                let id = router.shard_ids()[slot];
                let taken = std::mem::take(b);
                *b = (plan.attach)(taken, manifest::shard_dir(&plan.dir, id), plan.cfg);
            }
        }
        let shards =
            builders.into_iter().map(StoreBuilder::build).collect::<Result<Vec<_>, _>>()?;
        let ids = router.shard_ids().to_vec();
        Ok(ShardedStore { router, ids, shards, _key: PhantomData })
    }
}

/// A deployment-wide view of serving metrics: one [`StoreMetrics`] per
/// shard (borrowed from the live stores) plus their merged rollup
/// (materialized at construction).
#[derive(Debug, Clone)]
pub struct ShardedMetrics<'a, K> {
    per_shard: Vec<&'a StoreMetrics<K>>,
    merged: StoreMetrics<K>,
}

impl<'a, K: Ord + Clone> ShardedMetrics<'a, K> {
    /// The merged rollup: every counter summed across shards.
    pub fn merged(&self) -> &StoreMetrics<K> {
        &self.merged
    }

    /// Per-shard metrics, indexed by shard id.
    pub fn per_shard(&self) -> &[&'a StoreMetrics<K>] {
        &self.per_shard
    }

    /// Metrics of one shard.
    pub fn shard(&self, shard: usize) -> Option<&'a StoreMetrics<K>> {
        self.per_shard.get(shard).copied()
    }
}

/// A shard-oblivious façade over `N` [`PrecisionStore`]s: the same four
/// verbs — [`read`](ShardedStore::read), [`write`](ShardedStore::write),
/// [`aggregate`](ShardedStore::aggregate),
/// [`metrics`](ShardedStore::metrics) — with keys partitioned across the
/// shards by a consistent-hash ring.
///
/// Point reads and writes route to the owning shard and behave exactly as
/// on a single store (per-key protocol state is shard-local). Aggregates
/// fan out to the shards owning keys of the requested set and merge the
/// bounded partial answers with interval arithmetic:
///
/// * **SUM** — the precision budget δ is split across shards in
///   proportion to their key count, and the partial sums add:
///   `width(Σ) = Σ width_s ≤ Σ δ·n_s/n = δ`.
/// * **AVG** — evaluated as a SUM with budget `δ·n`, scaled by `1/n`.
/// * **MAX / MIN** — every shard receives the full budget δ; the merged
///   extremum `[max L_s, max H_s]` is at most as wide as the partial
///   answer of the shard holding the winner, so the bound composes.
/// * **Exact / Relative** — exact fans out exactly; a relative constraint
///   runs a bounded refinement (probe → per-shard local certificates →
///   derived absolute budget, see
///   [`aggregate_relative`](ShardedStore::aggregate)) that fetches only
///   as much as the certificate needs, degenerating to exactness only
///   when the aggregate genuinely hugs zero — the classical relative-
///   bound degeneracy the single store shares.
///
/// When every requested key lives on one shard the query is delegated
/// with the original constraint unchanged, so single-shard deployments
/// (and colliding key sets) behave bit-for-bit like an unsharded store.
///
/// The backend type `B` is pluggable (see [`ShardBackend`]): the default
/// is an in-process [`PrecisionStore`] per shard, but any mix of local
/// stores, runtime handles, and remote clients can sit behind one ring —
/// and [`add_shard_backend`](ShardedStore::add_shard_backend) /
/// [`remove_shard`](ShardedStore::remove_shard) reshard elastically,
/// migrating resident keys (values, adaptive widths, counters) to their
/// new owners instead of stranding them.
#[derive(Debug)]
pub struct ShardedStore<K, B = PrecisionStore<K>> {
    router: ShardRouter,
    /// `ids[slot]` is the ring id of `shards[slot]`. Dense (`0..n`) when
    /// built by [`ShardedStoreBuilder`]; arbitrary after elastic
    /// add/remove, since the ring never recycles ids.
    ids: Vec<u32>,
    shards: Vec<B>,
    _key: PhantomData<fn() -> K>,
}

impl<K: Hash + Ord + Clone, B: ShardBackend<K>> ShardedStore<K, B> {
    /// The ring id that owns `key` (as `usize` for convenience; equal to
    /// the shard's slot index on builder-dense fleets).
    pub fn shard_of(&self, key: &K) -> usize {
        self.router.route(key) as usize
    }

    /// The slot index of ring id `id`.
    fn slot_of_id(&self, id: u32) -> usize {
        self.ids.iter().position(|&x| x == id).expect("routed id is on the ring")
    }

    /// The slot index of the backend owning `key`.
    fn slot_of(&self, key: &K) -> usize {
        self.slot_of_id(self.router.route(key))
    }

    /// Read `key` to the given precision on its owning shard.
    pub fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, StoreError> {
        let slot = self.slot_of(key);
        self.shards[slot].read(key, constraint, now)
    }

    /// Push a new exact value for `key` to its owning shard.
    pub fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, StoreError> {
        let slot = self.slot_of(key);
        self.shards[slot].write(key, value, now)
    }

    /// Apply a batch of writes with one routing pass: items are grouped by
    /// owning shard (slice order preserved within each shard) and handed
    /// to the shards as per-shard batches.
    ///
    /// Per-key protocol state is shard-local and a shard sees its items in
    /// slice order, so the outcome is identical to routing each write
    /// individually. The whole batch is validated up front (unknown keys,
    /// non-finite values), so a failed batch applies no write on any
    /// shard; the returned outcome sums the per-write refresh counts.
    pub fn write_batch(
        &mut self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, StoreError> {
        let mut per_slot: Vec<Vec<(K, f64)>> = vec![Vec::new(); self.shards.len()];
        for (key, value) in items {
            if !value.is_finite() {
                return Err(apcache_core::error::ProtocolError::NonFiniteValue(*value).into());
            }
            let slot = self.slot_of(key);
            if !self.shards[slot].contains_key(key)? {
                return Err(StoreError::UnknownKey);
            }
            per_slot[slot].push((key.clone(), *value));
        }
        let mut refreshes = 0;
        for (slot, batch) in per_slot.into_iter().enumerate() {
            if !batch.is_empty() {
                refreshes += self.shards[slot].write_batch(&batch, now)?.refreshes;
            }
        }
        Ok(WriteOutcome { refreshes })
    }

    /// Register a new source after construction, with the default policy.
    pub fn insert(&mut self, key: K, value: f64, now: TimeMs) -> Result<(), StoreError> {
        let slot = self.slot_of(&key);
        self.shards[slot].insert(key, value, None, now)
    }

    /// Register a new source after construction, with a per-key policy.
    pub fn insert_with_policy(
        &mut self,
        key: K,
        value: f64,
        spec: PolicySpec,
        now: TimeMs,
    ) -> Result<(), StoreError> {
        let slot = self.slot_of(&key);
        self.shards[slot].insert(key, value, Some(spec), now)
    }

    /// Partition `keys` by owning slot, preserving the order within each
    /// shard. Errors if any key is unknown — checked up front so a failed
    /// aggregate never charges any shard.
    fn partition(&mut self, keys: &[K]) -> Result<Vec<(usize, Vec<K>)>, StoreError> {
        let mut per_slot: Vec<Vec<K>> = vec![Vec::new(); self.shards.len()];
        for key in keys {
            let slot = self.slot_of(key);
            if !self.shards[slot].contains_key(key)? {
                return Err(StoreError::UnknownKey);
            }
            per_slot[slot].push(key.clone());
        }
        Ok(per_slot.into_iter().enumerate().filter(|(_, keys)| !keys.is_empty()).collect())
    }

    /// Fan an aggregate out with a per-shard constraint chosen by `split`
    /// (the [`plan::FanOut`](crate::plan::FanOut) primitive, evaluated by
    /// direct calls shard after shard).
    fn fan_out(
        &mut self,
        kind: AggregateKind,
        parts: &[(usize, Vec<K>)],
        split: &dyn Fn(usize) -> Constraint,
        now: TimeMs,
    ) -> Result<(Vec<Interval>, Vec<K>), StoreError> {
        let mut partials = Vec::with_capacity(parts.len());
        let mut refreshed = Vec::new();
        for (shard, keys) in parts {
            let out = self.shards[*shard].aggregate(kind, keys, split(keys.len()), now)?;
            partials.push(out.answer);
            refreshed.extend(out.refreshed);
        }
        Ok((partials, refreshed))
    }

    /// Bounded aggregate over `keys`, fanned out to the owning shards and
    /// merged with interval arithmetic (see the type-level docs for the
    /// per-kind composition rules). The constraint dispatch — including
    /// the Relative probe → local-certificates → budget refinement — is
    /// [`plan::evaluate_constraint`](crate::plan::evaluate_constraint),
    /// shared with the actor runtime so the two façades cannot drift.
    pub fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, StoreError> {
        constraint.validate()?;
        if keys.is_empty() {
            return empty_aggregate(kind);
        }
        let parts = self.partition(keys)?;
        // All keys on one shard: delegate untouched, matching an unsharded
        // store exactly (this also covers single-shard deployments).
        if let [(shard, shard_keys)] = parts.as_slice() {
            return self.shards[*shard].aggregate(kind, shard_keys, constraint, now);
        }
        evaluate_constraint(kind, constraint, keys.len(), &mut |local_kind, split| {
            self.fan_out(local_kind, &parts, split, now)
        })
    }

    /// Deployment-wide metrics rollup, assembled by snapshotting every
    /// backend (a remote backend performs one METRICS round trip each).
    /// Local-only fleets can use the borrow-based
    /// [`metrics`](ShardedStore::metrics) instead.
    pub fn metrics_snapshot(&mut self) -> Result<StoreMetrics<K>, StoreError> {
        let mut merged = StoreMetrics::new();
        for shard in &mut self.shards {
            merged.merge(&shard.metrics_snapshot()?);
        }
        Ok(merged)
    }

    /// The routing ring.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The ring ids of the fleet, in slot order.
    pub fn shard_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Assemble a fleet from a ring and one backend per ring id. The
    /// supplied ids must match the ring's member set exactly (any order,
    /// no duplicates) — this is the entry point for mixed deployments
    /// (local stores, runtime handles, remote clients behind one ring).
    pub fn from_routed_parts(
        router: ShardRouter,
        parts: Vec<(u32, B)>,
    ) -> Result<Self, StoreError> {
        let mut ring: Vec<u32> = router.shard_ids().to_vec();
        let mut supplied: Vec<u32> = parts.iter().map(|(id, _)| *id).collect();
        ring.sort_unstable();
        supplied.sort_unstable();
        let unique = supplied.windows(2).all(|w| w[0] != w[1]);
        if ring != supplied || !unique {
            return Err(StoreError::Config(format!(
                "ring addresses shards {:?} but backends were supplied for {:?}",
                router.shard_ids(),
                parts.iter().map(|(id, _)| *id).collect::<Vec<_>>()
            )));
        }
        let (ids, shards) = parts.into_iter().unzip();
        Ok(ShardedStore { router, ids, shards, _key: PhantomData })
    }

    /// Decompose the fleet into its ring and `(ring id, backend)` pairs,
    /// inverse of [`from_routed_parts`](ShardedStore::from_routed_parts).
    pub fn into_routed_parts(self) -> (ShardRouter, Vec<(u32, B)>) {
        (self.router, self.ids.into_iter().zip(self.shards).collect())
    }

    /// Grow the fleet by one shard, **migrating** every key the ring
    /// reassigns to it — values, adaptive widths, vote histories, cached
    /// intervals, and per-key metrics all move, so a remapped key resumes
    /// the paper's protocol on the new shard exactly where it left off
    /// (instead of reading as cold, the pre-migration bug this fixes).
    ///
    /// Returns the new shard's ring id. On a failed export/import the
    /// ring is rolled back and the fleet is unchanged (keys already moved
    /// into `backend` are lost with it, but no resident key is ever
    /// half-moved: exports are atomic per shard).
    pub fn add_shard_backend(&mut self, mut backend: B) -> Result<u32, StoreError> {
        let new_id = self.router.add_shard();
        for slot in 0..self.shards.len() {
            let keys = match self.shards[slot].key_list() {
                Ok(keys) => keys,
                Err(e) => {
                    self.router.remove_shard(new_id).expect("fresh id is on the ring");
                    return Err(e);
                }
            };
            let moving: Vec<K> =
                keys.into_iter().filter(|k| self.router.route(k) == new_id).collect();
            if moving.is_empty() {
                continue;
            }
            let moved = self.shards[slot]
                .export_keys(&moving)
                .and_then(|states| backend.import_keys(states));
            if let Err(e) = moved {
                self.router.remove_shard(new_id).expect("fresh id is on the ring");
                return Err(e);
            }
        }
        self.ids.push(new_id);
        self.shards.push(backend);
        Ok(new_id)
    }

    /// Shrink the fleet by retiring the shard with ring id `id`, first
    /// migrating every resident key (with full protocol state) to its new
    /// owner under the post-removal ring. Returns the drained backend.
    /// Errors if `id` is unknown or the last shard.
    pub fn remove_shard(&mut self, id: u32) -> Result<B, StoreError> {
        let slot = self
            .ids
            .iter()
            .position(|&x| x == id)
            .ok_or_else(|| StoreError::Config(format!("shard {id} is not on the ring")))?;
        self.router.remove_shard(id)?;
        let drained = (|| {
            let keys = self.shards[slot].key_list()?;
            let states = self.shards[slot].export_keys(&keys)?;
            // Group by new owner so each target gets one import batch.
            let mut per_owner: Vec<(u32, Vec<KeyState<K>>)> = Vec::new();
            for state in states {
                let owner = self.router.route(&state.key);
                match per_owner.iter_mut().find(|(o, _)| *o == owner) {
                    Some((_, batch)) => batch.push(state),
                    None => per_owner.push((owner, vec![state])),
                }
            }
            for (owner, batch) in per_owner {
                let target = self.slot_of_id(owner);
                self.shards[target].import_keys(batch)?;
            }
            Ok(())
        })();
        match drained {
            Ok(()) => {
                self.ids.remove(slot);
                Ok(self.shards.remove(slot))
            }
            Err(e) => Err(e),
        }
    }
}

impl<K: Hash + Ord + Clone> ShardedStore<K, PrecisionStore<K>> {
    /// Entry point: a builder with the paper's recommended tuning.
    pub fn builder() -> ShardedStoreBuilder<K> {
        ShardedStoreBuilder::new()
    }

    /// Deployment metrics: per-shard [`StoreMetrics`] (borrowed, free) and
    /// their merged rollup (built here — O(keys touched), so monitoring
    /// loops that only need one shard should use
    /// [`ShardedMetrics::shard`] rather than re-merging per scrape).
    pub fn metrics(&self) -> ShardedMetrics<'_, K> {
        let per_shard: Vec<&StoreMetrics<K>> = self.shards.iter().map(|s| s.metrics()).collect();
        let mut merged = StoreMetrics::new();
        for m in &per_shard {
            merged.merge(m);
        }
        ShardedMetrics { per_shard, merged }
    }

    /// The refresh cost model the shards charge against.
    pub fn cost_model(&self) -> &CostModel {
        self.shards[0].cost_model()
    }

    /// Decompose the façade into its routing ring and shard stores — the
    /// entry point for deployments that give each shard its own executor
    /// (the actor runtime moves every store onto its own thread and keeps
    /// the ring on the routing side).
    pub fn into_parts(self) -> (ShardRouter, Vec<PrecisionStore<K>>) {
        (self.router, self.shards)
    }

    /// Reassemble a façade from parts produced by
    /// [`into_parts`](ShardedStore::into_parts). The ring must address
    /// exactly `shards.len()` shards (ids `0..n`, as built by
    /// [`ShardedStoreBuilder`]) or routing would index out of bounds. For
    /// sparse rings (after elastic add/remove) use
    /// [`from_routed_parts`](ShardedStore::from_routed_parts).
    pub fn from_parts(
        router: ShardRouter,
        shards: Vec<PrecisionStore<K>>,
    ) -> Result<Self, StoreError> {
        let dense = router.shard_ids().iter().enumerate().all(|(i, &id)| id as usize == i);
        if router.len() != shards.len() || !dense {
            return Err(StoreError::Config(format!(
                "ring addresses shards {:?} but {} store(s) were supplied",
                router.shard_ids(),
                shards.len()
            )));
        }
        let ids = router.shard_ids().to_vec();
        Ok(ShardedStore { router, ids, shards, _key: PhantomData })
    }

    /// Direct (read-only) access to one shard by slot index, e.g. for
    /// tests and inspection tooling.
    pub fn shard(&self, shard: usize) -> Option<&PrecisionStore<K>> {
        self.shards.get(shard)
    }

    /// Snapshot every shard's full state into its spool and compact the
    /// logs (see [`PrecisionStore::checkpoint`]). Shards without a spool
    /// are no-ops, so this is safe to call on any fleet.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        for shard in &mut self.shards {
            shard.checkpoint()?;
        }
        Ok(())
    }

    /// Total number of registered sources across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(PrecisionStore::len).sum()
    }

    /// Whether no shard has any source.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(PrecisionStore::is_empty)
    }

    /// Whether `key` has a registered source (on its owning shard).
    pub fn contains_key(&self, key: &K) -> bool {
        self.shards[self.slot_of(key)].contains_key(key)
    }

    /// Iterate over every registered key, shard by shard (registration
    /// order within each shard).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.shards.iter().flat_map(|s| s.keys())
    }

    /// Total number of keys resident across the shard caches.
    pub fn cached_len(&self) -> usize {
        self.shards.iter().map(PrecisionStore::cached_len).sum()
    }

    /// The interval the owning shard's cache currently holds for `key`.
    pub fn cached_interval(&self, key: &K, now: TimeMs) -> Option<Interval> {
        self.shards[self.slot_of(key)].cached_interval(key, now)
    }

    /// The policy's internal width for `key` on its owning shard.
    pub fn internal_width(&self, key: &K) -> Option<f64> {
        self.shards[self.slot_of(key)].internal_width(key)
    }

    /// The source-side exact value for `key` on its owning shard.
    pub fn value(&self, key: &K) -> Option<f64> {
        self.shards[self.slot_of(key)].value(key)
    }
}

impl<K: SpoolKey + Hash + Ord + Clone> ShardedStore<K, PrecisionStore<K>> {
    /// Rebuild a fleet from the spool directory a previous process left
    /// behind (written by
    /// [`with_spool`](ShardedStoreBuilder::with_spool)): read the fleet
    /// manifest, rebuild the identical consistent-hash ring, and recover
    /// each shard's store from `dir/shard-<id>/`. Every shard resumes
    /// with its converged widths and keeps logging to the same spool.
    pub fn recover(dir: &str) -> Result<Self, StoreError> {
        Self::recover_with_config(dir, SpoolConfig::default())
    }

    /// [`recover`](ShardedStore::recover) with explicit spool tuning.
    pub fn recover_with_config(dir: &str, cfg: SpoolConfig) -> Result<Self, StoreError> {
        let (vnodes, ids) = manifest::read_manifest(dir)?;
        let router = ShardRouter::with_shards(&ids, vnodes)?;
        let parts = ids
            .iter()
            .map(|&id| {
                PrecisionStore::recover_with_config(&manifest::shard_dir(dir, id), cfg)
                    .map(|store| (id, store))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_routed_parts(router, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_queries::{satisfies_relative, QueryError};

    fn fleet(shards: usize, n_keys: u64) -> ShardedStore<u64> {
        let mut b = ShardedStoreBuilder::new()
            .shards(shards)
            .vnodes(32)
            .initial_width(InitialWidth::Fixed(10.0));
        for k in 0..n_keys {
            b = b.source(k, 100.0 * k as f64);
        }
        b.build().unwrap()
    }

    #[test]
    fn keys_spread_across_shards() {
        let s = fleet(4, 64);
        assert_eq!(s.len(), 64);
        assert_eq!(s.shard_count(), 4);
        let occupied = (0..4).filter(|&i| !s.shard(i).unwrap().is_empty()).count();
        assert!(occupied >= 2, "64 keys landed on {occupied} shard(s)");
        // Every key is findable and routed consistently.
        for k in 0..64u64 {
            assert!(s.contains_key(&k));
            assert!(s.shard(s.shard_of(&k)).unwrap().contains_key(&k));
        }
        assert_eq!(s.keys().count(), 64);
    }

    #[test]
    fn reads_and_writes_route_to_owning_shard() {
        let mut s = fleet(4, 8);
        let shard = s.shard_of(&3);
        let r = s.read(&3, Constraint::Absolute(10.0), 0).unwrap();
        assert!(!r.refreshed);
        assert!(r.answer.contains(300.0));
        s.write(&3, 600.0, 1_000).unwrap(); // escapes [295, 305]
        let m = s.metrics();
        assert_eq!(m.shard(shard).unwrap().totals().reads, 1);
        assert_eq!(m.shard(shard).unwrap().vr_count(), 1);
        assert_eq!(m.merged().totals().reads, 1);
        assert_eq!(m.merged().vr_count(), 1);
        // Untouched shards report nothing.
        let touched: u64 = m.per_shard().iter().map(|sm| sm.totals().reads).sum();
        assert_eq!(touched, 1);
    }

    #[test]
    fn sum_aggregate_meets_budget_across_shards() {
        let mut s = fleet(4, 16);
        let keys: Vec<u64> = (0..16).collect();
        let truth: f64 = (0..16).map(|k| 100.0 * k as f64).sum();
        for delta in [1_000.0, 40.0, 8.0, 0.0] {
            let out =
                s.aggregate(AggregateKind::Sum, &keys, Constraint::Absolute(delta), 0).unwrap();
            assert!(out.answer.width() <= delta + 1e-9, "delta={delta}");
            assert!(out.answer.contains(truth), "delta={delta}");
        }
    }

    #[test]
    fn extrema_and_avg_compose_across_shards() {
        let mut s = fleet(4, 12);
        let keys: Vec<u64> = (0..12).collect();
        let out = s.aggregate(AggregateKind::Max, &keys, Constraint::Absolute(5.0), 0).unwrap();
        assert!(out.answer.width() <= 5.0 + 1e-9);
        assert!(out.answer.contains(1_100.0));
        let out = s.aggregate(AggregateKind::Min, &keys, Constraint::Absolute(5.0), 0).unwrap();
        assert!(out.answer.contains(0.0));
        let avg_truth = (0..12).map(|k| 100.0 * k as f64).sum::<f64>() / 12.0;
        let out = s.aggregate(AggregateKind::Avg, &keys, Constraint::Absolute(2.0), 0).unwrap();
        assert!(out.answer.width() <= 2.0 + 1e-9);
        assert!(out.answer.contains(avg_truth));
        let out = s.aggregate(AggregateKind::Avg, &keys, Constraint::Exact, 0).unwrap();
        assert!(out.answer.width() <= 1e-9);
        assert!(out.answer.contains(avg_truth));
    }

    #[test]
    fn relative_aggregate_probes_then_escalates() {
        let mut s = fleet(4, 8);
        let keys: Vec<u64> = (0..8).collect();
        let truth: f64 = (0..8).map(|k| 100.0 * k as f64).sum();
        // Loose ρ: the cached bounds certify it, nothing is fetched.
        let out = s.aggregate(AggregateKind::Sum, &keys, Constraint::Relative(0.5), 0).unwrap();
        assert!(out.refreshed.is_empty());
        assert!(out.answer.contains(truth));
        assert_eq!(s.metrics().merged().qr_count(), 0);
        // Tight ρ: escalation fetches and returns a certified answer.
        let out = s.aggregate(AggregateKind::Sum, &keys, Constraint::Relative(0.001), 0).unwrap();
        assert!(!out.refreshed.is_empty());
        assert!(satisfies_relative(&out.answer, 0.001));
        assert!(out.answer.contains(truth));
    }

    #[test]
    fn relative_aggregate_with_wild_bounds_avoids_full_exact_fanout() {
        // Sources far from zero, but one key straddles zero and drags the
        // probe's magnitude to 0. The refinement must resolve the wild
        // items via per-shard local plans instead of fetching all keys.
        let mut b =
            ShardedStoreBuilder::new().shards(4).vnodes(32).initial_width(InitialWidth::Fixed(4.0));
        for k in 0..32u64 {
            b = b.source(k, 1_000.0 + k as f64);
        }
        // Key 99's interval [−2, 2] straddles zero.
        b = b.source(99, 0.0);
        let mut s = b.build().unwrap();
        let keys: Vec<u64> = (0..32).chain([99]).collect();
        let truth: f64 = (0..32).map(|k| 1_000.0 + k as f64).sum();
        let out = s.aggregate(AggregateKind::Sum, &keys, Constraint::Relative(0.01), 0).unwrap();
        assert!(satisfies_relative(&out.answer, 0.01));
        assert!(out.answer.contains(truth));
        // The certificate needs only a fraction of the keys, not all 33:
        // the local round resolves the straddling item, the budget round
        // narrows the rest only as far as ρ demands.
        assert!(
            out.refreshed.len() < keys.len(),
            "fetched {} of {} keys — degenerated to a full exact fan-out",
            out.refreshed.len(),
            keys.len()
        );
    }

    #[test]
    fn empty_aggregates_mirror_single_store() {
        let mut s = fleet(2, 4);
        let none: &[u64] = &[];
        let out = s.aggregate(AggregateKind::Sum, none, Constraint::Absolute(1.0), 0).unwrap();
        assert_eq!((out.answer.lo(), out.answer.hi()), (0.0, 0.0));
        assert!(out.refreshed.is_empty());
        for kind in [AggregateKind::Max, AggregateKind::Min, AggregateKind::Avg] {
            assert!(matches!(
                s.aggregate(kind, none, Constraint::Absolute(1.0), 0),
                Err(StoreError::Query(QueryError::EmptyInput))
            ));
        }
    }

    #[test]
    fn unknown_keys_error_without_charging_any_shard() {
        let mut s = fleet(4, 4);
        assert!(matches!(s.read(&99, Constraint::Exact, 0), Err(StoreError::UnknownKey)));
        assert!(matches!(s.write(&99, 0.0, 0), Err(StoreError::UnknownKey)));
        assert!(matches!(
            s.aggregate(AggregateKind::Sum, &[0, 99], Constraint::Exact, 0),
            Err(StoreError::UnknownKey)
        ));
        assert_eq!(s.metrics().merged().total_cost(), 0.0);
    }

    #[test]
    fn insert_after_build_routes_consistently() {
        let mut s = fleet(4, 0);
        assert!(s.is_empty());
        for k in 0..10u64 {
            s.insert(k, k as f64, 0).unwrap();
        }
        assert!(matches!(s.insert(5, 0.0, 0), Err(StoreError::DuplicateKey)));
        s.insert_with_policy(10, 10.0, PolicySpec::Fixed { width: 2.0 }, 0).unwrap();
        assert_eq!(s.len(), 11);
        let r = s.read(&10, Constraint::Absolute(2.0), 0).unwrap();
        assert!(!r.refreshed);
    }

    #[test]
    fn write_batch_matches_routed_writes() {
        let mut batched = fleet(4, 16);
        let mut routed = fleet(4, 16);
        let updates: Vec<(u64, f64)> = (0..16u64).map(|k| (k, 1_000.0 + k as f64)).collect();
        let out = batched.write_batch(&updates, 1_000).unwrap();
        let mut refreshes = 0;
        for (k, v) in &updates {
            refreshes += routed.write(k, *v, 1_000).unwrap().refreshes;
        }
        assert_eq!(out.refreshes, refreshes);
        for k in 0..16u64 {
            assert_eq!(batched.value(&k), routed.value(&k));
            assert_eq!(batched.internal_width(&k), routed.internal_width(&k));
            assert_eq!(batched.cached_interval(&k, 1_000), routed.cached_interval(&k, 1_000));
        }
        assert_eq!(batched.metrics().merged().totals(), routed.metrics().merged().totals());
    }

    #[test]
    fn write_batch_is_all_or_nothing_across_shards() {
        let mut s = fleet(4, 8);
        assert!(matches!(s.write_batch(&[(0, 1.0), (99, 2.0)], 0), Err(StoreError::UnknownKey)));
        assert!(s.write_batch(&[(0, 1.0), (1, f64::INFINITY)], 0).is_err());
        // No shard applied anything.
        assert_eq!(s.metrics().merged().totals().writes, 0);
        assert_eq!(s.value(&0), Some(0.0));
        assert_eq!(s.write_batch(&[], 0).unwrap().refreshes, 0);
    }

    #[test]
    fn parts_roundtrip_preserves_state() {
        let mut s = fleet(4, 12);
        s.write(&3, 777.0, 0).unwrap();
        let reads = s.metrics().merged().totals().reads;
        let (router, shards) = s.into_parts();
        assert_eq!(shards.len(), 4);
        let s = ShardedStore::from_parts(router, shards).unwrap();
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.value(&3), Some(777.0));
        assert_eq!(s.metrics().merged().totals().reads, reads);
        // Mismatched parts are rejected.
        let (router, mut shards) = s.into_parts();
        shards.pop();
        assert!(matches!(ShardedStore::from_parts(router, shards), Err(StoreError::Config(_))));
    }

    /// One shard with the same tuning as [`fleet`], for use as an elastic
    /// add target.
    fn lone_store() -> PrecisionStore<u64> {
        apcache_store::StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0)).build().unwrap()
    }

    /// Drive identical traffic into a store and return per-key probes.
    fn probe(
        s: &ShardedStore<u64>,
        keys: impl Iterator<Item = u64>,
    ) -> Vec<(Option<f64>, Option<f64>, Option<Interval>)> {
        keys.map(|k| (s.value(&k), s.internal_width(&k), s.cached_interval(&k, 0))).collect()
    }

    #[test]
    fn add_shard_migrates_remapped_keys_with_protocol_state() {
        let mut grown = fleet(2, 48);
        let reference = fleet(2, 48);
        // Converge some adaptive widths away from their initial values
        // before resharding, on both stores identically.
        let mut grown_ref = fleet(2, 48);
        for (s, _) in [(&mut grown, 0), (&mut grown_ref, 1)] {
            for k in 0..48u64 {
                s.write(&k, 100.0 * k as f64 + 500.0, 10).unwrap(); // escape → VR
                s.read(&k, Constraint::Absolute(50.0), 20).unwrap();
            }
        }
        let before = probe(&grown, 0..48);
        assert_eq!(before, probe(&grown_ref, 0..48), "identical traffic, identical state");
        drop(reference);

        let new_id = grown.add_shard_backend(lone_store()).unwrap();
        assert_eq!(grown.shard_count(), 3);
        assert_eq!(grown.shard_ids(), &[0, 1, new_id]);
        // The new shard actually owns keys (48 keys, ~1/3 remap).
        let moved: Vec<u64> = (0..48u64).filter(|k| grown.shard_of(k) == new_id as usize).collect();
        assert!(!moved.is_empty(), "no key remapped to the new shard");
        assert_eq!(grown.len(), 48, "no key lost or duplicated");
        // Every key — moved or not — kept its value, converged width, and
        // cached interval bit-for-bit. This is the stranded-keys bugfix:
        // before migration existed, a remapped key read as cold.
        assert_eq!(probe(&grown, 0..48), before);
        // Per-key metrics moved with the keys.
        let merged = grown.metrics_snapshot().unwrap();
        assert_eq!(merged.totals(), grown_ref.metrics().merged().totals());
        for k in moved {
            assert_eq!(merged.for_key(&k), grown_ref.metrics().merged().for_key(&k), "key {k}");
        }
        // The protocol continues seamlessly: same post-migration traffic
        // gives the same answers as the never-resharded reference.
        for k in 0..48u64 {
            let a = grown.read(&k, Constraint::Absolute(30.0), 30).unwrap();
            let b = grown_ref.read(&k, Constraint::Absolute(30.0), 30).unwrap();
            assert_eq!((a.answer, a.refreshed), (b.answer, b.refreshed), "key {k}");
        }
    }

    #[test]
    fn remove_shard_rehomes_every_resident_key() {
        let mut s = fleet(3, 36);
        for k in 0..36u64 {
            s.write(&k, k as f64 * 7.0 + 1_000.0, 5).unwrap();
        }
        let before = probe(&s, 0..36);
        let drained = s.remove_shard(1).unwrap();
        assert!(drained.is_empty(), "drained shard kept {} key(s)", drained.len());
        assert_eq!(s.shard_count(), 2);
        assert_eq!(s.shard_ids(), &[0, 2]);
        assert_eq!(s.len(), 36);
        assert_eq!(probe(&s, 0..36), before, "state changed during drain");
        // Removing the last shards errors; unknown ids error.
        assert!(matches!(s.remove_shard(7), Err(StoreError::Config(_))));
        s.remove_shard(0).unwrap();
        assert!(matches!(s.remove_shard(2), Err(StoreError::Config(_))), "last shard must stay");
        assert_eq!(s.len(), 36, "all keys on the survivor");
    }

    #[test]
    fn grow_then_shrink_roundtrips_to_reference_behavior() {
        let mut elastic = fleet(2, 24);
        let mut reference = fleet(2, 24);
        for k in 0..24u64 {
            elastic.write(&k, 3.0 * k as f64, 1).unwrap();
            reference.write(&k, 3.0 * k as f64, 1).unwrap();
        }
        let id = elastic.add_shard_backend(lone_store()).unwrap();
        elastic.remove_shard(id).unwrap();
        // Ring membership differs from the original (ids never recycle),
        // but with {0, 1} back in force routing is identical — and so is
        // every key's protocol state.
        assert_eq!(elastic.shard_ids(), &[0, 1]);
        for k in 0..24u64 {
            let a = elastic.read(&k, Constraint::Absolute(4.0), 10).unwrap();
            let b = reference.read(&k, Constraint::Absolute(4.0), 10).unwrap();
            assert_eq!((a.answer, a.refreshed), (b.answer, b.refreshed), "key {k}");
        }
        assert_eq!(elastic.metrics().merged().totals(), reference.metrics().merged().totals());
    }

    #[test]
    fn routed_parts_roundtrip_and_validation() {
        let mut s = fleet(3, 12);
        let id = s.add_shard_backend(lone_store()).unwrap();
        s.remove_shard(0).unwrap();
        let n = s.len();
        let (router, parts) = s.into_routed_parts();
        let ids: Vec<u32> = parts.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2, id]);
        let s = ShardedStore::from_routed_parts(router, parts).unwrap();
        assert_eq!(s.len(), n);
        // Mismatched id sets are rejected.
        let (router, mut parts) = s.into_routed_parts();
        parts[0].0 = 99;
        assert!(matches!(
            ShardedStore::from_routed_parts(router, parts),
            Err(StoreError::Config(_))
        ));
    }

    #[test]
    fn fleet_spool_recovers_routing_and_state_bit_identical() {
        let dir = std::env::temp_dir().join(format!("apcache-fleet-spool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir = dir.to_str().unwrap().to_string();

        let build = |spool: bool| {
            let mut b = ShardedStoreBuilder::new()
                .shards(4)
                .vnodes(32)
                .initial_width(InitialWidth::Fixed(10.0));
            if spool {
                b = b.with_spool(dir.clone());
            }
            for k in 0..24u64 {
                b = b.source(k, 100.0 * k as f64);
            }
            b.build().unwrap()
        };
        let mut reference = build(false);
        let mut subject = build(true);
        for s in [&mut reference, &mut subject] {
            for k in 0..24u64 {
                s.write(&k, 100.0 * k as f64 + 500.0, 10).unwrap(); // escape → VR
                s.read(&k, Constraint::Absolute(50.0), 20).unwrap(); // QR
            }
        }
        // "Kill" the fleet: drop it; only the spooled state survives.
        drop(subject);
        let mut recovered = ShardedStore::<u64>::recover(&dir).unwrap();
        assert_eq!(recovered.shard_count(), 4);
        for k in 0..24u64 {
            assert_eq!(recovered.shard_of(&k), reference.shard_of(&k), "key {k} rerouted");
            assert_eq!(recovered.value(&k), reference.value(&k), "key {k}");
            assert_eq!(recovered.internal_width(&k), reference.internal_width(&k), "key {k}");
            assert_eq!(
                recovered.cached_interval(&k, 20),
                reference.cached_interval(&k, 20),
                "key {k}"
            );
        }
        // The recovered fleet keeps serving — and logging — identically.
        for s in [&mut reference, &mut recovered] {
            for k in 0..24u64 {
                s.write(&k, 40.0 * k as f64, 30).unwrap();
            }
        }
        for k in 0..24u64 {
            let a = recovered.read(&k, Constraint::Absolute(25.0), 40).unwrap();
            let b = reference.read(&k, Constraint::Absolute(25.0), 40).unwrap();
            assert_eq!((a.answer, a.refreshed), (b.answer, b.refreshed), "key {k}");
        }
        // Checkpoint compacts every shard's log; recovery still works.
        recovered.checkpoint().unwrap();
        drop(recovered);
        let again = ShardedStore::<u64>::recover(&dir).unwrap();
        for k in 0..24u64 {
            assert_eq!(again.internal_width(&k), reference.internal_width(&k), "key {k}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_sources_rejected_at_build() {
        let err =
            ShardedStoreBuilder::new().shards(4).source("dup", 1.0).source("dup", 2.0).build();
        assert!(matches!(err, Err(StoreError::DuplicateKey)));
    }

    #[test]
    fn builder_rejects_zero_shards_and_vnodes() {
        assert!(ShardedStoreBuilder::<u64>::new().shards(0).build().is_err());
        assert!(ShardedStoreBuilder::<u64>::new().vnodes(0).build().is_err());
    }

    #[test]
    fn capacity_is_per_shard() {
        let mut b = ShardedStoreBuilder::new()
            .shards(4)
            .capacity_per_shard(2)
            .initial_width(InitialWidth::Fixed(4.0));
        for k in 0..40u64 {
            b = b.source(k, k as f64);
        }
        let s = b.build().unwrap();
        assert!(s.cached_len() <= 8, "cached {} > 4 shards * capacity 2", s.cached_len());
        for i in 0..4 {
            assert!(s.shard(i).unwrap().cached_len() <= 2);
        }
    }
}
