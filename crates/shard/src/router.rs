//! Consistent-hash routing of keys to shards.
//!
//! The router places every shard at `vnodes` pseudo-random points on a
//! 64-bit hash ring; a key routes to the shard owning the first point at
//! or after the key's own hash (wrapping at the top). Virtual nodes smooth
//! the partition sizes; the classical consistent-hashing property holds:
//! adding a shard only moves keys **to** the new shard (roughly a `1/(n+1)`
//! fraction of them), and removing a shard only moves the keys it owned.

use std::hash::Hash;

use apcache_store::StoreError;

use crate::hash::{key_point, vnode_point};

/// A consistent-hash ring mapping keys to shard ids.
///
/// Shard ids are stable `u32`s: they never change when other shards are
/// added or removed, so callers can keep per-shard state in a map keyed by
/// id (or, for the common fixed-fleet case where ids are `0..n`, in a
/// vector indexed by id).
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// Live shard ids in creation order.
    shards: Vec<u32>,
    /// Next id to assign in [`ShardRouter::add_shard`].
    next_id: u32,
    /// Virtual nodes per shard.
    vnodes: u32,
    /// `(point, shard id)` sorted by `(point, id)`.
    ring: Vec<(u64, u32)>,
}

impl ShardRouter {
    /// A ring over shards `0..n_shards`, each with `vnodes` virtual nodes.
    pub fn new(n_shards: usize, vnodes: usize) -> Result<Self, StoreError> {
        if n_shards == 0 {
            return Err(StoreError::Config("a shard ring needs at least one shard".into()));
        }
        if vnodes == 0 {
            return Err(StoreError::Config("each shard needs at least one virtual node".into()));
        }
        let n = u32::try_from(n_shards)
            .map_err(|_| StoreError::Config("shard count exceeds u32".into()))?;
        let v = u32::try_from(vnodes)
            .map_err(|_| StoreError::Config("vnode count exceeds u32".into()))?;
        let mut router =
            ShardRouter { shards: (0..n).collect(), next_id: n, vnodes: v, ring: Vec::new() };
        router.rebuild_ring();
        Ok(router)
    }

    /// A ring over an explicit id set — the recovery path, where a spool
    /// manifest names the (possibly sparse, after elastic add/remove)
    /// shard ids a previous process was running. Routing depends only on
    /// `(id, vnodes)`, so rebuilding the ring from the same members
    /// reproduces the same key placement.
    pub fn with_shards(ids: &[u32], vnodes: usize) -> Result<Self, StoreError> {
        if ids.is_empty() {
            return Err(StoreError::Config("a shard ring needs at least one shard".into()));
        }
        if vnodes == 0 {
            return Err(StoreError::Config("each shard needs at least one virtual node".into()));
        }
        let v = u32::try_from(vnodes)
            .map_err(|_| StoreError::Config("vnode count exceeds u32".into()))?;
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(StoreError::Config(format!("duplicate shard id in ring: {ids:?}")));
        }
        let next_id = sorted.last().expect("non-empty") + 1;
        let mut router = ShardRouter { shards: ids.to_vec(), next_id, vnodes: v, ring: Vec::new() };
        router.rebuild_ring();
        Ok(router)
    }

    fn rebuild_ring(&mut self) {
        self.ring.clear();
        self.ring.reserve(self.shards.len() * self.vnodes as usize);
        for &id in &self.shards {
            for v in 0..self.vnodes {
                self.ring.push((vnode_point(id, v), id));
            }
        }
        self.ring.sort_unstable();
    }

    /// The shard id owning `key`.
    pub fn route<K: Hash>(&self, key: &K) -> u32 {
        let point = key_point(key);
        let idx = self.ring.partition_point(|&(p, _)| p < point);
        let idx = if idx == self.ring.len() { 0 } else { idx };
        self.ring[idx].1
    }

    /// Add a shard; returns its (fresh, never recycled) id.
    pub fn add_shard(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.shards.push(id);
        for v in 0..self.vnodes {
            self.ring.push((vnode_point(id, v), id));
        }
        self.ring.sort_unstable();
        id
    }

    /// Remove a shard from the ring. Its keys redistribute to the ring
    /// successors; every other key keeps its shard. The last shard cannot
    /// be removed (an empty ring routes nothing).
    pub fn remove_shard(&mut self, id: u32) -> Result<(), StoreError> {
        if !self.shards.contains(&id) {
            return Err(StoreError::Config(format!("shard {id} is not on the ring")));
        }
        if self.shards.len() == 1 {
            return Err(StoreError::Config("cannot remove the last shard".into()));
        }
        self.shards.retain(|&s| s != id);
        self.ring.retain(|&(_, s)| s != id);
        Ok(())
    }

    /// Live shard ids, in creation order.
    pub fn shard_ids(&self) -> &[u32] {
        &self.shards
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards (never true for a built router).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routes(router: &ShardRouter, n_keys: usize) -> Vec<u32> {
        (0..n_keys as u64).map(|k| router.route(&k)).collect()
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(ShardRouter::new(0, 8).is_err());
        assert!(ShardRouter::new(4, 0).is_err());
        assert!(ShardRouter::new(1, 1).is_ok());
    }

    #[test]
    fn routing_is_deterministic_across_instances() {
        // Satellite: vnode counts of 1 and 128 both route deterministically
        // across runs (no per-process seeding anywhere in the path).
        for vnodes in [1usize, 128] {
            let a = ShardRouter::new(4, vnodes).unwrap();
            let b = ShardRouter::new(4, vnodes).unwrap();
            assert_eq!(routes(&a, 10_000), routes(&b, 10_000), "vnodes={vnodes}");
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = ShardRouter::new(1, 64).unwrap();
        assert!(routes(&r, 1_000).iter().all(|&s| s == 0));
    }

    #[test]
    fn vnodes_balance_the_partitions() {
        let r = ShardRouter::new(4, 128).unwrap();
        let mut counts = [0usize; 4];
        for s in routes(&r, 40_000) {
            counts[s as usize] += 1;
        }
        // Perfect balance is 10k per shard; 128 vnodes should hold every
        // shard within a factor of ~1.5 of fair share.
        for (s, &c) in counts.iter().enumerate() {
            assert!((6_000..=15_000).contains(&c), "shard {s} owns {c} of 40000");
        }
    }

    #[test]
    fn adding_a_shard_moves_few_keys_and_only_to_it() {
        const KEYS: usize = 10_000;
        for n in [2usize, 4, 8] {
            let mut r = ShardRouter::new(n, 64).unwrap();
            let before = routes(&r, KEYS);
            let new_id = r.add_shard();
            let after = routes(&r, KEYS);
            let mut moved = 0usize;
            for (b, a) in before.iter().zip(&after) {
                if b != a {
                    // Consistent hashing: a remapped key can only have moved
                    // to the shard that just joined.
                    assert_eq!(*a, new_id, "key moved between pre-existing shards");
                    moved += 1;
                }
            }
            // Expected share is KEYS/(n+1); allow vnode-placement variance
            // up to the satellite's "keys/N + slack" ceiling.
            let ceiling = KEYS / n + KEYS / 10;
            assert!(moved <= ceiling, "n={n}: moved {moved} > ceiling {ceiling}");
            assert!(moved > 0, "n={n}: the new shard received nothing");
        }
    }

    #[test]
    fn removing_a_shard_never_loses_a_key() {
        const KEYS: usize = 10_000;
        let mut r = ShardRouter::new(4, 64).unwrap();
        let before = routes(&r, KEYS);
        r.remove_shard(2).unwrap();
        assert_eq!(r.shard_ids(), &[0, 1, 3]);
        let after = routes(&r, KEYS);
        for (k, (b, a)) in before.iter().zip(&after).enumerate() {
            // Every key still routes somewhere live…
            assert!(r.shard_ids().contains(a), "key {k} routed to dead shard {a}");
            // …and keys that were not on the removed shard stay put.
            if *b != 2 {
                assert_eq!(b, a, "key {k} moved although its shard survived");
            }
        }
    }

    #[test]
    fn add_then_remove_round_trips() {
        let mut r = ShardRouter::new(3, 32).unwrap();
        let before = routes(&r, 5_000);
        let id = r.add_shard();
        r.remove_shard(id).unwrap();
        assert_eq!(before, routes(&r, 5_000));
    }

    #[test]
    fn with_shards_reproduces_routing_and_keeps_ids_fresh() {
        // Dense ids: identical to the ordinary constructor.
        let dense = ShardRouter::with_shards(&[0, 1, 2, 3], 32).unwrap();
        assert_eq!(routes(&dense, 5_000), routes(&ShardRouter::new(4, 32).unwrap(), 5_000));
        // Sparse ids (post-elastic fleet): routing matches the fleet that
        // grew into the same membership.
        let mut grown = ShardRouter::new(3, 32).unwrap();
        grown.remove_shard(1).unwrap();
        let id = grown.add_shard();
        let rebuilt = ShardRouter::with_shards(&[0, 2, id], 32).unwrap();
        assert_eq!(routes(&rebuilt, 5_000), routes(&grown, 5_000));
        // Fresh ids never collide with recovered members.
        let mut r = ShardRouter::with_shards(&[7, 3], 8).unwrap();
        assert_eq!(r.add_shard(), 8);
        // Degenerate inputs are rejected.
        assert!(ShardRouter::with_shards(&[], 8).is_err());
        assert!(ShardRouter::with_shards(&[1, 1], 8).is_err());
        assert!(ShardRouter::with_shards(&[0], 0).is_err());
    }

    #[test]
    fn remove_guards() {
        let mut r = ShardRouter::new(1, 8).unwrap();
        assert!(r.remove_shard(0).is_err(), "cannot drop the last shard");
        assert!(r.remove_shard(77).is_err(), "unknown id rejected");
        let mut r = ShardRouter::new(2, 8).unwrap();
        r.remove_shard(0).unwrap();
        assert_eq!(r.len(), 1);
        assert!(routes(&r, 100).iter().all(|&s| s == 1));
    }
}
