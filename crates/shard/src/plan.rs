//! Scatter/gather arithmetic for deployment-wide aggregates.
//!
//! A query over keys spread across `N` shards fans out as one per-shard
//! sub-query and merges the bounded partial answers with interval
//! arithmetic. This module is the single home of that arithmetic — which
//! aggregate kind each shard evaluates locally, what slice of the
//! precision budget it receives, and how the partial answers fold back
//! into the deployment-wide interval — shared by the synchronous
//! [`ShardedStore`](crate::ShardedStore) and by the actor runtime
//! (`apcache-runtime`), whose scatter/gather rounds must compose answers
//! by exactly the same rules to stay conformant.
//!
//! The constraint dispatch lives in [`AggregatePlan`], an explicit,
//! *resumable* state machine: callers ask for the next [`RoundSpec`],
//! run the fan-out however they like (inline shard calls, mailbox
//! messages, submitted tickets), and [`feed`](AggregatePlan::feed) the
//! partial answers back until the plan completes. The blocking driver
//! [`evaluate_constraint`] is a thin loop over the same machine, so the
//! synchronous and ticketed paths cannot drift.

use apcache_core::Interval;
use apcache_queries::relative::interval_magnitude;
use apcache_queries::{satisfies_relative, AggregateKind, QueryError};
use apcache_store::{AggregateOutcome, Constraint, StoreError};

/// The aggregate kind a shard evaluates locally on behalf of a
/// deployment-wide `kind`: AVG is delegated as SUM — the partial sums add
/// across shards and are divided by `n` once, at the merge (per-shard
/// averages would need a weighted recombination instead). Every other
/// kind passes through.
pub fn shard_kind(kind: AggregateKind) -> AggregateKind {
    if kind == AggregateKind::Avg {
        AggregateKind::Sum
    } else {
        kind
    }
}

/// The absolute constraint handed to a shard holding `n_shard` of the
/// query's `n_total` keys, given the deployment-wide budget `delta`
/// (`0` requests exactness; pair with [`shard_kind`] for the kind the
/// shard should evaluate):
///
/// * **SUM** — the proportional share `δ·n_s/n`; the partial widths add,
///   so `width(Σ) ≤ Σ δ·n_s/n = δ`.
/// * **AVG** — evaluated as SUM against the n-scaled budget, so the
///   share is `(δ·n)·n_s/n = δ·n_s`.
/// * **MAX / MIN** — the full budget `δ`: the merged extremum is at most
///   as wide as the partial answer of the shard holding the winner.
pub fn shard_constraint(
    kind: AggregateKind,
    delta: f64,
    n_total: usize,
    n_shard: usize,
) -> Constraint {
    match kind {
        AggregateKind::Sum => Constraint::Absolute(delta * n_shard as f64 / n_total as f64),
        AggregateKind::Avg => Constraint::Absolute(delta * n_shard as f64),
        AggregateKind::Max | AggregateKind::Min => Constraint::Absolute(delta),
    }
}

/// Fold per-shard partial answers into the deployment-wide interval.
///
/// `partials` must have been produced under [`shard_kind`]; `n_keys` is
/// the query's total key count (AVG divides its merged SUM by it here,
/// exactly once).
pub fn merge_partials(
    kind: AggregateKind,
    partials: &[Interval],
    n_keys: usize,
) -> Result<Interval, StoreError> {
    let mut iter = partials.iter();
    let first = *iter.next().ok_or(QueryError::EmptyInput)?;
    let merged = match kind {
        AggregateKind::Sum => iter.fold(first, |acc, iv| acc.add(iv)),
        AggregateKind::Max => iter.fold(first, |acc, iv| acc.max_of(iv)),
        AggregateKind::Min => iter.fold(first, |acc, iv| acc.min_of(iv)),
        AggregateKind::Avg => {
            let sum = iter.fold(first, |acc, iv| acc.add(iv));
            sum.scale(1.0 / n_keys as f64)
                .map_err(|_| StoreError::Config("AVG scale failed".into()))?
        }
    };
    Ok(merged)
}

/// The deployment-wide answer for an aggregate over **no keys**, shared
/// by both façades so the edge-case semantics cannot drift: SUM of
/// nothing is the point interval `0`; MAX/MIN/AVG of nothing are
/// undefined ([`QueryError::EmptyInput`]) — mirroring the single store.
pub fn empty_aggregate<K>(kind: AggregateKind) -> Result<AggregateOutcome<K>, StoreError> {
    match kind {
        AggregateKind::Sum => Ok(AggregateOutcome {
            answer: Interval::point(0.0).expect("0 is finite"),
            refreshed: Vec::new(),
        }),
        _ => Err(QueryError::EmptyInput.into()),
    }
}

/// How one scatter/gather round slices the precision budget across the
/// shards that hold the query's keys. Plain data (no closures), so a
/// pending round can be parked inside a completion queue and re-issued by
/// whichever thread harvests it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetRule {
    /// Every shard receives the same constraint (the Relative probe's
    /// infinite budget, or the local-certification round's `ρ`).
    Uniform(Constraint),
    /// Per-kind absolute split: each leg receives
    /// [`shard_constraint`]`(kind, delta, n_total, n_shard)`.
    Split {
        /// The deployment-wide aggregate kind (pre-[`shard_kind`]).
        kind: AggregateKind,
        /// The deployment-wide absolute budget (`0` = exact).
        delta: f64,
        /// The query's total key count.
        n_total: usize,
    },
}

impl BudgetRule {
    /// The constraint for a leg whose shard holds `n_shard` of the keys.
    pub fn constraint_for(&self, n_shard: usize) -> Constraint {
        match *self {
            BudgetRule::Uniform(c) => c,
            BudgetRule::Split { kind, delta, n_total } => {
                shard_constraint(kind, delta, n_total, n_shard)
            }
        }
    }
}

/// One scatter/gather round: the aggregate kind every shard evaluates
/// locally and the budget rule that slices the constraint per leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSpec {
    /// Shard-local aggregate kind (AVG travels as SUM).
    pub local_kind: AggregateKind,
    /// Budget slicing for this round's legs.
    pub budget: BudgetRule,
}

/// Where the refinement stands: which round's partials the plan is
/// waiting for.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PlanState {
    /// Waiting on the final absolute round; its merge is the answer.
    AwaitFinal,
    /// Waiting on the Relative probe (infinite budget — no fetches).
    AwaitProbe(f64),
    /// Waiting on the local-certification round (`ρ` at every shard).
    AwaitLocal(f64),
    /// The answer is in.
    Done,
}

/// The multi-shard constraint-refinement state machine.
///
/// * **Exact / Absolute(δ)** — one round with the per-kind budget split
///   ([`shard_constraint`]), one merge.
/// * **Relative(ρ)** — at most three bounded rounds: (1) **probe** the
///   cached bounds (infinite budget — no fetches); certified → free
///   answer. (2) If the probe's magnitude collapsed to zero (an interval
///   straddling zero or an uncached key), let every shard certify ρ
///   **locally**, which cheaply resolves exactly the wild items. (3)
///   Convert ρ to the absolute budget `ρ·mag` — sound because refreshes
///   only shrink the answer interval, so its magnitude only grows — and
///   finish with the absolute round. A zero magnitude at step 3 means
///   the aggregate genuinely hugs zero, where no finite ρ short of
///   exactness can be certified (the single store's planner shares this
///   degeneracy).
///
/// Drive it with [`start`](AggregatePlan::start) →
/// ([`feed`](AggregatePlan::feed) until `None`) →
/// [`finish`](AggregatePlan::finish); the rounds may execute on any
/// substrate — inline shard calls, mailboxes, submitted tickets — and
/// *interleave with unrelated traffic*, because all refinement state
/// lives here, not on a parked client thread.
#[derive(Debug)]
pub struct AggregatePlan<K> {
    kind: AggregateKind,
    n: usize,
    state: PlanState,
    refreshed: Vec<K>,
    answer: Option<Interval>,
}

impl<K> AggregatePlan<K> {
    /// Open a plan for an aggregate over `n >= 1` keys (empty queries are
    /// [`empty_aggregate`]'s business) and return the first round to run.
    pub fn start(
        kind: AggregateKind,
        constraint: Constraint,
        n: usize,
    ) -> Result<(Self, RoundSpec), StoreError> {
        if n == 0 {
            return Err(QueryError::EmptyInput.into());
        }
        let (state, round) = match constraint {
            Constraint::Exact => (PlanState::AwaitFinal, final_round(kind, 0.0, n)),
            Constraint::Absolute(delta) => (PlanState::AwaitFinal, final_round(kind, delta, n)),
            Constraint::Relative(frac) => (
                PlanState::AwaitProbe(frac),
                RoundSpec {
                    local_kind: shard_kind(kind),
                    budget: BudgetRule::Uniform(Constraint::Absolute(f64::INFINITY)),
                },
            ),
        };
        let plan = AggregatePlan { kind, n, state, refreshed: Vec::new(), answer: None };
        Ok((plan, round))
    }

    /// Feed the completed round's partial answers (in part order — the
    /// same order every round fans out in) and the keys it fetched
    /// exactly. Returns the next round to run, or `None` when the plan is
    /// done and [`finish`](AggregatePlan::finish) may be called.
    pub fn feed(
        &mut self,
        partials: &[Interval],
        refreshed: Vec<K>,
    ) -> Result<Option<RoundSpec>, StoreError> {
        let merged = merge_partials(self.kind, partials, self.n)?;
        match self.state {
            PlanState::AwaitFinal => {
                self.refreshed.extend(refreshed);
                self.answer = Some(merged);
                self.state = PlanState::Done;
                Ok(None)
            }
            PlanState::AwaitProbe(frac) => {
                // The probe runs under an infinite budget: it fetches
                // nothing, so its refresh list is discarded (it is empty).
                if satisfies_relative(&merged, frac) {
                    self.answer = Some(merged);
                    self.state = PlanState::Done;
                    return Ok(None);
                }
                if interval_magnitude(&merged) == 0.0 {
                    self.state = PlanState::AwaitLocal(frac);
                    return Ok(Some(RoundSpec {
                        local_kind: shard_kind(self.kind),
                        budget: BudgetRule::Uniform(Constraint::Relative(frac)),
                    }));
                }
                self.state = PlanState::AwaitFinal;
                Ok(Some(final_round(self.kind, frac * interval_magnitude(&merged), self.n)))
            }
            PlanState::AwaitLocal(frac) => {
                self.refreshed.extend(refreshed);
                if satisfies_relative(&merged, frac) {
                    self.answer = Some(merged);
                    self.state = PlanState::Done;
                    return Ok(None);
                }
                self.state = PlanState::AwaitFinal;
                Ok(Some(final_round(self.kind, frac * interval_magnitude(&merged), self.n)))
            }
            PlanState::Done => {
                Err(StoreError::Config("aggregate plan fed after completion".into()))
            }
        }
    }

    /// Whether the answer is in.
    pub fn is_done(&self) -> bool {
        self.state == PlanState::Done
    }

    /// The completed outcome: the merged answer interval plus every key
    /// fetched exactly, in fetch order across rounds.
    pub fn finish(self) -> Result<AggregateOutcome<K>, StoreError> {
        match self.answer {
            Some(answer) => Ok(AggregateOutcome { answer, refreshed: self.refreshed }),
            None => Err(StoreError::Config("aggregate plan finished before completion".into())),
        }
    }
}

/// The final absolute round (`delta = 0` is exact).
fn final_round(kind: AggregateKind, delta: f64, n: usize) -> RoundSpec {
    RoundSpec {
        local_kind: shard_kind(kind),
        budget: BudgetRule::Split { kind, delta, n_total: n },
    }
}

/// The fan-out primitive [`evaluate_constraint`] drives: run one
/// shard-local aggregate leg per part — `(local_kind, split)` where
/// `split(n_shard)` is that leg's constraint — and return the partial
/// answers in part order plus the keys fetched exactly.
pub type FanOut<'a, K, E> = dyn FnMut(AggregateKind, &dyn Fn(usize) -> Constraint) -> Result<(Vec<Interval>, Vec<K>), E>
    + 'a;

/// Evaluate a multi-shard aggregate over an abstract fan-out primitive:
/// the blocking driver of [`AggregatePlan`] — ask for a round, run it,
/// feed the partials, repeat. [`ShardedStore`](crate::ShardedStore)
/// supplies a fan-out that calls its shards directly; the actor runtime's
/// blocking verbs go through its ticketed submission path, which advances
/// the *same* state machine — so the answers and refresh plans of every
/// façade are computed by literally the same code.
pub fn evaluate_constraint<K, E: From<StoreError>>(
    kind: AggregateKind,
    constraint: Constraint,
    n: usize,
    fan_out: &mut FanOut<'_, K, E>,
) -> Result<AggregateOutcome<K>, E> {
    let (mut plan, mut round) = AggregatePlan::start(kind, constraint, n).map_err(E::from)?;
    loop {
        let budget = round.budget;
        let (partials, refreshed) = fan_out(round.local_kind, &|n_s| budget.constraint_for(n_s))?;
        match plan.feed(&partials, refreshed).map_err(E::from)? {
            Some(next) => round = next,
            None => return plan.finish().map_err(E::from),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn avg_delegates_as_sum() {
        assert_eq!(shard_kind(AggregateKind::Avg), AggregateKind::Sum);
        for kind in [AggregateKind::Sum, AggregateKind::Max, AggregateKind::Min] {
            assert_eq!(shard_kind(kind), kind);
        }
    }

    #[test]
    fn split_budgets_recompose_to_delta() {
        // SUM: shares over any partition of n sum to δ.
        let (n, delta) = (10, 8.0);
        for split in [[3, 7], [5, 5], [1, 9]] {
            let total: f64 = split
                .iter()
                .map(|&n_s| match shard_constraint(AggregateKind::Sum, delta, n, n_s) {
                    Constraint::Absolute(d) => d,
                    other => panic!("unexpected {other:?}"),
                })
                .sum();
            assert!((total - delta).abs() < 1e-12);
        }
        // AVG: shares sum to δ·n (scaled back down by merge_partials).
        let total: f64 = [4, 6]
            .iter()
            .map(|&n_s| match shard_constraint(AggregateKind::Avg, delta, n, n_s) {
                Constraint::Absolute(d) => d,
                other => panic!("unexpected {other:?}"),
            })
            .sum();
        assert!((total - delta * n as f64).abs() < 1e-12);
        // Extrema: every shard gets the full budget.
        for kind in [AggregateKind::Max, AggregateKind::Min] {
            assert_eq!(shard_constraint(kind, delta, n, 3), Constraint::Absolute(delta));
        }
    }

    #[test]
    fn merges_compose_per_kind() {
        let parts = [iv(1.0, 2.0), iv(10.0, 11.0)];
        let sum = merge_partials(AggregateKind::Sum, &parts, 4).unwrap();
        assert_eq!((sum.lo(), sum.hi()), (11.0, 13.0));
        let max = merge_partials(AggregateKind::Max, &parts, 4).unwrap();
        assert_eq!((max.lo(), max.hi()), (10.0, 11.0));
        let min = merge_partials(AggregateKind::Min, &parts, 4).unwrap();
        assert_eq!((min.lo(), min.hi()), (1.0, 2.0));
        let avg = merge_partials(AggregateKind::Avg, &parts, 4).unwrap();
        assert!((avg.lo() - 11.0 / 4.0).abs() < 1e-12);
        assert!((avg.hi() - 13.0 / 4.0).abs() < 1e-12);
        assert!(matches!(
            merge_partials(AggregateKind::Sum, &[], 0),
            Err(StoreError::Query(QueryError::EmptyInput))
        ));
    }

    #[test]
    fn budget_rules_reproduce_the_split_functions() {
        let uniform = BudgetRule::Uniform(Constraint::Relative(0.1));
        assert_eq!(uniform.constraint_for(3), Constraint::Relative(0.1));
        let split = BudgetRule::Split { kind: AggregateKind::Sum, delta: 8.0, n_total: 10 };
        assert_eq!(split.constraint_for(5), shard_constraint(AggregateKind::Sum, 8.0, 10, 5));
    }

    #[test]
    fn absolute_plan_is_one_round() {
        let (mut plan, round) =
            AggregatePlan::<u64>::start(AggregateKind::Sum, Constraint::Absolute(4.0), 4).unwrap();
        assert_eq!(round.local_kind, AggregateKind::Sum);
        assert_eq!(round.budget.constraint_for(2), Constraint::Absolute(2.0));
        assert!(!plan.is_done());
        let next = plan.feed(&[iv(0.0, 2.0), iv(5.0, 7.0)], vec![1, 2]).unwrap();
        assert!(next.is_none());
        assert!(plan.is_done());
        let out = plan.finish().unwrap();
        assert_eq!((out.answer.lo(), out.answer.hi()), (5.0, 9.0));
        assert_eq!(out.refreshed, vec![1, 2]);
    }

    #[test]
    fn relative_plan_certifies_from_the_probe() {
        let (mut plan, round) =
            AggregatePlan::<u64>::start(AggregateKind::Sum, Constraint::Relative(0.5), 2).unwrap();
        assert_eq!(
            round.budget.constraint_for(1),
            Constraint::Absolute(f64::INFINITY),
            "probe runs under an infinite budget"
        );
        // width 2 on magnitude 10: certified at ρ = 0.5.
        assert!(plan.feed(&[iv(9.0, 11.0)], vec![]).unwrap().is_none());
        let out = plan.finish().unwrap();
        assert!(out.refreshed.is_empty());
    }

    #[test]
    fn relative_plan_escalates_to_a_derived_budget() {
        let (mut plan, _) =
            AggregatePlan::<u64>::start(AggregateKind::Sum, Constraint::Relative(0.01), 2).unwrap();
        // Probe fails (width 2, magnitude 9): escalate to δ = 0.01·9.
        let next = plan.feed(&[iv(9.0, 11.0)], vec![]).unwrap().expect("escalates");
        match next.budget {
            BudgetRule::Split { kind: AggregateKind::Sum, delta, n_total: 2 } => {
                assert!((delta - 0.09).abs() < 1e-12)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(plan.feed(&[iv(9.955, 10.045)], vec![7]).unwrap().is_none());
        let out = plan.finish().unwrap();
        assert_eq!(out.refreshed, vec![7]);
    }

    #[test]
    fn relative_plan_runs_the_local_round_on_zero_magnitude() {
        let (mut plan, _) =
            AggregatePlan::<u64>::start(AggregateKind::Sum, Constraint::Relative(0.1), 2).unwrap();
        // Probe straddles zero → magnitude 0 → local certification round.
        let next = plan.feed(&[iv(-5.0, 5.0)], vec![]).unwrap().expect("local round");
        assert_eq!(next.budget, BudgetRule::Uniform(Constraint::Relative(0.1)));
        // Shards certify locally and the merge now sits away from zero.
        assert!(plan.feed(&[iv(9.9, 10.1)], vec![3]).unwrap().is_none());
        let out = plan.finish().unwrap();
        assert_eq!(out.refreshed, vec![3]);
    }

    #[test]
    fn misuse_is_an_error_not_a_panic() {
        assert!(AggregatePlan::<u64>::start(AggregateKind::Sum, Constraint::Exact, 0).is_err());
        let (mut plan, _) =
            AggregatePlan::<u64>::start(AggregateKind::Sum, Constraint::Exact, 1).unwrap();
        assert!(plan.feed(&[iv(1.0, 1.0)], vec![]).unwrap().is_none());
        assert!(plan.feed(&[iv(1.0, 1.0)], vec![]).is_err(), "feeding a done plan");
        let (plan, _) =
            AggregatePlan::<u64>::start(AggregateKind::Sum, Constraint::Exact, 1).unwrap();
        assert!(plan.finish().is_err(), "finishing an unfed plan");
    }
}
