//! Scatter/gather arithmetic for deployment-wide aggregates.
//!
//! A query over keys spread across `N` shards fans out as one per-shard
//! sub-query and merges the bounded partial answers with interval
//! arithmetic. This module is the single home of that arithmetic — which
//! aggregate kind each shard evaluates locally, what slice of the
//! precision budget it receives, and how the partial answers fold back
//! into the deployment-wide interval — shared by the synchronous
//! [`ShardedStore`](crate::ShardedStore) and by the actor runtime
//! (`apcache-runtime`), whose scatter/gather rounds must compose answers
//! by exactly the same rules to stay conformant.

use apcache_core::Interval;
use apcache_queries::relative::interval_magnitude;
use apcache_queries::{satisfies_relative, AggregateKind, QueryError};
use apcache_store::{AggregateOutcome, Constraint, StoreError};

/// The aggregate kind a shard evaluates locally on behalf of a
/// deployment-wide `kind`: AVG is delegated as SUM — the partial sums add
/// across shards and are divided by `n` once, at the merge (per-shard
/// averages would need a weighted recombination instead). Every other
/// kind passes through.
pub fn shard_kind(kind: AggregateKind) -> AggregateKind {
    if kind == AggregateKind::Avg {
        AggregateKind::Sum
    } else {
        kind
    }
}

/// The absolute constraint handed to a shard holding `n_shard` of the
/// query's `n_total` keys, given the deployment-wide budget `delta`
/// (`0` requests exactness; pair with [`shard_kind`] for the kind the
/// shard should evaluate):
///
/// * **SUM** — the proportional share `δ·n_s/n`; the partial widths add,
///   so `width(Σ) ≤ Σ δ·n_s/n = δ`.
/// * **AVG** — evaluated as SUM against the n-scaled budget, so the
///   share is `(δ·n)·n_s/n = δ·n_s`.
/// * **MAX / MIN** — the full budget `δ`: the merged extremum is at most
///   as wide as the partial answer of the shard holding the winner.
pub fn shard_constraint(
    kind: AggregateKind,
    delta: f64,
    n_total: usize,
    n_shard: usize,
) -> Constraint {
    match kind {
        AggregateKind::Sum => Constraint::Absolute(delta * n_shard as f64 / n_total as f64),
        AggregateKind::Avg => Constraint::Absolute(delta * n_shard as f64),
        AggregateKind::Max | AggregateKind::Min => Constraint::Absolute(delta),
    }
}

/// Fold per-shard partial answers into the deployment-wide interval.
///
/// `partials` must have been produced under [`shard_kind`]; `n_keys` is
/// the query's total key count (AVG divides its merged SUM by it here,
/// exactly once).
pub fn merge_partials(
    kind: AggregateKind,
    partials: &[Interval],
    n_keys: usize,
) -> Result<Interval, StoreError> {
    let mut iter = partials.iter();
    let first = *iter.next().ok_or(QueryError::EmptyInput)?;
    let merged = match kind {
        AggregateKind::Sum => iter.fold(first, |acc, iv| acc.add(iv)),
        AggregateKind::Max => iter.fold(first, |acc, iv| acc.max_of(iv)),
        AggregateKind::Min => iter.fold(first, |acc, iv| acc.min_of(iv)),
        AggregateKind::Avg => {
            let sum = iter.fold(first, |acc, iv| acc.add(iv));
            sum.scale(1.0 / n_keys as f64)
                .map_err(|_| StoreError::Config("AVG scale failed".into()))?
        }
    };
    Ok(merged)
}

/// The deployment-wide answer for an aggregate over **no keys**, shared
/// by both façades so the edge-case semantics cannot drift: SUM of
/// nothing is the point interval `0`; MAX/MIN/AVG of nothing are
/// undefined ([`QueryError::EmptyInput`]) — mirroring the single store.
pub fn empty_aggregate<K>(kind: AggregateKind) -> Result<AggregateOutcome<K>, StoreError> {
    match kind {
        AggregateKind::Sum => Ok(AggregateOutcome {
            answer: Interval::point(0.0).expect("0 is finite"),
            refreshed: Vec::new(),
        }),
        _ => Err(QueryError::EmptyInput.into()),
    }
}

/// The fan-out primitive [`evaluate_constraint`] drives: run one
/// shard-local aggregate leg per part — `(local_kind, split)` where
/// `split(n_shard)` is that leg's constraint — and return the partial
/// answers in part order plus the keys fetched exactly.
pub type FanOut<'a, K, E> = dyn FnMut(AggregateKind, &dyn Fn(usize) -> Constraint) -> Result<(Vec<Interval>, Vec<K>), E>
    + 'a;

/// Evaluate a multi-shard aggregate over an abstract fan-out primitive:
/// dispatch the constraint, run the rounds, merge the partial answers.
///
/// This is the refinement state machine both façades share —
/// [`ShardedStore`](crate::ShardedStore) supplies a fan-out that calls
/// its shards directly; the actor runtime supplies one scatter/gather
/// round per call — so their answers and refresh plans cannot drift:
///
/// * **Exact / Absolute(δ)** — one fan-out with the per-kind budget
///   split ([`shard_constraint`]), one merge.
/// * **Relative(ρ)** — at most three bounded rounds: (1) **probe** the
///   cached bounds (infinite budget — no fetches); certified → free
///   answer. (2) If the probe's magnitude collapsed to zero (an interval
///   straddling zero or an uncached key), let every shard certify ρ
///   **locally**, which cheaply resolves exactly the wild items. (3)
///   Convert ρ to the absolute budget `ρ·mag` — sound because refreshes
///   only shrink the answer interval, so its magnitude only grows — and
///   finish with the absolute fan-out. A zero magnitude at step 3 means
///   the aggregate genuinely hugs zero, where no finite ρ short of
///   exactness can be certified (the single store's planner shares this
///   degeneracy).
pub fn evaluate_constraint<K, E: From<StoreError>>(
    kind: AggregateKind,
    constraint: Constraint,
    n: usize,
    fan_out: &mut FanOut<'_, K, E>,
) -> Result<AggregateOutcome<K>, E> {
    let frac = match constraint {
        Constraint::Exact => return absolute_round(kind, 0.0, n, fan_out),
        Constraint::Absolute(delta) => return absolute_round(kind, delta, n, fan_out),
        Constraint::Relative(frac) => frac,
    };
    let local = shard_kind(kind);
    let (partials, _) = fan_out(local, &|_| Constraint::Absolute(f64::INFINITY))?;
    let mut merged = merge_partials(kind, &partials, n)?;
    if satisfies_relative(&merged, frac) {
        return Ok(AggregateOutcome { answer: merged, refreshed: Vec::new() });
    }
    let mut refreshed = Vec::new();
    if interval_magnitude(&merged) == 0.0 {
        let (partials, r) = fan_out(local, &|_| Constraint::Relative(frac))?;
        merged = merge_partials(kind, &partials, n)?;
        refreshed.extend(r);
        if satisfies_relative(&merged, frac) {
            return Ok(AggregateOutcome { answer: merged, refreshed });
        }
    }
    let budget = frac * interval_magnitude(&merged);
    let mut outcome = absolute_round(kind, budget, n, fan_out)?;
    refreshed.extend(outcome.refreshed);
    outcome.refreshed = refreshed;
    Ok(outcome)
}

/// One absolute fan-out (`delta = 0` is exact) and its merge.
fn absolute_round<K, E: From<StoreError>>(
    kind: AggregateKind,
    delta: f64,
    n: usize,
    fan_out: &mut FanOut<'_, K, E>,
) -> Result<AggregateOutcome<K>, E> {
    let (partials, refreshed) =
        fan_out(shard_kind(kind), &|n_s| shard_constraint(kind, delta, n, n_s))?;
    let answer = merge_partials(kind, &partials, n)?;
    Ok(AggregateOutcome { answer, refreshed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn avg_delegates_as_sum() {
        assert_eq!(shard_kind(AggregateKind::Avg), AggregateKind::Sum);
        for kind in [AggregateKind::Sum, AggregateKind::Max, AggregateKind::Min] {
            assert_eq!(shard_kind(kind), kind);
        }
    }

    #[test]
    fn split_budgets_recompose_to_delta() {
        // SUM: shares over any partition of n sum to δ.
        let (n, delta) = (10, 8.0);
        for split in [[3, 7], [5, 5], [1, 9]] {
            let total: f64 = split
                .iter()
                .map(|&n_s| match shard_constraint(AggregateKind::Sum, delta, n, n_s) {
                    Constraint::Absolute(d) => d,
                    other => panic!("unexpected {other:?}"),
                })
                .sum();
            assert!((total - delta).abs() < 1e-12);
        }
        // AVG: shares sum to δ·n (scaled back down by merge_partials).
        let total: f64 = [4, 6]
            .iter()
            .map(|&n_s| match shard_constraint(AggregateKind::Avg, delta, n, n_s) {
                Constraint::Absolute(d) => d,
                other => panic!("unexpected {other:?}"),
            })
            .sum();
        assert!((total - delta * n as f64).abs() < 1e-12);
        // Extrema: every shard gets the full budget.
        for kind in [AggregateKind::Max, AggregateKind::Min] {
            assert_eq!(shard_constraint(kind, delta, n, 3), Constraint::Absolute(delta));
        }
    }

    #[test]
    fn merges_compose_per_kind() {
        let parts = [iv(1.0, 2.0), iv(10.0, 11.0)];
        let sum = merge_partials(AggregateKind::Sum, &parts, 4).unwrap();
        assert_eq!((sum.lo(), sum.hi()), (11.0, 13.0));
        let max = merge_partials(AggregateKind::Max, &parts, 4).unwrap();
        assert_eq!((max.lo(), max.hi()), (10.0, 11.0));
        let min = merge_partials(AggregateKind::Min, &parts, 4).unwrap();
        assert_eq!((min.lo(), min.hi()), (1.0, 2.0));
        let avg = merge_partials(AggregateKind::Avg, &parts, 4).unwrap();
        assert!((avg.lo() - 11.0 / 4.0).abs() < 1e-12);
        assert!((avg.hi() - 13.0 / 4.0).abs() < 1e-12);
        assert!(matches!(
            merge_partials(AggregateKind::Sum, &[], 0),
            Err(StoreError::Query(QueryError::EmptyInput))
        ));
    }
}
