//! The fleet manifest: the one file that makes a *sharded* spool
//! directory self-describing.
//!
//! Per-shard spools (see [`ShardedStoreBuilder::with_spool`]) live in
//! `dir/shard-<ring id>/`; the manifest at `dir/fleet.manifest` records
//! the ring membership and vnode count, so
//! [`ShardedStore::recover`] can rebuild the exact same
//! consistent-hash ring — key placement depends only on `(ids, vnodes)`
//! — and re-open each shard's spool without guessing from directory
//! names.
//!
//! The format is deliberately human-auditable text:
//!
//! ```text
//! apcache-fleet v1
//! vnodes 64
//! shards 0 1 2 3
//! ```
//!
//! Writes go through a `.tmp` + rename so a crash mid-write leaves
//! either the old manifest or the new one, never a torn file.
//!
//! [`ShardedStoreBuilder::with_spool`]: crate::ShardedStoreBuilder::with_spool
//! [`ShardedStore::recover`]: crate::ShardedStore::recover

use std::io::Write as _;
use std::path::Path;

use apcache_store::StoreError;

const HEADER: &str = "apcache-fleet v1";

/// Name of the manifest file inside a fleet spool directory.
pub const MANIFEST_FILE: &str = "fleet.manifest";

fn io_err(op: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Spool(format!("{op} {}: {e}", path.display()))
}

/// Write (atomically: tmp + rename) the manifest for a fleet with the
/// given ring membership into `dir`, creating the directory if needed.
pub fn write_manifest(dir: &str, vnodes: usize, ids: &[u32]) -> Result<(), StoreError> {
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| io_err("create", dir, e))?;
    let mut body = format!("{HEADER}\nvnodes {vnodes}\nshards");
    for id in ids {
        body.push(' ');
        body.push_str(&id.to_string());
    }
    body.push('\n');
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let target = dir.join(MANIFEST_FILE);
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    f.write_all(body.as_bytes()).map_err(|e| io_err("write", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
    std::fs::rename(&tmp, &target).map_err(|e| io_err("rename", &tmp, e))
}

/// Read a fleet manifest back: `(vnodes, shard ids)` in recorded order.
pub fn read_manifest(dir: &str) -> Result<(usize, Vec<u32>), StoreError> {
    let path = Path::new(dir).join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| io_err("read", &path, e))?;
    let corrupt = |what: &str| StoreError::Spool(format!("manifest {}: {what}", path.display()));
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return Err(corrupt("bad header"));
    }
    let vnodes = lines
        .next()
        .and_then(|l| l.strip_prefix("vnodes "))
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| corrupt("bad vnodes line"))?;
    let ids: Vec<u32> = lines
        .next()
        .and_then(|l| l.strip_prefix("shards"))
        .map(|rest| rest.split_whitespace().map(str::parse).collect::<Result<_, _>>())
        .ok_or_else(|| corrupt("bad shards line"))?
        .map_err(|_| corrupt("bad shard id"))?;
    if ids.is_empty() {
        return Err(corrupt("empty shard list"));
    }
    Ok((vnodes, ids))
}

/// The per-shard spool directory under a fleet spool root.
pub fn shard_dir(dir: &str, id: u32) -> String {
    format!("{dir}/shard-{id}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("apcache-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn round_trips_and_overwrites() {
        let dir = tmp_dir("rt");
        write_manifest(&dir, 64, &[0, 1, 2, 3]).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), (64, vec![0, 1, 2, 3]));
        // Sparse post-elastic membership overwrites in place.
        write_manifest(&dir, 64, &[0, 2, 4]).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), (64, vec![0, 2, 4]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_corrupt_manifests_error() {
        let dir = tmp_dir("bad");
        assert!(read_manifest(&dir).is_err(), "missing dir");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_manifest(&dir).is_err(), "missing file");
        for junk in [
            "",
            "wrong v9\nvnodes 1\nshards 0\n",
            "apcache-fleet v1\nvnodes x\nshards 0\n",
            "apcache-fleet v1\nvnodes 8\nshards\n",
        ] {
            std::fs::write(std::path::Path::new(&dir).join(MANIFEST_FILE), junk).unwrap();
            assert!(read_manifest(&dir).is_err(), "junk {junk:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_dirs_are_id_scoped() {
        assert_eq!(shard_dir("/var/spool/fleet", 7), "/var/spool/fleet/shard-7");
    }
}
