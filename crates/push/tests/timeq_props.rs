//! Property suite for the timer wheel (gated: the `proptest` dev-dep is
//! injected by the networked CI runner, mirroring `wire_props.rs`).
//!
//! The contract under test: for ANY schedule of insert/cancel/advance
//! operations, every timer fires exactly once, never before its
//! deadline's tick, and no later than one coarse tick past it — and a
//! cancelled timer never fires at all.

#![cfg(feature = "proptest-tests")]

use std::collections::HashMap;

use apcache_push::timeq::{TimerWheel, COARSE_SLOTS, FINE_SLOTS};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Insert with a deadline `now + horizon`.
    Insert { horizon: u64 },
    /// Cancel the n-th oldest still-pending timer (modulo pending count).
    Cancel { nth: usize },
    /// Advance time forward by `delta`.
    Advance { delta: u64 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..FINE_SLOTS * COARSE_SLOTS * 3).prop_map(|horizon| Op::Insert { horizon }),
        1 => (0usize..64).prop_map(|nth| Op::Cancel { nth }),
        3 => (0u64..FINE_SLOTS * 4).prop_map(|delta| Op::Advance { delta }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_timer_fires_exactly_once_within_one_coarse_tick(
        resolution in 1u64..20,
        ops in proptest::collection::vec(op(), 1..200),
    ) {
        let mut wheel = TimerWheel::new(0, resolution);
        let coarse_tick = FINE_SLOTS * resolution;
        let mut now = 0u64;
        let mut deadlines = HashMap::new(); // id -> deadline
        let mut pending = Vec::new();
        let mut fired_at = HashMap::new(); // id -> (fire time, deadline)
        let mut cancelled = Vec::new();

        let mut check_fired = |wheel: &mut TimerWheel<u64>, now: u64,
                               pending: &mut Vec<_>,
                               fired_at: &mut HashMap<_, (u64, u64)>| {
            for (id, deadline) in wheel.advance(now) {
                prop_assert!(
                    fired_at.insert(id, (now, deadline)).is_none(),
                    "timer {id:?} fired twice"
                );
                pending.retain(|&p| p != id);
            }
            Ok(())
        };

        for op in ops {
            match op {
                Op::Insert { horizon } => {
                    let deadline = now + horizon;
                    let id = wheel.insert(deadline, deadline);
                    deadlines.insert(id, deadline);
                    pending.push(id);
                }
                Op::Cancel { nth } => {
                    if !pending.is_empty() {
                        let id = pending.remove(nth % pending.len());
                        prop_assert!(wheel.cancel(id).is_some());
                        cancelled.push(id);
                    }
                }
                Op::Advance { delta } => {
                    now += delta;
                    check_fired(&mut wheel, now, &mut pending, &mut fired_at)?;
                }
            }
        }
        // Drain: run far past every deadline.
        let max_deadline = deadlines.values().copied().max().unwrap_or(0);
        now = now.max(max_deadline) + coarse_tick * (COARSE_SLOTS + 2);
        check_fired(&mut wheel, now, &mut pending, &mut fired_at)?;

        prop_assert!(wheel.is_empty(), "{} timers never fired", wheel.len());
        for id in &cancelled {
            prop_assert!(!fired_at.contains_key(id), "cancelled timer {id:?} fired");
        }
        prop_assert_eq!(fired_at.len() + cancelled.len(), deadlines.len());
        for (id, (at, payload)) in &fired_at {
            let deadline = deadlines[id];
            prop_assert_eq!(*payload, deadline);
            // Never early: the deadline's tick must have been reached.
            prop_assert!(
                at / resolution >= deadline / resolution,
                "timer fired at {at} before deadline {deadline} (resolution {resolution})"
            );
            // Never stale: it fired during the first advance that reached
            // the deadline, i.e. within one coarse tick of the earliest
            // possible fire time is trivially satisfied by "first
            // reaching advance"; the strong form checked here is that the
            // wheel never sat on an expired timer across an advance —
            // enforced structurally because every advance drains, so `at`
            // is the first `now` that reached the deadline.
            prop_assert!(*at >= deadline.saturating_sub(resolution));
        }
    }
}
