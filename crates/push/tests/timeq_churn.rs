//! Churn test: ~1M timers flow through the wheel while only a small
//! window is ever live, and the slab must stay O(peak live) — the
//! intrusive-list design reclaims cancelled/fired slots immediately
//! instead of tombstoning them.

use apcache_push::timeq::{TimerWheel, FINE_SLOTS};

#[test]
fn a_million_timers_use_o_live_memory() {
    const TOTAL: u64 = 1_000_000;
    const WINDOW: usize = 512; // live timers at any instant

    let mut wheel = TimerWheel::new(0, 1);
    let mut pending = std::collections::VecDeque::new();
    let mut fired = 0u64;
    let mut cancelled = 0u64;
    let mut now = 0u64;
    // A deterministic mixed-regime schedule: deadlines land in the fine
    // wheel, the coarse wheel, and overflow; every third timer inserted
    // is cancelled before it can fire.
    for i in 0..TOTAL {
        let horizon = match i % 3 {
            0 => 1 + i % FINE_SLOTS,                // fine
            1 => FINE_SLOTS + i % (FINE_SLOTS * 8), // coarse
            _ => FINE_SLOTS * 80 + i % 1_000,       // overflow
        };
        let id = wheel.insert(now + horizon, i);
        pending.push_back(id);
        if i % 3 == 2 {
            let victim = pending.pop_front().unwrap();
            if wheel.cancel(victim).is_some() {
                cancelled += 1;
            }
        }
        if pending.len() > WINDOW {
            now += 7;
            fired += wheel.advance(now).len() as u64;
            pending.retain(|&id| wheel.contains(id));
        }
    }
    now += FINE_SLOTS * 200;
    fired += wheel.advance(now).len() as u64;
    assert!(wheel.is_empty(), "{} stragglers", wheel.len());
    assert_eq!(fired + cancelled, TOTAL, "every timer fired or was cancelled exactly once");
    // The slab never grew past a small multiple of the live window, even
    // though two thousand times that many timers passed through. (The
    // retain() above only prunes after an advance, so the live set can
    // legitimately exceed WINDOW between prunes — hence 8× headroom, far
    // below the ~2000× a tombstone design would show.)
    assert!(
        wheel.allocated() <= WINDOW * 8,
        "slab grew to {} slots for a {}-timer live window",
        wheel.allocated(),
        WINDOW
    );
}
