//! TTL leases over cached intervals.
//!
//! A lease is a bounded-staleness contract: "this interval is only
//! trustworthy if the source has been heard from within `ttl_ms`." Every
//! refresh contact renews the lease; if it lapses, the interval is
//! widened to the lease's [`FallbackWidth`] (widening is always
//! truth-preserving — the exact value still lies inside) and exactly one
//! [`LeaseExpired`](crate::PushReason::LeaseExpired) push tells
//! subscribers their precision guarantee degraded.
//!
//! The table itself is pure bookkeeping over a [`TimerWheel`]: *who* does
//! the widening (the shard actor, which owns the store) calls
//! [`LeaseTable::advance`] and acts on the expirations it returns.

use std::collections::HashMap;
use std::hash::Hash;

use apcache_core::TimeMs;

use crate::timeq::{TimerId, TimerWheel};

/// What width a leased interval falls back to when the lease lapses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FallbackWidth {
    /// Widen to (-∞, ∞): the value is somewhere, nothing more is claimed.
    Unbounded,
    /// Widen to a fixed width (must be finite and ≥ 0; a fallback
    /// *narrower* than the current interval is a no-op — widening never
    /// fabricates precision).
    Fixed(f64),
    /// Widen to `factor ×` the interval's width at expiry (factor must be
    /// finite and ≥ 1).
    Factor(f64),
}

impl FallbackWidth {
    /// Whether the policy's parameters are meaningful.
    pub fn validate(&self) -> bool {
        match *self {
            FallbackWidth::Unbounded => true,
            FallbackWidth::Fixed(w) => w.is_finite() && w >= 0.0,
            FallbackWidth::Factor(f) => f.is_finite() && f >= 1.0,
        }
    }

    /// The target width given the interval's width at expiry.
    pub fn target_width(&self, current: f64) -> f64 {
        match *self {
            FallbackWidth::Unbounded => f64::INFINITY,
            FallbackWidth::Fixed(w) => w,
            FallbackWidth::Factor(f) => {
                if current.is_finite() {
                    current * f
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

/// One key's lease policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaseConfig {
    /// How long the interval stays trusted after the last source contact.
    pub ttl_ms: u64,
    /// What the interval widens to when the lease lapses.
    pub fallback: FallbackWidth,
}

impl LeaseConfig {
    /// Whether both the TTL and the fallback are meaningful.
    pub fn validate(&self) -> bool {
        self.ttl_ms > 0 && self.fallback.validate()
    }
}

/// All leases held by one shard.
pub struct LeaseTable<K> {
    wheel: TimerWheel<K>,
    armed: HashMap<K, TimerId>,
    configs: HashMap<K, LeaseConfig>,
}

impl<K: Eq + Hash + Clone> LeaseTable<K> {
    /// An empty table whose expiry wheel starts at `origin` with slots of
    /// `resolution_ms`.
    pub fn new(origin: TimeMs, resolution_ms: u64) -> Self {
        LeaseTable {
            wheel: TimerWheel::new(origin, resolution_ms),
            armed: HashMap::new(),
            configs: HashMap::new(),
        }
    }

    /// Keys holding a lease (armed or lapsed-but-configured).
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether no leases exist.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Leases currently armed (will expire if not renewed).
    pub fn armed(&self) -> usize {
        self.armed.len()
    }

    /// Whether `key` holds a lease.
    pub fn leased(&self, key: &K) -> bool {
        self.configs.contains_key(key)
    }

    /// Grant (or re-grant) a lease on `key`, arming expiry at
    /// `now + ttl_ms`. The config must already be validated.
    pub fn grant(&mut self, key: K, cfg: LeaseConfig, now: TimeMs) {
        debug_assert!(cfg.validate());
        self.configs.insert(key.clone(), cfg);
        self.arm(key, cfg.ttl_ms, now);
    }

    /// The source was heard from on `key` at `now`: re-arm its lease, if
    /// it holds one. A lapsed lease re-arms here too — that is what makes
    /// each lapse emit exactly one push (the config outlives the timer).
    pub fn renew(&mut self, key: &K, now: TimeMs) {
        if let Some(cfg) = self.configs.get(key) {
            let ttl = cfg.ttl_ms;
            self.arm(key.clone(), ttl, now);
        }
    }

    /// Drop `key`'s lease entirely. Returns whether one existed.
    pub fn release(&mut self, key: &K) -> bool {
        if let Some(id) = self.armed.remove(key) {
            self.wheel.cancel(id);
        }
        self.configs.remove(key).is_some()
    }

    /// Advance logical time, returning each key whose lease lapsed with
    /// its fallback policy, in deterministic (deadline, grant) order. A
    /// lapsed key stays configured but disarmed: it will not expire again
    /// until the next [`renew`](Self::renew) re-arms it.
    pub fn advance(&mut self, now: TimeMs) -> Vec<(K, FallbackWidth)> {
        self.wheel
            .advance(now)
            .into_iter()
            .map(|(_, key)| {
                self.armed.remove(&key);
                let fallback = self.configs.get(&key).expect("armed lease has a config").fallback;
                (key, fallback)
            })
            .collect()
    }

    /// Detach `key`'s lease for migration: the config plus the armed
    /// timer's *absolute* deadline (`None` when the lease already lapsed
    /// and is waiting on a renewal). `None` overall when `key` holds no
    /// lease.
    pub fn export_lease(&mut self, key: &K) -> Option<(LeaseConfig, Option<TimeMs>)> {
        let cfg = self.configs.remove(key)?;
        let deadline = self.armed.remove(key).map(|id| {
            let deadline = self.wheel.deadline(id).expect("armed timer is live");
            self.wheel.cancel(id);
            deadline
        });
        Some((cfg, deadline))
    }

    /// Install a lease detached elsewhere with [`export_lease`], keeping
    /// its absolute deadline: the clock is shared across shards, so a
    /// deadline in this table's past simply fires on the next
    /// [`advance`](Self::advance) — a lease that lapsed mid-migration
    /// still degrades exactly once.
    ///
    /// [`export_lease`]: Self::export_lease
    pub fn install_lease(&mut self, key: K, cfg: LeaseConfig, deadline: Option<TimeMs>) {
        debug_assert!(cfg.validate());
        self.configs.insert(key.clone(), cfg);
        if let Some(old) = self.armed.remove(&key) {
            self.wheel.cancel(old);
        }
        if let Some(deadline) = deadline {
            let id = self.wheel.insert(deadline, key.clone());
            self.armed.insert(key, id);
        }
    }

    fn arm(&mut self, key: K, ttl_ms: u64, now: TimeMs) {
        // Cancel before re-insert: the wheel never fires a stale timer.
        if let Some(old) = self.armed.get(&key) {
            self.wheel.cancel(*old);
        }
        let id = self.wheel.insert(now.saturating_add(ttl_ms), key.clone());
        self.armed.insert(key, id);
    }
}

impl<K> std::fmt::Debug for LeaseTable<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseTable")
            .field("leases", &self.configs.len())
            .field("armed", &self.armed.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: LeaseConfig = LeaseConfig { ttl_ms: 100, fallback: FallbackWidth::Unbounded };

    #[test]
    fn lapsed_leases_expire_exactly_once_until_renewed() {
        let mut t = LeaseTable::new(0, 1);
        t.grant("k", CFG, 0);
        assert!(t.advance(99).is_empty());
        let lapsed = t.advance(100);
        assert_eq!(lapsed.len(), 1);
        assert_eq!(lapsed[0].0, "k");
        // Still configured, but disarmed: no second expiry.
        assert!(t.leased(&"k"));
        assert_eq!(t.armed(), 0);
        assert!(t.advance(10_000).is_empty());
        // A renewal re-arms; the lease can lapse again.
        t.renew(&"k", 10_000);
        assert_eq!(t.armed(), 1);
        assert_eq!(t.advance(10_100).len(), 1);
    }

    #[test]
    fn renewals_push_the_deadline_and_release_disarms() {
        let mut t = LeaseTable::new(0, 1);
        t.grant("k", CFG, 0);
        t.renew(&"k", 50);
        assert!(t.advance(100).is_empty(), "renewed at 50: alive until 150");
        assert_eq!(t.advance(150).len(), 1);
        t.renew(&"k", 200);
        assert!(t.release(&"k"));
        assert!(!t.release(&"k"));
        assert!(t.advance(1_000).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn renew_without_a_lease_is_a_no_op() {
        let mut t: LeaseTable<&str> = LeaseTable::new(0, 1);
        t.renew(&"ghost", 5);
        assert_eq!(t.armed(), 0);
        assert!(t.advance(1_000_000).is_empty());
    }

    #[test]
    fn fallback_validation_and_targets() {
        assert!(FallbackWidth::Unbounded.validate());
        assert!(FallbackWidth::Fixed(0.0).validate());
        assert!(!FallbackWidth::Fixed(-1.0).validate());
        assert!(!FallbackWidth::Fixed(f64::NAN).validate());
        assert!(!FallbackWidth::Fixed(f64::INFINITY).validate());
        assert!(FallbackWidth::Factor(1.0).validate());
        assert!(!FallbackWidth::Factor(0.5).validate());
        assert_eq!(FallbackWidth::Unbounded.target_width(3.0), f64::INFINITY);
        assert_eq!(FallbackWidth::Fixed(7.0).target_width(3.0), 7.0);
        assert_eq!(FallbackWidth::Factor(2.0).target_width(3.0), 6.0);
        assert_eq!(FallbackWidth::Factor(2.0).target_width(f64::INFINITY), f64::INFINITY);
        assert!(!LeaseConfig { ttl_ms: 0, fallback: FallbackWidth::Unbounded }.validate());
    }
}
