//! Per-key subscriber registry with constraint-filtered fan-out.
//!
//! One registry lives inside each shard actor. Every mutation that can
//! change a cached interval calls [`SubscriberRegistry::notify`]; the
//! registry dedups unchanged intervals (bit-compared, so θ=1 runs stay
//! deterministic), then delivers a [`PushEvent`] to each subscriber whose
//! [`PushFilter`] matches.

use std::collections::HashMap;
use std::hash::Hash;

use apcache_core::{Interval, TimeMs};

use crate::event::{PushEvent, PushFilter, PushReason};

/// Where a matched push goes. The runtime implements this with its
/// completion-queue sender; tests implement it with a shared `Vec`.
pub trait PushSink<K> {
    /// Deliver one event. Delivery must not block the shard actor.
    fn deliver(&self, event: PushEvent<K>);
}

struct Subscriber<S> {
    id: u64,
    filter: PushFilter,
    sink: S,
}

struct Watch<S> {
    /// Bits of the last interval fanned out (or the snapshot at first
    /// subscribe), for exact-change dedup.
    last: (u64, u64),
    subs: Vec<Subscriber<S>>,
}

/// A watch detached for migration: the dedup bits of the last fanned-out
/// interval plus every `(id, filter, sink)` binding in subscription order.
pub type DetachedWatch<S> = ((u64, u64), Vec<(u64, PushFilter, S)>);

/// All subscriptions held by one shard.
pub struct SubscriberRegistry<K, S> {
    watches: HashMap<K, Watch<S>>,
    total: usize,
}

impl<K, S> Default for SubscriberRegistry<K, S> {
    fn default() -> Self {
        SubscriberRegistry { watches: HashMap::new(), total: 0 }
    }
}

impl<K: Eq + Hash + Clone, S: PushSink<K>> SubscriberRegistry<K, S> {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live subscriptions across all keys.
    pub fn subscribers(&self) -> usize {
        self.total
    }

    /// Keys with at least one subscriber.
    pub fn watched_keys(&self) -> usize {
        self.watches.len()
    }

    /// Whether no subscriptions exist.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Register subscriber `id` on `key`. `snapshot` is the cached
    /// interval at subscribe time: the first watch on a key seeds the
    /// dedup state with it, so the subscriber is only notified of changes
    /// *after* the snapshot it was acked with.
    pub fn subscribe(&mut self, key: K, id: u64, snapshot: Interval, filter: PushFilter, sink: S) {
        let watch = self
            .watches
            .entry(key)
            .or_insert_with(|| Watch { last: snapshot.to_bits(), subs: Vec::new() });
        watch.subs.push(Subscriber { id, filter, sink });
        self.total += 1;
    }

    /// Remove subscriber `id`, returning its key and sink (the sink's
    /// drop side effects — ending the client-visible stream — are the
    /// caller's business). Linear scan: unsubscribes are rare next to
    /// notifies, which stay O(subscribers-on-key).
    pub fn unsubscribe(&mut self, id: u64) -> Option<(K, S)> {
        let key = self.watches.iter().find(|(_, w)| w.subs.iter().any(|s| s.id == id))?.0.clone();
        let watch = self.watches.get_mut(&key)?;
        let pos = watch.subs.iter().position(|s| s.id == id)?;
        let sub = watch.subs.remove(pos);
        self.total -= 1;
        if watch.subs.is_empty() {
            self.watches.remove(&key);
        }
        Some((key, sub.sink))
    }

    /// Detach `key`'s whole watch for migration: the dedup bits of the
    /// last fanned-out interval plus every `(id, filter, sink)` binding,
    /// in subscription order. `None` when nobody watches `key`.
    ///
    /// Keeping the dedup bits matters for determinism: re-seeding from a
    /// fresh snapshot could re-deliver (or swallow) the interval in force
    /// at migration time.
    pub fn extract_key(&mut self, key: &K) -> Option<DetachedWatch<S>> {
        let watch = self.watches.remove(key)?;
        self.total -= watch.subs.len();
        Some((watch.last, watch.subs.into_iter().map(|s| (s.id, s.filter, s.sink)).collect()))
    }

    /// Install a watch detached elsewhere with
    /// [`extract_key`](Self::extract_key). Any subscribers already watching
    /// `key` here keep their place ahead of the imported ones; the imported
    /// dedup bits win (the source shard fanned out more recently).
    pub fn install_key(&mut self, key: K, last: (u64, u64), subs: Vec<(u64, PushFilter, S)>) {
        let watch = self.watches.entry(key).or_insert_with(|| Watch { last, subs: Vec::new() });
        watch.last = last;
        self.total += subs.len();
        watch.subs.extend(subs.into_iter().map(|(id, filter, sink)| Subscriber {
            id,
            filter,
            sink,
        }));
    }

    /// The cached interval for `key` became `interval` at `now`; fan out
    /// to matching subscribers. Returns how many events were delivered.
    /// Unwatched keys and bit-identical intervals cost one hash lookup.
    pub fn notify(
        &mut self,
        key: &K,
        interval: Interval,
        reason: PushReason,
        now: TimeMs,
    ) -> usize {
        let Some(watch) = self.watches.get_mut(key) else {
            return 0;
        };
        let bits = interval.to_bits();
        if bits == watch.last {
            return 0;
        }
        watch.last = bits;
        let mut delivered = 0;
        for sub in &watch.subs {
            if sub.filter.wants(&interval) {
                sub.sink.deliver(PushEvent { key: key.clone(), interval, reason, now });
                delivered += 1;
            }
        }
        delivered
    }
}

impl<K, S> std::fmt::Debug for SubscriberRegistry<K, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriberRegistry")
            .field("watched_keys", &self.watches.len())
            .field("subscribers", &self.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use apcache_store::Constraint;

    use super::*;

    type Log = Rc<RefCell<Vec<(u64, PushEvent<&'static str>)>>>;

    struct TestSink {
        id: u64,
        log: Log,
    }

    impl PushSink<&'static str> for TestSink {
        fn deliver(&self, event: PushEvent<&'static str>) {
            self.log.borrow_mut().push((self.id, event));
        }
    }

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn fan_out_is_filtered_and_deduped() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut reg = SubscriberRegistry::new();
        reg.subscribe(
            "k",
            1,
            iv(0.0, 10.0),
            PushFilter::Always,
            TestSink { id: 1, log: log.clone() },
        );
        reg.subscribe(
            "k",
            2,
            iv(0.0, 10.0),
            PushFilter::Violates(Constraint::Absolute(5.0)),
            TestSink { id: 2, log: log.clone() },
        );
        // Unchanged bits: nobody hears anything.
        assert_eq!(reg.notify(&"k", iv(0.0, 10.0), PushReason::Changed, 1), 0);
        // Narrow change: Always hears it, the δ=5 violation filter does not.
        assert_eq!(reg.notify(&"k", iv(4.0, 6.0), PushReason::Changed, 2), 1);
        // Wide change: both hear it.
        assert_eq!(reg.notify(&"k", iv(0.0, 100.0), PushReason::Changed, 3), 2);
        // Unwatched key: silent.
        assert_eq!(reg.notify(&"other", iv(0.0, 1.0), PushReason::Changed, 4), 0);
        let log = log.borrow();
        assert_eq!(log.len(), 3);
        assert_eq!((log[0].0, log[0].1.now), (1, 2));
        assert_eq!(log[1].1.reason, PushReason::Changed);
        assert_eq!(log[2].0, 2);
    }

    #[test]
    fn unsubscribe_removes_exactly_one_and_reaps_empty_watches() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut reg = SubscriberRegistry::new();
        reg.subscribe(
            "a",
            1,
            iv(0.0, 1.0),
            PushFilter::Always,
            TestSink { id: 1, log: log.clone() },
        );
        reg.subscribe(
            "a",
            2,
            iv(0.0, 1.0),
            PushFilter::Always,
            TestSink { id: 2, log: log.clone() },
        );
        reg.subscribe(
            "b",
            3,
            iv(0.0, 1.0),
            PushFilter::Always,
            TestSink { id: 3, log: log.clone() },
        );
        assert_eq!((reg.subscribers(), reg.watched_keys()), (3, 2));
        let (key, _) = reg.unsubscribe(2).unwrap();
        assert_eq!(key, "a");
        assert_eq!((reg.subscribers(), reg.watched_keys()), (2, 2));
        assert!(reg.unsubscribe(2).is_none(), "already gone");
        let (key, _) = reg.unsubscribe(3).unwrap();
        assert_eq!(key, "b");
        assert_eq!(reg.watched_keys(), 1, "empty watch reaped");
        reg.unsubscribe(1).unwrap();
        assert!(reg.is_empty());
    }
}
