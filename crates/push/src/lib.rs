//! Push-side primitives for the apcache serving stack.
//!
//! The paper's refresh protocol is push-at-heart: sources send `Refresh`
//! messages to the cache whenever an interval must shrink or recenter.
//! This crate supplies the machinery that continues the push one hop
//! further, cache → client, so the serving runtime can *stream* interval
//! changes instead of being polled:
//!
//! * [`SubscriberRegistry`] — per-key subscriptions with
//!   constraint-filtered fan-out ([`PushFilter`]), consulted by shard
//!   actors on every write/refresh; unchanged intervals are deduped by
//!   bit comparison so deterministic (θ=1) runs stay deterministic.
//! * [`timeq::TimerWheel`] — a std-only hierarchical timer wheel
//!   (fine/coarse wheels plus overflow, O(1) insert and cancel, O(live)
//!   memory) over the stack's logical `TimeMs`.
//! * [`LeaseTable`] — TTL leases on cached intervals driven by the
//!   wheel: a lease that lapses without a source contact widens the
//!   interval to its [`FallbackWidth`] and emits exactly one
//!   [`PushReason::LeaseExpired`] event, bounding staleness even for
//!   silent sources.
//!
//! The crate is deliberately runtime-agnostic: it depends only on
//! `apcache-core` and `apcache-store`, owns no threads, and reads no
//! clocks. The runtime supplies delivery ([`PushSink`]) and time
//! (calling [`LeaseTable::advance`]); the wire layer gives
//! [`PushEvent`]s a frame.

pub mod event;
pub mod lease;
pub mod registry;
pub mod timeq;

pub use event::{PushEvent, PushFilter, PushReason, PushReport};
pub use lease::{FallbackWidth, LeaseConfig, LeaseTable};
pub use registry::{DetachedWatch, PushSink, SubscriberRegistry};
