//! A hierarchical timer wheel over logical milliseconds.
//!
//! Layout: a **fine** wheel of [`FINE_SLOTS`] slots, one tick of
//! `resolution_ms` each, backed by a **coarse** wheel of [`COARSE_SLOTS`]
//! slots each spanning one full fine rotation, backed by an unsorted
//! **overflow** list for deadlines beyond the coarse horizon. Timers
//! cascade inward as time passes: when the fine wheel wraps, the coarse
//! slot covering the next rotation is re-dealt into fine slots, and when
//! the coarse wheel wraps, the overflow list is re-examined — the classic
//! hashed-and-hierarchical design (Varghese & Lauck), specialized to the
//! serving runtime's needs:
//!
//! * **O(1) insert and cancel.** Every slot is an intrusive doubly-linked
//!   list threaded through a slab, so cancellation unlinks in place —
//!   no tombstones, which is what makes memory O(live timers) under
//!   churn (see the `timeq_churn` integration test).
//! * **Logical time.** The wheel advances only when [`advance`] is
//!   called with a new `TimeMs`; nothing here reads a clock, so tests
//!   and the deterministic simulations drive it exactly.
//! * **Exact firing.** A timer fires on the first `advance(now)` whose
//!   `now` reaches its deadline's tick (deadlines are rounded *down* to
//!   the wheel resolution) — well inside the one-coarse-tick slack the
//!   conformance property demands. Fired batches are delivered in
//!   `(deadline, insertion order)` order, so delivery is deterministic.
//!
//! [`advance`]: TimerWheel::advance

use apcache_core::TimeMs;

/// Slots in the fine wheel (one tick each).
pub const FINE_SLOTS: u64 = 256;
/// Slots in the coarse wheel (one fine rotation each).
pub const COARSE_SLOTS: u64 = 64;

const COARSE_SPAN: u64 = FINE_SLOTS * COARSE_SLOTS;

/// Intrusive-list ids: fine slots, then coarse slots, then the overflow
/// and already-due lists.
const LIST_OVERFLOW: u32 = (FINE_SLOTS + COARSE_SLOTS) as u32;
const LIST_DUE: u32 = LIST_OVERFLOW + 1;
const LIST_NONE: u32 = u32::MAX;
const NIL: u32 = u32::MAX;

/// Handle to one pending timer, returned by [`TimerWheel::insert`] and
/// redeemed by [`TimerWheel::cancel`]. Slab index plus a generation
/// counter, so a stale id held across the timer's firing (or an earlier
/// cancellation) is rejected instead of cancelling an unrelated timer
/// that reused the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

impl TimerId {
    fn new(idx: u32, gen: u32) -> Self {
        TimerId(((idx as u64) << 32) | gen as u64)
    }

    fn parts(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

struct Node<T> {
    gen: u32,
    seq: u64,
    deadline: TimeMs,
    payload: Option<T>,
    prev: u32,
    next: u32,
    list: u32,
}

/// The hierarchical timer wheel. See the [module docs](self).
pub struct TimerWheel<T> {
    resolution: u64,
    cur_tick: u64,
    next_seq: u64,
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    fine: Vec<u32>,
    coarse: Vec<u32>,
    overflow: u32,
    due: u32,
    live: usize,
    fine_live: usize,
    coarse_live: usize,
    overflow_live: usize,
}

impl<T> TimerWheel<T> {
    /// A wheel whose notion of "now" starts at `origin`, with fine slots
    /// of `resolution_ms` (clamped to ≥ 1) logical milliseconds each.
    pub fn new(origin: TimeMs, resolution_ms: u64) -> Self {
        let resolution = resolution_ms.max(1);
        TimerWheel {
            resolution,
            cur_tick: origin / resolution,
            next_seq: 0,
            nodes: Vec::new(),
            free: Vec::new(),
            fine: vec![NIL; FINE_SLOTS as usize],
            coarse: vec![NIL; COARSE_SLOTS as usize],
            overflow: NIL,
            due: NIL,
            live: 0,
            fine_live: 0,
            coarse_live: 0,
            overflow_live: 0,
        }
    }

    /// Pending (inserted, not yet fired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slab capacity actually allocated — bounded by the *peak* number of
    /// concurrently live timers, never by insert/cancel churn (the churn
    /// test's O(live) memory assertion reads this).
    pub fn allocated(&self) -> usize {
        self.nodes.len()
    }

    /// The wheel's current logical time, rounded down to its resolution.
    pub fn now(&self) -> TimeMs {
        self.cur_tick * self.resolution
    }

    /// The fine-slot width in logical milliseconds.
    pub fn resolution(&self) -> u64 {
        self.resolution
    }

    /// Whether `id` is still pending.
    pub fn contains(&self, id: TimerId) -> bool {
        let (idx, gen) = id.parts();
        self.nodes.get(idx as usize).is_some_and(|n| n.gen == gen && n.list != LIST_NONE)
    }

    /// The deadline `id` was inserted with, if still pending.
    pub fn deadline(&self, id: TimerId) -> Option<TimeMs> {
        let (idx, gen) = id.parts();
        let node = self.nodes.get(idx as usize)?;
        (node.gen == gen && node.list != LIST_NONE).then_some(node.deadline)
    }

    /// Schedule `payload` to fire at `deadline`. A deadline at or before
    /// the wheel's current time is *already due*: it fires on the next
    /// [`advance`](TimerWheel::advance), whatever its target. O(1).
    pub fn insert(&mut self, deadline: TimeMs, payload: T) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let node = &mut self.nodes[idx as usize];
                node.seq = seq;
                node.deadline = deadline;
                node.payload = Some(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.nodes.len()).expect("timer slab exceeds u32 indices");
                self.nodes.push(Node {
                    gen: 0,
                    seq,
                    deadline,
                    payload: Some(payload),
                    prev: NIL,
                    next: NIL,
                    list: LIST_NONE,
                });
                idx
            }
        };
        let list = self.placement(deadline);
        self.link(idx, list);
        self.live += 1;
        TimerId::new(idx, self.nodes[idx as usize].gen)
    }

    /// Cancel a pending timer, returning its payload. Stale ids (already
    /// fired, already cancelled, or never issued by this wheel) return
    /// `None`. O(1).
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        let (idx, gen) = id.parts();
        let node = self.nodes.get(idx as usize)?;
        if node.gen != gen || node.list == LIST_NONE {
            return None;
        }
        self.unlink(idx);
        self.live -= 1;
        let node = &mut self.nodes[idx as usize];
        node.gen = node.gen.wrapping_add(1);
        self.free.push(idx);
        self.nodes[idx as usize].payload.take()
    }

    /// Advance logical time to `now`, collecting every timer whose
    /// deadline tick has been reached, in `(deadline, insertion)` order.
    /// Time never moves backwards: a `now` at or before the current time
    /// only flushes timers that were inserted already due.
    pub fn advance(&mut self, now: TimeMs) -> Vec<(TimerId, T)> {
        let target = now / self.resolution;
        let mut fired: Vec<(TimeMs, u64, TimerId, T)> = Vec::new();
        self.expire_list(LIST_DUE, &mut fired);
        while self.cur_tick < target {
            if self.live == 0 {
                self.cur_tick = target;
                break;
            }
            if self.fine_live == 0 {
                // Nothing can fire before the next cascade boundary (all
                // pending timers sit in coarse/overflow, whose contents
                // are beyond it by construction) — jump there directly
                // instead of walking empty fine slots one by one.
                let boundary = if self.coarse_live == 0 {
                    (self.cur_tick / COARSE_SPAN + 1) * COARSE_SPAN
                } else {
                    (self.cur_tick / FINE_SLOTS + 1) * FINE_SLOTS
                };
                if boundary > target {
                    self.cur_tick = target;
                    break;
                }
                self.cur_tick = boundary;
            } else {
                self.cur_tick += 1;
            }
            if self.cur_tick % COARSE_SPAN == 0 {
                self.cascade_overflow();
            }
            if self.cur_tick % FINE_SLOTS == 0 {
                self.cascade_coarse();
            }
            self.expire_list((self.cur_tick % FINE_SLOTS) as u32, &mut fired);
        }
        // Cascading at a boundary routes timers whose tick *is* the
        // boundary through the due list — flush them in the same call.
        self.expire_list(LIST_DUE, &mut fired);
        fired.sort_by_key(|f| (f.0, f.1));
        fired.into_iter().map(|(_, _, id, payload)| (id, payload)).collect()
    }

    /// Which list a timer with `deadline` belongs in, given the current
    /// tick: already-due, a fine slot this rotation, a coarse slot this
    /// coarse rotation, or overflow.
    fn placement(&self, deadline: TimeMs) -> u32 {
        let tick = deadline / self.resolution;
        if tick <= self.cur_tick {
            return LIST_DUE;
        }
        let fine_boundary = (self.cur_tick / FINE_SLOTS + 1) * FINE_SLOTS;
        if tick < fine_boundary {
            return (tick % FINE_SLOTS) as u32;
        }
        let coarse_boundary = (self.cur_tick / COARSE_SPAN + 1) * COARSE_SPAN;
        if tick < coarse_boundary {
            return (FINE_SLOTS + (tick / FINE_SLOTS) % COARSE_SLOTS) as u32;
        }
        LIST_OVERFLOW
    }

    /// Re-deal the coarse slot covering the fine rotation that starts at
    /// the current tick (called exactly when the fine wheel wraps).
    fn cascade_coarse(&mut self) {
        let slot = (FINE_SLOTS + (self.cur_tick / FINE_SLOTS) % COARSE_SLOTS) as u32;
        let mut idx = *self.head(slot);
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            self.unlink(idx);
            let list = self.placement(self.nodes[idx as usize].deadline);
            self.link(idx, list);
            idx = next;
        }
    }

    /// Re-examine the overflow list (called exactly when the coarse wheel
    /// wraps): timers now within the coarse horizon move inward.
    fn cascade_overflow(&mut self) {
        let horizon = (self.cur_tick + COARSE_SPAN) * self.resolution;
        let mut idx = self.overflow;
        while idx != NIL {
            let node = &self.nodes[idx as usize];
            let (next, deadline) = (node.next, node.deadline);
            if deadline / self.resolution < horizon / self.resolution {
                self.unlink(idx);
                let list = self.placement(deadline);
                self.link(idx, list);
            }
            idx = next;
        }
    }

    /// Fire every timer in `list` (a fine slot holds exactly the timers
    /// of the tick being passed; the due list holds already-due inserts).
    fn expire_list(&mut self, list: u32, fired: &mut Vec<(TimeMs, u64, TimerId, T)>) {
        let mut idx = *self.head(list);
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            self.unlink(idx);
            self.live -= 1;
            let node = &mut self.nodes[idx as usize];
            let id = TimerId::new(idx, node.gen);
            node.gen = node.gen.wrapping_add(1);
            let payload = node.payload.take().expect("pending timer holds its payload");
            fired.push((node.deadline, node.seq, id, payload));
            self.free.push(idx);
            idx = next;
        }
    }

    fn head(&mut self, list: u32) -> &mut u32 {
        let fine = FINE_SLOTS as u32;
        let coarse_end = (FINE_SLOTS + COARSE_SLOTS) as u32;
        match list {
            l if l < fine => &mut self.fine[l as usize],
            l if l < coarse_end => &mut self.coarse[(l - fine) as usize],
            LIST_OVERFLOW => &mut self.overflow,
            LIST_DUE => &mut self.due,
            _ => unreachable!("linked node with no list"),
        }
    }

    fn class_count(&mut self, list: u32) -> Option<&mut usize> {
        let fine = FINE_SLOTS as u32;
        let coarse_end = (FINE_SLOTS + COARSE_SLOTS) as u32;
        match list {
            l if l < fine => Some(&mut self.fine_live),
            l if l < coarse_end => Some(&mut self.coarse_live),
            LIST_OVERFLOW => Some(&mut self.overflow_live),
            _ => None,
        }
    }

    fn link(&mut self, idx: u32, list: u32) {
        let head = *self.head(list);
        {
            let node = &mut self.nodes[idx as usize];
            node.prev = NIL;
            node.next = head;
            node.list = list;
        }
        if head != NIL {
            self.nodes[head as usize].prev = idx;
        }
        *self.head(list) = idx;
        if let Some(count) = self.class_count(list) {
            *count += 1;
        }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next, list) = {
            let node = &self.nodes[idx as usize];
            (node.prev, node.next, node.list)
        };
        debug_assert_ne!(list, LIST_NONE, "unlink of an unlinked node");
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            *self.head(list) = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        }
        let node = &mut self.nodes[idx as usize];
        node.prev = NIL;
        node.next = NIL;
        node.list = LIST_NONE;
        if let Some(count) = self.class_count(list) {
            *count -= 1;
        }
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("resolution", &self.resolution)
            .field("now", &self.now())
            .field("live", &self.live)
            .field("allocated", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_then_insertion_order() {
        let mut wheel = TimerWheel::new(0, 1);
        wheel.insert(30, "c");
        wheel.insert(10, "a1");
        wheel.insert(10, "a2");
        wheel.insert(20, "b");
        assert_eq!(wheel.len(), 4);
        let fired: Vec<&str> = wheel.advance(25).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!["a1", "a2", "b"]);
        assert_eq!(wheel.len(), 1);
        let fired: Vec<&str> = wheel.advance(30).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!["c"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn already_due_inserts_fire_on_the_next_advance() {
        let mut wheel = TimerWheel::new(1_000, 10);
        let id = wheel.insert(500, "past");
        assert!(wheel.contains(id));
        // Even an advance that does not move time flushes due timers.
        let fired = wheel.advance(1_000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, id);
        assert!(!wheel.contains(id));
    }

    #[test]
    fn cancel_is_exact_and_stale_ids_are_rejected() {
        let mut wheel = TimerWheel::new(0, 1);
        let a = wheel.insert(100, 1);
        let b = wheel.insert(100, 2);
        assert_eq!(wheel.cancel(a), Some(1));
        assert_eq!(wheel.cancel(a), None, "double cancel");
        assert_eq!(wheel.deadline(b), Some(100));
        let fired = wheel.advance(100);
        assert_eq!(fired, vec![(b, 2)]);
        assert_eq!(wheel.cancel(b), None, "cancel after firing");
        // The slot is reused; the old id's generation no longer matches.
        let c = wheel.insert(200, 3);
        assert_ne!(c, a);
        assert_ne!(c, b);
        assert_eq!(wheel.cancel(b), None);
        assert_eq!(wheel.cancel(c), Some(3));
    }

    #[test]
    fn timers_cascade_across_coarse_and_overflow_horizons() {
        let res = 4;
        let mut wheel = TimerWheel::new(0, res);
        // One timer per regime: fine rotation, coarse rotation, overflow.
        let fine = res * (FINE_SLOTS / 2);
        let coarse = res * (FINE_SLOTS * 3 + 7);
        let far = res * (COARSE_SPAN * 2 + 13);
        wheel.insert(fine, "fine");
        wheel.insert(coarse, "coarse");
        wheel.insert(far, "far");
        assert!(wheel.advance(fine - res).is_empty());
        assert_eq!(wheel.advance(fine).len(), 1);
        assert!(wheel.advance(coarse - res).is_empty());
        assert_eq!(wheel.advance(coarse).len(), 1);
        assert!(wheel.advance(far - res).is_empty());
        let fired = wheel.advance(far);
        assert_eq!(fired.len(), 1);
        assert!(wheel.is_empty());
    }

    #[test]
    fn deadlines_on_cascade_boundaries_fire_exactly_once() {
        let mut wheel = TimerWheel::new(0, 1);
        for k in 0..4u64 {
            wheel.insert(FINE_SLOTS * (k + 1), k);
        }
        wheel.insert(COARSE_SPAN, 99);
        let fired = wheel.advance(COARSE_SPAN);
        assert_eq!(fired.len(), 5);
        assert!(wheel.is_empty());
        assert!(wheel.advance(COARSE_SPAN * 2).is_empty());
    }

    #[test]
    fn advancing_an_empty_wheel_is_constant_time_and_far_jumps_land() {
        let mut wheel: TimerWheel<()> = TimerWheel::new(0, 1);
        wheel.advance(u64::MAX / 2);
        assert_eq!(wheel.now(), u64::MAX / 2);
        // A lone far-future timer: the advance jumps rotation to rotation
        // instead of tick by tick, and still fires exactly on time.
        let mut wheel = TimerWheel::new(0, 1);
        let deadline = COARSE_SPAN * 500 + 3;
        wheel.insert(deadline, "far");
        assert!(wheel.advance(deadline - 1).is_empty());
        assert_eq!(wheel.advance(deadline).len(), 1);
    }

    #[test]
    fn resolution_rounds_deadlines_down() {
        let mut wheel = TimerWheel::new(0, 100);
        wheel.insert(250, "x");
        // Tick 2 covers [200, 300): reached at now=200.
        assert!(wheel.advance(199).is_empty());
        assert_eq!(wheel.advance(200).len(), 1);
    }
}
