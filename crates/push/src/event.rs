//! Push events and subscription filters.
//!
//! In the paper's vocabulary a *refresh* is a source→cache message that
//! re-bounds a cached approximate value. A [`PushEvent`] is the serving
//! stack's cache→client continuation of the same flow: whenever the
//! cached interval for a watched key changes (or a TTL lease lapses and
//! widens it), subscribers whose [`PushFilter`] matches receive the new
//! interval unasked.

use apcache_core::{Interval, TimeMs};
use apcache_store::Constraint;

/// Why a push was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushReason {
    /// The cached interval changed — a write recentered it, a refresh
    /// (QR or VR) shrank or moved it.
    Changed,
    /// A TTL lease lapsed without renewal and the interval was widened
    /// to its policy's fallback.
    LeaseExpired,
}

/// One server-initiated notification about a watched key.
#[derive(Debug, Clone, PartialEq)]
pub struct PushEvent<K> {
    /// The watched key.
    pub key: K,
    /// The cached interval after the change.
    pub interval: Interval,
    /// What triggered the push.
    pub reason: PushReason,
    /// Logical time of the triggering operation.
    pub now: TimeMs,
}

/// Which interval changes a subscriber wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PushFilter {
    /// Every change to the cached interval.
    Always,
    /// Only changes where the new interval *violates* the constraint —
    /// the "tell me when my precision demand is no longer met" mode a
    /// dashboard uses to re-render only when its display would be wrong.
    Violates(Constraint),
}

impl PushFilter {
    /// Whether a change to `interval` should be delivered.
    pub fn wants(&self, interval: &Interval) -> bool {
        match self {
            PushFilter::Always => true,
            PushFilter::Violates(c) => !c.satisfied_by(interval),
        }
    }
}

/// A snapshot of push-side occupancy, merged across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PushReport {
    /// Live subscriptions.
    pub subscribers: usize,
    /// Keys with at least one subscriber.
    pub watched_keys: usize,
    /// Keys holding an active (armed or lapsed-but-configured) lease.
    pub leases: usize,
    /// Leases that expired during the operation that produced this
    /// report (zero for pure stat snapshots).
    pub expired: usize,
}

impl PushReport {
    /// Fold another shard's report into this one.
    pub fn merge(&mut self, other: &PushReport) {
        self.subscribers += other.subscribers;
        self.watched_keys += other.watched_keys;
        self.leases += other.leases;
        self.expired += other.expired;
    }

    /// Render the push-side occupancy as Prometheus-style gauge families
    /// (occupancy, not counters: subscriptions close and leases release).
    /// `expired` is deliberately omitted — it is per-operation, not
    /// cumulative; the runtime exports the cumulative
    /// `apcache_lease_expirations_total` counter instead.
    pub fn render_into(&self, out: &mut apcache_telemetry::Exposition) {
        use apcache_telemetry::MetricKind;
        out.family("apcache_push_subscribers", MetricKind::Gauge, "Live push subscriptions.");
        out.sample("apcache_push_subscribers", &[], self.subscribers as f64);
        out.family(
            "apcache_push_watched_keys",
            MetricKind::Gauge,
            "Keys with at least one push subscriber.",
        );
        out.sample("apcache_push_watched_keys", &[], self.watched_keys as f64);
        out.family("apcache_push_leases", MetricKind::Gauge, "Keys holding an active TTL lease.");
        out.sample("apcache_push_leases", &[], self.leases as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_select_by_violation() {
        let narrow = Interval::new(9.0, 11.0).unwrap();
        let wide = Interval::new(0.0, 100.0).unwrap();
        assert!(PushFilter::Always.wants(&narrow));
        assert!(PushFilter::Always.wants(&wide));
        let f = PushFilter::Violates(Constraint::Absolute(5.0));
        assert!(!f.wants(&narrow), "satisfied constraint stays quiet");
        assert!(f.wants(&wide), "violated constraint pushes");
    }

    #[test]
    fn reports_merge_componentwise() {
        let mut a = PushReport { subscribers: 2, watched_keys: 1, leases: 3, expired: 0 };
        a.merge(&PushReport { subscribers: 1, watched_keys: 1, leases: 0, expired: 2 });
        assert_eq!(a, PushReport { subscribers: 3, watched_keys: 2, leases: 3, expired: 2 });
    }
}
