//! Wire-layer error types: decode failures, transport failures, and the
//! compact fault vocabulary that carries store-side errors across the wire.

use std::fmt;

use apcache_runtime::RuntimeError;
use apcache_store::StoreError;

/// Errors raised while encoding, decoding, or transporting frames.
///
/// Decoding is *defensive*: arbitrary byte inputs must map onto one of
/// these variants — never a panic, never an unbounded allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced content did (truncated length
    /// prefix, truncated body, or a string/sequence longer than the bytes
    /// that follow it).
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The length prefix announces a frame larger than the configured cap
    /// ([`MAX_FRAME_LEN`](crate::transport::MAX_FRAME_LEN)) — rejected before
    /// any allocation, so a hostile prefix cannot balloon memory.
    FrameTooLarge {
        /// Announced payload length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The frame does not start with the protocol magic byte.
    BadMagic(u8),
    /// The frame speaks a protocol version this decoder does not.
    BadVersion(u8),
    /// A tag byte named no known variant.
    UnknownTag {
        /// What the decoder was reading (message, verb, constraint, …).
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The frame decoded fully but bytes were left over inside the
    /// announced frame length.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A decoded field violated its invariant (NaN interval bound,
    /// inverted interval, a bool byte that is neither 0 nor 1, …).
    InvalidPayload(&'static str),
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// The peer answered a request with the wrong response kind — the
    /// stream is desynchronized.
    UnexpectedResponse(&'static str),
    /// A response carried a request id that is not in flight on this
    /// connection (never issued, or already answered) — the pipelining
    /// correlation is broken.
    UnknownRequestId {
        /// The offending id.
        id: u64,
    },
    /// The connection closed cleanly at a frame boundary.
    Closed,
    /// An I/O failure underneath the transport (stringified: `io::Error`
    /// is neither `Clone` nor `PartialEq`, and tests compare errors).
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} more byte(s), had {available}")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            WireError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag 0x{tag:02x}")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after the frame body")
            }
            WireError::InvalidPayload(what) => write!(f, "invalid payload: {what}"),
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::UnexpectedResponse(expected) => {
                write!(f, "peer sent the wrong response kind (expected {expected})")
            }
            WireError::UnknownRequestId { id } => {
                write!(f, "response for request id {id} which is not in flight")
            }
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(m) => write!(f, "transport I/O error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Category of a remote fault — the wire projection of the server-side
/// error enums ([`StoreError`], [`RuntimeError`]), stable across versions
/// so clients can dispatch on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No source is registered for the requested key.
    UnknownKey,
    /// The key is already registered.
    DuplicateKey,
    /// A precision constraint parameter was negative or NaN.
    InvalidConstraint,
    /// Invalid store configuration.
    Config,
    /// Parameter validation failure in the core crate.
    Param,
    /// Refresh protocol misuse.
    Protocol,
    /// Aggregate query engine failure.
    Query,
    /// The serving runtime behind the server has shut down.
    Closed,
    /// A shard actor died without answering.
    ActorGone,
    /// The server does not implement the requested operation.
    Unsupported,
}

impl FaultKind {
    /// Stable wire tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            FaultKind::UnknownKey => 0,
            FaultKind::DuplicateKey => 1,
            FaultKind::InvalidConstraint => 2,
            FaultKind::Config => 3,
            FaultKind::Param => 4,
            FaultKind::Protocol => 5,
            FaultKind::Query => 6,
            FaultKind::Closed => 7,
            FaultKind::ActorGone => 8,
            FaultKind::Unsupported => 9,
        }
    }

    /// Inverse of [`FaultKind::tag`].
    pub(crate) fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => FaultKind::UnknownKey,
            1 => FaultKind::DuplicateKey,
            2 => FaultKind::InvalidConstraint,
            3 => FaultKind::Config,
            4 => FaultKind::Param,
            5 => FaultKind::Protocol,
            6 => FaultKind::Query,
            7 => FaultKind::Closed,
            8 => FaultKind::ActorGone,
            9 => FaultKind::Unsupported,
            tag => return Err(WireError::UnknownTag { context: "fault kind", tag }),
        })
    }
}

/// A server-side failure, shipped back to the client inside an error
/// frame: a stable [`FaultKind`] for dispatch plus the server's rendered
/// detail message for humans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// Stable error category.
    pub kind: FaultKind,
    /// Human-readable detail (the server-side error's `Display` output).
    pub detail: String,
}

impl WireFault {
    /// A fault with a fresh detail message.
    pub fn new(kind: FaultKind, detail: impl Into<String>) -> Self {
        WireFault { kind, detail: detail.into() }
    }

    /// Project the fault back onto the store-error surface — the inverse
    /// of the `From<StoreError>` conversion, used where a remote shard
    /// stands in for a local one (the wire `ShardBackend`). Structured
    /// variants that lost their payload crossing the wire
    /// (`InvalidConstraint`'s offending value, `Param`'s source) come
    /// back as [`StoreError::Config`] carrying the rendered detail.
    pub fn to_store_error(&self) -> StoreError {
        match self.kind {
            FaultKind::UnknownKey => StoreError::UnknownKey,
            FaultKind::DuplicateKey => StoreError::DuplicateKey,
            _ => StoreError::Config(format!("remote fault ({:?}): {}", self.kind, self.detail)),
        }
    }
}

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remote fault ({:?}): {}", self.kind, self.detail)
    }
}

impl std::error::Error for WireFault {}

impl From<&StoreError> for WireFault {
    fn from(e: &StoreError) -> Self {
        let kind = match e {
            StoreError::UnknownKey => FaultKind::UnknownKey,
            StoreError::DuplicateKey => FaultKind::DuplicateKey,
            StoreError::InvalidConstraint(_) => FaultKind::InvalidConstraint,
            StoreError::Config(_) => FaultKind::Config,
            StoreError::Param(_) => FaultKind::Param,
            StoreError::Protocol(_) => FaultKind::Protocol,
            StoreError::Query(_) => FaultKind::Query,
            // Durability-layer failures are server-side environment
            // problems; clients see them as a config-class fault.
            StoreError::Spool(_) => FaultKind::Config,
        };
        WireFault::new(kind, e.to_string())
    }
}

impl From<StoreError> for WireFault {
    fn from(e: StoreError) -> Self {
        WireFault::from(&e)
    }
}

impl From<RuntimeError> for WireFault {
    fn from(e: RuntimeError) -> Self {
        match e {
            RuntimeError::Store(e) => WireFault::from(&e),
            RuntimeError::Closed => WireFault::new(FaultKind::Closed, e.to_string()),
            RuntimeError::ActorGone => WireFault::new(FaultKind::ActorGone, e.to_string()),
            RuntimeError::Spawn(_) => WireFault::new(FaultKind::Config, e.to_string()),
            // A lost ticket is a serving-side bookkeeping failure; the
            // client sees the runtime as unable to answer.
            RuntimeError::UnknownTicket(_) => WireFault::new(FaultKind::ActorGone, e.to_string()),
        }
    }
}

/// What a [`RemoteStoreClient`](crate::RemoteStoreClient) call can fail
/// with: either the wire itself broke, or the wire worked and the server
/// reported a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteError {
    /// Encode/decode/transport failure — the connection is suspect.
    Wire(WireError),
    /// The server processed the request and rejected it; the connection
    /// remains usable.
    Remote(WireFault),
}

impl RemoteError {
    /// The remote fault's kind, if this is a remote rejection.
    pub fn fault_kind(&self) -> Option<FaultKind> {
        match self {
            RemoteError::Remote(f) => Some(f.kind),
            RemoteError::Wire(_) => None,
        }
    }
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Wire(e) => write!(f, "wire error: {e}"),
            RemoteError::Remote(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RemoteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RemoteError::Wire(e) => Some(e),
            RemoteError::Remote(e) => Some(e),
        }
    }
}

impl From<WireError> for RemoteError {
    fn from(e: WireError) -> Self {
        RemoteError::Wire(e)
    }
}

impl From<WireFault> for RemoteError {
    fn from(e: WireFault) -> Self {
        RemoteError::Remote(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_tags_round_trip() {
        for kind in [
            FaultKind::UnknownKey,
            FaultKind::DuplicateKey,
            FaultKind::InvalidConstraint,
            FaultKind::Config,
            FaultKind::Param,
            FaultKind::Protocol,
            FaultKind::Query,
            FaultKind::Closed,
            FaultKind::ActorGone,
            FaultKind::Unsupported,
        ] {
            assert_eq!(FaultKind::from_tag(kind.tag()).unwrap(), kind);
        }
        assert!(matches!(FaultKind::from_tag(200), Err(WireError::UnknownTag { .. })));
    }

    #[test]
    fn store_errors_map_onto_stable_kinds() {
        assert_eq!(WireFault::from(StoreError::UnknownKey).kind, FaultKind::UnknownKey);
        assert_eq!(
            WireFault::from(StoreError::InvalidConstraint(-1.0)).kind,
            FaultKind::InvalidConstraint
        );
        let f = WireFault::from(RuntimeError::Closed);
        assert_eq!(f.kind, FaultKind::Closed);
        assert!(f.detail.contains("shut down"));
    }

    #[test]
    fn display_and_sources() {
        let e = RemoteError::from(WireError::BadMagic(0x99));
        assert!(e.to_string().contains("0x99"));
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(e.fault_kind(), None);
        let e = RemoteError::from(WireFault::new(FaultKind::UnknownKey, "no such key"));
        assert_eq!(e.fault_kind(), Some(FaultKind::UnknownKey));
        assert!(e.to_string().contains("no such key"));
    }
}
