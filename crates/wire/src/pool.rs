//! Client-side connection pooling: many **logical clients** multiplexed
//! over a few **pipelined sockets**.
//!
//! A deployment with hundreds of cache readers should not hold hundreds
//! of TCP connections to each serving node. A [`ClientPool`] owns a
//! small fixed set of [`RemoteStoreClient`] members (one per socket) and
//! hands out cheap [`PooledClient`] handles, each **pinned** to one
//! member by `logical_index % members` — the same sticky-assignment
//! shape as a pooled SMTP sender: a logical client's requests always
//! ride the same socket, in submission order, so per-client FIFO (and
//! with it the θ = 1 determinism the conformance suites rely on) is
//! preserved while the socket count stays fixed.
//!
//! Pipelining is what makes the multiplexing free: each member socket
//! carries its own in-flight window, so eight logical clients over two
//! sockets keep up to two windows of requests in flight — the
//! `pipelined_throughput` bench holds this at parity with one
//! window-deep socket per client.
//!
//! [`ClientPool::shutdown`] extends the single-connection drain contract
//! to the whole pool: **every** member is drained — subscriptions
//! cancelled, in-flight tickets harvested, queued pushes discarded,
//! `Shutdown` acknowledged — even when some member's peer is already
//! dead; the first failure is reported only after all sockets have been
//! torn down.

use std::sync::{Arc, Mutex};

use apcache_core::{Interval, TimeMs};
use apcache_push::{LeaseConfig, PushEvent, PushFilter};
use apcache_queries::AggregateKind;
use apcache_store::{Constraint, ReadResult, StoreMetrics, WriteOutcome};

use crate::client::{RemoteAggregateOutcome, RemoteStoreClient, Ticket};
use crate::codec::WireKey;
use crate::error::{RemoteError, WireError};
use crate::transport::Transport;

/// One member slot: `None` once the pool has shut the socket down, so a
/// straggling [`PooledClient`] gets a clean `Closed` error instead of
/// touching a dead connection.
type Member<K, T> = Arc<Mutex<Option<RemoteStoreClient<K, T>>>>;

/// A fixed set of pipelined connections to one serving node, multiplexed
/// among any number of logical clients. See the [module docs](self).
#[derive(Debug)]
pub struct ClientPool<K, T> {
    members: Vec<Member<K, T>>,
    /// Next logical index [`handle`](ClientPool::handle) will pin.
    next_logical: usize,
}

impl<K: WireKey + Ord + Clone, T: Transport> ClientPool<K, T> {
    /// Build a pool over already-connected transports, one member per
    /// transport, each with the client's default in-flight window.
    ///
    /// Panics if `transports` is empty — a pool with no sockets can
    /// serve nothing.
    pub fn new(transports: Vec<T>) -> Self {
        Self::with_window(transports, crate::client::DEFAULT_WINDOW)
    }

    /// Build a pool with an explicit per-member in-flight window.
    pub fn with_window(transports: Vec<T>, window: usize) -> Self {
        assert!(!transports.is_empty(), "a client pool needs at least one transport");
        ClientPool {
            members: transports
                .into_iter()
                .map(|t| Arc::new(Mutex::new(Some(RemoteStoreClient::with_window(t, window)))))
                .collect(),
            next_logical: 0,
        }
    }

    /// Number of member sockets.
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// A logical client pinned to member `index % members()` — the
    /// sticky assignment that keeps one logical client's requests on one
    /// socket, in order. Pinning is pure arithmetic: calling this twice
    /// with the same index yields handles that share a member (and its
    /// ticket space).
    pub fn logical(&self, index: usize) -> PooledClient<K, T> {
        let member_index = index % self.members.len();
        PooledClient {
            member: Arc::clone(&self.members[member_index]),
            member_index,
            logical_index: index,
        }
    }

    /// The next unclaimed logical client (round-robin over members).
    pub fn handle(&mut self) -> PooledClient<K, T> {
        let handle = self.logical(self.next_logical);
        self.next_logical += 1;
        handle
    }

    /// Shut every member down: per socket, cancel live subscriptions,
    /// drain in-flight tickets, discard queued pushes, send `Shutdown`,
    /// and await the ack — the single-connection drain contract applied
    /// to the whole pool. A member whose peer is dead does **not** stop
    /// the drain: every remaining socket is still torn down, and the
    /// first failure is returned only after all members were attempted.
    /// Outstanding [`PooledClient`] handles observe `Closed` afterwards.
    pub fn shutdown(self) -> Result<(), RemoteError> {
        let mut first_failure = None;
        for member in &self.members {
            // A poisoned lock means some logical client panicked mid-call;
            // the drain must still reach the members behind it.
            let mut slot = member.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(client) = slot.take() {
                if let Err(e) = client.shutdown() {
                    first_failure.get_or_insert(e);
                }
            }
        }
        match first_failure {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// One logical client of a [`ClientPool`]: every call locks its pinned
/// member for the duration of the verb and delegates. Blocking verbs
/// hold the member while they harvest, so logical clients sharing a
/// socket serialize — that is the pool's backpressure, not a deadlock
/// (the server answers regardless of which handle is waiting).
///
/// Cloning is cheap and yields another handle to the same pinned member.
#[derive(Debug, Clone)]
pub struct PooledClient<K, T> {
    member: Member<K, T>,
    member_index: usize,
    logical_index: usize,
}

impl<K: WireKey + Ord + Clone, T: Transport> PooledClient<K, T> {
    /// The member socket this handle is pinned to.
    pub fn member_index(&self) -> usize {
        self.member_index
    }

    /// The logical index this handle was created with.
    pub fn logical_index(&self) -> usize {
        self.logical_index
    }

    /// Run `f` against the pinned member, or fail `Closed` if the pool
    /// already shut it down.
    fn with<R>(
        &self,
        f: impl FnOnce(&mut RemoteStoreClient<K, T>) -> Result<R, RemoteError>,
    ) -> Result<R, RemoteError> {
        let mut slot = self.member.lock().unwrap_or_else(|e| e.into_inner());
        match slot.as_mut() {
            Some(client) => f(client),
            None => Err(RemoteError::Wire(WireError::Closed)),
        }
    }

    // -----------------------------------------------------------------
    // Submission surface (tickets are member-scoped: redeem them through
    // any handle pinned to the same member — normally this one).
    // -----------------------------------------------------------------

    /// Submit a point read on the pinned member.
    pub fn submit_read(
        &self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RemoteError> {
        self.with(|c| c.submit_read(key, constraint, now))
    }

    /// Submit a write on the pinned member.
    pub fn submit_write(&self, key: &K, value: f64, now: TimeMs) -> Result<Ticket, RemoteError> {
        self.with(|c| c.submit_write(key, value, now))
    }

    /// Submit a write batch on the pinned member.
    pub fn submit_write_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<Ticket, RemoteError> {
        self.with(|c| c.submit_write_batch(items, now))
    }

    /// Submit a bounded aggregate on the pinned member.
    pub fn submit_aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RemoteError> {
        self.with(|c| c.submit_aggregate(kind, keys, constraint, now))
    }

    /// Submit a metrics snapshot request on the pinned member.
    pub fn submit_metrics(&self) -> Result<Ticket, RemoteError> {
        self.with(|c| c.submit_metrics())
    }

    // -----------------------------------------------------------------
    // Harvest surface.
    // -----------------------------------------------------------------

    /// Redeem a read ticket.
    pub fn wait_read(&self, ticket: Ticket) -> Result<ReadResult, RemoteError> {
        self.with(|c| c.wait_read(ticket))
    }

    /// Redeem a write or write-batch ticket.
    pub fn wait_write(&self, ticket: Ticket) -> Result<WriteOutcome, RemoteError> {
        self.with(|c| c.wait_write(ticket))
    }

    /// Redeem an aggregate ticket.
    pub fn wait_aggregate(&self, ticket: Ticket) -> Result<RemoteAggregateOutcome<K>, RemoteError> {
        self.with(|c| c.wait_aggregate(ticket))
    }

    /// Redeem a metrics ticket.
    pub fn wait_metrics(&self, ticket: Ticket) -> Result<StoreMetrics<K>, RemoteError> {
        self.with(|c| c.wait_metrics(ticket))
    }

    // -----------------------------------------------------------------
    // Blocking surface.
    // -----------------------------------------------------------------

    /// Read `key` to the given precision through the pinned member.
    pub fn read(
        &self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, RemoteError> {
        self.with(|c| c.read(key, constraint, now))
    }

    /// Push a new exact value for `key` through the pinned member.
    pub fn write(&self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, RemoteError> {
        self.with(|c| c.write(key, value, now))
    }

    /// Apply a batch of writes in slice order as one frame.
    pub fn write_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, RemoteError> {
        self.with(|c| c.write_batch(items, now))
    }

    /// Bounded aggregate over `keys` through the pinned member.
    pub fn aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<RemoteAggregateOutcome<K>, RemoteError> {
        self.with(|c| c.aggregate(kind, keys, constraint, now))
    }

    /// Snapshot the remote store's serving metrics.
    pub fn metrics(&self) -> Result<StoreMetrics<K>, RemoteError> {
        self.with(|c| c.metrics())
    }

    /// Grant (or refresh) a TTL lease on the remote key.
    pub fn lease(&self, key: &K, cfg: LeaseConfig, now: TimeMs) -> Result<bool, RemoteError> {
        self.with(|c| c.lease(key, cfg, now))
    }

    /// Release the remote lease on `key`; returns whether one existed.
    pub fn release_lease(&self, key: &K, now: TimeMs) -> Result<bool, RemoteError> {
        self.with(|c| c.release_lease(key, now))
    }

    // -----------------------------------------------------------------
    // The push channel (member-scoped, like tickets: pushes for a
    // subscription are queued on the member socket that carries it).
    // -----------------------------------------------------------------

    /// Open a push subscription on `key` through the pinned member.
    pub fn subscribe(
        &self,
        key: &K,
        filter: PushFilter,
        now: TimeMs,
    ) -> Result<(Ticket, Interval), RemoteError> {
        self.with(|c| c.subscribe(key, filter, now))
    }

    /// Cancel subscription `sub` and wait for the ack.
    pub fn unsubscribe(&self, sub: Ticket) -> Result<bool, RemoteError> {
        self.with(|c| c.unsubscribe(sub))
    }

    /// Pop the oldest queued push on the pinned member, if any, without
    /// touching the transport.
    pub fn poll_push(&self) -> Result<Option<(Ticket, PushEvent<K>)>, RemoteError> {
        self.with(|c| Ok(c.poll_push()))
    }

    /// Block until a push arrives on the pinned member and pop it. Holds
    /// the member lock while blocking — only call with at least one
    /// active subscription on this member.
    pub fn next_push(&self) -> Result<(Ticket, PushEvent<K>), RemoteError> {
        self.with(|c| c.next_push())
    }
}

#[cfg(test)]
mod tests {
    use std::thread;

    use apcache_store::{InitialWidth, StoreBuilder};

    use super::*;
    use crate::server::StoreServer;
    use crate::transport::{loopback, LoopbackTransport};

    /// A pool whose members each front their own copy of a small store
    /// (call-reply servers are enough for pinning/shutdown semantics).
    fn pool_of(
        members: usize,
    ) -> (ClientPool<String, LoopbackTransport>, Vec<thread::JoinHandle<()>>) {
        let mut transports = Vec::new();
        let mut servers = Vec::new();
        for _ in 0..members {
            let (mut server_t, client_t) = loopback();
            servers.push(thread::spawn(move || {
                let store = StoreBuilder::new()
                    .initial_width(InitialWidth::Fixed(10.0))
                    .source("a".to_string(), 100.0)
                    .source("b".to_string(), 200.0)
                    .build()
                    .unwrap();
                StoreServer::new(store).serve::<String, _>(&mut server_t).unwrap();
            }));
            transports.push(client_t);
        }
        (ClientPool::new(transports), servers)
    }

    #[test]
    fn logical_clients_pin_sticky_and_round_robin() {
        let (mut pool, servers) = pool_of(2);
        assert_eq!(pool.members(), 2);
        let handles: Vec<_> = (0..8).map(|_| pool.handle()).collect();
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(h.logical_index(), i);
            assert_eq!(h.member_index(), i % 2);
        }
        // Same logical index → same member, deterministically.
        assert_eq!(pool.logical(5).member_index(), handles[5].member_index());
        // All eight logical clients serve over two sockets.
        for (i, h) in handles.iter().enumerate() {
            let r = h.read(&"a".to_string(), Constraint::Absolute(20.0), i as u64).unwrap();
            assert!(r.answer.contains(100.0));
        }
        pool.shutdown().unwrap();
        for s in servers {
            s.join().unwrap();
        }
    }

    #[test]
    fn shutdown_closes_every_member_and_straggler_handles_see_closed() {
        let (pool, servers) = pool_of(3);
        let straggler = pool.logical(1);
        pool.shutdown().unwrap();
        // Every server saw its Shutdown frame and exited.
        for s in servers {
            s.join().unwrap();
        }
        let err = straggler.read(&"a".to_string(), Constraint::Exact, 0).unwrap_err();
        assert_eq!(err, RemoteError::Wire(WireError::Closed));
    }

    #[test]
    fn a_dead_member_does_not_stop_the_pool_drain() {
        // Member 0's peer hangs up without answering; member 1 is
        // healthy. Pool shutdown must still drain and acknowledge member
        // 1, then report member 0's failure.
        let (server_t0, client_t0) = loopback();
        drop(server_t0);
        let (mut server_t1, client_t1) = loopback();
        let healthy = thread::spawn(move || {
            let store = StoreBuilder::new().source("a".to_string(), 1.0).build().unwrap();
            StoreServer::new(store).serve::<String, _>(&mut server_t1).unwrap()
        });
        let pool: ClientPool<String, _> = ClientPool::new(vec![client_t0, client_t1]);
        let err = pool.shutdown().unwrap_err();
        assert!(matches!(err, RemoteError::Wire(_)), "unexpected {err:?}");
        // The healthy member was acknowledged: its server exited via
        // Shutdown, not by EOF.
        assert_eq!(healthy.join().unwrap(), crate::server::ServerExit::Shutdown);
    }
}
