//! The client side of the wire: the same four serving verbs as the local
//! façades, executed against a remote [`StoreServer`](crate::StoreServer)
//! through any [`Transport`].

use std::marker::PhantomData;

use apcache_core::{Interval, TimeMs};
use apcache_queries::AggregateKind;
use apcache_store::{Constraint, ReadResult, StoreMetrics, WriteOutcome};

use crate::codec::WireKey;
use crate::error::{RemoteError, WireError};
use crate::message::{decode_message, encode_to_vec, WireMessage, WireRequest, WireResponse};
use crate::transport::Transport;

/// A store client that speaks the frame protocol: every verb encodes one
/// request frame, ships it, and blocks for the paired response frame.
///
/// The verb surface mirrors
/// [`RuntimeHandle`](apcache_runtime::RuntimeHandle), so code written
/// against a local deployment ports by swapping the handle for a client —
/// the conformance suite (`tests/wire_conformance.rs`) holds the two
/// bit-identical under θ = 1.
#[derive(Debug)]
pub struct RemoteStoreClient<K, T> {
    transport: T,
    _keys: PhantomData<fn() -> K>,
}

impl<K: WireKey + Ord + Clone, T: Transport> RemoteStoreClient<K, T> {
    /// Wrap a connected transport.
    pub fn new(transport: T) -> Self {
        RemoteStoreClient { transport, _keys: PhantomData }
    }

    /// Ship one request and block for its response frame.
    fn call(&mut self, request: WireRequest<K>) -> Result<WireResponse<K>, RemoteError> {
        let body = encode_to_vec(&WireMessage::Request(request));
        self.transport.send(&body)?;
        let reply = self.transport.recv()?;
        match decode_message::<K>(&reply)? {
            WireMessage::Response(response) => Ok(response),
            _ => Err(WireError::UnexpectedResponse("a response frame").into()),
        }
    }

    /// Read `key` to the given precision on the remote store.
    pub fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, RemoteError> {
        match self.call(WireRequest::Read { key: key.clone(), constraint, now })? {
            WireResponse::Read(result) => Ok(result),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Read").into()),
        }
    }

    /// Push a new exact value for `key` and wait for the outcome.
    pub fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, RemoteError> {
        match self.call(WireRequest::Write { key: key.clone(), value, now })? {
            WireResponse::Write(outcome) => Ok(outcome),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Write").into()),
        }
    }

    /// Apply a batch of writes in slice order as one frame.
    pub fn write_batch(
        &mut self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, RemoteError> {
        match self.call(WireRequest::WriteBatch { items: items.to_vec(), now })? {
            WireResponse::Write(outcome) => Ok(outcome),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("WriteBatch").into()),
        }
    }

    /// Bounded aggregate over `keys` on the remote store.
    pub fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<RemoteAggregateOutcome<K>, RemoteError> {
        match self.call(WireRequest::Aggregate { kind, keys: keys.to_vec(), constraint, now })? {
            WireResponse::Aggregate { answer, refreshed } => {
                Ok(RemoteAggregateOutcome { answer, refreshed })
            }
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Aggregate").into()),
        }
    }

    /// Snapshot the remote store's serving metrics.
    pub fn metrics(&mut self) -> Result<StoreMetrics<K>, RemoteError> {
        match self.call(WireRequest::Metrics)? {
            WireResponse::Metrics(metrics) => Ok(metrics),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Metrics").into()),
        }
    }

    /// End the session: the server acknowledges, stops serving this
    /// connection, and (for drained single-connection servers) hands its
    /// store back to whoever spawned it.
    pub fn shutdown(mut self) -> Result<(), RemoteError> {
        match self.call(WireRequest::Shutdown)? {
            WireResponse::ShutdownAck => Ok(()),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("ShutdownAck").into()),
        }
    }
}

/// Answer to a remote aggregate: the interval plus the keys the server
/// fetched exactly (in fetch order) — the wire twin of
/// [`AggregateOutcome`](apcache_store::AggregateOutcome).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteAggregateOutcome<K> {
    /// The answer interval; satisfies the constraint the query ran with.
    pub answer: Interval,
    /// Keys fetched exactly, in fetch order.
    pub refreshed: Vec<K>,
}
