//! The client side of the wire: the same serving verbs as the local
//! façades, executed against a remote server through any [`Transport`] —
//! **pipelined**: a window of requests rides one connection in flight at
//! once, correlated by the v2 frame header's request id.
//!
//! Every verb exists in two forms, mirroring
//! [`RuntimeHandle`](apcache_runtime::RuntimeHandle):
//!
//! * **`submit_*`** — stamp the next request id, ship the frame, and
//!   return a [`Ticket`] without waiting. Submission only blocks when
//!   the in-flight window is full (one response is harvested to make
//!   room — that is the client's backpressure).
//! * **blocking** — `submit_*` + `wait_*`, nothing more.
//!
//! Responses may return **out of order** (a pipelined server fronting
//! the actor runtime answers whichever shard finishes first); harvested
//! responses for other tickets are parked until their `wait_*` call.
//!
//! v3 adds the **push channel**: [`subscribe`](RemoteStoreClient::subscribe)
//! opens a long-lived subscription whose server-initiated
//! [`PushEvent`] frames are queued as they are harvested (any `wait_*`
//! call may park pushes as a side effect) and drained with
//! [`poll_push`](RemoteStoreClient::poll_push) /
//! [`next_push`](RemoteStoreClient::next_push).

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::marker::PhantomData;

use apcache_core::{Interval, TimeMs};
use apcache_push::{LeaseConfig, PushEvent, PushFilter, PushReport};
use apcache_queries::AggregateKind;
use apcache_store::{Constraint, KeyState, ReadResult, StoreMetrics, WriteOutcome};

use crate::codec::WireKey;
use crate::error::{RemoteError, WireError};
use crate::message::{decode_frame, frame_to_vec, WireMessage, WireRequest, WireResponse};
use crate::transport::Transport;

/// Default in-flight window: deep enough to amortize round trips, small
/// enough that a stalled server pushes back quickly.
pub const DEFAULT_WINDOW: usize = 32;

/// A request id issued by [`RemoteStoreClient`]'s `submit_*` verbs and
/// redeemed with the matching `wait_*` verb. Client-scoped and never
/// reused; it is the same number that rides the v2 frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub u64);

impl fmt::Display for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire-ticket#{}", self.0)
    }
}

/// A store client that speaks the frame protocol with pipelining: up to
/// `window` requests in flight over one transport, responses harvested
/// out of order by request id.
///
/// With `window == 1` the client degenerates to the strict call-reply
/// behavior of the v1 protocol (every submit drains the previous
/// response first), which is what the blocking verbs ride; the
/// conformance suites hold both windows bit-identical to a local
/// [`ShardedStore`](apcache_shard::ShardedStore) under θ = 1.
#[derive(Debug)]
pub struct RemoteStoreClient<K, T> {
    transport: T,
    next_id: u64,
    window: usize,
    /// Ids shipped but not yet answered.
    in_flight: HashSet<u64>,
    /// Answered out of order, awaiting their `wait_*` call.
    parked: HashMap<u64, WireResponse<K>>,
    /// Live subscriptions, keyed by the id their `Subscribe` shipped
    /// under — the id every push for that subscription carries.
    subscriptions: HashMap<u64, SubState>,
    /// In-flight `Unsubscribe` ids → the subscription they cancel.
    unsub_targets: HashMap<u64, u64>,
    /// Harvested pushes awaiting [`poll_push`](Self::poll_push), oldest
    /// first, each tagged with its subscription's ticket.
    pushes: VecDeque<(Ticket, PushEvent<K>)>,
    _keys: PhantomData<fn() -> K>,
}

/// Lifecycle of one subscription on the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubState {
    /// Streaming: harvested pushes are queued.
    Active,
    /// An `Unsubscribe` is in flight: pushes that raced the cancel are
    /// dropped, not errors.
    Closing,
}

impl<K: WireKey + Ord + Clone, T: Transport> RemoteStoreClient<K, T> {
    /// Wrap a connected transport with the [`DEFAULT_WINDOW`].
    pub fn new(transport: T) -> Self {
        Self::with_window(transport, DEFAULT_WINDOW)
    }

    /// Wrap a connected transport with an explicit in-flight window
    /// (values below 1 are treated as 1).
    pub fn with_window(transport: T, window: usize) -> Self {
        RemoteStoreClient {
            transport,
            next_id: 1,
            window: window.max(1),
            in_flight: HashSet::new(),
            parked: HashMap::new(),
            subscriptions: HashMap::new(),
            unsub_targets: HashMap::new(),
            pushes: VecDeque::new(),
            _keys: PhantomData,
        }
    }

    /// The configured in-flight window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests shipped but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether `ticket`'s response has already been harvested (its
    /// `wait_*` call will return without touching the transport).
    pub fn is_ready(&self, ticket: Ticket) -> bool {
        self.parked.contains_key(&ticket.0)
    }

    /// Receive one frame: park a response under its request id, or queue
    /// a push under its subscription.
    fn harvest_one(&mut self) -> Result<(), RemoteError> {
        let body = self.transport.recv()?;
        let frame = decode_frame::<K>(&body)?;
        let response = match frame.msg {
            WireMessage::Response(response) => response,
            WireMessage::Push(event) => {
                match self.subscriptions.get(&frame.request_id) {
                    Some(SubState::Active) => {
                        self.pushes.push_back((Ticket(frame.request_id), event));
                    }
                    // A push that raced our cancel: drop it, the stream
                    // is closing.
                    Some(SubState::Closing) => {}
                    None => {
                        return Err(WireError::UnknownRequestId { id: frame.request_id }.into());
                    }
                }
                return Ok(());
            }
            _ => return Err(WireError::UnexpectedResponse("a response frame").into()),
        };
        if !self.in_flight.remove(&frame.request_id) {
            return Err(WireError::UnknownRequestId { id: frame.request_id }.into());
        }
        self.parked.insert(frame.request_id, response);
        Ok(())
    }

    /// Ship one request under the next id, harvesting a response first if
    /// the window is full.
    fn submit(&mut self, request: WireRequest<K>) -> Result<Ticket, RemoteError> {
        while self.in_flight.len() >= self.window {
            self.harvest_one()?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let body = frame_to_vec(id, &WireMessage::Request(request));
        self.transport.send(&body)?;
        self.in_flight.insert(id);
        Ok(Ticket(id))
    }

    /// Block until `ticket`'s response arrives (harvesting — and parking
    /// — any other responses that come first).
    fn wait_response(&mut self, ticket: Ticket) -> Result<WireResponse<K>, RemoteError> {
        loop {
            if let Some(response) = self.parked.remove(&ticket.0) {
                return Ok(response);
            }
            if !self.in_flight.contains(&ticket.0) {
                return Err(WireError::UnknownRequestId { id: ticket.0 }.into());
            }
            self.harvest_one()?;
        }
    }

    // -----------------------------------------------------------------
    // Submission surface.
    // -----------------------------------------------------------------

    /// Submit a point read; redeem with
    /// [`wait_read`](RemoteStoreClient::wait_read).
    pub fn submit_read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::Read { key: key.clone(), constraint, now })
    }

    /// Submit a write; redeem with
    /// [`wait_write`](RemoteStoreClient::wait_write).
    pub fn submit_write(
        &mut self,
        key: &K,
        value: f64,
        now: TimeMs,
    ) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::Write { key: key.clone(), value, now })
    }

    /// Submit a batch of writes (applied in slice order server-side);
    /// redeem with [`wait_write`](RemoteStoreClient::wait_write).
    pub fn submit_write_batch(
        &mut self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::WriteBatch { items: items.to_vec(), now })
    }

    /// Submit a bounded aggregate; redeem with
    /// [`wait_aggregate`](RemoteStoreClient::wait_aggregate).
    pub fn submit_aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::Aggregate { kind, keys: keys.to_vec(), constraint, now })
    }

    /// Submit a metrics snapshot request; redeem with
    /// [`wait_metrics`](RemoteStoreClient::wait_metrics).
    pub fn submit_metrics(&mut self) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::Metrics)
    }

    /// Open a push subscription on `key`; redeem the starting snapshot
    /// with [`wait_subscribed`](RemoteStoreClient::wait_subscribed). The
    /// returned ticket *is* the subscription's identity: every push for
    /// it is tagged with this ticket, and it is what
    /// [`submit_unsubscribe`](RemoteStoreClient::submit_unsubscribe)
    /// takes. The subscription is registered before the ack returns, so
    /// pushes that overtake the ack are queued, not errors.
    pub fn submit_subscribe(
        &mut self,
        key: &K,
        filter: PushFilter,
        now: TimeMs,
    ) -> Result<Ticket, RemoteError> {
        let ticket = self.submit(WireRequest::Subscribe { key: key.clone(), filter, now })?;
        self.subscriptions.insert(ticket.0, SubState::Active);
        Ok(ticket)
    }

    /// Submit a cancel for the subscription `sub` (the ticket
    /// [`submit_subscribe`](RemoteStoreClient::submit_subscribe)
    /// returned); redeem with
    /// [`wait_unsubscribed`](RemoteStoreClient::wait_unsubscribed).
    /// Pushes still in flight when the cancel lands are dropped.
    pub fn submit_unsubscribe(&mut self, sub: Ticket) -> Result<Ticket, RemoteError> {
        match self.subscriptions.get_mut(&sub.0) {
            Some(state @ SubState::Active) => *state = SubState::Closing,
            Some(SubState::Closing) | None => {
                return Err(WireError::UnknownRequestId { id: sub.0 }.into());
            }
        }
        let ticket = self.submit(WireRequest::Unsubscribe { sub: sub.0 })?;
        self.unsub_targets.insert(ticket.0, sub.0);
        Ok(ticket)
    }

    /// Submit a TTL lease grant/refresh on `key`; redeem with
    /// [`wait_leased`](RemoteStoreClient::wait_leased).
    pub fn submit_lease(
        &mut self,
        key: &K,
        cfg: LeaseConfig,
        now: TimeMs,
    ) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::Lease { key: key.clone(), cfg, now })
    }

    /// Submit a lease release on `key`; redeem with
    /// [`wait_leased`](RemoteStoreClient::wait_leased) (whether one
    /// existed).
    pub fn submit_release_lease(&mut self, key: &K, now: TimeMs) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::ReleaseLease { key: key.clone(), now })
    }

    /// Submit a push-side logical-time advance; redeem with
    /// [`wait_time_advanced`](RemoteStoreClient::wait_time_advanced).
    pub fn submit_advance_time(&mut self, now: TimeMs) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::AdvanceTime { now })
    }

    /// Submit a key enumeration; redeem with
    /// [`wait_keys`](RemoteStoreClient::wait_keys).
    pub fn submit_key_list(&mut self) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::KeyList)
    }

    /// Submit the export half of a migration (detach `keys` with full
    /// protocol state, atomically); redeem with
    /// [`wait_exported`](RemoteStoreClient::wait_exported).
    pub fn submit_export_keys(&mut self, keys: &[K]) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::ExportKeys { keys: keys.to_vec() })
    }

    /// Submit the import half of a migration; redeem with
    /// [`wait_imported`](RemoteStoreClient::wait_imported).
    pub fn submit_import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::ImportKeys { states })
    }

    /// Submit a Prometheus-exposition scrape; redeem with
    /// [`wait_exposition`](RemoteStoreClient::wait_exposition).
    pub fn submit_exposition(&mut self) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::Exposition)
    }

    /// Submit a push-occupancy snapshot (no clock side effect); redeem
    /// with [`wait_push_stats`](RemoteStoreClient::wait_push_stats).
    pub fn submit_push_stats(&mut self) -> Result<Ticket, RemoteError> {
        self.submit(WireRequest::PushStats)
    }

    // -----------------------------------------------------------------
    // Harvest surface.
    // -----------------------------------------------------------------

    /// Redeem a read ticket.
    pub fn wait_read(&mut self, ticket: Ticket) -> Result<ReadResult, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Read(result) => Ok(result),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Read").into()),
        }
    }

    /// Redeem a write or write-batch ticket.
    pub fn wait_write(&mut self, ticket: Ticket) -> Result<WriteOutcome, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Write(outcome) => Ok(outcome),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Write").into()),
        }
    }

    /// Redeem an aggregate ticket.
    pub fn wait_aggregate(
        &mut self,
        ticket: Ticket,
    ) -> Result<RemoteAggregateOutcome<K>, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Aggregate { answer, refreshed } => {
                Ok(RemoteAggregateOutcome { answer, refreshed })
            }
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Aggregate").into()),
        }
    }

    /// Redeem a metrics ticket.
    pub fn wait_metrics(&mut self, ticket: Ticket) -> Result<StoreMetrics<K>, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Metrics(metrics) => Ok(metrics),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Metrics").into()),
        }
    }

    /// Redeem a subscribe ticket: the subscribed key's cached interval
    /// at subscription time. On a server fault (e.g. a pre-v3 server
    /// refusing the vocabulary) the subscription is unregistered before
    /// the error returns.
    pub fn wait_subscribed(&mut self, ticket: Ticket) -> Result<Interval, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Subscribed { interval } => Ok(interval),
            WireResponse::Error(fault) => {
                self.forget_subscription(ticket.0);
                Err(fault.into())
            }
            _ => Err(WireError::UnexpectedResponse("Subscribed").into()),
        }
    }

    /// Redeem an unsubscribe ticket: whether the subscription was still
    /// live server-side. The subscription and any of its still-queued
    /// pushes are gone once this returns.
    pub fn wait_unsubscribed(&mut self, ticket: Ticket) -> Result<bool, RemoteError> {
        let result = self.wait_response(ticket);
        if let Some(sub) = self.unsub_targets.remove(&ticket.0) {
            self.forget_subscription(sub);
        }
        match result? {
            WireResponse::Unsubscribed { existed } => Ok(existed),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Unsubscribed").into()),
        }
    }

    /// Redeem a lease or release ticket: whether a lease is (was)
    /// active.
    pub fn wait_leased(&mut self, ticket: Ticket) -> Result<bool, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Leased { active } => Ok(active),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Leased").into()),
        }
    }

    /// Redeem a time-advance ticket: the server's merged push report.
    pub fn wait_time_advanced(&mut self, ticket: Ticket) -> Result<PushReport, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::TimeAdvanced(report) => Ok(report),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("TimeAdvanced").into()),
        }
    }

    /// Redeem a key-list ticket.
    pub fn wait_keys(&mut self, ticket: Ticket) -> Result<Vec<K>, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Keys(keys) => Ok(keys),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Keys").into()),
        }
    }

    /// Redeem an export ticket: the detached key states, in request
    /// order.
    pub fn wait_exported(&mut self, ticket: Ticket) -> Result<Vec<KeyState<K>>, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Exported(states) => Ok(states),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Exported").into()),
        }
    }

    /// Redeem an import ticket.
    pub fn wait_imported(&mut self, ticket: Ticket) -> Result<(), RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Imported => Ok(()),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Imported").into()),
        }
    }

    /// Redeem an exposition ticket: the server's full Prometheus text
    /// exposition as one document.
    pub fn wait_exposition(&mut self, ticket: Ticket) -> Result<String, RemoteError> {
        match self.wait_response(ticket)? {
            WireResponse::Exposition(text) => Ok(text),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("Exposition").into()),
        }
    }

    /// Redeem a push-stats ticket: the merged occupancy report. The
    /// server answers with the same `TimeAdvanced` frame a clock advance
    /// uses (identical payload, no side effect).
    pub fn wait_push_stats(&mut self, ticket: Ticket) -> Result<PushReport, RemoteError> {
        self.wait_time_advanced(ticket)
    }

    fn forget_subscription(&mut self, sub: u64) {
        self.subscriptions.remove(&sub);
        self.pushes.retain(|(ticket, _)| ticket.0 != sub);
    }

    // -----------------------------------------------------------------
    // The push channel.
    // -----------------------------------------------------------------

    /// Pop the oldest queued push, if any, without touching the
    /// transport. Pushes are queued as a side effect of any harvest —
    /// `wait_*` calls, window backpressure, `next_push`.
    pub fn poll_push(&mut self) -> Option<(Ticket, PushEvent<K>)> {
        self.pushes.pop_front()
    }

    /// Block until a push is available and pop it. Only call with at
    /// least one active subscription — otherwise no push can ever
    /// arrive and this blocks on the transport indefinitely.
    pub fn next_push(&mut self) -> Result<(Ticket, PushEvent<K>), RemoteError> {
        loop {
            if let Some(push) = self.pushes.pop_front() {
                return Ok(push);
            }
            self.harvest_one()?;
        }
    }

    /// Queued pushes not yet popped.
    pub fn pending_pushes(&self) -> usize {
        self.pushes.len()
    }

    /// Subscriptions currently registered (active or closing).
    pub fn subscriptions(&self) -> usize {
        self.subscriptions.len()
    }

    // -----------------------------------------------------------------
    // Blocking surface: submit + wait, nothing else.
    // -----------------------------------------------------------------

    /// Read `key` to the given precision on the remote store.
    pub fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, RemoteError> {
        let ticket = self.submit_read(key, constraint, now)?;
        self.wait_read(ticket)
    }

    /// Push a new exact value for `key` and wait for the outcome.
    pub fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, RemoteError> {
        let ticket = self.submit_write(key, value, now)?;
        self.wait_write(ticket)
    }

    /// Apply a batch of writes in slice order as one frame.
    pub fn write_batch(
        &mut self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, RemoteError> {
        let ticket = self.submit_write_batch(items, now)?;
        self.wait_write(ticket)
    }

    /// Bounded aggregate over `keys` on the remote store.
    pub fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<RemoteAggregateOutcome<K>, RemoteError> {
        let ticket = self.submit_aggregate(kind, keys, constraint, now)?;
        self.wait_aggregate(ticket)
    }

    /// Snapshot the remote store's serving metrics.
    pub fn metrics(&mut self) -> Result<StoreMetrics<K>, RemoteError> {
        let ticket = self.submit_metrics()?;
        self.wait_metrics(ticket)
    }

    /// Open a push subscription on `key` and wait for its starting
    /// snapshot. Pushes stream in under the returned ticket until
    /// [`unsubscribe`](RemoteStoreClient::unsubscribe).
    pub fn subscribe(
        &mut self,
        key: &K,
        filter: PushFilter,
        now: TimeMs,
    ) -> Result<(Ticket, Interval), RemoteError> {
        let ticket = self.submit_subscribe(key, filter, now)?;
        let interval = self.wait_subscribed(ticket)?;
        Ok((ticket, interval))
    }

    /// Cancel subscription `sub` and wait for the ack; returns whether
    /// it was still live server-side.
    pub fn unsubscribe(&mut self, sub: Ticket) -> Result<bool, RemoteError> {
        let ticket = self.submit_unsubscribe(sub)?;
        self.wait_unsubscribed(ticket)
    }

    /// Grant (or refresh) a TTL lease on the remote key.
    pub fn lease(&mut self, key: &K, cfg: LeaseConfig, now: TimeMs) -> Result<bool, RemoteError> {
        let ticket = self.submit_lease(key, cfg, now)?;
        self.wait_leased(ticket)
    }

    /// Release the remote lease on `key`; returns whether one existed.
    pub fn release_lease(&mut self, key: &K, now: TimeMs) -> Result<bool, RemoteError> {
        let ticket = self.submit_release_lease(key, now)?;
        self.wait_leased(ticket)
    }

    /// Advance the remote push-side clock and collect the push report.
    pub fn advance_time(&mut self, now: TimeMs) -> Result<PushReport, RemoteError> {
        let ticket = self.submit_advance_time(now)?;
        self.wait_time_advanced(ticket)
    }

    /// Enumerate the remote store's keys (deterministic server order).
    pub fn key_list(&mut self) -> Result<Vec<K>, RemoteError> {
        let ticket = self.submit_key_list()?;
        self.wait_keys(ticket)
    }

    /// Detach `keys` from the remote store with full protocol state
    /// (atomic: a miss exports nothing).
    pub fn export_keys(&mut self, keys: &[K]) -> Result<Vec<KeyState<K>>, RemoteError> {
        let ticket = self.submit_export_keys(keys)?;
        self.wait_exported(ticket)
    }

    /// Attach keys previously detached elsewhere to the remote store.
    pub fn import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<(), RemoteError> {
        let ticket = self.submit_import_keys(states)?;
        self.wait_imported(ticket)
    }

    /// Scrape the remote server's full Prometheus text exposition.
    pub fn exposition(&mut self) -> Result<String, RemoteError> {
        let ticket = self.submit_exposition()?;
        self.wait_exposition(ticket)
    }

    /// Snapshot the remote push-side occupancy (subscribers, watched
    /// keys, leases) without advancing its logical clock.
    pub fn push_stats(&mut self) -> Result<PushReport, RemoteError> {
        let ticket = self.submit_push_stats()?;
        self.wait_push_stats(ticket)
    }

    /// End the session: cancel every outstanding subscription (pushes
    /// still in flight are drained and discarded along with the queue),
    /// drain every in-flight ticket (their outcomes are discarded), send
    /// `Shutdown`, and await the acknowledgement.
    ///
    /// The transport is torn down on **every** path — acknowledged, drain
    /// failure, or a dead peer — so a failed shutdown can never leak a
    /// live connection: `serve_connections`' teardown joins its
    /// connection threads and relies on each one seeing EOF.
    pub fn shutdown(mut self) -> Result<(), RemoteError> {
        let result = self.try_shutdown();
        // `self` (and with it the transport) drops here whatever
        // `result` says; the explicit drop documents that the close is
        // the fix for leaking connections on error paths, not a
        // side effect.
        drop(self);
        result
    }

    fn try_shutdown(&mut self) -> Result<(), RemoteError> {
        // Cancel subscriptions first: a `Shutdown` with live streams
        // would leave the server multiplexing pushes at a peer that is
        // done listening. Each cancel's round trip also drains (and
        // discards, below) pushes that were already in flight.
        let active: Vec<u64> = self
            .subscriptions
            .iter()
            .filter(|(_, state)| **state == SubState::Active)
            .map(|(id, _)| *id)
            .collect();
        for sub in active {
            self.unsubscribe(Ticket(sub))?;
        }
        while !self.in_flight.is_empty() {
            self.harvest_one()?;
        }
        self.pushes.clear();
        let ticket = self.submit(WireRequest::Shutdown)?;
        match self.wait_response(ticket)? {
            WireResponse::ShutdownAck => Ok(()),
            WireResponse::Error(fault) => Err(fault.into()),
            _ => Err(WireError::UnexpectedResponse("ShutdownAck").into()),
        }
    }
}

/// Answer to a remote aggregate: the interval plus the keys the server
/// fetched exactly (in fetch order) — the wire twin of
/// [`AggregateOutcome`](apcache_store::AggregateOutcome).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteAggregateOutcome<K> {
    /// The answer interval; satisfies the constraint the query ran with.
    pub answer: Interval,
    /// Keys fetched exactly, in fetch order.
    pub refreshed: Vec<K>,
}

/// Fold a remote failure into the store-error surface the backend trait
/// speaks: server faults project back onto [`StoreError`] (unknown and
/// duplicate keys exactly — export atomicity survives the round trip);
/// wire-level failures surface as configuration errors naming the cause,
/// like any other unavailable backend.
fn remote_store_err(e: RemoteError) -> apcache_store::StoreError {
    match e {
        RemoteError::Remote(fault) => fault.to_store_error(),
        RemoteError::Wire(e) => {
            apcache_store::StoreError::Config(format!("remote shard unreachable: {e}"))
        }
    }
}

/// A remote server as one shard of an outer
/// [`ShardedStore`](apcache_shard::ShardedStore) ring — the top rung of
/// the mixed-backend ladder: the same ring can route some shards to
/// in-process stores, some to runtime deployments, and some across the
/// network through this impl, with elastic resharding migrating resident
/// keys between all of them via the v3 export/import frames.
impl<K, T> apcache_shard::ShardBackend<K> for RemoteStoreClient<K, T>
where
    K: WireKey + Ord + Clone,
    T: Transport,
{
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, apcache_store::StoreError> {
        RemoteStoreClient::read(self, key, constraint, now).map_err(remote_store_err)
    }

    fn write(
        &mut self,
        key: &K,
        value: f64,
        now: TimeMs,
    ) -> Result<WriteOutcome, apcache_store::StoreError> {
        RemoteStoreClient::write(self, key, value, now).map_err(remote_store_err)
    }

    fn write_batch(
        &mut self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, apcache_store::StoreError> {
        RemoteStoreClient::write_batch(self, items, now).map_err(remote_store_err)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<apcache_store::AggregateOutcome<K>, apcache_store::StoreError> {
        RemoteStoreClient::aggregate(self, kind, keys, constraint, now)
            .map(|out| apcache_store::AggregateOutcome {
                answer: out.answer,
                refreshed: out.refreshed,
            })
            .map_err(remote_store_err)
    }

    fn metrics_snapshot(&mut self) -> Result<StoreMetrics<K>, apcache_store::StoreError> {
        RemoteStoreClient::metrics(self).map_err(remote_store_err)
    }

    fn insert(
        &mut self,
        _key: K,
        _value: f64,
        _spec: Option<apcache_store::PolicySpec>,
        _now: TimeMs,
    ) -> Result<(), apcache_store::StoreError> {
        Err(apcache_store::StoreError::Config(
            "a remote shard serves a fixed key population: register sources on the server, \
             or migrate them in via import_keys (elastic insertion is a follow-on)"
                .into(),
        ))
    }

    fn contains_key(&mut self, key: &K) -> Result<bool, apcache_store::StoreError> {
        // No membership verb on the wire: migration planning needs the
        // full enumeration anyway, so membership rides KeyList.
        Ok(RemoteStoreClient::key_list(self).map_err(remote_store_err)?.contains(key))
    }

    fn key_list(&mut self) -> Result<Vec<K>, apcache_store::StoreError> {
        RemoteStoreClient::key_list(self).map_err(remote_store_err)
    }

    fn export_keys(&mut self, keys: &[K]) -> Result<Vec<KeyState<K>>, apcache_store::StoreError> {
        RemoteStoreClient::export_keys(self, keys).map_err(remote_store_err)
    }

    fn import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<(), apcache_store::StoreError> {
        RemoteStoreClient::import_keys(self, states).map_err(remote_store_err)
    }
}
