//! # apcache-wire
//!
//! A compact, versioned, length-prefixed binary frame protocol — plus
//! loopback and TCP transports — so the paper's sources and caches can
//! live in **different processes**.
//!
//! The SIGMOD 2001 protocol is explicitly distributed: sources push
//! [`Refresh`](apcache_core::Refresh)es to caches and answer
//! query-initiated refreshes with
//! [`ExactResponse`](apcache_core::ExactResponse)s over a network. Every
//! layer below this crate keeps the two in one address space; this crate
//! supplies the missing wire:
//!
//! * [`message`] — the protocol vocabulary as frames: the paper's
//!   `Refresh` / `ExactResponse` messages (generic over the key type as
//!   [`WireRefresh`] / [`WireExact`]), all three
//!   [`Constraint`](apcache_store::Constraint) forms, and the serving
//!   verbs `Read` / `Write` / `WriteBatch` / `Aggregate` / `Metrics` /
//!   `Subscribe` / `Unsubscribe` / `Shutdown` with their outcomes, plus
//!   the server-initiated `Push` frame. Hand-rolled std-only codec:
//!   fixed-width little-endian integers, `f64`s as raw IEEE-754 bits, so
//!   `decode(encode(x)) == x` bit-for-bit and precision metadata travels
//!   at near-zero cost;
//! * [`codec`] — the bounds-checked reader/writer primitives and the
//!   [`WireKey`] trait that carries generic application keys;
//! * [`transport`] — the [`Transport`] trait with an in-process
//!   [`loopback`] pair (paired byte queues, for tests and benches) and a
//!   [`TcpTransport`] over real sockets;
//! * [`client`] / [`server`] — [`RemoteStoreClient`] speaks the serving
//!   verbs over any transport, **pipelined**: `submit_*` stamps each
//!   request with the v2 header's request id and returns a
//!   [`Ticket`]; up to a window of requests ride the
//!   connection at once and are harvested out of order with `wait_*`
//!   (the blocking verbs are submit + wait). [`StoreServer`] fronts a
//!   [`PrecisionStore`](apcache_store::PrecisionStore), a
//!   [`ShardedStore`](apcache_shard::ShardedStore), or a live
//!   [`RuntimeHandle`](apcache_runtime::RuntimeHandle) behind the same
//!   [`StoreService`] trait (in-order dispatch), while
//!   [`serve_pipelined`] / [`serve_connections`] front the runtime's
//!   ticketed surface and reply **out of order** as the shard actors
//!   finish — and, since v3, multiplex **server-initiated push frames**
//!   onto the same connection: `subscribe` opens a stream of
//!   [`PushEvent`](apcache_push::PushEvent)s for one key, delivered by
//!   the drainer thread the moment the shard's cached interval changes
//!   (or a TTL lease lapses). v3 also carries the **lease verbs**
//!   (`Lease` / `ReleaseLease` / `AdvanceTime`) and the **migration
//!   surface** (`KeyList` / `ExportKeys` / `ImportKeys`): a remote
//!   server is a full [`ShardBackend`](apcache_shard::ShardBackend), so
//!   an outer sharded ring can route some shards across the network and
//!   elastic resharding moves resident keys — adaptive widths, policy
//!   state, counters — over the wire with bit-for-bit fidelity. Version
//!   1 and 2 frames still decode (v1 as request id 0), servers answer
//!   old peers in their own version, and pre-v3 peers asking for any of
//!   the v3 vocabulary get a stable `Unsupported` fault;
//! * [`pool`] — [`ClientPool`]: many logical clients multiplexed over a
//!   few pipelined sockets with sticky member pinning, plus a pool-wide
//!   shutdown that drains every socket even when some peer is dead.
//!
//! Decoding is **defensive**: arbitrary bytes produce a [`WireError`]
//! (length caps, unknown-tag, truncation, trailing-garbage) — never a
//! panic, never an attacker-sized allocation. The conformance suite
//! (`tests/wire_conformance.rs`) holds a client talking through loopback
//! *and* through a localhost TCP socket bit-identical to a local
//! [`ShardedStore`](apcache_shard::ShardedStore) under θ = 1.
//!
//! ## Quick example
//!
//! ```
//! use std::thread;
//! use apcache_store::{Constraint, StoreBuilder};
//! use apcache_wire::{loopback, RemoteStoreClient, StoreServer};
//!
//! let store = StoreBuilder::new().source("cpu".to_string(), 40.0).build().unwrap();
//! let (mut server_end, client_end) = loopback();
//! let server = thread::spawn(move || {
//!     let mut server = StoreServer::new(store);
//!     server.serve::<String, _>(&mut server_end).unwrap();
//!     server.into_service()
//! });
//!
//! let mut client = RemoteStoreClient::<String, _>::new(client_end);
//! let r = client.read(&"cpu".to_string(), Constraint::Absolute(10.0), 0).unwrap();
//! assert!(r.answer.contains(40.0));
//! client.shutdown().unwrap();
//! let store = server.join().unwrap(); // the served store comes back
//! assert_eq!(store.metrics().totals().reads, 1);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod codec;
pub mod error;
pub mod message;
pub mod pool;
pub mod server;
pub mod transport;

pub use client::{RemoteAggregateOutcome, RemoteStoreClient, Ticket, DEFAULT_WINDOW};
pub use codec::WireKey;
pub use error::{FaultKind, RemoteError, WireError, WireFault};
pub use message::{
    decode_frame, decode_message, encode_frame, encode_frame_v1, encode_framed, encode_message,
    encode_to_vec, encode_versioned, frame_to_vec, versioned_to_vec, DecodedFrame, WireExact,
    WireMessage, WireRefresh, WireRequest, WireResponse, MAGIC, VERSION, VERSION_V1, VERSION_V2,
};
pub use pool::{ClientPool, PooledClient};
pub use server::{
    next_conn_id, requires_v3, serve_connections, serve_pipelined, v3_fault, ConnStats, ServerExit,
    StoreServer, StoreService,
};
pub use transport::{
    frame_bytes, loopback, loopback_streams, split_frame, LoopbackStream, LoopbackTransport,
    SplitStream, StreamTransport, TcpTransport, Transport, MAX_FRAME_LEN,
};
