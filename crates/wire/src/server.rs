//! The serving side of the wire: a [`StoreService`] abstraction over the
//! workspace's store façades and a [`StoreServer`] loop that decodes
//! requests off a [`Transport`], dispatches them, and ships outcomes back.

use std::collections::HashMap;
use std::hash::Hash;
use std::net::TcpListener;
use std::thread;

use apcache_core::{Interval, TimeMs};
use apcache_push::{LeaseConfig, PushReport};
use apcache_queries::AggregateKind;
use apcache_runtime::RuntimeHandle;
use apcache_shard::ShardedStore;
use apcache_store::{Constraint, KeyState, PrecisionStore, ReadResult, StoreMetrics, WriteOutcome};
use apcache_telemetry::{Counter, Gauge, Registry, TraceKind};

use crate::codec::WireKey;
use crate::error::{WireError, WireFault};
use crate::message::{decode_frame, versioned_to_vec, WireMessage, WireRequest, WireResponse};
use crate::transport::{SplitStream, StreamTransport, TcpTransport, Transport};

/// The four serving verbs plus metrics, as a trait so one server loop can
/// front any of the workspace's store layers: a single
/// [`PrecisionStore`], a [`ShardedStore`] fleet, or a live
/// [`RuntimeHandle`] into the actor runtime.
///
/// Errors are returned pre-projected as [`WireFault`]s — the server ships
/// them to the client verbatim.
pub trait StoreService<K> {
    /// Point read to the given precision.
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, WireFault>;

    /// Apply one write.
    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, WireFault>;

    /// Apply a batch of writes in slice order.
    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, WireFault>;

    /// Bounded aggregate; returns the answer interval and the keys fetched
    /// exactly, in fetch order.
    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<(Interval, Vec<K>), WireFault>;

    /// Snapshot the serving metrics (a deployment-wide rollup for
    /// multi-shard services).
    fn metrics(&mut self) -> Result<StoreMetrics<K>, WireFault>;

    // -----------------------------------------------------------------
    // v3 vocabulary, defaulted: a service that has no lease table or
    // migration surface answers with a stable Unsupported fault instead
    // of failing to compile. Overriders: the runtime handle (all six),
    // the plain store (the migration trio).
    // -----------------------------------------------------------------

    /// Grant (or refresh) a TTL lease on `key`; `true` means active.
    fn lease(&mut self, key: &K, cfg: LeaseConfig, now: TimeMs) -> Result<bool, WireFault> {
        let _ = (key, cfg, now);
        Err(unsupported("TTL leases"))
    }

    /// Release the lease on `key`, returning whether one existed.
    fn release_lease(&mut self, key: &K, now: TimeMs) -> Result<bool, WireFault> {
        let _ = (key, now);
        Err(unsupported("TTL leases"))
    }

    /// Advance the push-side logical clock and report occupancy.
    fn advance_time(&mut self, now: TimeMs) -> Result<PushReport, WireFault> {
        let _ = now;
        Err(unsupported("push-side time advance"))
    }

    /// Every key this service serves, in a deterministic order.
    fn key_list(&mut self) -> Result<Vec<K>, WireFault> {
        Err(unsupported("key enumeration"))
    }

    /// Detach `keys` with full protocol state (atomic: a miss exports
    /// nothing) — the export half of cross-node migration.
    fn export_keys(&mut self, keys: &[K]) -> Result<Vec<KeyState<K>>, WireFault> {
        let _ = keys;
        Err(unsupported("key migration"))
    }

    /// Attach keys previously detached elsewhere — the import half of
    /// cross-node migration.
    fn import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<(), WireFault> {
        let _ = states;
        Err(unsupported("key migration"))
    }

    /// Render the service's full Prometheus-style text exposition. Plain
    /// stores render their [`StoreMetrics`] rollup; the runtime handle
    /// adds push occupancy, per-verb latency histograms, and every wire
    /// series registered on its shared registry.
    fn exposition(&mut self) -> Result<String, WireFault> {
        Err(unsupported("metrics exposition"))
    }

    /// Snapshot push-side occupancy without advancing the logical clock.
    fn push_stats(&mut self) -> Result<PushReport, WireFault> {
        Err(unsupported("push-side statistics"))
    }
}

/// The stable fault for a verb this service does not implement.
fn unsupported(what: &str) -> WireFault {
    WireFault::new(
        crate::error::FaultKind::Unsupported,
        format!("this endpoint does not serve {what}"),
    )
}

/// Whether a request verb entered the vocabulary at protocol v3 — the
/// lease and migration surface. The codec is version-agnostic on frame
/// bodies, so the *server* gates: pre-v3 peers get the same stable
/// `Unsupported` fault subscriptions already get, never a response frame
/// their decoder lacks. (`Subscribe` is gated separately: its refusal
/// message names the pipelined requirement.) Public so every server door
/// — threaded or reactor — applies the identical gate.
pub fn requires_v3<K>(request: &WireRequest<K>) -> bool {
    matches!(
        request,
        WireRequest::Lease { .. }
            | WireRequest::ReleaseLease { .. }
            | WireRequest::AdvanceTime { .. }
            | WireRequest::KeyList
            | WireRequest::ExportKeys { .. }
            | WireRequest::ImportKeys { .. }
            | WireRequest::Exposition
            | WireRequest::PushStats
    )
}

/// The stable fault pre-v3 peers get for v3-only verbs.
pub fn v3_fault() -> WireFault {
    WireFault::new(
        crate::error::FaultKind::Unsupported,
        "lease, migration, and telemetry verbs require protocol v3",
    )
}

impl<K: Hash + Ord + Clone> StoreService<K> for PrecisionStore<K> {
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, WireFault> {
        PrecisionStore::read(self, key, constraint, now).map_err(Into::into)
    }

    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, WireFault> {
        PrecisionStore::write(self, key, value, now).map_err(Into::into)
    }

    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, WireFault> {
        PrecisionStore::write_batch(self, items, now).map_err(Into::into)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<(Interval, Vec<K>), WireFault> {
        PrecisionStore::aggregate(self, kind, keys, constraint, now)
            .map(|out| (out.answer, out.refreshed))
            .map_err(Into::into)
    }

    fn metrics(&mut self) -> Result<StoreMetrics<K>, WireFault> {
        Ok(PrecisionStore::metrics(self).clone())
    }

    fn key_list(&mut self) -> Result<Vec<K>, WireFault> {
        Ok(PrecisionStore::keys(self).cloned().collect())
    }

    fn export_keys(&mut self, keys: &[K]) -> Result<Vec<KeyState<K>>, WireFault> {
        // Whole-set pre-check so a miss exports nothing (the atomicity
        // contract the migration protocol leans on).
        for key in keys {
            if !PrecisionStore::contains_key(self, key) {
                return Err(apcache_store::StoreError::UnknownKey.into());
            }
        }
        keys.iter()
            .map(|key| self.export_key(key))
            .collect::<Result<Vec<_>, _>>()
            .map_err(Into::into)
    }

    fn import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<(), WireFault> {
        for state in states {
            self.import_key(state)?;
        }
        Ok(())
    }

    fn exposition(&mut self) -> Result<String, WireFault> {
        let mut out = apcache_telemetry::Exposition::new();
        PrecisionStore::metrics(self).render_into(&mut out);
        Ok(out.finish())
    }
}

impl<K: Hash + Ord + Clone> StoreService<K> for ShardedStore<K> {
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, WireFault> {
        ShardedStore::read(self, key, constraint, now).map_err(Into::into)
    }

    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, WireFault> {
        ShardedStore::write(self, key, value, now).map_err(Into::into)
    }

    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, WireFault> {
        ShardedStore::write_batch(self, items, now).map_err(Into::into)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<(Interval, Vec<K>), WireFault> {
        ShardedStore::aggregate(self, kind, keys, constraint, now)
            .map(|out| (out.answer, out.refreshed))
            .map_err(Into::into)
    }

    fn metrics(&mut self) -> Result<StoreMetrics<K>, WireFault> {
        Ok(ShardedStore::metrics(self).merged().clone())
    }

    fn exposition(&mut self) -> Result<String, WireFault> {
        let mut out = apcache_telemetry::Exposition::new();
        ShardedStore::metrics(self).merged().render_into(&mut out);
        Ok(out.finish())
    }
}

impl<K: Hash + Ord + Clone + Send + Sync + 'static> StoreService<K> for RuntimeHandle<K> {
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, WireFault> {
        RuntimeHandle::read(self, key, constraint, now).map_err(Into::into)
    }

    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, WireFault> {
        RuntimeHandle::write(self, key, value, now).map_err(Into::into)
    }

    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, WireFault> {
        RuntimeHandle::write_batch(self, items, now).map_err(Into::into)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<(Interval, Vec<K>), WireFault> {
        RuntimeHandle::aggregate(self, kind, keys, constraint, now)
            .map(|out| (out.answer, out.refreshed))
            .map_err(Into::into)
    }

    fn metrics(&mut self) -> Result<StoreMetrics<K>, WireFault> {
        RuntimeHandle::metrics(self).map(|m| m.merged().clone()).map_err(Into::into)
    }

    fn lease(&mut self, key: &K, cfg: LeaseConfig, now: TimeMs) -> Result<bool, WireFault> {
        // A granted (or refreshed) lease is active by definition.
        RuntimeHandle::lease(self, key, cfg, now).map(|()| true).map_err(Into::into)
    }

    fn release_lease(&mut self, key: &K, now: TimeMs) -> Result<bool, WireFault> {
        RuntimeHandle::release_lease(self, key, now).map_err(Into::into)
    }

    fn advance_time(&mut self, now: TimeMs) -> Result<PushReport, WireFault> {
        RuntimeHandle::advance_time(self, now).map_err(Into::into)
    }

    fn key_list(&mut self) -> Result<Vec<K>, WireFault> {
        Ok(self.sorted_keys())
    }

    fn export_keys(&mut self, keys: &[K]) -> Result<Vec<KeyState<K>>, WireFault> {
        self.export_key_states(keys).map_err(Into::into)
    }

    fn import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<(), WireFault> {
        self.import_key_states(states).map_err(Into::into)
    }

    fn exposition(&mut self) -> Result<String, WireFault> {
        self.render_exposition().map_err(Into::into)
    }

    fn push_stats(&mut self) -> Result<PushReport, WireFault> {
        RuntimeHandle::push_stats(self).map_err(Into::into)
    }
}

/// Why a serving loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerExit {
    /// The client sent [`WireRequest::Shutdown`] and was acknowledged.
    Shutdown,
    /// The client disconnected cleanly at a frame boundary.
    Disconnected,
}

/// Serves one [`StoreService`] over [`Transport`]s: decode a request
/// frame, dispatch it, encode the outcome, repeat.
///
/// One server can serve several connections *sequentially* (call
/// [`serve`](StoreServer::serve) again with the next transport); for
/// concurrent connections clone a [`RuntimeHandle`] per connection and
/// run one `StoreServer` each — see [`serve_connections`].
#[derive(Debug)]
pub struct StoreServer<S> {
    service: S,
}

impl<S> StoreServer<S> {
    /// Wrap a service.
    pub fn new(service: S) -> Self {
        StoreServer { service }
    }

    /// The wrapped service (e.g. to drain a served store's final state
    /// after the client shut the connection down).
    pub fn into_service(self) -> S {
        self.service
    }

    /// Shared access to the wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Serve `transport` until the client sends `Shutdown`, disconnects,
    /// or the stream desynchronizes. Requests are dispatched strictly in
    /// arrival order on this thread, and responses echo each request's
    /// id and version. This loop is built for **call-reply clients**:
    /// because it stops reading while it dispatches and sends, a client
    /// that pushes a deep window of large frames without draining
    /// responses can fill both sockets' kernel buffers and deadlock the
    /// pair (each side blocked in `send`, neither reading). Windowed
    /// clients should talk to [`serve_pipelined`] /
    /// [`serve_connections`], whose split reader/writer threads keep
    /// both directions moving and reply out of order.
    ///
    /// Malformed frames are fatal to the *connection* (after a framing
    /// error the byte stream cannot be trusted), but dispatch-level
    /// failures — unknown key, invalid constraint — are shipped back as
    /// error frames and serving continues: the paper's protocol treats a
    /// rejected query as an answer, not a broken link.
    pub fn serve<K, T>(&mut self, transport: &mut T) -> Result<ServerExit, WireError>
    where
        K: WireKey + Ord + Clone,
        S: StoreService<K>,
        T: Transport,
    {
        loop {
            let body = match transport.recv() {
                Ok(body) => body,
                Err(WireError::Closed) => return Ok(ServerExit::Disconnected),
                Err(e) => return Err(e),
            };
            let frame = decode_frame::<K>(&body)?;
            // Responses are encoded at the version the request arrived
            // in, echoing its id: a v1 peer gets v1 replies it can
            // decode, a v2 peer gets its correlation header back.
            let (id, version) = (frame.request_id, frame.version);
            let request = match frame.msg {
                WireMessage::Request(request) => request,
                // A peer pushing paper-vocabulary frames (Refresh /
                // ExactResponse) or server-initiated push frames at a
                // serving endpoint is answered with a fault rather than
                // dropped: the vocabulary is shared, the roles are not.
                WireMessage::Refresh(_)
                | WireMessage::Exact(_)
                | WireMessage::Response(_)
                | WireMessage::Push(_) => {
                    let fault = WireFault::new(
                        crate::error::FaultKind::Unsupported,
                        "this endpoint serves requests; push frames have no meaning here",
                    );
                    transport.send(&versioned_to_vec::<K>(
                        version,
                        id,
                        &WireMessage::Response(WireResponse::Error(fault)),
                    ))?;
                    continue;
                }
            };
            if requires_v3(&request) && version < crate::message::VERSION {
                transport.send(&versioned_to_vec::<K>(
                    version,
                    id,
                    &WireMessage::Response(WireResponse::Error(v3_fault())),
                ))?;
                continue;
            }
            let response = match request {
                WireRequest::Read { key, constraint, now } => {
                    match self.service.read(&key, constraint, now) {
                        Ok(result) => WireResponse::Read(result),
                        Err(fault) => WireResponse::Error(fault),
                    }
                }
                WireRequest::Write { key, value, now } => {
                    match self.service.write(&key, value, now) {
                        Ok(outcome) => WireResponse::Write(outcome),
                        Err(fault) => WireResponse::Error(fault),
                    }
                }
                WireRequest::WriteBatch { items, now } => {
                    match self.service.write_batch(&items, now) {
                        Ok(outcome) => WireResponse::Write(outcome),
                        Err(fault) => WireResponse::Error(fault),
                    }
                }
                WireRequest::Aggregate { kind, keys, constraint, now } => {
                    match self.service.aggregate(kind, &keys, constraint, now) {
                        Ok((answer, refreshed)) => WireResponse::Aggregate { answer, refreshed },
                        Err(fault) => WireResponse::Error(fault),
                    }
                }
                WireRequest::Metrics => match self.service.metrics() {
                    Ok(metrics) => WireResponse::Metrics(metrics),
                    Err(fault) => WireResponse::Error(fault),
                },
                // The sequential call-reply loop has no writer thread to
                // multiplex server-initiated frames onto, so it cannot
                // host subscriptions — refuse them with the same stable
                // fault a v2 peer would get from the pipelined server.
                WireRequest::Subscribe { .. } | WireRequest::Unsubscribe { .. } => {
                    WireResponse::Error(WireFault::new(
                        crate::error::FaultKind::Unsupported,
                        "push subscriptions need a pipelined (v3) connection",
                    ))
                }
                WireRequest::Lease { key, cfg, now } => match self.service.lease(&key, cfg, now) {
                    Ok(active) => WireResponse::Leased { active },
                    Err(fault) => WireResponse::Error(fault),
                },
                WireRequest::ReleaseLease { key, now } => {
                    match self.service.release_lease(&key, now) {
                        Ok(active) => WireResponse::Leased { active },
                        Err(fault) => WireResponse::Error(fault),
                    }
                }
                WireRequest::AdvanceTime { now } => match self.service.advance_time(now) {
                    Ok(report) => WireResponse::TimeAdvanced(report),
                    Err(fault) => WireResponse::Error(fault),
                },
                WireRequest::KeyList => match self.service.key_list() {
                    Ok(keys) => WireResponse::Keys(keys),
                    Err(fault) => WireResponse::Error(fault),
                },
                WireRequest::ExportKeys { keys } => match self.service.export_keys(&keys) {
                    Ok(states) => WireResponse::Exported(states),
                    Err(fault) => WireResponse::Error(fault),
                },
                WireRequest::ImportKeys { states } => match self.service.import_keys(states) {
                    Ok(()) => WireResponse::Imported,
                    Err(fault) => WireResponse::Error(fault),
                },
                WireRequest::Exposition => match self.service.exposition() {
                    Ok(text) => WireResponse::Exposition(text),
                    Err(fault) => WireResponse::Error(fault),
                },
                // PushStats answers with the TimeAdvanced frame: same
                // payload, no clock side effect.
                WireRequest::PushStats => match self.service.push_stats() {
                    Ok(report) => WireResponse::TimeAdvanced(report),
                    Err(fault) => WireResponse::Error(fault),
                },
                WireRequest::Shutdown => {
                    transport.send(&versioned_to_vec::<K>(
                        version,
                        id,
                        &WireMessage::Response(WireResponse::ShutdownAck),
                    ))?;
                    return Ok(ServerExit::Shutdown);
                }
            };
            transport.send(&versioned_to_vec(version, id, &WireMessage::Response(response)))?;
        }
    }
}

/// Process-wide connection id source: the label that keys a pipelined
/// connection's byte counters and in-flight gauge in the registry.
static CONN_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Claim the next process-wide connection id. Every serving door —
/// threaded or reactor — draws from the same sequence, so connection
/// labels stay unique on a shared registry whichever doors a process
/// runs.
pub fn next_conn_id() -> u64 {
    CONN_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The wire-layer series one pipelined connection maintains on the
/// runtime's shared registry. Frame/byte counters split by direction;
/// bytes and the in-flight window are additionally labeled with the
/// connection id (ids are never reused, so a long-lived process accretes
/// one retired series per closed connection — the scrape stays
/// deterministic, just longer). Public so the event-driven reactor door
/// maintains the identical series.
#[derive(Clone)]
pub struct ConnStats {
    /// Frames decoded off this connection.
    pub frames_in: Counter,
    /// Frames shipped to this connection's peer.
    pub frames_out: Counter,
    /// Framed bytes received (length prefix included).
    pub bytes_in: Counter,
    /// Framed bytes sent (length prefix included).
    pub bytes_out: Counter,
    /// Requests submitted to the runtime but not yet answered on the
    /// wire — the server-side view of the client's in-flight window.
    pub window: Gauge,
    /// Frames that failed to decode (fatal to their connection).
    pub decode_faults: Counter,
}

impl ConnStats {
    /// Register the connection's series under the `conn` id label.
    pub fn register(registry: &Registry, conn: u64) -> Self {
        let conn = conn.to_string();
        let frames = "Frames decoded from (dir=in) and shipped to (dir=out) pipelined peers.";
        let bytes = "Framed bytes (length prefix included) per pipelined connection.";
        ConnStats {
            frames_in: registry.counter("apcache_wire_frames_total", frames, &[("dir", "in")]),
            frames_out: registry.counter("apcache_wire_frames_total", frames, &[("dir", "out")]),
            bytes_in: registry.counter(
                "apcache_wire_connection_bytes_total",
                bytes,
                &[("conn", &conn), ("dir", "in")],
            ),
            bytes_out: registry.counter(
                "apcache_wire_connection_bytes_total",
                bytes,
                &[("conn", &conn), ("dir", "out")],
            ),
            window: registry.gauge(
                "apcache_wire_inflight",
                "In-flight window occupancy per pipelined connection.",
                &[("conn", &conn)],
            ),
            decode_faults: registry.counter(
                "apcache_wire_decode_faults_total",
                "Frames that failed to decode (fatal to their connection).",
                &[],
            ),
        }
    }
}

/// Count one outbound frame and ship it.
fn ship<S: SplitStream>(
    writer: &mut StreamTransport<S>,
    stats: &ConnStats,
    body: &[u8],
) -> Result<(), WireError> {
    let sent = writer.send(body);
    if sent.is_ok() {
        stats.frames_out.inc();
        stats.bytes_out.add(body.len() as u64 + 4);
    }
    sent
}

/// What the pipelined reader tells the drainer about each decoded frame.
enum ConnEvent<K> {
    /// A request was submitted to the runtime under `ticket`.
    Submitted { ticket: apcache_runtime::Ticket, request_id: u64, version: u8 },
    /// A request was answered without touching the runtime (validation
    /// fault, push frame at a serving endpoint); ship it as-is.
    Immediate { request_id: u64, version: u8, response: WireResponse<K> },
    /// No more requests will arrive. `ack` carries the id/version of a
    /// client `Shutdown` to acknowledge once everything outstanding has
    /// been answered; `None` is a plain disconnect.
    End { ack: Option<(u64, u8)> },
}

/// Serve one connection in front of the actor runtime with **pipelined,
/// out-of-order replies**: requests are decoded and submitted to
/// `handle`'s ticketed surface as fast as they arrive (the reader — this
/// thread), while a drainer thread harvests the handle's completion
/// queue and ships each response the moment its shard finishes, tagged
/// with the originating request id. A window of client requests
/// therefore overlaps on the server exactly as it does on the wire —
/// one connection, many in-flight requests, no head-of-line blocking
/// across shards.
///
/// A client `Shutdown` is acknowledged only after every outstanding
/// request has been answered, then the connection ends with
/// [`ServerExit::Shutdown`]. Dispatch-level faults travel back as error
/// frames (out of order like any other response); malformed frames
/// remain fatal to the connection.
pub fn serve_pipelined<K, S>(
    transport: StreamTransport<S>,
    handle: RuntimeHandle<K>,
) -> Result<ServerExit, WireError>
where
    K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    S: SplitStream + 'static,
{
    use std::sync::mpsc;

    let writer = transport.try_split()?;
    let mut reader = transport;
    let handle = std::sync::Arc::new(handle);
    let stats = ConnStats::register(handle.telemetry().registry(), next_conn_id());
    let (evt_tx, evt_rx) = mpsc::channel::<ConnEvent<K>>();
    let drainer = {
        let handle = std::sync::Arc::clone(&handle);
        let stats = stats.clone();
        thread::Builder::new()
            .name("apcache-wire-drain".into())
            .spawn(move || drain_completions(writer, &handle, &evt_rx, &stats))
            .map_err(|e| WireError::Io(e.to_string()))?
    };

    // The reader loop: decode, submit, hand the ticket to the drainer.
    // Live subscriptions are correlated by the wire id their Subscribe
    // arrived under — pushes go out tagged with that id, and the same id
    // is how the client names the subscription in an Unsubscribe.
    let mut subs: HashMap<u64, apcache_runtime::Ticket> = HashMap::new();
    let mut fatal: Option<WireError> = None;
    loop {
        let body = match reader.recv() {
            Ok(body) => body,
            Err(WireError::Closed) => {
                let _ = evt_tx.send(ConnEvent::End { ack: None });
                break;
            }
            Err(e) => {
                fatal = Some(e);
                let _ = evt_tx.send(ConnEvent::End { ack: None });
                break;
            }
        };
        stats.frames_in.inc();
        stats.bytes_in.add(body.len() as u64 + 4);
        let frame = match decode_frame::<K>(&body) {
            Ok(frame) => frame,
            Err(e) => {
                stats.decode_faults.inc();
                handle.telemetry().trace().record(TraceKind::DecodeFault, 0, "", None);
                fatal = Some(e);
                let _ = evt_tx.send(ConnEvent::End { ack: None });
                break;
            }
        };
        let (request_id, version) = (frame.request_id, frame.version);
        let request = match frame.msg {
            WireMessage::Request(request) => request,
            WireMessage::Refresh(_)
            | WireMessage::Exact(_)
            | WireMessage::Response(_)
            | WireMessage::Push(_) => {
                let fault = WireFault::new(
                    crate::error::FaultKind::Unsupported,
                    "this endpoint serves requests; push frames have no meaning here",
                );
                let _ = evt_tx.send(ConnEvent::Immediate {
                    request_id,
                    version,
                    response: WireResponse::Error(fault),
                });
                continue;
            }
        };
        if requires_v3(&request) && version < crate::message::VERSION {
            let _ = evt_tx.send(ConnEvent::Immediate {
                request_id,
                version,
                response: WireResponse::Error(v3_fault()),
            });
            continue;
        }
        let submitted = match request {
            WireRequest::Read { key, constraint, now } => handle.submit_read(&key, constraint, now),
            WireRequest::Write { key, value, now } => handle.submit_write(&key, value, now),
            WireRequest::WriteBatch { items, now } => handle.submit_write_batch(&items, now),
            WireRequest::Aggregate { kind, keys, constraint, now } => {
                handle.submit_aggregate(kind, &keys, constraint, now)
            }
            WireRequest::Metrics => handle.submit_metrics(),
            WireRequest::Subscribe { key, filter, now } => {
                if version < crate::message::VERSION {
                    // Pre-v3 peers have no Push frame in their
                    // vocabulary, so a subscription could never be
                    // served — refuse it with a stable fault instead of
                    // streaming frames the peer cannot decode.
                    let _ = evt_tx.send(ConnEvent::Immediate {
                        request_id,
                        version,
                        response: WireResponse::Error(WireFault::new(
                            crate::error::FaultKind::Unsupported,
                            "push subscriptions require protocol v3",
                        )),
                    });
                    continue;
                }
                let submitted = handle.submit_subscribe(&key, filter, now);
                if let Ok(ticket) = &submitted {
                    subs.insert(request_id, *ticket);
                }
                submitted
            }
            WireRequest::Unsubscribe { sub } => match subs.remove(&sub) {
                Some(ticket) => handle.submit_unsubscribe(ticket),
                None => {
                    let _ = evt_tx.send(ConnEvent::Immediate {
                        request_id,
                        version,
                        response: WireResponse::Unsubscribed { existed: false },
                    });
                    continue;
                }
            },
            WireRequest::Lease { key, cfg, now } => handle.submit_lease(&key, cfg, now),
            WireRequest::ReleaseLease { key, now } => handle.submit_release_lease(&key, now),
            WireRequest::AdvanceTime { now } => handle.submit_advance_time(now),
            // Migration verbs are control-plane and run inline on the
            // reader, not through the ticketed surface: pausing intake
            // while a batch detaches means no later frame on this
            // connection can race the export, and the per-shard export
            // request still queues *behind* everything already in that
            // shard's mailbox — earlier submitted writes land before the
            // state leaves (the drain-then-flip ordering migration needs).
            WireRequest::KeyList => {
                let _ = evt_tx.send(ConnEvent::Immediate {
                    request_id,
                    version,
                    response: WireResponse::Keys(handle.sorted_keys()),
                });
                continue;
            }
            WireRequest::ExportKeys { keys } => {
                let response = match handle.export_key_states(&keys) {
                    Ok(states) => WireResponse::Exported(states),
                    Err(e) => WireResponse::Error(WireFault::from(e)),
                };
                let _ = evt_tx.send(ConnEvent::Immediate { request_id, version, response });
                continue;
            }
            WireRequest::ImportKeys { states } => {
                let response = match handle.import_key_states(states) {
                    Ok(()) => WireResponse::Imported,
                    Err(e) => WireResponse::Error(WireFault::from(e)),
                };
                let _ = evt_tx.send(ConnEvent::Immediate { request_id, version, response });
                continue;
            }
            // Exposition is control-plane like the migration verbs, but
            // rendering gathers metrics/push-stats on a scratch handle
            // inside the runtime, then settles the ticket immediately —
            // so the scrape wakes the drainer like any other completion
            // (an Immediate event could not: while a subscription
            // streams, the drainer blocks on the completion queue, not
            // the event channel).
            WireRequest::Exposition => handle.submit_exposition(),
            // PushStats rides the ticketed surface; its completion is a
            // TimeAdvanced outcome the drainer already ships.
            WireRequest::PushStats => handle.submit_push_stats(),
            WireRequest::Shutdown => {
                let _ = evt_tx.send(ConnEvent::End { ack: Some((request_id, version)) });
                break;
            }
        };
        let event = match submitted {
            Ok(ticket) => ConnEvent::Submitted { ticket, request_id, version },
            Err(e) => ConnEvent::Immediate {
                request_id,
                version,
                response: WireResponse::Error(WireFault::from(e)),
            },
        };
        let _ = evt_tx.send(event);
    }
    // Cancel subscriptions the client left open (disconnects, and
    // shutdowns that skipped the unsubscribe): each cancel makes the
    // actor drop the subscription's sink, whose SubscriptionEnded
    // completion retires the drainer's mapping — without this the
    // drainer would wait forever on tickets that stream but never
    // settle. The cancel acks themselves are unmapped and are dropped
    // by the drainer as orphans.
    for (_, ticket) in subs.drain() {
        let _ = handle.submit_unsubscribe(ticket);
    }
    drop(evt_tx);
    let drained = drainer.join().map_err(|_| WireError::Closed)?;
    match fatal {
        Some(e) => Err(e),
        None => drained,
    }
}

/// The drainer half of [`serve_pipelined`]: harvest completions off the
/// handle's queue and ship each as a response frame under its request
/// id, until the reader signals the end and everything outstanding has
/// been answered.
fn drain_completions<K, S>(
    mut writer: StreamTransport<S>,
    handle: &RuntimeHandle<K>,
    events: &std::sync::mpsc::Receiver<ConnEvent<K>>,
    stats: &ConnStats,
) -> Result<ServerExit, WireError>
where
    K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    S: SplitStream,
{
    use std::sync::mpsc::TryRecvError;

    /// Zero the connection's in-flight gauge on every exit path.
    struct WindowReset(Gauge);
    impl Drop for WindowReset {
        fn drop(&mut self) {
            self.0.set(0);
        }
    }
    let _window_reset = WindowReset(stats.window.clone());

    // Runtime ticket → (request id, version) of the frame that caused it.
    let mut in_flight: HashMap<apcache_runtime::Ticket, (u64, u8)> = HashMap::new();
    let mut end: Option<Option<(u64, u8)>> = None;
    // An `Err` out of `apply` (or any later send) means a response could
    // not be shipped: the peer hung up mid-window. On this side that is
    // a clean disconnect, exactly like an EOF on the reader — work
    // already submitted still executes on the actors; only its answers
    // have nowhere to go.
    let apply = |event: ConnEvent<K>,
                 in_flight: &mut HashMap<apcache_runtime::Ticket, (u64, u8)>,
                 end: &mut Option<Option<(u64, u8)>>,
                 writer: &mut StreamTransport<S>|
     -> Result<(), WireError> {
        match event {
            ConnEvent::Submitted { ticket, request_id, version } => {
                in_flight.insert(ticket, (request_id, version));
            }
            ConnEvent::Immediate { request_id, version, response } => {
                ship(
                    writer,
                    stats,
                    &versioned_to_vec(version, request_id, &WireMessage::Response(response)),
                )?;
            }
            ConnEvent::End { ack } => {
                end.get_or_insert(ack);
            }
        }
        Ok(())
    };
    loop {
        stats.window.set(in_flight.len() as i64);
        // Absorb whatever the reader has queued, without blocking.
        loop {
            match events.try_recv() {
                Ok(event) => {
                    if apply(event, &mut in_flight, &mut end, &mut writer).is_err() {
                        return Ok(ServerExit::Disconnected);
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    end.get_or_insert(None);
                    break;
                }
            }
        }
        if in_flight.is_empty() {
            match end {
                Some(Some((request_id, version))) => {
                    let ack = versioned_to_vec::<K>(
                        version,
                        request_id,
                        &WireMessage::Response(WireResponse::ShutdownAck),
                    );
                    return Ok(if ship(&mut writer, stats, &ack).is_ok() {
                        ServerExit::Shutdown
                    } else {
                        ServerExit::Disconnected
                    });
                }
                Some(None) => return Ok(ServerExit::Disconnected),
                None => {
                    // Idle connection: block until the reader has news.
                    match events.recv() {
                        Ok(event) => {
                            if apply(event, &mut in_flight, &mut end, &mut writer).is_err() {
                                return Ok(ServerExit::Disconnected);
                            }
                        }
                        Err(_) => {
                            end.get_or_insert(None);
                        }
                    }
                    continue;
                }
            }
        }
        // Work is outstanding: block on the completion queue.
        let Some(completion) = handle.completions().wait() else {
            // The queue has nothing outstanding and nothing ready, yet
            // tickets are still mapped: no completion can ever arrive
            // for them (every registered op settles exactly once, so
            // this is a lost-ticket invariant breach, not a transient
            // race — mapped tickets were registered before their
            // Submitted events were sent). Fail them as answers instead
            // of spinning on an empty queue forever.
            for (_, (request_id, version)) in in_flight.drain() {
                let fault = WireFault::new(
                    crate::error::FaultKind::ActorGone,
                    "the serving runtime lost this request's ticket",
                );
                let body = versioned_to_vec::<K>(
                    version,
                    request_id,
                    &WireMessage::Response(WireResponse::Error(fault)),
                );
                if ship(&mut writer, stats, &body).is_err() {
                    return Ok(ServerExit::Disconnected);
                }
            }
            continue;
        };
        // Subscription tickets stream: the Subscribed ack and every Push
        // reuse the same mapping, which only SubscriptionEnded retires —
        // everything else settles its ticket with exactly one frame.
        let streaming = matches!(
            completion.outcome,
            Ok(apcache_runtime::Outcome::Subscribed { .. }) | Ok(apcache_runtime::Outcome::Push(_))
        );
        // The completion may precede its Submitted event; block on the
        // channel until the mapping shows up (the reader sends it right
        // after submitting).
        let correlated = loop {
            let found = if streaming {
                in_flight.get(&completion.ticket).copied()
            } else {
                in_flight.remove(&completion.ticket)
            };
            if let Some(found) = found {
                break Some(found);
            }
            match events.recv() {
                Ok(event) => {
                    if apply(event, &mut in_flight, &mut end, &mut writer).is_err() {
                        return Ok(ServerExit::Disconnected);
                    }
                }
                Err(_) => {
                    end.get_or_insert(None);
                    break None; // reader died pre-mapping; drop the orphan
                }
            }
        };
        let Some((request_id, version)) = correlated else { continue };
        let body = match completion.outcome {
            Ok(apcache_runtime::Outcome::Read(result)) => versioned_to_vec::<K>(
                version,
                request_id,
                &WireMessage::Response(WireResponse::Read(result)),
            ),
            Ok(apcache_runtime::Outcome::Write(outcome)) => versioned_to_vec::<K>(
                version,
                request_id,
                &WireMessage::Response(WireResponse::Write(outcome)),
            ),
            Ok(apcache_runtime::Outcome::Aggregate(outcome)) => versioned_to_vec(
                version,
                request_id,
                &WireMessage::Response(WireResponse::Aggregate {
                    answer: outcome.answer,
                    refreshed: outcome.refreshed,
                }),
            ),
            Ok(apcache_runtime::Outcome::Metrics(metrics)) => versioned_to_vec(
                version,
                request_id,
                &WireMessage::Response(WireResponse::Metrics(metrics.merged().clone())),
            ),
            Ok(apcache_runtime::Outcome::Subscribed { interval }) => versioned_to_vec::<K>(
                version,
                request_id,
                &WireMessage::Response(WireResponse::Subscribed { interval }),
            ),
            // The server-initiated frame: a subscribed key's interval
            // changed, multiplexed onto the connection under the
            // subscription's wire id.
            Ok(apcache_runtime::Outcome::Push(event)) => {
                versioned_to_vec(version, request_id, &WireMessage::Push(event))
            }
            // The subscription's terminal completion: the mapping is
            // already removed above; the unsubscribe ack (or connection
            // teardown) speaks for itself, so no frame goes out.
            Ok(apcache_runtime::Outcome::SubscriptionEnded) => continue,
            Ok(apcache_runtime::Outcome::Unsubscribed { existed }) => versioned_to_vec::<K>(
                version,
                request_id,
                &WireMessage::Response(WireResponse::Unsubscribed { existed }),
            ),
            Ok(apcache_runtime::Outcome::Leased { active }) => versioned_to_vec::<K>(
                version,
                request_id,
                &WireMessage::Response(WireResponse::Leased { active }),
            ),
            Ok(apcache_runtime::Outcome::TimeAdvanced(report)) => versioned_to_vec::<K>(
                version,
                request_id,
                &WireMessage::Response(WireResponse::TimeAdvanced(report)),
            ),
            Ok(apcache_runtime::Outcome::Exposition(text)) => versioned_to_vec::<K>(
                version,
                request_id,
                &WireMessage::Response(WireResponse::Exposition(text)),
            ),
            Err(e) => versioned_to_vec::<K>(
                version,
                request_id,
                &WireMessage::Response(WireResponse::Error(WireFault::from(e))),
            ),
        };
        if ship(&mut writer, stats, &body).is_err() {
            return Ok(ServerExit::Disconnected);
        }
    }
}

/// Sniff the first four bytes of a fresh connection without consuming
/// them. The frame protocol's first byte is the `u32` length prefix,
/// whose little-endian value for the ASCII `"GET "` (0x20544547) is far
/// beyond [`MAX_FRAME_LEN`](crate::transport::MAX_FRAME_LEN) — so the
/// two vocabularies cannot collide and a plain-HTTP scraper can share
/// the serving port. Returns `None` on EOF or error (the frame loop
/// will re-surface it as a clean close).
fn sniff_http(stream: &std::net::TcpStream) -> Option<bool> {
    let mut first = [0u8; 4];
    loop {
        match stream.peek(&mut first) {
            Ok(0) => return None,
            // A partial first segment: extremely rare (both protocols
            // open with >= 4 bytes in one write), so a short nap beats
            // a busy spin while the rest of the bytes arrive.
            Ok(n) if n < 4 => thread::sleep(std::time::Duration::from_millis(1)),
            Ok(_) => return Some(&first == b"GET "),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

/// Answer one plain-HTTP request on a connection whose first bytes were
/// `"GET "`: `GET /metrics` gets the full Prometheus text exposition
/// (format 0.0.4), anything else a 404. One request, then close —
/// scrapers reconnect per scrape.
fn serve_http_scrape<K>(
    stream: &std::net::TcpStream,
    handle: &RuntimeHandle<K>,
) -> Result<ServerExit, WireError>
where
    K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
{
    use std::io::{Read, Write};

    let mut stream = stream;
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(ServerExit::Disconnected);
        }
        head.extend_from_slice(&buf[..n]);
        if head.len() > 8_192 {
            break; // hostile header flood: answer what we have
        }
    }
    let request_line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let path = std::str::from_utf8(request_line)
        .ok()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        handle
            .telemetry()
            .registry()
            .counter("apcache_http_scrapes_total", "Plain-HTTP GET /metrics scrapes served.", &[])
            .inc();
        match handle.render_exposition() {
            Ok(text) => ("200 OK", text),
            Err(e) => ("500 Internal Server Error", format!("exposition failed: {e}\n")),
        }
    } else {
        ("404 Not Found", "only /metrics is served over HTTP here\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    // `Connection: close` must be made true actively: the acceptor holds
    // a cloned fd for teardown, so merely dropping this handler's stream
    // would not send FIN and a scraper reading to EOF would wait on the
    // listener's whole lifetime.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(ServerExit::Disconnected)
}

/// Accept TCP connections on `listener` and serve each on its own thread
/// with a clone of `handle` — **pipelined**: every connection runs
/// [`serve_pipelined`], so each client can keep a window of requests in
/// flight and receives replies out of order as the shard actors finish.
/// This is the cross-process face of the actor runtime.
///
/// A connection whose first bytes are `"GET "` instead of a frame length
/// prefix is answered as plain HTTP: `GET /metrics` returns the full
/// Prometheus text exposition, so an off-the-shelf scraper can point at
/// the serving port with no frame codec.
///
/// The first client-initiated `Shutdown` stops the accept loop (a
/// connection thread wakes the blocked acceptor by dialing the
/// listener's port on loopback). Sibling connections then get a short
/// drain grace to finish their own shutdown handshakes — a
/// [`ClientPool`](crate::ClientPool) drains its members sequentially
/// through this one listener, so the first member's `Shutdown` must not
/// cut the others off mid-drain. Connections still open after the grace
/// — idle peers included — are force-closed (and counted in
/// `apcache_wire_forced_closes_total` with a `forced_close` trace
/// event), and every connection thread is joined before returning, so no
/// request is in flight afterwards.
pub fn serve_connections<K>(
    listener: TcpListener,
    handle: RuntimeHandle<K>,
) -> Result<(), WireError>
where
    K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
{
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let stop = Arc::new(AtomicBool::new(false));
    // The wake-up dial must target a routable address: a listener bound
    // to the unspecified address (0.0.0.0 / ::) is reachable on
    // loopback, but *connecting to* 0.0.0.0 is platform-dependent.
    let local_addr = listener.local_addr()?;
    let wake_addr = SocketAddr::new(
        match local_addr.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            routable => routable,
        },
        local_addr.port(),
    );
    // Each worker's raw socket stays with the acceptor so teardown can
    // force-close connections whose peers are idle or gone.
    type Worker = (thread::JoinHandle<Result<ServerExit, WireError>>, TcpStream);
    let mut workers: Vec<Worker> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let transport = TcpTransport::accept(&listener)?;
        if stop.load(Ordering::SeqCst) {
            // The wake-up connection from a finished shutdown; discard it.
            break;
        }
        let raw = transport.inner().try_clone()?;
        // A handle clone is a fresh logical client: this connection's
        // tickets and completions are its own.
        let connection_handle = handle.clone();
        let connection_stop = Arc::clone(&stop);
        let worker = thread::Builder::new()
            .name("apcache-wire-conn".into())
            .spawn(move || {
                // HTTP peers are sniffed (peeked, not consumed) before
                // the frame loop ever reads, so the two protocols share
                // the port without a wrapper stream.
                let exit = if sniff_http(transport.inner()) == Some(true) {
                    serve_http_scrape(transport.inner(), &connection_handle)
                } else {
                    serve_pipelined(transport, connection_handle)
                };
                if matches!(exit, Ok(ServerExit::Shutdown)) {
                    connection_stop.store(true, Ordering::SeqCst);
                    // Unblock the acceptor so it can observe the flag.
                    let _ = TcpStream::connect(wake_addr);
                }
                exit
            })
            .map_err(|e| WireError::Io(e.to_string()))?;
        workers.push((worker, raw));
    }
    // Shutdown means stop *accepting* — but sibling connections may be
    // mid-drain themselves. A `ClientPool` shuts its members down
    // sequentially over this one listener: the first member's `Shutdown`
    // lands here and stops the accept loop while members 2..n still have
    // their own unsubscribe/harvest/`Shutdown` handshakes in flight.
    // Force-closing immediately would cut those drains short (the
    // scoping bug this grace fixes), so give running workers a bounded
    // window to finish on their own.
    let drain_deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while workers.iter().any(|(worker, _)| !worker.is_finished())
        && std::time::Instant::now() < drain_deadline
    {
        thread::sleep(std::time::Duration::from_millis(10));
    }
    // Force-close whatever remains so a worker parked in recv() on an
    // idle peer wakes with EOF instead of blocking the join below
    // forever. Workers still running at this point are the idle/slow
    // peers being cut off — count each.
    let forced = handle.telemetry().registry().counter(
        "apcache_wire_forced_closes_total",
        "Idle or lingering connections force-closed at listener teardown.",
        &[],
    );
    for (worker, raw) in &workers {
        if !worker.is_finished() {
            forced.inc();
            handle.telemetry().trace().record(TraceKind::ForcedClose, 0, "", None);
        }
        let _ = raw.shutdown(std::net::Shutdown::Both);
    }
    for (worker, _) in workers {
        let _ = worker.join().map_err(|_| WireError::Closed)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RemoteStoreClient;
    use crate::error::FaultKind;
    use crate::message::{decode_message, encode_to_vec};
    use crate::transport::loopback;
    use apcache_store::StoreBuilder;

    fn small_store() -> PrecisionStore<String> {
        StoreBuilder::new()
            .initial_width(apcache_store::InitialWidth::Fixed(10.0))
            .source("a".to_string(), 100.0)
            .source("b".to_string(), 200.0)
            .build()
            .unwrap()
    }

    #[test]
    fn serves_a_precision_store_over_loopback() {
        let (mut server_t, client_t) = loopback();
        let server = thread::spawn(move || {
            let mut server = StoreServer::new(small_store());
            let exit = server.serve::<String, _>(&mut server_t).unwrap();
            (exit, server.into_service())
        });
        let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::new(client_t);
        let r = client.read(&"a".to_string(), Constraint::Absolute(10.0), 0).unwrap();
        assert!(!r.refreshed);
        let w = client.write(&"a".to_string(), 150.0, 1_000).unwrap();
        assert!(w.escaped());
        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.totals().reads, 1);
        assert_eq!(metrics.totals().writes, 1);
        client.shutdown().unwrap();
        let (exit, store) = server.join().unwrap();
        assert_eq!(exit, ServerExit::Shutdown);
        // The served store's own counters match what the client saw.
        assert_eq!(store.metrics().totals(), metrics.totals());
    }

    #[test]
    fn dispatch_faults_keep_the_connection_alive() {
        let (mut server_t, client_t) = loopback();
        let server = thread::spawn(move || {
            StoreServer::new(small_store()).serve::<String, _>(&mut server_t).unwrap()
        });
        let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::new(client_t);
        let err = client.read(&"zzz".to_string(), Constraint::Exact, 0).unwrap_err();
        assert_eq!(err.fault_kind(), Some(FaultKind::UnknownKey));
        let err = client.read(&"a".to_string(), Constraint::Absolute(-1.0), 0).unwrap_err();
        assert_eq!(err.fault_kind(), Some(FaultKind::InvalidConstraint));
        // Still serving.
        assert!(client.read(&"a".to_string(), Constraint::Exact, 0).is_ok());
        client.shutdown().unwrap();
        assert_eq!(server.join().unwrap(), ServerExit::Shutdown);
    }

    #[test]
    fn client_disconnect_ends_the_loop_cleanly() {
        let (mut server_t, client_t) = loopback();
        let server = thread::spawn(move || {
            StoreServer::new(small_store()).serve::<String, _>(&mut server_t).unwrap()
        });
        drop(client_t);
        assert_eq!(server.join().unwrap(), ServerExit::Disconnected);
    }

    fn small_fleet() -> apcache_runtime::Runtime<String> {
        let store = apcache_shard::ShardedStoreBuilder::new()
            .shards(2)
            .initial_width(apcache_store::InitialWidth::Fixed(10.0))
            .source("a".to_string(), 100.0)
            .source("b".to_string(), 200.0)
            .source("c".to_string(), 300.0)
            .build()
            .unwrap();
        apcache_runtime::Runtime::launch(store).unwrap()
    }

    #[test]
    fn pipelined_server_answers_a_window_out_of_order() {
        let runtime = small_fleet();
        let handle = runtime.handle();
        let (server_t, client_t) = loopback();
        let server = thread::spawn(move || serve_pipelined(server_t, handle).unwrap());
        let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::with_window(client_t, 8);
        // Submit a full window, then redeem newest-first: responses are
        // reassembled by ticket whatever order they arrived in.
        let keys = ["a", "b", "c"];
        let writes: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| client.submit_write(&k.to_string(), 50.0 * i as f64, 100).unwrap())
            .collect();
        let reads: Vec<_> = keys
            .iter()
            .map(|k| client.submit_read(&k.to_string(), Constraint::Exact, 200).unwrap())
            .collect();
        assert_eq!(client.in_flight(), 6);
        for (&ticket, (i, _)) in reads.iter().zip(keys.iter().enumerate()).rev() {
            let r = client.wait_read(ticket).unwrap();
            assert!(r.answer.contains(50.0 * i as f64), "key #{i}");
        }
        for &ticket in writes.iter().rev() {
            client.wait_write(ticket).unwrap();
        }
        // Faults travel the pipelined path as answers, not disconnects.
        let bad = client.submit_read(&"zzz".to_string(), Constraint::Exact, 300).unwrap();
        let ok = client.submit_read(&"a".to_string(), Constraint::Exact, 300).unwrap();
        assert_eq!(client.wait_read(bad).unwrap_err().fault_kind(), Some(FaultKind::UnknownKey));
        assert!(client.wait_read(ok).is_ok());
        client.shutdown().unwrap();
        assert_eq!(server.join().unwrap(), ServerExit::Shutdown);
        let store = runtime.into_store().unwrap();
        assert_eq!(store.metrics().merged().totals().writes, 3);
    }

    #[test]
    fn pipelined_disconnect_without_shutdown_is_clean() {
        let runtime = small_fleet();
        let handle = runtime.handle();
        let (server_t, client_t) = loopback();
        let server = thread::spawn(move || serve_pipelined(server_t, handle).unwrap());
        let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::with_window(client_t, 4);
        // In-flight work at hang-up time is still applied (the reader
        // submitted it before seeing EOF).
        client.submit_write(&"a".to_string(), 111.0, 50).unwrap();
        drop(client);
        assert_eq!(server.join().unwrap(), ServerExit::Disconnected);
        let store = runtime.into_store().unwrap();
        assert_eq!(store.value(&"a".to_string()), Some(111.0));
    }

    #[test]
    fn pipelined_server_streams_pushes_for_subscriptions() {
        use apcache_push::{PushFilter, PushReason};
        let runtime = small_fleet();
        let handle = runtime.handle();
        let (server_t, client_t) = loopback();
        let server = thread::spawn(move || serve_pipelined(server_t, handle).unwrap());
        let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::new(client_t);
        let (sub, snapshot) = client.subscribe(&"a".to_string(), PushFilter::Always, 0).unwrap();
        assert!(snapshot.contains(100.0));
        // An escaping write moves the cached interval → one push, which
        // the server multiplexes ahead of the write's own response.
        client.write(&"a".to_string(), 500.0, 100).unwrap();
        let (from, event) = client.next_push().unwrap();
        assert_eq!(from, sub);
        assert_eq!(event.key, "a");
        assert_eq!(event.reason, PushReason::Changed);
        assert!(event.interval.contains(500.0));
        assert!(client.unsubscribe(sub).unwrap());
        // The stream is closed: further writes push nothing.
        client.write(&"a".to_string(), 900.0, 200).unwrap();
        assert_eq!(client.pending_pushes(), 0);
        client.shutdown().unwrap();
        assert_eq!(server.join().unwrap(), ServerExit::Shutdown);
    }

    #[test]
    fn pipelined_server_serves_exposition_and_push_stats() {
        use apcache_push::PushFilter;
        let runtime = small_fleet();
        let handle = runtime.handle();
        let (server_t, client_t) = loopback();
        let server = thread::spawn(move || serve_pipelined(server_t, handle).unwrap());
        let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::new(client_t);
        client.read(&"a".to_string(), Constraint::Exact, 0).unwrap();
        client.write(&"b".to_string(), 42.0, 10).unwrap();
        let (sub, _) = client.subscribe(&"c".to_string(), PushFilter::Always, 20).unwrap();
        // PushStats sees the live subscription without advancing time.
        let report = client.push_stats().unwrap();
        assert_eq!(report.subscribers, 1);
        assert_eq!(report.watched_keys, 1);
        // The exposition carries the store rollup and the wire series.
        let text = client.exposition().unwrap();
        assert!(text.contains("# TYPE apcache_reads_total counter"), "{text}");
        assert!(text.contains("apcache_reads_total 1"), "{text}");
        assert!(text.contains("apcache_writes_total 1"), "{text}");
        assert!(text.contains("apcache_push_subscribers 1"), "{text}");
        assert!(text.contains("apcache_verb_latency_seconds_bucket"), "{text}");
        assert!(text.contains("apcache_wire_frames_total{dir=\"in\"}"), "{text}");
        assert!(client.unsubscribe(sub).unwrap());
        client.shutdown().unwrap();
        assert_eq!(server.join().unwrap(), ServerExit::Shutdown);
    }

    #[test]
    fn sequential_server_serves_store_exposition() {
        let (mut server_t, client_t) = loopback();
        let server = thread::spawn(move || {
            let mut server = StoreServer::new(small_store());
            server.serve::<String, _>(&mut server_t).unwrap()
        });
        let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::new(client_t);
        client.read(&"a".to_string(), Constraint::Exact, 0).unwrap();
        let text = client.exposition().unwrap();
        assert!(text.contains("apcache_reads_total 1"), "{text}");
        // A plain store has no push side: the verb faults, stably.
        let err = client.push_stats().unwrap_err();
        assert_eq!(err.fault_kind(), Some(FaultKind::Unsupported));
        client.shutdown().unwrap();
        assert_eq!(server.join().unwrap(), ServerExit::Shutdown);
    }

    #[test]
    fn v2_peers_get_a_stable_fault_for_telemetry_verbs() {
        use crate::message::{decode_frame, versioned_to_vec, VERSION_V2};
        let runtime = small_fleet();
        let handle = runtime.handle();
        let (server_t, mut client_t) = loopback();
        let server = thread::spawn(move || serve_pipelined(server_t, handle).unwrap());
        for (id, request) in [(11u64, WireRequest::Exposition), (12, WireRequest::PushStats)] {
            let msg: WireMessage<String> = WireMessage::Request(request);
            client_t.send(&versioned_to_vec(VERSION_V2, id, &msg)).unwrap();
            let frame = decode_frame::<String>(&client_t.recv().unwrap()).unwrap();
            assert_eq!((frame.request_id, frame.version), (id, VERSION_V2));
            assert!(matches!(
                frame.msg,
                WireMessage::Response(WireResponse::Error(WireFault {
                    kind: FaultKind::Unsupported,
                    ..
                }))
            ));
        }
        drop(client_t);
        assert_eq!(server.join().unwrap(), ServerExit::Disconnected);
    }

    #[test]
    fn v2_peers_get_a_stable_fault_for_subscriptions() {
        use crate::message::{decode_frame, versioned_to_vec, VERSION_V2};
        use apcache_push::PushFilter;
        let runtime = small_fleet();
        let handle = runtime.handle();
        let (server_t, mut client_t) = loopback();
        let server = thread::spawn(move || serve_pipelined(server_t, handle).unwrap());
        let sub: WireMessage<String> = WireMessage::Request(WireRequest::Subscribe {
            key: "a".into(),
            filter: PushFilter::Always,
            now: 0,
        });
        client_t.send(&versioned_to_vec(VERSION_V2, 7, &sub)).unwrap();
        let frame = decode_frame::<String>(&client_t.recv().unwrap()).unwrap();
        assert_eq!((frame.request_id, frame.version), (7, VERSION_V2));
        assert!(matches!(
            frame.msg,
            WireMessage::Response(WireResponse::Error(WireFault {
                kind: FaultKind::Unsupported,
                ..
            }))
        ));
        drop(client_t);
        assert_eq!(server.join().unwrap(), ServerExit::Disconnected);
    }

    #[test]
    fn push_frames_at_a_serving_endpoint_are_faulted_not_fatal() {
        use crate::message::WireRefresh;
        use apcache_core::policy::ApproxSpec;
        let (mut server_t, mut client_t) = loopback();
        let server = thread::spawn(move || {
            StoreServer::new(small_store()).serve::<String, _>(&mut server_t).unwrap()
        });
        let push: WireMessage<String> = WireMessage::Refresh(WireRefresh {
            key: "a".to_string(),
            spec: ApproxSpec::constant_centered(1.0, 2.0),
            internal_width: 2.0,
        });
        client_t.send(&encode_to_vec(&push)).unwrap();
        let reply = decode_message::<String>(&client_t.recv().unwrap()).unwrap();
        assert!(matches!(
            reply,
            WireMessage::Response(WireResponse::Error(WireFault {
                kind: FaultKind::Unsupported,
                ..
            }))
        ));
        drop(client_t);
        assert_eq!(server.join().unwrap(), ServerExit::Disconnected);
    }
}
