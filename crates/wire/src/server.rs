//! The serving side of the wire: a [`StoreService`] abstraction over the
//! workspace's store façades and a [`StoreServer`] loop that decodes
//! requests off a [`Transport`], dispatches them, and ships outcomes back.

use std::hash::Hash;
use std::net::TcpListener;
use std::thread;

use apcache_core::{Interval, TimeMs};
use apcache_queries::AggregateKind;
use apcache_runtime::RuntimeHandle;
use apcache_shard::ShardedStore;
use apcache_store::{Constraint, PrecisionStore, ReadResult, StoreMetrics, WriteOutcome};

use crate::codec::WireKey;
use crate::error::{WireError, WireFault};
use crate::message::{decode_message, encode_to_vec, WireMessage, WireRequest, WireResponse};
use crate::transport::{TcpTransport, Transport};

/// The four serving verbs plus metrics, as a trait so one server loop can
/// front any of the workspace's store layers: a single
/// [`PrecisionStore`], a [`ShardedStore`] fleet, or a live
/// [`RuntimeHandle`] into the actor runtime.
///
/// Errors are returned pre-projected as [`WireFault`]s — the server ships
/// them to the client verbatim.
pub trait StoreService<K> {
    /// Point read to the given precision.
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, WireFault>;

    /// Apply one write.
    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, WireFault>;

    /// Apply a batch of writes in slice order.
    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, WireFault>;

    /// Bounded aggregate; returns the answer interval and the keys fetched
    /// exactly, in fetch order.
    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<(Interval, Vec<K>), WireFault>;

    /// Snapshot the serving metrics (a deployment-wide rollup for
    /// multi-shard services).
    fn metrics(&mut self) -> Result<StoreMetrics<K>, WireFault>;
}

impl<K: Hash + Ord + Clone> StoreService<K> for PrecisionStore<K> {
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, WireFault> {
        PrecisionStore::read(self, key, constraint, now).map_err(Into::into)
    }

    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, WireFault> {
        PrecisionStore::write(self, key, value, now).map_err(Into::into)
    }

    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, WireFault> {
        PrecisionStore::write_batch(self, items, now).map_err(Into::into)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<(Interval, Vec<K>), WireFault> {
        PrecisionStore::aggregate(self, kind, keys, constraint, now)
            .map(|out| (out.answer, out.refreshed))
            .map_err(Into::into)
    }

    fn metrics(&mut self) -> Result<StoreMetrics<K>, WireFault> {
        Ok(PrecisionStore::metrics(self).clone())
    }
}

impl<K: Hash + Ord + Clone> StoreService<K> for ShardedStore<K> {
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, WireFault> {
        ShardedStore::read(self, key, constraint, now).map_err(Into::into)
    }

    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, WireFault> {
        ShardedStore::write(self, key, value, now).map_err(Into::into)
    }

    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, WireFault> {
        ShardedStore::write_batch(self, items, now).map_err(Into::into)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<(Interval, Vec<K>), WireFault> {
        ShardedStore::aggregate(self, kind, keys, constraint, now)
            .map(|out| (out.answer, out.refreshed))
            .map_err(Into::into)
    }

    fn metrics(&mut self) -> Result<StoreMetrics<K>, WireFault> {
        Ok(ShardedStore::metrics(self).merged().clone())
    }
}

impl<K: Hash + Ord + Clone + Send + 'static> StoreService<K> for RuntimeHandle<K> {
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, WireFault> {
        RuntimeHandle::read(self, key, constraint, now).map_err(Into::into)
    }

    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, WireFault> {
        RuntimeHandle::write(self, key, value, now).map_err(Into::into)
    }

    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, WireFault> {
        RuntimeHandle::write_batch(self, items, now).map_err(Into::into)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<(Interval, Vec<K>), WireFault> {
        RuntimeHandle::aggregate(self, kind, keys, constraint, now)
            .map(|out| (out.answer, out.refreshed))
            .map_err(Into::into)
    }

    fn metrics(&mut self) -> Result<StoreMetrics<K>, WireFault> {
        RuntimeHandle::metrics(self).map(|m| m.merged().clone()).map_err(Into::into)
    }
}

/// Why a serving loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerExit {
    /// The client sent [`WireRequest::Shutdown`] and was acknowledged.
    Shutdown,
    /// The client disconnected cleanly at a frame boundary.
    Disconnected,
}

/// Serves one [`StoreService`] over [`Transport`]s: decode a request
/// frame, dispatch it, encode the outcome, repeat.
///
/// One server can serve several connections *sequentially* (call
/// [`serve`](StoreServer::serve) again with the next transport); for
/// concurrent connections clone a [`RuntimeHandle`] per connection and
/// run one `StoreServer` each — see [`serve_connections`].
#[derive(Debug)]
pub struct StoreServer<S> {
    service: S,
}

impl<S> StoreServer<S> {
    /// Wrap a service.
    pub fn new(service: S) -> Self {
        StoreServer { service }
    }

    /// The wrapped service (e.g. to drain a served store's final state
    /// after the client shut the connection down).
    pub fn into_service(self) -> S {
        self.service
    }

    /// Shared access to the wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Serve `transport` until the client sends `Shutdown`, disconnects,
    /// or the stream desynchronizes.
    ///
    /// Malformed frames are fatal to the *connection* (after a framing
    /// error the byte stream cannot be trusted), but dispatch-level
    /// failures — unknown key, invalid constraint — are shipped back as
    /// error frames and serving continues: the paper's protocol treats a
    /// rejected query as an answer, not a broken link.
    pub fn serve<K, T>(&mut self, transport: &mut T) -> Result<ServerExit, WireError>
    where
        K: WireKey + Ord + Clone,
        S: StoreService<K>,
        T: Transport,
    {
        loop {
            let body = match transport.recv() {
                Ok(body) => body,
                Err(WireError::Closed) => return Ok(ServerExit::Disconnected),
                Err(e) => return Err(e),
            };
            let request = match decode_message::<K>(&body)? {
                WireMessage::Request(request) => request,
                // A peer pushing paper-vocabulary frames (Refresh /
                // ExactResponse) at a serving endpoint is answered with a
                // fault rather than dropped: the vocabulary is shared, the
                // roles are not.
                WireMessage::Refresh(_) | WireMessage::Exact(_) | WireMessage::Response(_) => {
                    let fault = WireFault::new(
                        crate::error::FaultKind::Unsupported,
                        "this endpoint serves requests; push frames have no meaning here",
                    );
                    transport.send(&encode_to_vec::<K>(&WireMessage::Response(
                        WireResponse::Error(fault),
                    )))?;
                    continue;
                }
            };
            let response = match request {
                WireRequest::Read { key, constraint, now } => {
                    match self.service.read(&key, constraint, now) {
                        Ok(result) => WireResponse::Read(result),
                        Err(fault) => WireResponse::Error(fault),
                    }
                }
                WireRequest::Write { key, value, now } => {
                    match self.service.write(&key, value, now) {
                        Ok(outcome) => WireResponse::Write(outcome),
                        Err(fault) => WireResponse::Error(fault),
                    }
                }
                WireRequest::WriteBatch { items, now } => {
                    match self.service.write_batch(&items, now) {
                        Ok(outcome) => WireResponse::Write(outcome),
                        Err(fault) => WireResponse::Error(fault),
                    }
                }
                WireRequest::Aggregate { kind, keys, constraint, now } => {
                    match self.service.aggregate(kind, &keys, constraint, now) {
                        Ok((answer, refreshed)) => WireResponse::Aggregate { answer, refreshed },
                        Err(fault) => WireResponse::Error(fault),
                    }
                }
                WireRequest::Metrics => match self.service.metrics() {
                    Ok(metrics) => WireResponse::Metrics(metrics),
                    Err(fault) => WireResponse::Error(fault),
                },
                WireRequest::Shutdown => {
                    transport.send(&encode_to_vec::<K>(&WireMessage::Response(
                        WireResponse::ShutdownAck,
                    )))?;
                    return Ok(ServerExit::Shutdown);
                }
            };
            transport.send(&encode_to_vec(&WireMessage::Response(response)))?;
        }
    }
}

/// Accept TCP connections on `listener` and serve each on its own thread
/// with a clone of `handle`, until a connection ends with a client
/// `Shutdown` — the cross-process face of the actor runtime.
///
/// The first client-initiated `Shutdown` stops the accept loop (a
/// connection thread wakes the blocked acceptor by dialing the
/// listener's port on loopback). Connections still open at that point —
/// idle peers included — are force-closed, and every connection thread
/// is joined before returning, so no request is in flight afterwards.
pub fn serve_connections<K>(
    listener: TcpListener,
    handle: RuntimeHandle<K>,
) -> Result<(), WireError>
where
    K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
{
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let stop = Arc::new(AtomicBool::new(false));
    // The wake-up dial must target a routable address: a listener bound
    // to the unspecified address (0.0.0.0 / ::) is reachable on
    // loopback, but *connecting to* 0.0.0.0 is platform-dependent.
    let local_addr = listener.local_addr()?;
    let wake_addr = SocketAddr::new(
        match local_addr.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            routable => routable,
        },
        local_addr.port(),
    );
    // Each worker's raw socket stays with the acceptor so teardown can
    // force-close connections whose peers are idle or gone.
    type Worker = (thread::JoinHandle<Result<ServerExit, WireError>>, TcpStream);
    let mut workers: Vec<Worker> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let mut transport = TcpTransport::accept(&listener)?;
        if stop.load(Ordering::SeqCst) {
            // The wake-up connection from a finished shutdown; discard it.
            break;
        }
        let raw = transport.inner().try_clone()?;
        let connection_handle = handle.clone();
        let connection_stop = Arc::clone(&stop);
        let worker = thread::Builder::new()
            .name("apcache-wire-conn".into())
            .spawn(move || {
                let exit = StoreServer::new(connection_handle).serve::<K, _>(&mut transport);
                if matches!(exit, Ok(ServerExit::Shutdown)) {
                    connection_stop.store(true, Ordering::SeqCst);
                    // Unblock the acceptor so it can observe the flag.
                    let _ = TcpStream::connect(wake_addr);
                }
                exit
            })
            .map_err(|e| WireError::Io(e.to_string()))?;
        workers.push((worker, raw));
    }
    // Shutdown means stop serving: force-close lingering connections so
    // a worker parked in recv() on an idle peer wakes with EOF instead
    // of blocking the join below forever.
    for (_, raw) in &workers {
        let _ = raw.shutdown(std::net::Shutdown::Both);
    }
    for (worker, _) in workers {
        let _ = worker.join().map_err(|_| WireError::Closed)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RemoteStoreClient;
    use crate::error::FaultKind;
    use crate::transport::loopback;
    use apcache_store::StoreBuilder;

    fn small_store() -> PrecisionStore<String> {
        StoreBuilder::new()
            .initial_width(apcache_store::InitialWidth::Fixed(10.0))
            .source("a".to_string(), 100.0)
            .source("b".to_string(), 200.0)
            .build()
            .unwrap()
    }

    #[test]
    fn serves_a_precision_store_over_loopback() {
        let (mut server_t, client_t) = loopback();
        let server = thread::spawn(move || {
            let mut server = StoreServer::new(small_store());
            let exit = server.serve::<String, _>(&mut server_t).unwrap();
            (exit, server.into_service())
        });
        let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::new(client_t);
        let r = client.read(&"a".to_string(), Constraint::Absolute(10.0), 0).unwrap();
        assert!(!r.refreshed);
        let w = client.write(&"a".to_string(), 150.0, 1_000).unwrap();
        assert!(w.escaped());
        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.totals().reads, 1);
        assert_eq!(metrics.totals().writes, 1);
        client.shutdown().unwrap();
        let (exit, store) = server.join().unwrap();
        assert_eq!(exit, ServerExit::Shutdown);
        // The served store's own counters match what the client saw.
        assert_eq!(store.metrics().totals(), metrics.totals());
    }

    #[test]
    fn dispatch_faults_keep_the_connection_alive() {
        let (mut server_t, client_t) = loopback();
        let server = thread::spawn(move || {
            StoreServer::new(small_store()).serve::<String, _>(&mut server_t).unwrap()
        });
        let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::new(client_t);
        let err = client.read(&"zzz".to_string(), Constraint::Exact, 0).unwrap_err();
        assert_eq!(err.fault_kind(), Some(FaultKind::UnknownKey));
        let err = client.read(&"a".to_string(), Constraint::Absolute(-1.0), 0).unwrap_err();
        assert_eq!(err.fault_kind(), Some(FaultKind::InvalidConstraint));
        // Still serving.
        assert!(client.read(&"a".to_string(), Constraint::Exact, 0).is_ok());
        client.shutdown().unwrap();
        assert_eq!(server.join().unwrap(), ServerExit::Shutdown);
    }

    #[test]
    fn client_disconnect_ends_the_loop_cleanly() {
        let (mut server_t, client_t) = loopback();
        let server = thread::spawn(move || {
            StoreServer::new(small_store()).serve::<String, _>(&mut server_t).unwrap()
        });
        drop(client_t);
        assert_eq!(server.join().unwrap(), ServerExit::Disconnected);
    }

    #[test]
    fn push_frames_at_a_serving_endpoint_are_faulted_not_fatal() {
        use apcache_core::policy::ApproxSpec;
        use apcache_core::{Key, Refresh};
        let (mut server_t, mut client_t) = loopback();
        let server = thread::spawn(move || {
            StoreServer::new(small_store()).serve::<String, _>(&mut server_t).unwrap()
        });
        let push: WireMessage<String> = WireMessage::Refresh(Refresh {
            key: Key(1),
            spec: ApproxSpec::constant_centered(1.0, 2.0),
            internal_width: 2.0,
        });
        client_t.send(&encode_to_vec(&push)).unwrap();
        let reply = decode_message::<String>(&client_t.recv().unwrap()).unwrap();
        assert!(matches!(
            reply,
            WireMessage::Response(WireResponse::Error(WireFault {
                kind: FaultKind::Unsupported,
                ..
            }))
        ));
        drop(client_t);
        assert_eq!(server.join().unwrap(), ServerExit::Disconnected);
    }
}
