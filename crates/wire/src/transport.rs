//! Frame transports: the `Transport` trait, a byte-stream implementation
//! generic over `io::Read + io::Write`, an in-process loopback built from
//! paired byte queues, and TCP constructors.
//!
//! Framing is a `u32` little-endian length prefix followed by the frame
//! body (see [`message`](crate::message) for the body layout). The length
//! is validated against [`MAX_FRAME_LEN`] *before* any allocation, so a
//! hostile or corrupt prefix cannot balloon memory, and a clean EOF at a
//! frame boundary surfaces as [`WireError::Closed`] while an EOF mid-frame
//! is [`WireError::Truncated`].

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::WireError;

/// Hard cap on a frame body's length. Generous for the protocol's frames
/// (a million-key metrics snapshot fits), tight enough that a corrupt
/// length prefix fails fast instead of attempting a multi-gigabyte read.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// A bidirectional, ordered frame pipe.
///
/// `send` ships one encoded frame body; `recv` blocks for the next one.
/// Implementations frame with the shared length-prefix convention so a
/// loopback pair and a TCP socket are interchangeable.
pub trait Transport: Send {
    /// Ship one frame body to the peer.
    fn send(&mut self, body: &[u8]) -> Result<(), WireError>;

    /// Receive the next frame body, blocking until one arrives. Returns
    /// [`WireError::Closed`] on a clean peer disconnect at a frame
    /// boundary.
    fn recv(&mut self) -> Result<Vec<u8>, WireError>;
}

/// Split `buf` into its leading length-prefixed frame: returns the frame
/// body and the total bytes consumed (prefix + body). Used by the
/// robustness tests to exercise the framing rules on raw byte slices.
pub fn split_frame(buf: &[u8]) -> Result<(&[u8], usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated { needed: 4, available: buf.len() });
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len: u64::from(len),
            max: u64::from(MAX_FRAME_LEN),
        });
    }
    let len = len as usize;
    if buf.len() - 4 < len {
        return Err(WireError::Truncated { needed: len, available: buf.len() - 4 });
    }
    Ok((&buf[4..4 + len], 4 + len))
}

/// Prepend the length prefix to one frame body.
pub fn frame_bytes(body: &[u8]) -> Result<Vec<u8>, WireError> {
    let len = u32::try_from(body.len()).ok().filter(|&len| len <= MAX_FRAME_LEN).ok_or(
        WireError::FrameTooLarge { len: body.len() as u64, max: u64::from(MAX_FRAME_LEN) },
    )?;
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(body);
    Ok(out)
}

/// A byte stream whose two directions can be duplicated onto separate
/// handles — one dedicated to reads, one to writes — so a pipelined
/// endpoint can decode incoming frames and ship outgoing frames from
/// different threads over the *same* connection.
///
/// The duplicate shares the underlying connection: closing either side
/// (or dropping the last handle) tears the connection down for both.
pub trait SplitStream: Read + Write + Send + Sized {
    /// Duplicate the stream handle.
    fn try_split(&self) -> io::Result<Self>;
}

impl SplitStream for TcpStream {
    fn try_split(&self) -> io::Result<Self> {
        self.try_clone()
    }
}

/// [`Transport`] over any byte stream (`TcpStream`, a loopback pipe, …).
#[derive(Debug)]
pub struct StreamTransport<S> {
    stream: S,
}

impl<S: Read + Write + Send> StreamTransport<S> {
    /// Wrap a byte stream.
    pub fn new(stream: S) -> Self {
        StreamTransport { stream }
    }

    /// The underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Shared access to the underlying stream (e.g. to `try_clone` a
    /// `TcpStream` so a supervisor can force-close the connection).
    pub fn inner(&self) -> &S {
        &self.stream
    }

    /// Duplicate the transport over the same connection (see
    /// [`SplitStream`]): the pipelined server reads requests on one
    /// handle while a drainer thread writes completions on the other.
    pub fn try_split(&self) -> Result<Self, WireError>
    where
        S: SplitStream,
    {
        Ok(StreamTransport::new(self.stream.try_split()?))
    }

    /// Fill `buf` exactly. `eof_is_close` controls how an EOF on the very
    /// first byte reads: a clean close (frame boundary) or a truncation
    /// (mid-frame).
    fn read_exact_or_close(&mut self, buf: &mut [u8], eof_is_close: bool) -> Result<(), WireError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(if filled == 0 && eof_is_close {
                        WireError::Closed
                    } else {
                        WireError::Truncated { needed: buf.len() - filled, available: filled }
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }
}

impl<S: Read + Write + Send> Transport for StreamTransport<S> {
    fn send(&mut self, body: &[u8]) -> Result<(), WireError> {
        let framed = frame_bytes(body)?;
        self.stream.write_all(&framed)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, WireError> {
        let mut prefix = [0u8; 4];
        self.read_exact_or_close(&mut prefix, true)?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge {
                len: u64::from(len),
                max: u64::from(MAX_FRAME_LEN),
            });
        }
        let mut body = vec![0u8; len as usize];
        self.read_exact_or_close(&mut body, false)?;
        Ok(body)
    }
}

// ---------------------------------------------------------------------
// Loopback: paired in-process byte queues.
// ---------------------------------------------------------------------

/// One direction of a loopback link: a bounded-unnecessary, closable byte
/// queue (writers append, readers block until bytes or close).
#[derive(Default)]
struct ByteQueue {
    state: Mutex<QueueState>,
    readable: Condvar,
    /// Readiness hook (see [`LoopbackStream::set_ready_hook`]): invoked —
    /// outside the queue lock — after every push and on close, so an
    /// event loop parked in its poller learns this direction has news.
    ready_hook: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for ByteQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("loopback lock poisoned");
        f.debug_struct("ByteQueue")
            .field("len", &state.bytes.len())
            .field("closed", &state.closed)
            .finish()
    }
}

#[derive(Debug, Default)]
struct QueueState {
    bytes: VecDeque<u8>,
    closed: bool,
}

/// Bulk-copy from the deque's (up to) two contiguous runs — this queue
/// is the substrate the round-trip bench times, so a per-byte loop
/// would tax the published numbers.
fn copy_out(state: &mut QueueState, buf: &mut [u8]) -> usize {
    let n = buf.len().min(state.bytes.len());
    let (front, back) = state.bytes.as_slices();
    let from_front = n.min(front.len());
    buf[..from_front].copy_from_slice(&front[..from_front]);
    buf[from_front..n].copy_from_slice(&back[..n - from_front]);
    state.bytes.drain(..n);
    n
}

impl ByteQueue {
    fn push(&self, data: &[u8]) -> io::Result<()> {
        {
            let mut state = self.state.lock().expect("loopback lock poisoned");
            if state.closed {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "loopback peer closed"));
            }
            state.bytes.extend(data);
            self.readable.notify_all();
        }
        self.fire_ready();
        Ok(())
    }

    fn pop(&self, buf: &mut [u8]) -> usize {
        let mut state = self.state.lock().expect("loopback lock poisoned");
        loop {
            if !state.bytes.is_empty() {
                return copy_out(&mut state, buf);
            }
            if state.closed {
                return 0; // clean EOF
            }
            state = self.readable.wait(state).expect("loopback lock poisoned");
        }
    }

    /// Nonblocking pop: `Some(n)` for bytes, `Some(0)` for EOF after a
    /// close, `None` when the queue is empty but still open (the
    /// would-block case).
    fn try_pop(&self, buf: &mut [u8]) -> Option<usize> {
        let mut state = self.state.lock().expect("loopback lock poisoned");
        if !state.bytes.is_empty() {
            Some(copy_out(&mut state, buf))
        } else if state.closed {
            Some(0)
        } else {
            None
        }
    }

    fn close(&self) {
        {
            let mut state = self.state.lock().expect("loopback lock poisoned");
            state.closed = true;
            self.readable.notify_all();
        }
        self.fire_ready();
    }

    fn set_ready_hook(&self, hook: Option<Arc<dyn Fn() + Send + Sync>>) {
        *self.ready_hook.lock().expect("loopback hook poisoned") = hook;
    }

    fn fire_ready(&self) {
        let hook = self.ready_hook.lock().expect("loopback hook poisoned").clone();
        if let Some(hook) = hook {
            hook();
        }
    }
}

/// One endpoint of an in-process byte pipe pair — the test/bench
/// transport: the full framing and codec stack runs, only the kernel
/// socket is skipped. Dropping an endpoint's **last handle** (endpoints
/// duplicate via [`SplitStream::try_split`], like a `TcpStream`) closes
/// both directions, so a peer blocked in `recv` wakes with
/// [`WireError::Closed`].
#[derive(Debug)]
pub struct LoopbackStream {
    rx: Arc<ByteQueue>,
    tx: Arc<ByteQueue>,
    /// Handles alive on this endpoint; the last drop closes the queues.
    handles: Arc<AtomicUsize>,
    /// Shared across split handles, mirroring `TcpStream::set_nonblocking`
    /// semantics (the flag is per-connection, not per-handle).
    nonblocking: Arc<AtomicBool>,
}

impl LoopbackStream {
    /// Switch this endpoint (and every handle split from it) between
    /// blocking reads and readiness mode: when nonblocking, a read on an
    /// empty-but-open queue returns [`io::ErrorKind::WouldBlock`] instead
    /// of parking — the contract an event loop expects from a socket.
    /// Writes never block either way (the queue is unbounded).
    pub fn set_nonblocking(&self, nonblocking: bool) {
        self.nonblocking.store(nonblocking, Ordering::SeqCst);
    }

    /// Install (or clear) a readiness hook on the *receive* direction:
    /// invoked — with no queue lock held — whenever the peer pushes bytes
    /// toward this endpoint or closes the link. This is the loopback's
    /// stand-in for epoll registration: a poller marks the connection
    /// ready from the hook instead of speculatively scanning streams.
    pub fn set_ready_hook(&self, hook: Option<Arc<dyn Fn() + Send + Sync>>) {
        self.rx.set_ready_hook(hook);
    }
}

impl SplitStream for LoopbackStream {
    fn try_split(&self) -> io::Result<Self> {
        self.handles.fetch_add(1, Ordering::SeqCst);
        Ok(LoopbackStream {
            rx: Arc::clone(&self.rx),
            tx: Arc::clone(&self.tx),
            handles: Arc::clone(&self.handles),
            nonblocking: Arc::clone(&self.nonblocking),
        })
    }
}

impl Read for LoopbackStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.nonblocking.load(Ordering::SeqCst) {
            return match self.rx.try_pop(buf) {
                Some(n) => Ok(n),
                None => Err(io::ErrorKind::WouldBlock.into()),
            };
        }
        Ok(self.rx.pop(buf))
    }
}

impl Write for LoopbackStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.push(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for LoopbackStream {
    fn drop(&mut self) {
        if self.handles.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.tx.close();
            self.rx.close();
        }
    }
}

/// A loopback transport endpoint.
pub type LoopbackTransport = StreamTransport<LoopbackStream>;

/// Create a connected pair of in-process transports: frames sent on one
/// endpoint are received by the other, in order, through the same length-
/// prefixed framing a socket would use.
pub fn loopback() -> (LoopbackTransport, LoopbackTransport) {
    let (a, b) = loopback_streams();
    (StreamTransport::new(a), StreamTransport::new(b))
}

/// Create a connected pair of raw in-process byte streams (no transport
/// framing wrapper) — the constructor for code that drives the streams
/// directly, like the event-driven reactor and its benches.
pub fn loopback_streams() -> (LoopbackStream, LoopbackStream) {
    let a_to_b = Arc::new(ByteQueue::default());
    let b_to_a = Arc::new(ByteQueue::default());
    let a = LoopbackStream {
        rx: Arc::clone(&b_to_a),
        tx: Arc::clone(&a_to_b),
        handles: Arc::new(AtomicUsize::new(1)),
        nonblocking: Arc::new(AtomicBool::new(false)),
    };
    let b = LoopbackStream {
        rx: a_to_b,
        tx: b_to_a,
        handles: Arc::new(AtomicUsize::new(1)),
        nonblocking: Arc::new(AtomicBool::new(false)),
    };
    (a, b)
}

// ---------------------------------------------------------------------
// TCP.
// ---------------------------------------------------------------------

/// A TCP-backed transport.
pub type TcpTransport = StreamTransport<TcpStream>;

impl TcpTransport {
    /// Connect to a listening [`StoreServer`](crate::StoreServer) /
    /// [`serve_connections`](crate::serve_connections) endpoint.
    /// `TCP_NODELAY` is set: frames are small and latency-bound, so
    /// Nagle's algorithm only adds round-trip delay.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(StreamTransport::new(stream))
    }

    /// Accept one connection from `listener`.
    pub fn accept(listener: &TcpListener) -> Result<Self, WireError> {
        let (stream, _peer) = listener.accept()?;
        stream.set_nodelay(true)?;
        Ok(StreamTransport::new(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trips_frames_in_order() {
        let (mut a, mut b) = loopback();
        a.send(b"first").unwrap();
        a.send(b"").unwrap(); // empty frames are legal
        a.send(b"third").unwrap();
        assert_eq!(b.recv().unwrap(), b"first");
        assert_eq!(b.recv().unwrap(), b"");
        assert_eq!(b.recv().unwrap(), b"third");
        b.send(b"reply").unwrap();
        assert_eq!(a.recv().unwrap(), b"reply");
    }

    #[test]
    fn dropping_an_endpoint_closes_the_peer() {
        let (a, mut b) = loopback();
        drop(a);
        assert_eq!(b.recv(), Err(WireError::Closed));
        assert!(matches!(b.send(b"x"), Err(WireError::Io(_))));
    }

    #[test]
    fn pending_bytes_survive_peer_drop() {
        // A frame already in the queue is still readable after the sender
        // hangs up; the close only lands at the next frame boundary.
        let (mut a, mut b) = loopback();
        a.send(b"parting gift").unwrap();
        drop(a);
        assert_eq!(b.recv().unwrap(), b"parting gift");
        assert_eq!(b.recv(), Err(WireError::Closed));
    }

    #[test]
    fn split_endpoints_close_only_on_last_drop() {
        let (a, mut b) = loopback();
        let mut a_writer = a.try_split().unwrap();
        drop(a); // the duplicate keeps the connection alive
        a_writer.send(b"still open").unwrap();
        assert_eq!(b.recv().unwrap(), b"still open");
        drop(a_writer); // last handle: now the peer sees EOF
        assert_eq!(b.recv(), Err(WireError::Closed));
    }

    #[test]
    fn split_halves_share_one_ordered_connection() {
        // Reader and writer halves work concurrently from two threads —
        // the shape serve_pipelined uses.
        let (server, mut client) = loopback();
        let mut server_writer = server.try_split().unwrap();
        let mut server_reader = server;
        let echo = std::thread::spawn(move || {
            let mut n = 0;
            while let Ok(frame) = server_reader.recv() {
                server_writer.send(&frame).unwrap();
                n += 1;
            }
            n
        });
        for i in 0..10u8 {
            client.send(&[i; 3]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(client.recv().unwrap(), vec![i; 3]);
        }
        drop(client);
        assert_eq!(echo.join().unwrap(), 10);
    }

    #[test]
    fn nonblocking_reads_would_block_and_ready_hook_fires() {
        use std::sync::atomic::AtomicUsize;
        let (server, mut client) = loopback_streams();
        server.set_nonblocking(true);
        let readies = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&readies);
        server.set_ready_hook(Some(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        })));
        // Empty but open: WouldBlock, not a park and not an EOF.
        let mut server = server;
        let mut buf = [0u8; 16];
        let err = server.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(readies.load(Ordering::SeqCst), 0);
        // Peer bytes fire the hook and become readable without blocking.
        client.write_all(b"ping").unwrap();
        assert_eq!(readies.load(Ordering::SeqCst), 1);
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        // Split handles share the flag: the duplicate would-block too.
        let mut dup = server.try_split().unwrap();
        let err = dup.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Peer close fires the hook once more and reads as clean EOF.
        drop(client);
        assert!(readies.load(Ordering::SeqCst) >= 2);
        assert_eq!(server.read(&mut buf).unwrap(), 0);
        // Back to blocking mode: EOF still reads 0 (no hang).
        server.set_nonblocking(false);
        assert_eq!(dup.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn split_frame_validates_prefix() {
        assert!(matches!(split_frame(&[]), Err(WireError::Truncated { .. })));
        assert!(matches!(split_frame(&[1, 0, 0]), Err(WireError::Truncated { .. })));
        // Announces 5 bytes, provides 2.
        let buf = [5u8, 0, 0, 0, 0xAA, 0xBB];
        assert!(matches!(split_frame(&buf), Err(WireError::Truncated { .. })));
        // Oversized prefix rejected before allocation.
        let huge = u32::MAX.to_le_bytes();
        assert!(matches!(split_frame(&huge), Err(WireError::FrameTooLarge { .. })));
        // A valid frame with trailing bytes reports its consumption.
        let mut ok = vec![2u8, 0, 0, 0, 0x11, 0x22, 0x33];
        let (body, used) = split_frame(&ok).unwrap();
        assert_eq!(body, &[0x11, 0x22]);
        assert_eq!(used, 6);
        ok.truncate(6);
        let (body, used) = split_frame(&ok).unwrap();
        assert_eq!((body, used), (&[0x11u8, 0x22][..], 6));
    }

    #[test]
    fn frame_bytes_rejects_oversized_bodies() {
        // Construct the error path without allocating a 64 MiB body: a
        // zero-length cap impossible, so check via split_frame's symmetry
        // on the biggest legal prefix instead, and the Err on a fake
        // length through the public constant.
        assert!(frame_bytes(&[1, 2, 3]).unwrap().starts_with(&3u32.to_le_bytes()));
        assert_eq!(MAX_FRAME_LEN, 64 << 20);
    }

    #[test]
    fn tcp_transport_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut t = TcpTransport::accept(&listener).unwrap();
            let frame = t.recv().unwrap();
            t.send(&frame).unwrap(); // echo
            assert_eq!(t.recv(), Err(WireError::Closed));
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(b"over the real stack").unwrap();
        assert_eq!(client.recv().unwrap(), b"over the real stack");
        drop(client);
        server.join().unwrap();
    }
}
