//! Byte-level codec primitives: a bounds-checked [`Reader`], `put_*`
//! writer helpers over `Vec<u8>`, and the [`WireKey`] trait that lets
//! application key types cross the wire.
//!
//! Conventions (chosen for near-zero hot-path overhead, per the
//! mixed-precision literature's "metadata must travel cheaply" rule):
//!
//! * all integers are fixed-width little-endian — no varints, so encode
//!   and decode are straight-line stores/loads;
//! * `f64`s travel as their IEEE-754 bit pattern (`to_bits`), making
//!   every round trip bit-identical — ±∞, signed zeros, and subnormals
//!   survive, and NaN payload bits are preserved where a field permits
//!   NaN at all;
//! * strings are `u32` length + UTF-8 bytes, sequences are `u32` count +
//!   elements, and both lengths are validated against the bytes actually
//!   remaining *before* any allocation, so a hostile length cannot
//!   balloon memory.

use crate::error::WireError;

/// A bounds-checked cursor over a received frame body.
///
/// Every accessor returns [`WireError::Truncated`] instead of reading past
/// the end; nothing in this module panics on arbitrary input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the input is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless the input is fully consumed (strict decoders reject
    /// trailing garbage so a desynchronized stream is caught immediately).
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            count => Err(WireError::TrailingBytes { count }),
        }
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, available: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Next `f64`, decoded from its raw bit pattern (bit-identical).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next bool; only the bytes 0 and 1 are accepted.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidPayload("bool byte is neither 0 nor 1")),
        }
    }

    /// Next length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    /// Next sequence count, validated against the remaining bytes assuming
    /// each element occupies at least `min_elem_bytes` (must be ≥ 1). The
    /// check runs before any `Vec` is sized, so a forged count of four
    /// billion elements fails as [`WireError::Truncated`] instead of
    /// attempting a giant allocation.
    pub fn seq(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        debug_assert!(min_elem_bytes >= 1);
        let count = self.u32()? as usize;
        let needed = count.saturating_mul(min_elem_bytes.max(1));
        if needed > self.remaining() {
            return Err(WireError::Truncated { needed, available: self.remaining() });
        }
        Ok(count)
    }
}

/// Append a byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its raw bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Append a bool as a 0/1 byte.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, v as u8);
}

/// Append a length-prefixed UTF-8 string.
///
/// Strings longer than `u32::MAX` bytes are unrepresentable on the wire;
/// such a key would already have blown the frame cap, but the length is
/// still saturated defensively rather than silently truncating bytes.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_u32(buf, u32::try_from(v.len()).unwrap_or(u32::MAX));
    buf.extend_from_slice(v.as_bytes());
}

/// Append a sequence count.
pub fn put_seq(buf: &mut Vec<u8>, count: usize) {
    put_u32(buf, u32::try_from(count).unwrap_or(u32::MAX));
}

/// An application key type that can cross the wire.
///
/// The serving stack is generic over keys (`PrecisionStore<K>`); the wire
/// layer keeps that by asking keys to encode themselves. Implementations
/// must be exact round trips: `decode_key(encode_key(k)) == k`.
///
/// Provided for `String`, the unsigned integer widths, and the protocol's
/// own interned [`Key`](apcache_core::Key).
pub trait WireKey: Sized {
    /// Smallest possible encoded size in bytes (used to validate sequence
    /// counts before allocation).
    const MIN_ENCODED_BYTES: usize;

    /// Append this key's wire form.
    fn encode_key(&self, buf: &mut Vec<u8>);

    /// Decode one key.
    fn decode_key(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

impl WireKey for String {
    const MIN_ENCODED_BYTES: usize = 4;

    fn encode_key(&self, buf: &mut Vec<u8>) {
        put_str(buf, self);
    }

    fn decode_key(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.str()
    }
}

impl WireKey for u64 {
    const MIN_ENCODED_BYTES: usize = 8;

    fn encode_key(&self, buf: &mut Vec<u8>) {
        put_u64(buf, *self);
    }

    fn decode_key(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl WireKey for u32 {
    const MIN_ENCODED_BYTES: usize = 4;

    fn encode_key(&self, buf: &mut Vec<u8>) {
        put_u32(buf, *self);
    }

    fn decode_key(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl WireKey for apcache_core::Key {
    const MIN_ENCODED_BYTES: usize = 4;

    fn encode_key(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.0);
    }

    fn decode_key(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(apcache_core::Key(r.u32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_round_trips() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xA7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_bool(&mut buf, true);
        put_bool(&mut buf, false);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xA7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn f64_round_trip_is_bit_identical() {
        let specials =
            [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, f64::MIN_POSITIVE, 5e-324];
        for v in specials {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let back = Reader::new(&buf).f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "bits changed for {v}");
        }
    }

    #[test]
    fn strings_and_keys_round_trip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "sensor/室内/07");
        "tail".to_string().encode_key(&mut buf);
        7u64.encode_key(&mut buf);
        9u32.encode_key(&mut buf);
        apcache_core::Key(42).encode_key(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(r.str().unwrap(), "sensor/室内/07");
        assert_eq!(String::decode_key(&mut r).unwrap(), "tail");
        assert_eq!(u64::decode_key(&mut r).unwrap(), 7);
        assert_eq!(u32::decode_key(&mut r).unwrap(), 9);
        assert_eq!(apcache_core::Key::decode_key(&mut r).unwrap(), apcache_core::Key(42));
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 77);
        for cut in 0..buf.len() {
            assert!(matches!(Reader::new(&buf[..cut]).u64(), Err(WireError::Truncated { .. })));
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A string claiming u32::MAX bytes followed by nothing.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(Reader::new(&buf).str(), Err(WireError::Truncated { .. })));
        // A sequence claiming 2^32-1 eight-byte elements.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u64(&mut buf, 1);
        assert!(matches!(Reader::new(&buf).seq(8), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn invalid_bytes_are_rejected() {
        assert!(matches!(Reader::new(&[7]).bool(), Err(WireError::InvalidPayload(_))));
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
        assert!(matches!(Reader::new(&buf).str(), Err(WireError::InvalidUtf8)));
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 1);
        put_u8(&mut buf, 2);
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { count: 1 }));
    }
}
