//! The protocol vocabulary and its frame bodies.
//!
//! Three frame families cover the paper's Figure 1 messages plus the
//! serving verbs the runtime grew on top of them:
//!
//! * **[`WireMessage::Refresh`]** — a source → cache push installing a new
//!   approximation (the paper's value-initiated refresh message);
//! * **[`WireMessage::Exact`]** — a source → cache reply carrying the
//!   exact value plus its replacement approximation (the answer to a
//!   query-initiated refresh);
//! * **[`WireMessage::Request`]** / **[`WireMessage::Response`]** — the
//!   client ↔ store verbs (`Read`, `Write`, `WriteBatch`, `Aggregate`,
//!   `Metrics`, `Subscribe`, `Unsubscribe`, `Shutdown`), the v3 lease
//!   verbs (`Lease`, `ReleaseLease`, `AdvanceTime`), and the v3
//!   migration surface (`KeyList`, `ExportKeys`, `ImportKeys` — a
//!   [`KeyState`] per migrating key, so adaptive widths, counters, and
//!   cache residency cross the wire intact) with their outcomes;
//! * **[`WireMessage::Push`]** — a **server-initiated** frame streaming
//!   one subscribed key's new cached interval, tagged with the
//!   subscription's request id (the v3 push channel).
//!
//! Every v2+ frame body is `magic ∥ version ∥ tag ∥ request_id ∥ fields`;
//! the transport adds a `u32` length prefix. The **request id** is the
//! pipelining header: clients stamp each request with a monotonically
//! assigned id and servers echo it on the paired response, so one
//! connection can carry a whole window of in-flight requests and answer
//! them out of order. Version 3 adds the push vocabulary (`Subscribe` /
//! `Unsubscribe` / `Push`); v2 frames decode unchanged, and version 1
//! frames (no id field — the strictly call-reply protocol of the first
//! release) still **decode**: a v1 frame reads as request id 0, and
//! [`decode_frame`] reports the version it saw so a server can answer a
//! v1 or v2 peer in kind. Encoding is hand-rolled fixed-width
//! little-endian (see [`codec`](crate::codec)) so
//! `decode(encode(x)) == x` bit-for-bit, and decoding is defensive:
//! arbitrary bytes produce a [`WireError`], never a panic.

use apcache_core::policy::{ApproxSpec, GrowthLaw, Weighting};
use apcache_core::{ExactResponse, Interval, Key, Refresh, TimeMs};
use apcache_push::{FallbackWidth, LeaseConfig, PushEvent, PushFilter, PushReason, PushReport};
use apcache_queries::AggregateKind;
use apcache_store::{
    Answer, Constraint, KeyMetrics, KeyState, PolicySpec, ReadResult, StoreMetrics, WriteOutcome,
};

use crate::codec::{put_bool, put_f64, put_seq, put_str, put_u64, put_u8, Reader, WireKey};
use crate::error::{FaultKind, WireError, WireFault};

/// First byte of every frame body.
pub const MAGIC: u8 = 0xA7;
/// Protocol version this codec emits: v3, which adds the push vocabulary
/// (`Subscribe` / `Unsubscribe` / `Push`) on top of the v2 request-id
/// header.
pub const VERSION: u8 = 3;
/// The pipelined-but-poll-only protocol version: request-id header, no
/// push vocabulary. Still accepted by [`decode_frame`]; servers refuse
/// v2 subscriptions with a stable [`FaultKind::Unsupported`] fault.
pub const VERSION_V2: u8 = 2;
/// The original protocol version (no request-id header). Still accepted
/// by [`decode_frame`] — a v1 frame decodes as request id 0.
pub const VERSION_V1: u8 = 1;

const MSG_REFRESH: u8 = 1;
const MSG_EXACT: u8 = 2;
const MSG_REQUEST: u8 = 3;
const MSG_RESPONSE: u8 = 4;
const MSG_PUSH: u8 = 5;

const VERB_READ: u8 = 1;
const VERB_WRITE: u8 = 2;
const VERB_WRITE_BATCH: u8 = 3;
const VERB_AGGREGATE: u8 = 4;
const VERB_METRICS: u8 = 5;
const VERB_SHUTDOWN: u8 = 6;
const VERB_SUBSCRIBE: u8 = 7;
const VERB_UNSUBSCRIBE: u8 = 8;
const VERB_LEASE: u8 = 9;
const VERB_RELEASE_LEASE: u8 = 10;
const VERB_ADVANCE_TIME: u8 = 11;
const VERB_KEY_LIST: u8 = 12;
const VERB_EXPORT_KEYS: u8 = 13;
const VERB_IMPORT_KEYS: u8 = 14;
const VERB_EXPOSITION: u8 = 15;
const VERB_PUSH_STATS: u8 = 16;

const RESP_READ: u8 = 1;
const RESP_WRITE: u8 = 2;
const RESP_AGGREGATE: u8 = 3;
const RESP_METRICS: u8 = 4;
const RESP_SHUTDOWN_ACK: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_SUBSCRIBED: u8 = 7;
const RESP_UNSUBSCRIBED: u8 = 8;
const RESP_LEASED: u8 = 9;
const RESP_TIME_ADVANCED: u8 = 10;
const RESP_KEYS: u8 = 11;
const RESP_EXPORTED: u8 = 12;
const RESP_IMPORTED: u8 = 13;
const RESP_EXPOSITION: u8 = 14;

/// A serving request, one frame per verb — the same vocabulary as the
/// runtime's mailbox [`Request`](apcache_runtime::Request), minus the
/// reply slots (the transport's request/response pairing replaces them).
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest<K> {
    /// Point read to the given precision.
    Read {
        /// Key to read.
        key: K,
        /// Required precision.
        constraint: Constraint,
        /// Logical time of the read.
        now: TimeMs,
    },
    /// A new exact value arrives at the source.
    Write {
        /// Key to write.
        key: K,
        /// The new exact value (raw bits; the server validates finiteness).
        value: f64,
        /// Logical time of the write.
        now: TimeMs,
    },
    /// A batch of writes, applied in slice order.
    WriteBatch {
        /// `(key, value)` pairs.
        items: Vec<(K, f64)>,
        /// Logical time of the batch.
        now: TimeMs,
    },
    /// Bounded aggregate over `keys`.
    Aggregate {
        /// Aggregate kind.
        kind: AggregateKind,
        /// Queried keys.
        keys: Vec<K>,
        /// Precision budget.
        constraint: Constraint,
        /// Logical time of the query.
        now: TimeMs,
    },
    /// Snapshot the server's serving metrics.
    Metrics,
    /// Open a push subscription on `key` (v3+). The server answers with
    /// [`WireResponse::Subscribed`] and then streams
    /// [`WireMessage::Push`] frames under this request's id until the
    /// subscription is cancelled.
    Subscribe {
        /// Key to watch.
        key: K,
        /// Which interval changes to stream (see [`PushFilter`]).
        filter: PushFilter,
        /// Logical time the subscription opens.
        now: TimeMs,
    },
    /// Cancel the subscription opened under request id `sub` (v3+).
    Unsubscribe {
        /// The request id of the `Subscribe` frame to cancel.
        sub: u64,
    },
    /// Grant (or renew) a TTL lease on `key` (v3+): the cached interval
    /// stays trusted for `cfg.ttl_ms` after the last source contact, then
    /// widens to the configured fallback.
    Lease {
        /// Key to lease.
        key: K,
        /// TTL and fallback-widening policy (validated on decode).
        cfg: LeaseConfig,
        /// Logical time of the grant.
        now: TimeMs,
    },
    /// Release the lease on `key` (v3+).
    ReleaseLease {
        /// Key whose lease is dropped.
        key: K,
        /// Logical time of the release.
        now: TimeMs,
    },
    /// Advance the server's push-side logical clock (v3+): lapsed leases
    /// widen their intervals and push.
    AdvanceTime {
        /// The new logical time.
        now: TimeMs,
    },
    /// List every key registered on the server, in deterministic (sorted)
    /// order (v3+) — the discovery half of the migration surface.
    KeyList,
    /// Detach `keys` with their complete per-key protocol state (v3+):
    /// the export half of live migration. Atomic server-side — a single
    /// unknown key exports nothing.
    ExportKeys {
        /// Keys to detach.
        keys: Vec<K>,
    },
    /// Attach keys previously detached from another shard (v3+): the
    /// import half of live migration.
    ImportKeys {
        /// The migrating keys' full protocol state.
        states: Vec<KeyState<K>>,
    },
    /// Scrape the server's full Prometheus-style text exposition (v3+):
    /// store rollups, push occupancy, and every runtime/wire series in
    /// one deterministic document.
    Exposition,
    /// Snapshot push-side occupancy (subscribers, watched keys, leases)
    /// *without* advancing the logical clock (v3+) — the read-only twin
    /// of [`WireRequest::AdvanceTime`].
    PushStats,
    /// Orderly connection shutdown: the server acknowledges and stops
    /// serving this connection.
    Shutdown,
}

/// A serving response, paired one-to-one with the request that caused it.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse<K> {
    /// Answer to [`WireRequest::Read`].
    Read(ReadResult),
    /// Answer to [`WireRequest::Write`] or [`WireRequest::WriteBatch`].
    Write(WriteOutcome),
    /// Answer to [`WireRequest::Aggregate`].
    Aggregate {
        /// The answer interval.
        answer: Interval,
        /// Keys fetched exactly, in fetch order.
        refreshed: Vec<K>,
    },
    /// Answer to [`WireRequest::Metrics`].
    Metrics(StoreMetrics<K>),
    /// Acknowledges [`WireRequest::Shutdown`]; the connection is done.
    ShutdownAck,
    /// Acknowledges [`WireRequest::Subscribe`] with the subscribed key's
    /// current cached interval (the stream's starting snapshot).
    Subscribed {
        /// The cached interval at subscription time (unbounded if the
        /// key has no cached approximation yet).
        interval: Interval,
    },
    /// Acknowledges [`WireRequest::Unsubscribe`].
    Unsubscribed {
        /// Whether the subscription was still live when cancelled.
        existed: bool,
    },
    /// Answer to [`WireRequest::Lease`] / [`WireRequest::ReleaseLease`].
    Leased {
        /// For a grant: `true` (the lease is armed). For a release:
        /// whether a lease existed to drop.
        active: bool,
    },
    /// Answer to [`WireRequest::AdvanceTime`]: the merged push-side
    /// occupancy report.
    TimeAdvanced(PushReport),
    /// Answer to [`WireRequest::KeyList`]: every registered key, sorted.
    Keys(Vec<K>),
    /// Answer to [`WireRequest::ExportKeys`]: the detached per-key state,
    /// in the request's key order.
    Exported(Vec<KeyState<K>>),
    /// Acknowledges [`WireRequest::ImportKeys`].
    Imported,
    /// Answer to [`WireRequest::Exposition`]: the Prometheus text
    /// exposition (format 0.0.4) as one UTF-8 document.
    /// ([`WireRequest::PushStats`] is answered with
    /// [`WireResponse::TimeAdvanced`] — same payload, no clock side
    /// effect — so it needs no frame of its own.)
    Exposition(String),
    /// The server rejected the request.
    Error(WireFault),
}

/// The paper's value-initiated refresh on the wire, generic over the
/// connection's key type — unlike the in-core
/// [`apcache_core::Refresh`], which is pinned to [`apcache_core::Key`].
/// For `K = Key` the encodings are byte-identical (see the `From`
/// conversions).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRefresh<K> {
    /// Key whose approximation is replaced.
    pub key: K,
    /// The replacement approximation.
    pub spec: ApproxSpec,
    /// The source's internal adaptation width `W` (paper §3.2), carried
    /// so a cache handoff preserves the adaptation state.
    pub internal_width: f64,
}

/// The paper's query-initiated refresh answer on the wire: the exact
/// value plus its replacement approximation, generic over the key type.
#[derive(Debug, Clone, PartialEq)]
pub struct WireExact<K> {
    /// The exact value at the source.
    pub value: f64,
    /// The replacement approximation installed alongside it.
    pub refresh: WireRefresh<K>,
}

impl From<Refresh> for WireRefresh<Key> {
    fn from(r: Refresh) -> Self {
        WireRefresh { key: r.key, spec: r.spec, internal_width: r.internal_width }
    }
}

impl From<WireRefresh<Key>> for Refresh {
    fn from(r: WireRefresh<Key>) -> Self {
        Refresh { key: r.key, spec: r.spec, internal_width: r.internal_width }
    }
}

impl From<ExactResponse> for WireExact<Key> {
    fn from(e: ExactResponse) -> Self {
        WireExact { value: e.value, refresh: e.refresh.into() }
    }
}

impl From<WireExact<Key>> for ExactResponse {
    fn from(e: WireExact<Key>) -> Self {
        ExactResponse { value: e.value, refresh: e.refresh.into() }
    }
}

/// Any frame of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage<K> {
    /// Source → cache push: install a new approximation (paper Fig. 1,
    /// value-initiated refresh).
    Refresh(WireRefresh<K>),
    /// Source → cache reply: the exact value plus its replacement
    /// approximation (paper Fig. 1, query-initiated refresh).
    Exact(WireExact<K>),
    /// Client → server verb.
    Request(WireRequest<K>),
    /// Server → client outcome.
    Response(WireResponse<K>),
    /// Server → client push (v3+): a subscribed key's cached interval
    /// changed (or its lease lapsed). Carries the subscription's request
    /// id in the frame header so the client can route it.
    Push(PushEvent<K>),
}

// ---------------------------------------------------------------------
// Field codecs.
// ---------------------------------------------------------------------

fn put_interval(buf: &mut Vec<u8>, iv: &Interval) {
    let (lo, hi) = iv.to_bits();
    put_u64(buf, lo);
    put_u64(buf, hi);
}

fn read_interval(r: &mut Reader<'_>) -> Result<Interval, WireError> {
    let lo = r.u64()?;
    let hi = r.u64()?;
    Interval::from_bits(lo, hi)
        .map_err(|_| WireError::InvalidPayload("interval bounds (NaN or inverted)"))
}

fn put_spec(buf: &mut Vec<u8>, spec: &ApproxSpec) {
    match *spec {
        ApproxSpec::Constant(iv) => {
            put_u8(buf, 0);
            put_interval(buf, &iv);
        }
        ApproxSpec::Growing { center, base_width, coeff, exponent, t0 } => {
            put_u8(buf, 1);
            put_f64(buf, center);
            put_f64(buf, base_width);
            put_f64(buf, coeff);
            put_f64(buf, exponent);
            put_u64(buf, t0);
        }
        ApproxSpec::Drifting { lo0, hi0, rate_per_sec, t0 } => {
            put_u8(buf, 2);
            put_f64(buf, lo0);
            put_f64(buf, hi0);
            put_f64(buf, rate_per_sec);
            put_u64(buf, t0);
        }
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<ApproxSpec, WireError> {
    match r.u8()? {
        0 => Ok(ApproxSpec::Constant(read_interval(r)?)),
        1 => Ok(ApproxSpec::Growing {
            center: r.f64()?,
            base_width: r.f64()?,
            coeff: r.f64()?,
            exponent: r.f64()?,
            t0: r.u64()?,
        }),
        2 => Ok(ApproxSpec::Drifting {
            lo0: r.f64()?,
            hi0: r.f64()?,
            rate_per_sec: r.f64()?,
            t0: r.u64()?,
        }),
        tag => Err(WireError::UnknownTag { context: "approximation spec", tag }),
    }
}

fn put_refresh<K: WireKey>(buf: &mut Vec<u8>, refresh: &WireRefresh<K>) {
    refresh.key.encode_key(buf);
    put_spec(buf, &refresh.spec);
    put_f64(buf, refresh.internal_width);
}

fn read_refresh<K: WireKey>(r: &mut Reader<'_>) -> Result<WireRefresh<K>, WireError> {
    Ok(WireRefresh { key: K::decode_key(r)?, spec: read_spec(r)?, internal_width: r.f64()? })
}

fn put_filter(buf: &mut Vec<u8>, filter: &PushFilter) {
    match filter {
        PushFilter::Always => put_u8(buf, 0),
        PushFilter::Violates(constraint) => {
            put_u8(buf, 1);
            put_constraint(buf, constraint);
        }
    }
}

fn read_filter(r: &mut Reader<'_>) -> Result<PushFilter, WireError> {
    match r.u8()? {
        0 => Ok(PushFilter::Always),
        1 => Ok(PushFilter::Violates(read_constraint(r)?)),
        tag => Err(WireError::UnknownTag { context: "push filter", tag }),
    }
}

fn put_reason(buf: &mut Vec<u8>, reason: PushReason) {
    put_u8(
        buf,
        match reason {
            PushReason::Changed => 0,
            PushReason::LeaseExpired => 1,
        },
    );
}

fn read_reason(r: &mut Reader<'_>) -> Result<PushReason, WireError> {
    match r.u8()? {
        0 => Ok(PushReason::Changed),
        1 => Ok(PushReason::LeaseExpired),
        tag => Err(WireError::UnknownTag { context: "push reason", tag }),
    }
}

fn put_constraint(buf: &mut Vec<u8>, c: &Constraint) {
    match *c {
        Constraint::Absolute(delta) => {
            put_u8(buf, 0);
            put_f64(buf, delta);
        }
        Constraint::Relative(frac) => {
            put_u8(buf, 1);
            put_f64(buf, frac);
        }
        Constraint::Exact => put_u8(buf, 2),
    }
}

fn read_constraint(r: &mut Reader<'_>) -> Result<Constraint, WireError> {
    match r.u8()? {
        0 => Ok(Constraint::Absolute(r.f64()?)),
        1 => Ok(Constraint::Relative(r.f64()?)),
        2 => Ok(Constraint::Exact),
        tag => Err(WireError::UnknownTag { context: "constraint", tag }),
    }
}

fn put_kind(buf: &mut Vec<u8>, kind: AggregateKind) {
    put_u8(
        buf,
        match kind {
            AggregateKind::Sum => 0,
            AggregateKind::Max => 1,
            AggregateKind::Min => 2,
            AggregateKind::Avg => 3,
        },
    );
}

fn read_kind(r: &mut Reader<'_>) -> Result<AggregateKind, WireError> {
    match r.u8()? {
        0 => Ok(AggregateKind::Sum),
        1 => Ok(AggregateKind::Max),
        2 => Ok(AggregateKind::Min),
        3 => Ok(AggregateKind::Avg),
        tag => Err(WireError::UnknownTag { context: "aggregate kind", tag }),
    }
}

fn put_answer(buf: &mut Vec<u8>, answer: &Answer) {
    match *answer {
        Answer::Interval(iv) => {
            put_u8(buf, 0);
            put_interval(buf, &iv);
        }
        Answer::Exact(v) => {
            put_u8(buf, 1);
            put_f64(buf, v);
        }
    }
}

fn read_answer(r: &mut Reader<'_>) -> Result<Answer, WireError> {
    match r.u8()? {
        0 => Ok(Answer::Interval(read_interval(r)?)),
        1 => {
            let v = r.f64()?;
            if v.is_nan() {
                return Err(WireError::InvalidPayload("exact answer is NaN"));
            }
            Ok(Answer::Exact(v))
        }
        tag => Err(WireError::UnknownTag { context: "answer", tag }),
    }
}

fn put_key_metrics(buf: &mut Vec<u8>, m: &KeyMetrics) {
    put_u64(buf, m.reads);
    put_u64(buf, m.cache_hits);
    put_u64(buf, m.writes);
    put_u64(buf, m.vr_count);
    put_u64(buf, m.qr_count);
    put_f64(buf, m.vr_cost);
    put_f64(buf, m.qr_cost);
}

fn read_key_metrics(r: &mut Reader<'_>) -> Result<KeyMetrics, WireError> {
    Ok(KeyMetrics {
        reads: r.u64()?,
        cache_hits: r.u64()?,
        writes: r.u64()?,
        vr_count: r.u64()?,
        qr_count: r.u64()?,
        vr_cost: r.f64()?,
        qr_cost: r.f64()?,
    })
}

/// One `KeyMetrics` on the wire: 5 × u64 counters + 2 × f64 costs.
const KEY_METRICS_BYTES: usize = 7 * 8;

fn put_store_metrics<K: WireKey + Ord + Clone>(buf: &mut Vec<u8>, m: &StoreMetrics<K>) {
    put_key_metrics(buf, m.totals());
    put_seq(buf, m.iter().count());
    for (key, km) in m.iter() {
        key.encode_key(buf);
        put_key_metrics(buf, km);
    }
}

fn read_store_metrics<K: WireKey + Ord + Clone>(
    r: &mut Reader<'_>,
) -> Result<StoreMetrics<K>, WireError> {
    let totals = read_key_metrics(r)?;
    let n = r.seq(K::MIN_ENCODED_BYTES + KEY_METRICS_BYTES)?;
    let mut per_key = Vec::with_capacity(n);
    for _ in 0..n {
        let key = K::decode_key(r)?;
        per_key.push((key, read_key_metrics(r)?));
    }
    Ok(StoreMetrics::from_parts(totals, per_key))
}

fn put_fault(buf: &mut Vec<u8>, fault: &WireFault) {
    put_u8(buf, fault.kind.tag());
    put_str(buf, &fault.detail);
}

fn read_fault(r: &mut Reader<'_>) -> Result<WireFault, WireError> {
    Ok(WireFault { kind: FaultKind::from_tag(r.u8()?)?, detail: r.str()? })
}

fn put_keys<K: WireKey>(buf: &mut Vec<u8>, keys: &[K]) {
    put_seq(buf, keys.len());
    for key in keys {
        key.encode_key(buf);
    }
}

fn read_keys<K: WireKey>(r: &mut Reader<'_>) -> Result<Vec<K>, WireError> {
    let n = r.seq(K::MIN_ENCODED_BYTES)?;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        keys.push(K::decode_key(r)?);
    }
    Ok(keys)
}

fn put_lease_cfg(buf: &mut Vec<u8>, cfg: &LeaseConfig) {
    put_u64(buf, cfg.ttl_ms);
    match cfg.fallback {
        FallbackWidth::Unbounded => put_u8(buf, 0),
        FallbackWidth::Fixed(w) => {
            put_u8(buf, 1);
            put_f64(buf, w);
        }
        FallbackWidth::Factor(f) => {
            put_u8(buf, 2);
            put_f64(buf, f);
        }
    }
}

fn read_lease_cfg(r: &mut Reader<'_>) -> Result<LeaseConfig, WireError> {
    let ttl_ms = r.u64()?;
    let fallback = match r.u8()? {
        0 => FallbackWidth::Unbounded,
        1 => FallbackWidth::Fixed(r.f64()?),
        2 => FallbackWidth::Factor(r.f64()?),
        tag => return Err(WireError::UnknownTag { context: "lease fallback", tag }),
    };
    let cfg = LeaseConfig { ttl_ms, fallback };
    if !cfg.validate() {
        return Err(WireError::InvalidPayload("lease config (zero ttl or invalid fallback)"));
    }
    Ok(cfg)
}

fn put_push_report(buf: &mut Vec<u8>, report: &PushReport) {
    put_u64(buf, report.subscribers as u64);
    put_u64(buf, report.watched_keys as u64);
    put_u64(buf, report.leases as u64);
    put_u64(buf, report.expired as u64);
}

fn read_push_report(r: &mut Reader<'_>) -> Result<PushReport, WireError> {
    let mut field = || {
        usize::try_from(r.u64()?)
            .map_err(|_| WireError::InvalidPayload("push report count overflows usize"))
    };
    Ok(PushReport {
        subscribers: field()?,
        watched_keys: field()?,
        leases: field()?,
        expired: field()?,
    })
}

fn put_policy_spec(buf: &mut Vec<u8>, spec: &PolicySpec) {
    match *spec {
        PolicySpec::Adaptive => put_u8(buf, 0),
        PolicySpec::Uncentered => put_u8(buf, 1),
        PolicySpec::TimeVarying(law) => {
            put_u8(buf, 2);
            put_f64(buf, law.coeff());
            put_f64(buf, law.exponent());
        }
        PolicySpec::Drifting { rate_per_sec } => {
            put_u8(buf, 3);
            put_f64(buf, rate_per_sec);
        }
        PolicySpec::History { r, weighting } => {
            put_u8(buf, 4);
            put_u64(buf, r as u64);
            match weighting {
                Weighting::Uniform => put_u8(buf, 0),
                Weighting::Exponential { decay } => {
                    put_u8(buf, 1);
                    put_f64(buf, decay);
                }
            }
        }
        PolicySpec::Fixed { width } => {
            put_u8(buf, 5);
            put_f64(buf, width);
        }
        PolicySpec::StaleCounter => put_u8(buf, 6),
    }
}

fn read_policy_spec(r: &mut Reader<'_>) -> Result<PolicySpec, WireError> {
    Ok(match r.u8()? {
        0 => PolicySpec::Adaptive,
        1 => PolicySpec::Uncentered,
        2 => {
            let (coeff, exponent) = (r.f64()?, r.f64()?);
            PolicySpec::TimeVarying(
                GrowthLaw::new(coeff, exponent)
                    .map_err(|_| WireError::InvalidPayload("growth law constants"))?,
            )
        }
        3 => PolicySpec::Drifting { rate_per_sec: r.f64()? },
        4 => {
            let window = usize::try_from(r.u64()?)
                .map_err(|_| WireError::InvalidPayload("history window overflows usize"))?;
            let weighting = match r.u8()? {
                0 => Weighting::Uniform,
                1 => {
                    let decay = r.f64()?;
                    if !(decay.is_finite() && 0.0 < decay && decay < 1.0) {
                        return Err(WireError::InvalidPayload("history decay outside (0, 1)"));
                    }
                    Weighting::Exponential { decay }
                }
                tag => return Err(WireError::UnknownTag { context: "history weighting", tag }),
            };
            PolicySpec::History { r: window, weighting }
        }
        5 => PolicySpec::Fixed { width: r.f64()? },
        6 => PolicySpec::StaleCounter,
        tag => return Err(WireError::UnknownTag { context: "policy spec", tag }),
    })
}

fn put_key_state<K: WireKey>(buf: &mut Vec<u8>, state: &KeyState<K>) {
    state.key.encode_key(buf);
    put_f64(buf, state.value);
    put_policy_spec(buf, &state.spec);
    put_seq(buf, state.policy_state.len());
    for word in &state.policy_state {
        put_f64(buf, *word);
    }
    put_spec(buf, &state.source_spec);
    match &state.cached {
        None => put_u8(buf, 0),
        Some((spec, internal_width)) => {
            put_u8(buf, 1);
            put_spec(buf, spec);
            put_f64(buf, *internal_width);
        }
    }
    match &state.metrics {
        None => put_u8(buf, 0),
        Some(metrics) => {
            put_u8(buf, 1);
            put_key_metrics(buf, metrics);
        }
    }
}

fn read_key_state<K: WireKey>(r: &mut Reader<'_>) -> Result<KeyState<K>, WireError> {
    let key = K::decode_key(r)?;
    let value = r.f64()?;
    let spec = read_policy_spec(r)?;
    let n = r.seq(8)?;
    let mut policy_state = Vec::with_capacity(n);
    for _ in 0..n {
        policy_state.push(r.f64()?);
    }
    let source_spec = read_spec(r)?;
    let cached = match r.u8()? {
        0 => None,
        1 => Some((read_spec(r)?, r.f64()?)),
        tag => return Err(WireError::UnknownTag { context: "cache residency", tag }),
    };
    let metrics = match r.u8()? {
        0 => None,
        1 => Some(read_key_metrics(r)?),
        tag => return Err(WireError::UnknownTag { context: "key metrics option", tag }),
    };
    Ok(KeyState { key, value, spec, policy_state, source_spec, cached, metrics })
}

/// Smallest possible [`KeyState`] on the wire, for sequence-count
/// validation: key + value + spec tag + empty state seq + smallest
/// source spec (Constant = tag + interval) + two `None` option tags.
const fn min_key_state_bytes(min_key: usize) -> usize {
    min_key + 8 + 1 + 4 + (1 + 16) + 1 + 1
}

fn put_key_states<K: WireKey>(buf: &mut Vec<u8>, states: &[KeyState<K>]) {
    put_seq(buf, states.len());
    for state in states {
        put_key_state(buf, state);
    }
}

fn read_key_states<K: WireKey>(r: &mut Reader<'_>) -> Result<Vec<KeyState<K>>, WireError> {
    let n = r.seq(min_key_state_bytes(K::MIN_ENCODED_BYTES))?;
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        states.push(read_key_state(r)?);
    }
    Ok(states)
}

// ---------------------------------------------------------------------
// Frame codecs.
// ---------------------------------------------------------------------

/// Encode `msg` as one current-version frame body
/// (magic ∥ version ∥ tag ∥ request_id ∥ fields), appended to `buf`. The
/// transport adds the length prefix. `request_id` correlates a response
/// with its request across a pipelined connection — and routes a push
/// frame to its subscription; un-pipelined callers use 0.
pub fn encode_frame<K: WireKey + Ord + Clone>(
    request_id: u64,
    msg: &WireMessage<K>,
    buf: &mut Vec<u8>,
) {
    encode_with_version(VERSION, request_id, msg, buf);
}

/// Encode `msg` as a *version 1* frame body (no request-id field) — for
/// answering peers that spoke v1, and for the compatibility tests.
pub fn encode_frame_v1<K: WireKey + Ord + Clone>(msg: &WireMessage<K>, buf: &mut Vec<u8>) {
    encode_with_version(VERSION_V1, 0, msg, buf);
}

/// Encode one frame at the requested `version`. The id is written for
/// v2 and later (v1 frames have no slot for it).
pub fn encode_versioned<K: WireKey + Ord + Clone>(
    version: u8,
    request_id: u64,
    msg: &WireMessage<K>,
    buf: &mut Vec<u8>,
) {
    encode_with_version(version, request_id, msg, buf);
}

/// Convenience: one frame at `version` into a fresh buffer.
pub fn versioned_to_vec<K: WireKey + Ord + Clone>(
    version: u8,
    request_id: u64,
    msg: &WireMessage<K>,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_with_version(version, request_id, msg, &mut buf);
    buf
}

/// Convenience: encode a current-version frame into a fresh buffer.
pub fn frame_to_vec<K: WireKey + Ord + Clone>(request_id: u64, msg: &WireMessage<K>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_frame(request_id, msg, &mut buf);
    buf
}

/// Encode one *length-prefixed* frame at `version` directly into a
/// caller-owned buffer: `u32-LE length ∥ body`, appended to `out`. This
/// is the zero-copy entry point for event-driven servers that coalesce
/// many frames into one socket write — the length slot is reserved
/// first and backfilled after the body lands, so encoding is a single
/// pass with no intermediate `Vec` per frame. Returns the number of
/// bytes appended (prefix + body).
pub fn encode_framed<K: WireKey + Ord + Clone>(
    version: u8,
    request_id: u64,
    msg: &WireMessage<K>,
    out: &mut Vec<u8>,
) -> usize {
    let prefix_at = out.len();
    out.extend_from_slice(&[0u8; 4]); // length slot, backfilled below
    encode_with_version(version, request_id, msg, out);
    let body_len = out.len() - prefix_at - 4;
    let len = u32::try_from(body_len).expect("frame body exceeds u32 length prefix");
    out[prefix_at..prefix_at + 4].copy_from_slice(&len.to_le_bytes());
    body_len + 4
}

fn encode_with_version<K: WireKey + Ord + Clone>(
    version: u8,
    request_id: u64,
    msg: &WireMessage<K>,
    buf: &mut Vec<u8>,
) {
    put_u8(buf, MAGIC);
    put_u8(buf, version);
    let tag = match msg {
        WireMessage::Refresh(_) => MSG_REFRESH,
        WireMessage::Exact(_) => MSG_EXACT,
        WireMessage::Request(_) => MSG_REQUEST,
        WireMessage::Response(_) => MSG_RESPONSE,
        WireMessage::Push(_) => MSG_PUSH,
    };
    put_u8(buf, tag);
    if version >= VERSION_V2 {
        // The pipelining header: v1 frames have no slot for it.
        put_u64(buf, request_id);
    }
    match msg {
        WireMessage::Refresh(refresh) => {
            put_refresh(buf, refresh);
        }
        WireMessage::Exact(exact) => {
            put_f64(buf, exact.value);
            put_refresh(buf, &exact.refresh);
        }
        WireMessage::Request(req) => match req {
            WireRequest::Read { key, constraint, now } => {
                put_u8(buf, VERB_READ);
                key.encode_key(buf);
                put_constraint(buf, constraint);
                put_u64(buf, *now);
            }
            WireRequest::Write { key, value, now } => {
                put_u8(buf, VERB_WRITE);
                key.encode_key(buf);
                put_f64(buf, *value);
                put_u64(buf, *now);
            }
            WireRequest::WriteBatch { items, now } => {
                put_u8(buf, VERB_WRITE_BATCH);
                put_seq(buf, items.len());
                for (key, value) in items {
                    key.encode_key(buf);
                    put_f64(buf, *value);
                }
                put_u64(buf, *now);
            }
            WireRequest::Aggregate { kind, keys, constraint, now } => {
                put_u8(buf, VERB_AGGREGATE);
                put_kind(buf, *kind);
                put_keys(buf, keys);
                put_constraint(buf, constraint);
                put_u64(buf, *now);
            }
            WireRequest::Metrics => put_u8(buf, VERB_METRICS),
            WireRequest::Subscribe { key, filter, now } => {
                put_u8(buf, VERB_SUBSCRIBE);
                key.encode_key(buf);
                put_filter(buf, filter);
                put_u64(buf, *now);
            }
            WireRequest::Unsubscribe { sub } => {
                put_u8(buf, VERB_UNSUBSCRIBE);
                put_u64(buf, *sub);
            }
            WireRequest::Lease { key, cfg, now } => {
                put_u8(buf, VERB_LEASE);
                key.encode_key(buf);
                put_lease_cfg(buf, cfg);
                put_u64(buf, *now);
            }
            WireRequest::ReleaseLease { key, now } => {
                put_u8(buf, VERB_RELEASE_LEASE);
                key.encode_key(buf);
                put_u64(buf, *now);
            }
            WireRequest::AdvanceTime { now } => {
                put_u8(buf, VERB_ADVANCE_TIME);
                put_u64(buf, *now);
            }
            WireRequest::KeyList => put_u8(buf, VERB_KEY_LIST),
            WireRequest::ExportKeys { keys } => {
                put_u8(buf, VERB_EXPORT_KEYS);
                put_keys(buf, keys);
            }
            WireRequest::ImportKeys { states } => {
                put_u8(buf, VERB_IMPORT_KEYS);
                put_key_states(buf, states);
            }
            WireRequest::Exposition => put_u8(buf, VERB_EXPOSITION),
            WireRequest::PushStats => put_u8(buf, VERB_PUSH_STATS),
            WireRequest::Shutdown => put_u8(buf, VERB_SHUTDOWN),
        },
        WireMessage::Response(resp) => match resp {
            WireResponse::Read(result) => {
                put_u8(buf, RESP_READ);
                put_answer(buf, &result.answer);
                put_bool(buf, result.refreshed);
            }
            WireResponse::Write(outcome) => {
                put_u8(buf, RESP_WRITE);
                put_u64(buf, outcome.refreshes as u64);
            }
            WireResponse::Aggregate { answer, refreshed } => {
                put_u8(buf, RESP_AGGREGATE);
                put_interval(buf, answer);
                put_keys(buf, refreshed);
            }
            WireResponse::Metrics(metrics) => {
                put_u8(buf, RESP_METRICS);
                put_store_metrics(buf, metrics);
            }
            WireResponse::ShutdownAck => put_u8(buf, RESP_SHUTDOWN_ACK),
            WireResponse::Subscribed { interval } => {
                put_u8(buf, RESP_SUBSCRIBED);
                put_interval(buf, interval);
            }
            WireResponse::Unsubscribed { existed } => {
                put_u8(buf, RESP_UNSUBSCRIBED);
                put_bool(buf, *existed);
            }
            WireResponse::Leased { active } => {
                put_u8(buf, RESP_LEASED);
                put_bool(buf, *active);
            }
            WireResponse::TimeAdvanced(report) => {
                put_u8(buf, RESP_TIME_ADVANCED);
                put_push_report(buf, report);
            }
            WireResponse::Keys(keys) => {
                put_u8(buf, RESP_KEYS);
                put_keys(buf, keys);
            }
            WireResponse::Exported(states) => {
                put_u8(buf, RESP_EXPORTED);
                put_key_states(buf, states);
            }
            WireResponse::Imported => put_u8(buf, RESP_IMPORTED),
            WireResponse::Exposition(text) => {
                put_u8(buf, RESP_EXPOSITION);
                put_str(buf, text);
            }
            WireResponse::Error(fault) => {
                put_u8(buf, RESP_ERROR);
                put_fault(buf, fault);
            }
        },
        WireMessage::Push(event) => {
            event.key.encode_key(buf);
            put_interval(buf, &event.interval);
            put_reason(buf, event.reason);
            put_u64(buf, event.now);
        }
    }
}

/// Encode `msg` as one frame body with request id 0 — the un-pipelined
/// convenience form (push frames, tests, benches).
pub fn encode_message<K: WireKey + Ord + Clone>(msg: &WireMessage<K>, buf: &mut Vec<u8>) {
    encode_frame(0, msg, buf);
}

/// Convenience: encode (request id 0) into a fresh buffer.
pub fn encode_to_vec<K: WireKey + Ord + Clone>(msg: &WireMessage<K>) -> Vec<u8> {
    frame_to_vec(0, msg)
}

/// One decoded frame: the message, the request id that correlates it
/// across a pipelined connection (0 for v1 frames, which predate the
/// header), and the version the peer spoke (so servers can answer v1
/// peers in v1).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame<K> {
    /// The pipelining correlation id (0 on v1 frames).
    pub request_id: u64,
    /// The protocol version the frame was encoded at.
    pub version: u8,
    /// The decoded message.
    pub msg: WireMessage<K>,
}

/// Decode one frame body's message, discarding the pipelining header —
/// the v1-shaped convenience decoder (see [`decode_frame`] for the id).
pub fn decode_message<K: WireKey + Ord + Clone>(body: &[u8]) -> Result<WireMessage<K>, WireError> {
    decode_frame(body).map(|frame| frame.msg)
}

/// Decode one frame body produced by [`encode_frame`] (v3), a v2 peer,
/// **or** the original release's v1 encoder — v1 frames carry no
/// request id and decode as id 0. Strict: the whole input must be consumed
/// ([`WireError::TrailingBytes`] otherwise), and any malformed input
/// returns a [`WireError`] — never a panic.
pub fn decode_frame<K: WireKey + Ord + Clone>(body: &[u8]) -> Result<DecodedFrame<K>, WireError> {
    let mut r = Reader::new(body);
    let magic = r.u8()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION && version != VERSION_V2 && version != VERSION_V1 {
        return Err(WireError::BadVersion(version));
    }
    let tag = r.u8()?;
    if !(MSG_REFRESH..=MSG_PUSH).contains(&tag) {
        // Rejected before the request-id field: a bogus tag means the
        // stream is junk, and the header that follows it is too.
        return Err(WireError::UnknownTag { context: "message", tag });
    }
    let request_id = if version >= VERSION_V2 { r.u64()? } else { 0 };
    let msg = match tag {
        MSG_REFRESH => WireMessage::Refresh(read_refresh(&mut r)?),
        MSG_EXACT => {
            let value = r.f64()?;
            WireMessage::Exact(WireExact { value, refresh: read_refresh(&mut r)? })
        }
        MSG_REQUEST => WireMessage::Request(match r.u8()? {
            VERB_READ => WireRequest::Read {
                key: K::decode_key(&mut r)?,
                constraint: read_constraint(&mut r)?,
                now: r.u64()?,
            },
            VERB_WRITE => {
                WireRequest::Write { key: K::decode_key(&mut r)?, value: r.f64()?, now: r.u64()? }
            }
            VERB_WRITE_BATCH => {
                let n = r.seq(K::MIN_ENCODED_BYTES + 8)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = K::decode_key(&mut r)?;
                    items.push((key, r.f64()?));
                }
                WireRequest::WriteBatch { items, now: r.u64()? }
            }
            VERB_AGGREGATE => WireRequest::Aggregate {
                kind: read_kind(&mut r)?,
                keys: read_keys(&mut r)?,
                constraint: read_constraint(&mut r)?,
                now: r.u64()?,
            },
            VERB_METRICS => WireRequest::Metrics,
            VERB_SHUTDOWN => WireRequest::Shutdown,
            VERB_SUBSCRIBE => WireRequest::Subscribe {
                key: K::decode_key(&mut r)?,
                filter: read_filter(&mut r)?,
                now: r.u64()?,
            },
            VERB_UNSUBSCRIBE => WireRequest::Unsubscribe { sub: r.u64()? },
            VERB_LEASE => WireRequest::Lease {
                key: K::decode_key(&mut r)?,
                cfg: read_lease_cfg(&mut r)?,
                now: r.u64()?,
            },
            VERB_RELEASE_LEASE => {
                WireRequest::ReleaseLease { key: K::decode_key(&mut r)?, now: r.u64()? }
            }
            VERB_ADVANCE_TIME => WireRequest::AdvanceTime { now: r.u64()? },
            VERB_KEY_LIST => WireRequest::KeyList,
            VERB_EXPORT_KEYS => WireRequest::ExportKeys { keys: read_keys(&mut r)? },
            VERB_IMPORT_KEYS => WireRequest::ImportKeys { states: read_key_states(&mut r)? },
            VERB_EXPOSITION => WireRequest::Exposition,
            VERB_PUSH_STATS => WireRequest::PushStats,
            tag => return Err(WireError::UnknownTag { context: "request verb", tag }),
        }),
        MSG_RESPONSE => WireMessage::Response(match r.u8()? {
            RESP_READ => {
                let answer = read_answer(&mut r)?;
                WireResponse::Read(ReadResult { answer, refreshed: r.bool()? })
            }
            RESP_WRITE => {
                let refreshes = usize::try_from(r.u64()?)
                    .map_err(|_| WireError::InvalidPayload("refresh count overflows usize"))?;
                WireResponse::Write(WriteOutcome { refreshes })
            }
            RESP_AGGREGATE => WireResponse::Aggregate {
                answer: read_interval(&mut r)?,
                refreshed: read_keys(&mut r)?,
            },
            RESP_METRICS => WireResponse::Metrics(read_store_metrics(&mut r)?),
            RESP_SHUTDOWN_ACK => WireResponse::ShutdownAck,
            RESP_SUBSCRIBED => WireResponse::Subscribed { interval: read_interval(&mut r)? },
            RESP_UNSUBSCRIBED => WireResponse::Unsubscribed { existed: r.bool()? },
            RESP_LEASED => WireResponse::Leased { active: r.bool()? },
            RESP_TIME_ADVANCED => WireResponse::TimeAdvanced(read_push_report(&mut r)?),
            RESP_KEYS => WireResponse::Keys(read_keys(&mut r)?),
            RESP_EXPORTED => WireResponse::Exported(read_key_states(&mut r)?),
            RESP_IMPORTED => WireResponse::Imported,
            RESP_EXPOSITION => WireResponse::Exposition(r.str()?),
            RESP_ERROR => WireResponse::Error(read_fault(&mut r)?),
            tag => return Err(WireError::UnknownTag { context: "response kind", tag }),
        }),
        MSG_PUSH => WireMessage::Push(PushEvent {
            key: K::decode_key(&mut r)?,
            interval: read_interval(&mut r)?,
            reason: read_reason(&mut r)?,
            now: r.u64()?,
        }),
        tag => return Err(WireError::UnknownTag { context: "message", tag }),
    };
    r.finish()?;
    Ok(DecodedFrame { request_id, version, msg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::put_u32;
    use apcache_core::policy::ApproxSpec;

    fn round_trip(msg: WireMessage<String>) {
        let body = encode_to_vec(&msg);
        let back: WireMessage<String> = decode_message(&body).expect("decodes");
        assert_eq!(back, msg);
        // And the re-encoding is byte-identical (canonical encoding).
        assert_eq!(encode_to_vec(&back), body);
    }

    #[test]
    fn paper_vocabulary_round_trips() {
        round_trip(WireMessage::Refresh(WireRefresh {
            key: "stock/ibm".to_string(),
            spec: ApproxSpec::Constant(Interval::new(-3.5, 12.25).unwrap()),
            internal_width: 15.75,
        }));
        round_trip(WireMessage::Exact(WireExact {
            value: -0.0,
            refresh: WireRefresh {
                key: String::new(),
                spec: ApproxSpec::Growing {
                    center: 1.0,
                    base_width: 2.0,
                    coeff: 0.5,
                    exponent: 0.5,
                    t0: 9_000,
                },
                internal_width: 2.0,
            },
        }));
        round_trip(WireMessage::Refresh(WireRefresh {
            key: "q".to_string(),
            spec: ApproxSpec::Drifting { lo0: -1.0, hi0: 4.0, rate_per_sec: -0.25, t0: 0 },
            internal_width: f64::INFINITY,
        }));
    }

    #[test]
    fn key_refreshes_keep_the_u32_layout() {
        // Satellite check: the generic WireRefresh<K> with K = Key must
        // encode byte-identically to the old hardcoded `put_u32(key.0)`
        // layout, so pre-v3 Refresh frames from Key-typed peers still
        // mean the same bytes.
        let refresh = Refresh {
            key: Key(0xDEAD_BEEF),
            spec: ApproxSpec::Constant(Interval::new(1.0, 2.0).unwrap()),
            internal_width: 1.0,
        };
        let body = encode_to_vec(&WireMessage::<Key>::Refresh(refresh.clone().into()));
        // Hand-build the legacy layout.
        let mut legacy = vec![MAGIC, VERSION, MSG_REFRESH];
        put_u64(&mut legacy, 0); // request id
        put_u32(&mut legacy, 0xDEAD_BEEF); // key, old hardcoded form
        put_spec(&mut legacy, &refresh.spec);
        put_f64(&mut legacy, 1.0);
        assert_eq!(body, legacy);
        // And it converts back into the in-core type losslessly.
        let frame = decode_frame::<Key>(&body).unwrap();
        match frame.msg {
            WireMessage::Refresh(wire) => assert_eq!(Refresh::from(wire), refresh),
            other => panic!("expected a refresh frame, got {other:?}"),
        }
    }

    #[test]
    fn every_request_verb_round_trips() {
        round_trip(WireMessage::Request(WireRequest::Read {
            key: "sensor/007".into(),
            constraint: Constraint::Absolute(2.5),
            now: 1_000,
        }));
        round_trip(WireMessage::Request(WireRequest::Read {
            key: String::new(),
            constraint: Constraint::Relative(0.05),
            now: 0,
        }));
        round_trip(WireMessage::Request(WireRequest::Write {
            key: "k".into(),
            value: -1e308,
            now: u64::MAX,
        }));
        round_trip(WireMessage::Request(WireRequest::WriteBatch {
            items: vec![("a".into(), 1.0), ("b".into(), -0.0), ("c".into(), 3.5)],
            now: 42,
        }));
        round_trip(WireMessage::Request(WireRequest::Aggregate {
            kind: AggregateKind::Avg,
            keys: vec!["x".into(), "y".into()],
            constraint: Constraint::Exact,
            now: 5,
        }));
        round_trip(WireMessage::Request(WireRequest::Metrics));
        round_trip(WireMessage::Request(WireRequest::Shutdown));
    }

    #[test]
    fn every_response_kind_round_trips() {
        round_trip(WireMessage::Response(WireResponse::Read(ReadResult {
            answer: Answer::Interval(Interval::new(f64::NEG_INFINITY, f64::INFINITY).unwrap()),
            refreshed: false,
        })));
        round_trip(WireMessage::Response(WireResponse::Read(ReadResult {
            answer: Answer::Exact(99.5),
            refreshed: true,
        })));
        round_trip(WireMessage::Response(WireResponse::Write(WriteOutcome { refreshes: 3 })));
        round_trip(WireMessage::Response(WireResponse::Aggregate {
            answer: Interval::new(10.0, 20.0).unwrap(),
            refreshed: vec!["w1".into(), "w2".into()],
        }));
        let mut m: StoreMetrics<String> = StoreMetrics::new();
        m.merge(&StoreMetrics::from_parts(
            KeyMetrics { reads: 5, cache_hits: 4, qr_cost: 0.1 + 0.2, ..KeyMetrics::default() },
            [(
                "a".to_string(),
                KeyMetrics { reads: 5, cache_hits: 4, qr_cost: 0.1 + 0.2, ..KeyMetrics::default() },
            )],
        ));
        round_trip(WireMessage::Response(WireResponse::Metrics(m)));
        round_trip(WireMessage::Response(WireResponse::ShutdownAck));
        round_trip(WireMessage::Response(WireResponse::Error(WireFault::new(
            FaultKind::UnknownKey,
            "no source registered for the requested key",
        ))));
    }

    #[test]
    fn integer_keys_round_trip_too() {
        let msg: WireMessage<u64> = WireMessage::Request(WireRequest::Aggregate {
            kind: AggregateKind::Sum,
            keys: vec![0, u64::MAX, 17],
            constraint: Constraint::Absolute(f64::INFINITY),
            now: 3,
        });
        let body = encode_to_vec(&msg);
        assert_eq!(decode_message::<u64>(&body).unwrap(), msg);
    }

    #[test]
    fn bad_header_is_rejected() {
        let body = encode_to_vec::<String>(&WireMessage::Request(WireRequest::Metrics));
        let mut wrong_magic = body.clone();
        wrong_magic[0] = 0x00;
        assert_eq!(decode_message::<String>(&wrong_magic), Err(WireError::BadMagic(0)));
        let mut wrong_version = body.clone();
        wrong_version[1] = 99;
        assert_eq!(decode_message::<String>(&wrong_version), Err(WireError::BadVersion(99)));
        let mut wrong_tag = body;
        wrong_tag[2] = 0xEE;
        assert_eq!(
            decode_message::<String>(&wrong_tag),
            Err(WireError::UnknownTag { context: "message", tag: 0xEE })
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = encode_to_vec::<String>(&WireMessage::Request(WireRequest::Shutdown));
        body.extend_from_slice(b"junk");
        assert_eq!(decode_message::<String>(&body), Err(WireError::TrailingBytes { count: 4 }));
    }

    #[test]
    fn nan_interval_bounds_are_rejected() {
        // Hand-build a Refresh frame whose interval smuggles a NaN bound.
        let mut body = vec![MAGIC, VERSION, MSG_REFRESH];
        put_u64(&mut body, 0); // request id (v2+ header)
        put_str(&mut body, "k"); // key
        put_u8(&mut body, 0); // ApproxSpec::Constant
        put_u64(&mut body, f64::NAN.to_bits());
        put_u64(&mut body, 1.0f64.to_bits());
        put_f64(&mut body, 4.0); // internal width
        assert!(matches!(decode_message::<String>(&body), Err(WireError::InvalidPayload(_))));
    }

    #[test]
    fn request_ids_ride_the_header_and_round_trip() {
        let msg: WireMessage<String> = WireMessage::Request(WireRequest::Read {
            key: "k".into(),
            constraint: Constraint::Exact,
            now: 9,
        });
        for id in [0u64, 1, 42, u64::MAX] {
            let body = frame_to_vec(id, &msg);
            let frame = decode_frame::<String>(&body).unwrap();
            assert_eq!(frame.request_id, id);
            assert_eq!(frame.version, VERSION);
            assert_eq!(frame.msg, msg);
            // Canonical: re-encoding reproduces the bytes.
            assert_eq!(frame_to_vec(frame.request_id, &frame.msg), body);
        }
        // The id sits in the header, not the fields: two ids differ only
        // in the 8 bytes after the tag.
        let a = frame_to_vec(1, &msg);
        let b = frame_to_vec(2, &msg);
        assert_eq!(a[..3], b[..3]);
        assert_eq!(a[11..], b[11..]);
        assert_ne!(a[3..11], b[3..11]);
    }

    #[test]
    fn v1_frames_still_decode() {
        // Every message family, encoded with the previous release's
        // layout (no request-id header), decodes as request id 0 and
        // reports version 1 so a server can reply in kind.
        let messages: Vec<WireMessage<String>> = vec![
            WireMessage::Refresh(WireRefresh {
                key: "a".to_string(),
                spec: ApproxSpec::Constant(Interval::new(1.0, 2.0).unwrap()),
                internal_width: 1.0,
            }),
            WireMessage::Request(WireRequest::Read {
                key: "a".into(),
                constraint: Constraint::Absolute(2.0),
                now: 7,
            }),
            WireMessage::Request(WireRequest::Shutdown),
            WireMessage::Response(WireResponse::Write(WriteOutcome { refreshes: 1 })),
            WireMessage::Response(WireResponse::ShutdownAck),
        ];
        for msg in messages {
            let mut v1 = Vec::new();
            encode_frame_v1(&msg, &mut v1);
            assert_eq!(v1[1], VERSION_V1);
            let frame = decode_frame::<String>(&v1).unwrap();
            assert_eq!(frame.request_id, 0);
            assert_eq!(frame.version, VERSION_V1);
            assert_eq!(frame.msg, msg);
            // And the v1 re-encode is canonical too.
            assert_eq!(versioned_to_vec(VERSION_V1, 0, &frame.msg), v1);
            // The v2+ encoding of the same message is 8 bytes longer —
            // exactly the id field.
            assert_eq!(frame_to_vec(0, &frame.msg).len(), v1.len() + 8);
        }
    }

    #[test]
    fn unknown_versions_are_still_rejected() {
        let mut body = encode_to_vec::<String>(&WireMessage::Request(WireRequest::Metrics));
        body[1] = 4; // a future version
        assert_eq!(decode_frame::<String>(&body), Err(WireError::BadVersion(4)));
        body[1] = 0;
        assert_eq!(decode_frame::<String>(&body), Err(WireError::BadVersion(0)));
    }

    #[test]
    fn push_vocabulary_round_trips() {
        round_trip(WireMessage::Request(WireRequest::Subscribe {
            key: "hot".into(),
            filter: PushFilter::Always,
            now: 12,
        }));
        round_trip(WireMessage::Request(WireRequest::Subscribe {
            key: "hot".into(),
            filter: PushFilter::Violates(Constraint::Relative(0.01)),
            now: 0,
        }));
        round_trip(WireMessage::Request(WireRequest::Unsubscribe { sub: u64::MAX }));
        round_trip(WireMessage::Response(WireResponse::Subscribed {
            interval: Interval::new(9.5, 10.5).unwrap(),
        }));
        round_trip(WireMessage::Response(WireResponse::Unsubscribed { existed: true }));
        round_trip(WireMessage::Response(WireResponse::Unsubscribed { existed: false }));
        for reason in [PushReason::Changed, PushReason::LeaseExpired] {
            round_trip(WireMessage::Push(PushEvent {
                key: "hot".to_string(),
                interval: Interval::new(-1.0, f64::INFINITY).unwrap(),
                reason,
                now: 77,
            }));
        }
    }

    #[test]
    fn lease_vocabulary_round_trips() {
        use apcache_push::{FallbackWidth, LeaseConfig, PushReport};
        for fallback in
            [FallbackWidth::Unbounded, FallbackWidth::Fixed(12.5), FallbackWidth::Factor(2.0)]
        {
            round_trip(WireMessage::Request(WireRequest::Lease {
                key: "leased".into(),
                cfg: LeaseConfig { ttl_ms: 5_000, fallback },
                now: 17,
            }));
        }
        round_trip(WireMessage::Request(WireRequest::ReleaseLease {
            key: "leased".into(),
            now: 9,
        }));
        round_trip(WireMessage::Request(WireRequest::AdvanceTime { now: u64::MAX }));
        round_trip(WireMessage::Response(WireResponse::Leased { active: true }));
        round_trip(WireMessage::Response(WireResponse::Leased { active: false }));
        round_trip(WireMessage::Response(WireResponse::TimeAdvanced(PushReport {
            subscribers: 3,
            watched_keys: 2,
            leases: 5,
            expired: 1,
        })));
    }

    #[test]
    fn telemetry_vocabulary_round_trips() {
        round_trip(WireMessage::Request(WireRequest::Exposition));
        round_trip(WireMessage::Request(WireRequest::PushStats));
        round_trip(WireMessage::Response(WireResponse::Exposition(String::new())));
        round_trip(WireMessage::Response(WireResponse::Exposition(
            "# HELP apcache_reads_total Point reads served.\n\
             # TYPE apcache_reads_total counter\n\
             apcache_reads_total 42\n"
                .to_string(),
        )));
    }

    #[test]
    fn invalid_lease_configs_are_rejected_on_decode() {
        use apcache_push::{FallbackWidth, LeaseConfig};
        // Zero TTL and a sub-unit factor are both meaningless; hand-build
        // the frames since the typed constructors would be valid.
        for (ttl, fb_tag, fb_value) in [(0u64, 0u8, 0.0), (100, 2, 0.5), (100, 1, -1.0)] {
            let mut body = vec![MAGIC, VERSION, MSG_REQUEST];
            put_u64(&mut body, 1); // request id
            put_u8(&mut body, 9); // VERB_LEASE
            put_str(&mut body, "k");
            put_u64(&mut body, ttl);
            put_u8(&mut body, fb_tag);
            if fb_tag != 0 {
                put_f64(&mut body, fb_value);
            }
            put_u64(&mut body, 0); // now
            assert!(
                matches!(decode_message::<String>(&body), Err(WireError::InvalidPayload(_))),
                "ttl={ttl} fb_tag={fb_tag} fb_value={fb_value}"
            );
        }
        // And the valid form still decodes (guards the hand-built layout).
        let msg: WireMessage<String> = WireMessage::Request(WireRequest::Lease {
            key: "k".into(),
            cfg: LeaseConfig { ttl_ms: 100, fallback: FallbackWidth::Factor(1.5) },
            now: 0,
        });
        assert_eq!(decode_message::<String>(&encode_to_vec(&msg)).unwrap(), msg);
    }

    #[test]
    fn migration_vocabulary_round_trips() {
        use apcache_core::policy::{GrowthLaw, Weighting};
        round_trip(WireMessage::Request(WireRequest::KeyList));
        round_trip(WireMessage::Request(WireRequest::ExportKeys {
            keys: vec!["a".into(), "b".into()],
        }));
        round_trip(WireMessage::Response(WireResponse::Keys(vec!["a".into(), "b".into()])));
        round_trip(WireMessage::Response(WireResponse::Imported));
        // One state per policy family, exercising every optional field.
        let states: Vec<KeyState<String>> = vec![
            KeyState {
                key: "adaptive".into(),
                value: 41.5,
                spec: PolicySpec::Adaptive,
                policy_state: vec![10.0],
                source_spec: ApproxSpec::Constant(Interval::new(36.5, 46.5).unwrap()),
                cached: Some((ApproxSpec::Constant(Interval::new(36.5, 46.5).unwrap()), 10.0)),
                metrics: Some(KeyMetrics {
                    reads: 7,
                    cache_hits: 5,
                    writes: 3,
                    vr_count: 2,
                    qr_count: 1,
                    vr_cost: 2.0,
                    qr_cost: 1.5,
                }),
            },
            KeyState {
                key: "uncentered".into(),
                value: -0.0,
                spec: PolicySpec::Uncentered,
                policy_state: vec![4.0, 6.0],
                source_spec: ApproxSpec::Constant(Interval::new(-4.0, 6.0).unwrap()),
                cached: None,
                metrics: None,
            },
            KeyState {
                key: "growing".into(),
                value: 1e9,
                spec: PolicySpec::TimeVarying(GrowthLaw::sqrt(2.0).unwrap()),
                policy_state: vec![],
                source_spec: ApproxSpec::Growing {
                    center: 1e9,
                    base_width: 5.0,
                    coeff: 2.0,
                    exponent: 0.5,
                    t0: 1_000,
                },
                cached: None,
                metrics: None,
            },
            KeyState {
                key: "history".into(),
                value: 2.25,
                spec: PolicySpec::History {
                    r: 5,
                    weighting: Weighting::Exponential { decay: 0.5 },
                },
                policy_state: vec![8.0, 1.0, 0.0, 1.0],
                source_spec: ApproxSpec::Drifting { lo0: 0.0, hi0: 4.0, rate_per_sec: 0.25, t0: 7 },
                cached: Some((ApproxSpec::Constant(Interval::new(0.0, 4.5).unwrap()), 4.5)),
                metrics: None,
            },
        ];
        round_trip(WireMessage::Request(WireRequest::ImportKeys { states: states.clone() }));
        round_trip(WireMessage::Response(WireResponse::Exported(states)));
    }

    #[test]
    fn hostile_key_state_counts_do_not_allocate() {
        // An ImportKeys frame claiming u32::MAX states with a near-empty
        // body must fail on the length check, not attempt the allocation.
        let mut body = vec![MAGIC, VERSION, MSG_REQUEST];
        put_u64(&mut body, 1); // request id
        put_u8(&mut body, 14); // VERB_IMPORT_KEYS
        put_u32(&mut body, u32::MAX);
        assert!(matches!(decode_message::<String>(&body), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn push_frames_carry_their_subscription_id() {
        let msg: WireMessage<String> = WireMessage::Push(PushEvent {
            key: "k".to_string(),
            interval: Interval::new(0.0, 1.0).unwrap(),
            reason: PushReason::Changed,
            now: 3,
        });
        let body = frame_to_vec(41, &msg);
        let frame = decode_frame::<String>(&body).unwrap();
        assert_eq!(frame.request_id, 41);
        assert_eq!(frame.version, VERSION);
        assert_eq!(frame.msg, msg);
    }

    #[test]
    fn v2_frames_still_decode_and_reject_push_vocabulary() {
        // A v2 peer's frames (request-id header, pre-push vocabulary)
        // decode unchanged and report version 2.
        let msg: WireMessage<String> = WireMessage::Request(WireRequest::Read {
            key: "a".into(),
            constraint: Constraint::Absolute(2.0),
            now: 7,
        });
        let body = versioned_to_vec(VERSION_V2, 9, &msg);
        assert_eq!(body[1], VERSION_V2);
        let frame = decode_frame::<String>(&body).unwrap();
        assert_eq!((frame.request_id, frame.version), (9, VERSION_V2));
        assert_eq!(frame.msg, msg);
        // v3 and v2 encodings differ only in the version byte — same
        // header shape, same fields.
        let v3 = frame_to_vec(9, &msg);
        assert_eq!(v3.len(), body.len());
        assert_ne!(v3[1], body[1]);
        assert_eq!(v3[2..], body[2..]);
    }
}
