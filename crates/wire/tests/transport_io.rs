//! Socket-level integration: the client/server pair over real localhost
//! TCP, including the multi-connection runtime front door
//! (`serve_connections`) and hostile-peer behavior.

use std::net::TcpListener;
use std::thread;

use apcache_queries::AggregateKind;
use apcache_runtime::Runtime;
use apcache_shard::ShardedStoreBuilder;
use apcache_store::{Constraint, InitialWidth, StoreBuilder};
use apcache_wire::{
    serve_connections, RemoteStoreClient, ServerExit, StoreServer, TcpTransport, Transport,
    WireError,
};

fn listener() -> (TcpListener, std::net::SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    (listener, addr)
}

#[test]
fn single_connection_tcp_serving_round_trips() {
    let (listener, addr) = listener();
    let server = thread::spawn(move || {
        let store = StoreBuilder::new()
            .initial_width(InitialWidth::Fixed(10.0))
            .source("alpha".to_string(), 10.0)
            .source("beta".to_string(), 20.0)
            .build()
            .unwrap();
        let mut transport = TcpTransport::accept(&listener).unwrap();
        let mut server = StoreServer::new(store);
        let exit = server.serve::<String, _>(&mut transport).unwrap();
        (exit, server.into_service())
    });

    let mut client: RemoteStoreClient<String, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
    let r = client.read(&"alpha".to_string(), Constraint::Absolute(12.0), 0).unwrap();
    assert!(!r.refreshed);
    assert!(r.answer.contains(10.0));
    let out = client
        .aggregate(
            AggregateKind::Sum,
            &["alpha".to_string(), "beta".to_string()],
            Constraint::Absolute(12.0),
            1_000,
        )
        .unwrap();
    assert!(out.answer.width() <= 12.0);
    assert_eq!(out.refreshed.len(), 1);
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.totals().reads, 1);
    assert_eq!(metrics.totals().qr_count, 1);
    client.shutdown().unwrap();

    let (exit, store) = server.join().unwrap();
    assert_eq!(exit, ServerExit::Shutdown);
    assert_eq!(store.metrics().totals(), metrics.totals());
}

#[test]
fn runtime_front_door_serves_concurrent_tcp_clients() {
    const KEYS: u64 = 16;
    const CLIENTS: usize = 3;
    const TICKS: u64 = 50;
    let mut builder = ShardedStoreBuilder::new().shards(2).initial_width(InitialWidth::Fixed(8.0));
    for k in 0..KEYS {
        builder = builder.source(k, k as f64);
    }
    let runtime = Runtime::launch(builder.build().unwrap()).unwrap();
    let handle = runtime.handle();
    let (listener, addr) = listener();
    let acceptor = thread::spawn(move || serve_connections(listener, handle));

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut client: RemoteStoreClient<u64, _> =
                    RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
                // Each client owns keys ≡ c (mod CLIENTS): disjoint
                // traffic, so per-key outcomes are deterministic.
                let mine: Vec<u64> = (0..KEYS).filter(|k| k % CLIENTS as u64 == c as u64).collect();
                let mut writes = 0u64;
                for t in 1..=TICKS {
                    let now = t * 1_000;
                    let batch: Vec<(u64, f64)> =
                        mine.iter().map(|&k| (k, k as f64 + (t as f64).sin() * 20.0)).collect();
                    client.write_batch(&batch, now).unwrap();
                    writes += batch.len() as u64;
                    let key = mine[(t % mine.len() as u64) as usize];
                    let r = client.read(&key, Constraint::Absolute(4.0), now).unwrap();
                    assert!(r.answer.width() <= 4.0);
                }
                // Clean disconnect (not Shutdown): the door stays open
                // for the other clients.
                (c, writes)
            })
        })
        .collect();
    let mut total_writes = 0;
    for worker in workers {
        let (_, writes) = worker.join().expect("client thread");
        total_writes += writes;
    }

    // A final client checks the merged metrics and closes the door.
    let mut closer: RemoteStoreClient<u64, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
    let metrics = closer.metrics().unwrap();
    assert_eq!(metrics.totals().writes, total_writes);
    assert_eq!(metrics.totals().reads, CLIENTS as u64 * TICKS);
    closer.shutdown().unwrap();
    acceptor.join().expect("acceptor thread").unwrap();
    runtime.shutdown().unwrap();
}

#[test]
fn shutdown_tears_down_idle_connections_instead_of_waiting_on_them() {
    // Regression: an idle peer that connects and never sends must not
    // block serve_connections' teardown after another client shuts the
    // deployment down — lingering connections are force-closed.
    let runtime =
        Runtime::launch(ShardedStoreBuilder::new().shards(1).source(0u64, 1.0).build().unwrap())
            .unwrap();
    let handle = runtime.handle();
    let (listener, addr) = listener();
    let acceptor = thread::spawn(move || serve_connections(listener, handle));

    // The idle peer: holds its socket open and says nothing.
    let idle = std::net::TcpStream::connect(addr).unwrap();
    // An active client does one read, then closes the door.
    let mut closer: RemoteStoreClient<u64, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
    closer.read(&0u64, Constraint::Absolute(f64::INFINITY), 0).unwrap();
    closer.shutdown().unwrap();
    // Must return despite the idle connection (the test harness itself
    // is the timeout guard: a hang here fails the suite).
    acceptor.join().expect("acceptor thread").unwrap();
    drop(idle);
    runtime.shutdown().unwrap();
}

#[test]
fn garbage_from_a_hostile_peer_closes_the_connection_not_the_process() {
    let (listener, addr) = listener();
    let server = thread::spawn(move || {
        let store = StoreBuilder::new().source("k".to_string(), 1.0).build().unwrap();
        let mut transport = TcpTransport::accept(&listener).unwrap();
        StoreServer::new(store).serve::<String, _>(&mut transport)
    });
    // A raw socket spraying bytes that are a valid *frame* but an invalid
    // *message* body.
    use std::io::Write as _;
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let junk_body = [0xDE, 0xAD, 0xBE, 0xEF];
    raw.write_all(&(junk_body.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&junk_body).unwrap();
    raw.flush().unwrap();
    // The server must refuse the stream with a decode error — not panic,
    // not hang.
    let err = server.join().expect("server thread survived").unwrap_err();
    assert!(matches!(err, WireError::BadMagic(0xDE)));
}

#[test]
fn connecting_transport_surfaces_peer_loss_mid_frame() {
    let (listener, addr) = listener();
    // Server sends a length prefix announcing 100 bytes, delivers 3, and
    // hangs up: the client must see Truncated, not block forever.
    let server = thread::spawn(move || {
        use std::io::Write as _;
        let (mut stream, _) = listener.accept().unwrap();
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
    });
    let mut client = TcpTransport::connect(addr).unwrap();
    server.join().unwrap();
    assert!(matches!(client.recv(), Err(WireError::Truncated { .. })));
}

#[test]
fn tcp_pipelined_windows_overlap_on_real_sockets() {
    // Two windowed clients drive the pipelined front door concurrently:
    // each keeps 8 requests on the wire, harvests out of submission
    // order, and every accepted write survives to the drained fleet.
    let (listener, addr) = listener();
    let mut builder = ShardedStoreBuilder::new().shards(2).initial_width(InitialWidth::Fixed(8.0));
    for k in 0..32u64 {
        builder = builder.source(k, k as f64);
    }
    let runtime = Runtime::launch(builder.build().unwrap()).unwrap();
    let door_handle = runtime.handle();
    let acceptor = thread::spawn(move || serve_connections(listener, door_handle));

    let clients: Vec<_> = (0..2u64)
        .map(|c| {
            thread::spawn(move || {
                let mut client: RemoteStoreClient<u64, _> =
                    RemoteStoreClient::with_window(TcpTransport::connect(addr).unwrap(), 8);
                let mine: Vec<u64> = (0..32).filter(|k| k % 2 == c).collect();
                for t in 1..=20u64 {
                    // Fill the window with writes, harvest newest-first —
                    // the out-of-order path on a real socket.
                    let tickets: Vec<_> = mine
                        .iter()
                        .map(|&k| client.submit_write(&k, (k + t) as f64, t * 1_000).unwrap())
                        .collect();
                    for &ticket in tickets.iter().rev() {
                        client.wait_write(ticket).unwrap();
                    }
                    let read_tickets: Vec<_> = mine
                        .iter()
                        .map(|&k| {
                            client.submit_read(&k, Constraint::Absolute(2.0), t * 1_000).unwrap()
                        })
                        .collect();
                    for &ticket in read_tickets.iter().rev() {
                        let r = client.wait_read(ticket).unwrap();
                        assert!(r.answer.width() <= 2.0 + 1e-9);
                    }
                }
                client
            })
        })
        .collect();
    let mut done: Vec<RemoteStoreClient<u64, _>> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();
    // One client closes the door; the other just hangs up.
    done.pop().unwrap().shutdown().unwrap();
    drop(done);
    acceptor.join().unwrap().unwrap();
    let store = runtime.into_store().unwrap();
    assert_eq!(store.metrics().merged().totals().writes, 2 * 20 * 16);
    assert_eq!(store.metrics().merged().totals().reads, 2 * 20 * 16);
    for k in 0..32u64 {
        assert_eq!(store.value(&k), Some((k + 20) as f64));
    }
}

#[test]
fn shutdown_cancels_subscriptions_and_drains_pending_pushes() {
    // Satellite regression for the push channel: a client that shuts
    // down with live subscriptions and a window of un-harvested writes
    // (whose pushes are still in flight) must cancel every subscription
    // and drain everything before closing the transport — and the
    // server's per-key registries must come out empty.
    use apcache_push::PushFilter;
    let runtime = Runtime::launch(
        ShardedStoreBuilder::new()
            .shards(2)
            .initial_width(InitialWidth::Fixed(4.0))
            .source(0u64, 100.0)
            .source(1u64, 200.0)
            .build()
            .unwrap(),
    )
    .unwrap();
    let handle = runtime.handle();
    let stats_handle = runtime.handle();
    let (listener, addr) = listener();
    let acceptor = thread::spawn(move || serve_connections(listener, handle));

    let mut client: RemoteStoreClient<u64, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
    let (_sub0, snap0) = client.subscribe(&0u64, PushFilter::Always, 0).unwrap();
    let (_sub1, snap1) = client.subscribe(&1u64, PushFilter::Always, 0).unwrap();
    assert!(snap0.contains(100.0));
    assert!(snap1.contains(200.0));
    // Escaping writes, left un-harvested: their responses AND the pushes
    // they trigger are still on the wire when shutdown starts.
    for t in 1..=5u64 {
        client.submit_write(&0u64, 100.0 + 50.0 * t as f64, t * 1_000).unwrap();
        client.submit_write(&1u64, 200.0 + 50.0 * t as f64, t * 1_000).unwrap();
    }
    client.shutdown().unwrap();

    // The Shutdown verb closes the front door; the acceptor returning
    // proves the connection (and its drainer) fully wound down.
    acceptor.join().expect("acceptor thread").unwrap();

    // No leaked registry entries server-side once the connection closed.
    let stats = stats_handle.push_stats().unwrap();
    assert_eq!(stats.subscribers, 0, "subscriber registry leaked entries");
    assert_eq!(stats.watched_keys, 0, "watched-key registry leaked entries");
    runtime.shutdown().unwrap();
}

#[test]
fn failed_shutdown_still_closes_the_connection() {
    // The shutdown-consumes-self regression: when the drain inside
    // shutdown() fails (here: the peer answers with a request id that
    // was never issued), the client must still tear the transport down
    // on its error path — the peer observes EOF, which is what
    // serve_connections' join-based teardown relies on.
    use apcache_wire::{frame_to_vec, RemoteError, WireMessage, WireResponse};
    let (listener, addr) = listener();
    let server = thread::spawn(move || {
        let mut transport = TcpTransport::accept(&listener).unwrap();
        let _ = transport.recv().unwrap(); // the submitted read
        let bogus: Vec<u8> =
            frame_to_vec::<u64>(999, &WireMessage::Response(WireResponse::ShutdownAck));
        transport.send(&bogus).unwrap();
        // The failed shutdown must close the connection: EOF, not a hang.
        assert_eq!(transport.recv(), Err(WireError::Closed));
    });
    let mut client: RemoteStoreClient<u64, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
    client.submit_read(&0, Constraint::Exact, 0).unwrap();
    let err = client.shutdown().unwrap_err();
    assert!(
        matches!(err, RemoteError::Wire(WireError::UnknownRequestId { id: 999 })),
        "unexpected {err:?}"
    );
    server.join().unwrap();
}
