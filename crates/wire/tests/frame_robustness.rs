//! Decoder robustness: arbitrary and adversarial byte inputs must map
//! onto `WireError` — never a panic, never an unbounded allocation.
//!
//! This is the deterministic, offline half of the defense; the
//! `proptest-tests`-gated suite (`wire_props.rs`) adds randomized
//! round-trip properties on a networked runner.

use apcache_core::policy::ApproxSpec;
use apcache_core::{Interval, Rng};
use apcache_queries::AggregateKind;
use apcache_store::Constraint;
use apcache_wire::{
    decode_message, encode_to_vec, frame_bytes, split_frame, WireError, WireMessage, WireRefresh,
    WireRequest, MAGIC, MAX_FRAME_LEN, VERSION,
};

/// A representative valid frame of every family, used as mutation seed.
fn sample_frames() -> Vec<Vec<u8>> {
    let mut frames = vec![
        encode_to_vec::<String>(&WireMessage::Refresh(WireRefresh {
            key: "k".to_string(),
            spec: ApproxSpec::Constant(Interval::new(1.0, 9.0).unwrap()),
            internal_width: 8.0,
        })),
        encode_to_vec::<String>(&WireMessage::Request(WireRequest::Read {
            key: "sensor/001".into(),
            constraint: Constraint::Relative(0.05),
            now: 12_000,
        })),
        encode_to_vec::<String>(&WireMessage::Request(WireRequest::WriteBatch {
            items: vec![("a".into(), 1.5), ("b".into(), -2.5)],
            now: 99,
        })),
        encode_to_vec::<String>(&WireMessage::Request(WireRequest::Aggregate {
            kind: AggregateKind::Max,
            keys: vec!["x".into(), "y".into(), "z".into()],
            constraint: Constraint::Exact,
            now: 1,
        })),
        encode_to_vec::<String>(&WireMessage::Request(WireRequest::Metrics)),
    ];
    frames.push(encode_to_vec::<String>(&WireMessage::Request(WireRequest::Shutdown)));
    frames
}

#[test]
fn every_truncation_of_every_valid_frame_errors_cleanly() {
    for frame in sample_frames() {
        for cut in 0..frame.len() {
            let res = decode_message::<String>(&frame[..cut]);
            assert!(
                res.is_err(),
                "decoding a {cut}-byte prefix of a {}-byte frame succeeded",
                frame.len()
            );
        }
        // The full frame still decodes (the suite is cutting valid data).
        assert!(decode_message::<String>(&frame).is_ok());
    }
}

#[test]
fn trailing_garbage_is_flagged_with_its_size() {
    for frame in sample_frames() {
        for extra in [1usize, 7, 64] {
            let mut noisy = frame.clone();
            noisy.extend(std::iter::repeat(0xEE).take(extra));
            assert_eq!(
                decode_message::<String>(&noisy),
                Err(WireError::TrailingBytes { count: extra })
            );
        }
    }
}

#[test]
fn every_single_byte_flip_decodes_or_errors_but_never_panics() {
    for frame in sample_frames() {
        for pos in 0..frame.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = frame.clone();
                mutated[pos] ^= flip;
                // Either outcome is fine; what is being tested is that
                // this call returns at all (no panic, no abort, no hang).
                let _ = decode_message::<String>(&mutated);
            }
        }
    }
}

#[test]
fn random_byte_blobs_never_panic_the_decoder() {
    let mut rng = Rng::seed_from_u64(0xF0_2001);
    for _ in 0..20_000 {
        let len = rng.below(256) as usize;
        let blob: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = decode_message::<String>(&blob);
        let _ = decode_message::<u64>(&blob);
        let _ = split_frame(&blob);
    }
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    for len in [u64::from(MAX_FRAME_LEN) + 1, u64::from(u32::MAX)] {
        let mut buf = (len as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        match split_frame(&buf) {
            Err(WireError::FrameTooLarge { len: got, max }) => {
                assert_eq!(got, len);
                assert_eq!(max, u64::from(MAX_FRAME_LEN));
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}

/// A v2+ frame header: magic ∥ version ∥ tag ∥ request-id (0).
fn header(tag: u8) -> Vec<u8> {
    let mut body = vec![MAGIC, VERSION, tag];
    body.extend_from_slice(&0u64.to_le_bytes());
    body
}

#[test]
fn unknown_tags_identify_their_context() {
    // Unknown message tag (rejected before the request-id field).
    let body = vec![MAGIC, VERSION, 0x7F];
    assert_eq!(
        decode_message::<String>(&body),
        Err(WireError::UnknownTag { context: "message", tag: 0x7F })
    );
    // Unknown verb inside a request frame.
    let mut body = header(3);
    body.push(0x7F);
    assert_eq!(
        decode_message::<String>(&body),
        Err(WireError::UnknownTag { context: "request verb", tag: 0x7F })
    );
    // Unknown constraint tag inside a Read.
    let mut body = header(3);
    body.push(1); // Read
    body.extend_from_slice(&1u32.to_le_bytes());
    body.push(b'k');
    body.push(0x7F); // constraint tag
    assert_eq!(
        decode_message::<String>(&body),
        Err(WireError::UnknownTag { context: "constraint", tag: 0x7F })
    );
}

#[test]
fn forged_sequence_counts_cannot_balloon_memory() {
    // An Aggregate frame claiming u32::MAX keys with a near-empty body:
    // the count check runs against remaining bytes before any Vec is
    // sized, so this must fail as Truncated (and return promptly).
    let mut body = header(3);
    body.extend_from_slice(&[4, 0]); // aggregate / Sum
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(decode_message::<String>(&body), Err(WireError::Truncated { .. })));
}

#[test]
fn nan_and_inverted_intervals_cannot_cross_the_wire() {
    // Exercised at every decodable version: the v1 layout (no request-id
    // field) must stay rejected-or-accepted exactly like v2/v3.
    let make = |version: u8, lo: f64, hi: f64| {
        let mut body = vec![MAGIC, version, 1]; // Refresh
        if version >= 2 {
            body.extend_from_slice(&0u64.to_le_bytes()); // request id
        }
        body.extend_from_slice(&1u32.to_le_bytes()); // key: "k"
        body.push(b'k');
        body.push(0); // ApproxSpec::Constant
        body.extend_from_slice(&lo.to_bits().to_le_bytes());
        body.extend_from_slice(&hi.to_bits().to_le_bytes());
        body.extend_from_slice(&4.0f64.to_bits().to_le_bytes()); // width
        body
    };
    for version in [1u8, 2, VERSION] {
        assert!(matches!(
            decode_message::<String>(&make(version, f64::NAN, 1.0)),
            Err(WireError::InvalidPayload(_))
        ));
        assert!(matches!(
            decode_message::<String>(&make(version, 2.0, 1.0)),
            Err(WireError::InvalidPayload(_))
        ));
        // ±∞ bounds are legal protocol values, not attacks.
        assert!(decode_message::<String>(&make(version, f64::NEG_INFINITY, f64::INFINITY)).is_ok());
    }
}

#[test]
fn framing_and_body_layers_compose() {
    let body = encode_to_vec::<String>(&WireMessage::Request(WireRequest::Metrics));
    let framed = frame_bytes(&body).unwrap();
    let (payload, consumed) = split_frame(&framed).unwrap();
    assert_eq!(consumed, framed.len());
    assert_eq!(
        decode_message::<String>(payload).unwrap(),
        WireMessage::Request(WireRequest::Metrics)
    );
}
