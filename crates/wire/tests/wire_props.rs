//! Property-based round-trip suite: `decode(encode(x)) == x` for
//! arbitrary protocol values, including ±∞ interval bounds and NaN
//! payloads in fields that permit them.
//!
//! Gated behind `proptest-tests` (the offline build environment cannot
//! fetch `proptest`); the networked CI runner injects the dev-dependency
//! and runs `cargo test -p apcache-wire --features proptest-tests`.

use proptest::prelude::*;

use apcache_core::policy::ApproxSpec;
use apcache_core::Interval;
use apcache_push::{PushEvent, PushFilter, PushReason};
use apcache_queries::AggregateKind;
use apcache_store::{Answer, Constraint, KeyMetrics, ReadResult, StoreMetrics, WriteOutcome};
use apcache_wire::{
    decode_message, encode_to_vec, FaultKind, WireExact, WireFault, WireMessage, WireRefresh,
    WireRequest, WireResponse,
};

/// Any f64 bound except NaN (interval constructors reject NaN).
fn bound() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => -1e300..1e300f64,
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(-0.0f64),
        1 => Just(5e-324f64),
    ]
}

/// Any finite value, plus NaN where the protocol carries raw bits.
fn raw_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        6 => -1e300..1e300f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(-0.0f64),
    ]
}

fn interval() -> impl Strategy<Value = Interval> {
    (bound(), bound()).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Interval::new(lo, hi).expect("ordered non-NaN bounds are a valid interval")
    })
}

fn spec() -> impl Strategy<Value = ApproxSpec> {
    prop_oneof![
        interval().prop_map(ApproxSpec::Constant),
        (-1e12..1e12f64, 0.0..1e9f64, 0.0..1e6f64, 0.1..3.0f64, any::<u64>()).prop_map(
            |(center, base_width, coeff, exponent, t0)| ApproxSpec::Growing {
                center,
                base_width,
                coeff,
                exponent,
                t0,
            }
        ),
        (-1e12..1e12f64, 0.0..1e9f64, -1e6..1e6f64, any::<u64>()).prop_map(
            |(lo0, width, rate_per_sec, t0)| ApproxSpec::Drifting {
                lo0,
                hi0: lo0 + width,
                rate_per_sec,
                t0,
            }
        ),
    ]
}

fn refresh() -> impl Strategy<Value = WireRefresh<String>> {
    (wire_key(), spec(), 0.0..1e12f64).prop_map(|(key, spec, internal_width)| WireRefresh {
        key,
        spec,
        internal_width,
    })
}

fn constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        raw_value().prop_map(Constraint::Absolute),
        raw_value().prop_map(Constraint::Relative),
        Just(Constraint::Exact),
    ]
}

fn filter() -> impl Strategy<Value = PushFilter> {
    prop_oneof![Just(PushFilter::Always), constraint().prop_map(PushFilter::Violates)]
}

fn reason() -> impl Strategy<Value = PushReason> {
    prop_oneof![Just(PushReason::Changed), Just(PushReason::LeaseExpired)]
}

fn kind() -> impl Strategy<Value = AggregateKind> {
    prop_oneof![
        Just(AggregateKind::Sum),
        Just(AggregateKind::Max),
        Just(AggregateKind::Min),
        Just(AggregateKind::Avg),
    ]
}

fn wire_key() -> impl Strategy<Value = String> {
    // Arbitrary UTF-8, including empty and multibyte.
    ".{0,24}"
}

fn key_metrics() -> impl Strategy<Value = KeyMetrics> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0.0..1e12f64,
        0.0..1e12f64,
    )
        .prop_map(|(reads, cache_hits, writes, vr_count, qr_count, vr_cost, qr_cost)| {
            KeyMetrics { reads, cache_hits, writes, vr_count, qr_count, vr_cost, qr_cost }
        })
}

fn store_metrics() -> impl Strategy<Value = StoreMetrics<String>> {
    (key_metrics(), prop::collection::btree_map(wire_key(), key_metrics(), 0..8))
        .prop_map(|(totals, per_key)| StoreMetrics::from_parts(totals, per_key))
}

fn request() -> impl Strategy<Value = WireRequest<String>> {
    prop_oneof![
        (wire_key(), constraint(), any::<u64>())
            .prop_map(|(key, constraint, now)| WireRequest::Read { key, constraint, now }),
        (wire_key(), raw_value(), any::<u64>()).prop_map(|(key, value, now)| WireRequest::Write {
            key,
            value,
            now
        }),
        (prop::collection::vec((wire_key(), raw_value()), 0..16), any::<u64>())
            .prop_map(|(items, now)| WireRequest::WriteBatch { items, now }),
        (kind(), prop::collection::vec(wire_key(), 0..16), constraint(), any::<u64>()).prop_map(
            |(kind, keys, constraint, now)| WireRequest::Aggregate { kind, keys, constraint, now }
        ),
        Just(WireRequest::Metrics),
        (wire_key(), filter(), any::<u64>())
            .prop_map(|(key, filter, now)| WireRequest::Subscribe { key, filter, now }),
        any::<u64>().prop_map(|sub| WireRequest::Unsubscribe { sub }),
        Just(WireRequest::Shutdown),
    ]
}

fn fault() -> impl Strategy<Value = WireFault> {
    (
        prop_oneof![
            Just(FaultKind::UnknownKey),
            Just(FaultKind::DuplicateKey),
            Just(FaultKind::InvalidConstraint),
            Just(FaultKind::Config),
            Just(FaultKind::Param),
            Just(FaultKind::Protocol),
            Just(FaultKind::Query),
            Just(FaultKind::Closed),
            Just(FaultKind::ActorGone),
            Just(FaultKind::Unsupported),
        ],
        ".{0,48}",
    )
        .prop_map(|(kind, detail)| WireFault { kind, detail })
}

fn response() -> impl Strategy<Value = WireResponse<String>> {
    prop_oneof![
        (interval(), any::<bool>()).prop_map(|(iv, refreshed)| WireResponse::Read(ReadResult {
            answer: Answer::Interval(iv),
            refreshed,
        })),
        (-1e300..1e300f64, any::<bool>()).prop_map(|(v, refreshed)| WireResponse::Read(
            ReadResult { answer: Answer::Exact(v), refreshed }
        )),
        (0usize..1_000_000).prop_map(|refreshes| WireResponse::Write(WriteOutcome { refreshes })),
        (interval(), prop::collection::vec(wire_key(), 0..16))
            .prop_map(|(answer, refreshed)| WireResponse::Aggregate { answer, refreshed }),
        store_metrics().prop_map(WireResponse::Metrics),
        Just(WireResponse::ShutdownAck),
        interval().prop_map(|interval| WireResponse::Subscribed { interval }),
        any::<bool>().prop_map(|existed| WireResponse::Unsubscribed { existed }),
        fault().prop_map(WireResponse::Error),
    ]
}

fn push() -> impl Strategy<Value = PushEvent<String>> {
    (wire_key(), interval(), reason(), any::<u64>())
        .prop_map(|(key, interval, reason, now)| PushEvent { key, interval, reason, now })
}

fn message() -> impl Strategy<Value = WireMessage<String>> {
    prop_oneof![
        refresh().prop_map(WireMessage::Refresh),
        (raw_value(), refresh())
            .prop_map(|(value, refresh)| WireMessage::Exact(WireExact { value, refresh })),
        request().prop_map(WireMessage::Request),
        response().prop_map(WireMessage::Response),
        push().prop_map(WireMessage::Push),
    ]
}

/// Structural equality that treats NaN payload fields as equal when their
/// bit patterns match — `PartialEq` on f64 makes `NaN != NaN`, but the
/// wire contract is *bit* fidelity.
fn bits_equal(a: &WireMessage<String>, b: &WireMessage<String>) -> bool {
    // Canonical encoding: equal bytes ⇔ equal bits in every field.
    encode_to_vec(a) == encode_to_vec(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn round_trip_is_identity(msg in message()) {
        let body = encode_to_vec(&msg);
        let back: WireMessage<String> = decode_message(&body).expect("own encoding decodes");
        prop_assert!(bits_equal(&back, &msg), "round trip changed bits: {msg:?} -> {back:?}");
        // Re-encoding is byte-identical (canonical form).
        prop_assert_eq!(encode_to_vec(&back), body);
    }

    #[test]
    fn decoder_never_panics_on_random_bytes(blob in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_message::<String>(&blob);
        let _ = decode_message::<u64>(&blob);
    }

    #[test]
    fn decoder_never_panics_on_mutated_frames(
        msg in message(),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut body = encode_to_vec(&msg);
        if !body.is_empty() {
            let i = pos.index(body.len());
            body[i] ^= flip;
            let _ = decode_message::<String>(&body);
        }
    }
}
