//! End-to-end coverage of the v3 lease verbs and migration surface:
//! leases granted/expired over a pipelined connection, v2 peers refused
//! with a stable fault, migration frames served by the sequential and
//! pipelined servers, a remote server living as one shard of a mixed
//! in-process/remote ring with keys migrating both directions over TCP,
//! and the pooled client's drain surviving a member dying mid-drain.

use std::net::TcpListener;
use std::thread;

use apcache_core::Interval;
use apcache_push::{FallbackWidth, LeaseConfig, PushFilter};
use apcache_runtime::Runtime;
use apcache_shard::{ShardBackend, ShardRouter, ShardedStore, ShardedStoreBuilder};
use apcache_store::{Constraint, InitialWidth, StoreBuilder};
use apcache_wire::{
    decode_frame, loopback, serve_pipelined, versioned_to_vec, ClientPool, FaultKind, RemoteError,
    RemoteStoreClient, ServerExit, StoreServer, TcpTransport, Transport, WireFault, WireMessage,
    WireRequest, WireResponse, VERSION_V2,
};

fn fleet(keys: &[(u64, f64)]) -> Runtime<u64> {
    let mut b = ShardedStoreBuilder::new().shards(2).initial_width(InitialWidth::Fixed(10.0));
    for &(k, v) in keys {
        b = b.source(k, v);
    }
    Runtime::launch(b.build().unwrap()).unwrap()
}

#[test]
fn lease_verbs_serve_over_a_pipelined_connection() {
    let runtime = fleet(&[(1, 100.0), (2, 200.0)]);
    let handle = runtime.handle();
    let (server_t, client_t) = loopback();
    let server = thread::spawn(move || serve_pipelined(server_t, handle).unwrap());
    let mut client: RemoteStoreClient<u64, _> = RemoteStoreClient::new(client_t);

    let cfg = LeaseConfig { ttl_ms: 1_000, fallback: FallbackWidth::Fixed(50.0) };
    assert!(client.lease(&1, cfg, 0).unwrap());
    // Within the TTL the lease is live and nothing expires.
    let report = client.advance_time(500).unwrap();
    assert_eq!((report.leases, report.expired), (1, 0));
    // Releasing reports whether a lease existed — once, then not.
    assert!(client.release_lease(&1, 600).unwrap());
    assert!(!client.release_lease(&1, 700).unwrap());
    // Re-grant, then let it lapse: exactly one expiry in the report.
    assert!(client.lease(&2, cfg, 1_000).unwrap());
    let report = client.advance_time(3_000).unwrap();
    assert_eq!(report.expired, 1);
    // Lease faults ride the wire like any other answer: unknown key.
    let err = client.lease(&99, cfg, 0).unwrap_err();
    assert_eq!(err.fault_kind(), Some(FaultKind::UnknownKey));

    client.shutdown().unwrap();
    assert_eq!(server.join().unwrap(), ServerExit::Shutdown);
    runtime.shutdown().unwrap();
}

#[test]
fn v2_peers_get_a_stable_fault_for_every_v3_verb() {
    let runtime = fleet(&[(1, 100.0)]);
    let handle = runtime.handle();
    let (server_t, mut client_t) = loopback();
    let server = thread::spawn(move || serve_pipelined(server_t, handle).unwrap());

    let cfg = LeaseConfig { ttl_ms: 1_000, fallback: FallbackWidth::Unbounded };
    let v3_only: Vec<WireRequest<u64>> = vec![
        WireRequest::Lease { key: 1, cfg, now: 0 },
        WireRequest::ReleaseLease { key: 1, now: 0 },
        WireRequest::AdvanceTime { now: 10 },
        WireRequest::KeyList,
        WireRequest::ExportKeys { keys: vec![1] },
        WireRequest::ImportKeys { states: Vec::new() },
    ];
    for (i, request) in v3_only.into_iter().enumerate() {
        let id = 100 + i as u64;
        client_t.send(&versioned_to_vec(VERSION_V2, id, &WireMessage::Request(request))).unwrap();
        let frame = decode_frame::<u64>(&client_t.recv().unwrap()).unwrap();
        // The fault echoes the peer's own version and id, so a v2
        // decoder can always read its refusal.
        assert_eq!((frame.request_id, frame.version), (id, VERSION_V2));
        assert!(
            matches!(
                frame.msg,
                WireMessage::Response(WireResponse::Error(WireFault {
                    kind: FaultKind::Unsupported,
                    ..
                }))
            ),
            "verb #{i} must be refused for v2 peers"
        );
    }
    drop(client_t);
    assert_eq!(server.join().unwrap(), ServerExit::Disconnected);
    runtime.shutdown().unwrap();
}

#[test]
fn sequential_server_serves_migration_verbs_and_defaults_leases_to_unsupported() {
    let (mut server_t, client_t) = loopback();
    let server = thread::spawn(move || {
        let store = StoreBuilder::new()
            .initial_width(InitialWidth::Fixed(10.0))
            .source("a".to_string(), 100.0)
            .source("b".to_string(), 200.0)
            .build()
            .unwrap();
        let mut server = StoreServer::new(store);
        let exit = server.serve::<String, _>(&mut server_t).unwrap();
        (exit, server.into_service())
    });
    let mut client: RemoteStoreClient<String, _> = RemoteStoreClient::new(client_t);

    // A plain store has no lease table: stable Unsupported, not a hang.
    let cfg = LeaseConfig { ttl_ms: 1_000, fallback: FallbackWidth::Unbounded };
    let err = client.lease(&"a".to_string(), cfg, 0).unwrap_err();
    assert_eq!(err.fault_kind(), Some(FaultKind::Unsupported));

    // The migration trio works in registration order, atomically.
    assert_eq!(client.key_list().unwrap(), vec!["a".to_string(), "b".to_string()]);
    let err = client.export_keys(&["a".to_string(), "zzz".to_string()]).unwrap_err();
    assert_eq!(err.fault_kind(), Some(FaultKind::UnknownKey));
    // The failed export detached nothing: "a" still answers.
    assert!(client.read(&"a".to_string(), Constraint::Exact, 0).is_ok());
    let before = client.read(&"a".to_string(), Constraint::Absolute(1e9), 0).unwrap();
    let states = client.export_keys(&["a".to_string()]).unwrap();
    assert_eq!(states.len(), 1);
    assert_eq!(states[0].key, "a");
    assert_eq!(states[0].value, 100.0);
    // Detached means gone until imported back.
    let err = client.read(&"a".to_string(), Constraint::Exact, 0).unwrap_err();
    assert_eq!(err.fault_kind(), Some(FaultKind::UnknownKey));
    client.import_keys(states).unwrap();
    let after = client.read(&"a".to_string(), Constraint::Absolute(1e9), 0).unwrap();
    // The adapted interval — bounds and width — survives the round trip
    // through the wire codec bit-for-bit.
    assert_eq!(after.answer, before.answer);

    client.shutdown().unwrap();
    let (exit, _store) = server.join().unwrap();
    assert_eq!(exit, ServerExit::Shutdown);
}

#[test]
fn remote_server_is_one_shard_of_a_mixed_ring_and_keys_migrate_both_ways_over_tcp() {
    // A live runtime across TCP becomes a shard of an outer ring whose
    // other shard is a plain in-process store. Growing the ring migrates
    // resident keys over the wire (ExportKeys out of the local store,
    // ImportKeys into the runtime); shrinking it migrates them back.
    // Values and widths survive both hops bit-for-bit.
    let runtime = fleet(&[(1_000, 9_999.0)]); // sentinel outside the ring's population
    let handle = runtime.handle();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        let transport = TcpTransport::accept(&listener).unwrap();
        serve_pipelined(transport, handle).unwrap()
    });

    let mut local = StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0));
    let mut reference = StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0));
    for k in 0..12u64 {
        local = local.source(k, 100.0 * k as f64);
        reference = reference.source(k, 100.0 * k as f64);
    }
    // The never-resharded twin: the ring must answer bit-identically to
    // it at every stage, whichever side of the wire a key lives on.
    let mut reference = reference.build().unwrap();
    let router = ShardRouter::new(1, 64).unwrap();
    let mut outer: ShardedStore<u64, Box<dyn ShardBackend<u64> + Send>> =
        ShardedStore::from_routed_parts(
            router,
            vec![(0, Box::new(local.build().unwrap()) as Box<dyn ShardBackend<u64> + Send>)],
        )
        .unwrap();

    // A width-adapting write before the reshard: the adapted state must
    // survive migration, not just the seeded value.
    let w = outer.write(&3, 12_345.0, 100).unwrap();
    assert!(w.escaped());
    reference.write(&3, 12_345.0, 100).unwrap();

    let remote: RemoteStoreClient<u64, _> =
        RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
    let remote_id = outer.add_shard_backend(Box::new(remote)).unwrap();
    let moved: Vec<u64> = (0..12u64).filter(|k| outer.router().route(k) == remote_id).collect();
    assert!(!moved.is_empty(), "growing the ring must remap some keys to the remote shard");

    // Every key answers through the outer ring — the moved ones now
    // travel the wire — bit-identically to the unresharded twin.
    for k in 0..12u64 {
        let r = outer.read(&k, Constraint::Absolute(1e9), 200).unwrap();
        let expect = reference.read(&k, Constraint::Absolute(1e9), 200).unwrap();
        assert_eq!(r.answer, expect.answer, "key {k} post-grow");
    }

    // Shrink: a departing shard is drained of *every* resident — the
    // migrated ring keys and the runtime's own sentinel alike all cross
    // back over the wire into the remaining local shard.
    let mut remote = outer.remove_shard(remote_id).unwrap();
    assert_eq!(remote.key_list().unwrap(), Vec::<u64>::new(), "the departing shard is empty");
    let adopted = outer.read(&1_000, Constraint::Absolute(1e9), 250).unwrap();
    assert!(adopted.answer.contains(9_999.0), "the sentinel now answers locally");
    for k in 0..12u64 {
        let r = outer.read(&k, Constraint::Absolute(1e9), 300).unwrap();
        let expect = reference.read(&k, Constraint::Absolute(1e9), 300).unwrap();
        assert_eq!(r.answer, expect.answer, "key {k} post-shrink");
    }

    // Dropping the remote client hangs up; the server sees a clean EOF.
    drop(remote);
    assert_eq!(server.join().unwrap(), ServerExit::Disconnected);
    runtime.shutdown().unwrap();
}

#[test]
fn pool_drain_survives_a_member_dying_mid_drain_over_tcp() {
    // Member 0's peer acks a subscription, then vanishes. Member 1 is a
    // real pipelined server. The pool-wide drain must still cancel
    // member 1's subscription and get its Shutdown acknowledged, then
    // report member 0's failure.
    let dead_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = dead_listener.local_addr().unwrap();
    let dead = thread::spawn(move || {
        let mut t = TcpTransport::accept(&dead_listener).unwrap();
        let frame = decode_frame::<u64>(&t.recv().unwrap()).unwrap();
        let WireMessage::Request(WireRequest::Subscribe { .. }) = frame.msg else {
            panic!("expected the pool's Subscribe first");
        };
        t.send(&versioned_to_vec::<u64>(
            frame.version,
            frame.request_id,
            &WireMessage::Response(WireResponse::Subscribed {
                interval: Interval::point(1.0).unwrap(),
            }),
        ))
        .unwrap();
        // Dropping the transport here kills the socket with the
        // subscription still live: the pool's drain dies mid-unsubscribe.
    });

    let runtime = fleet(&[(7, 700.0)]);
    let handle = runtime.handle();
    let healthy_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let healthy_addr = healthy_listener.local_addr().unwrap();
    let healthy = thread::spawn(move || {
        let transport = TcpTransport::accept(&healthy_listener).unwrap();
        serve_pipelined(transport, handle).unwrap()
    });

    let pool: ClientPool<u64, _> = ClientPool::new(vec![
        TcpTransport::connect(dead_addr).unwrap(),
        TcpTransport::connect(healthy_addr).unwrap(),
    ]);
    let c0 = pool.logical(0);
    let c1 = pool.logical(1);
    let (_sub0, snap0) = c0.subscribe(&0, PushFilter::Always, 0).unwrap();
    assert!(snap0.contains(1.0));
    let (_sub1, snap1) = c1.subscribe(&7, PushFilter::Always, 0).unwrap();
    assert!(snap1.contains(700.0));
    dead.join().unwrap();

    let err = pool.shutdown().unwrap_err();
    assert!(matches!(err, RemoteError::Wire(_)), "member 0 must report its dead peer: {err:?}");
    // The healthy member was fully drained: its server exited through a
    // Shutdown ack, not an EOF.
    assert_eq!(healthy.join().unwrap(), ServerExit::Shutdown);
    runtime.shutdown().unwrap();
}
