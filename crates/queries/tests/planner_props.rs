//! Property-based tests for the bounded aggregate planner:
//! * answers always contain the true aggregate and meet the constraint;
//! * the SUM refresh set is minimal (checked against brute force);
//! * AVG is consistent with SUM.

use proptest::prelude::*;
use std::collections::HashMap;

use apcache_core::{Interval, Key};
use apcache_queries::{evaluate, sum_refresh_set, AggregateKind, ItemBound, PrecisionConstraint};

/// An item: (lo, width, fraction-of-width locating the true exact value).
fn item_strategy() -> impl Strategy<Value = (f64, f64, f64)> {
    (-1e6..1e6f64, 0.0..1e4f64, 0.0..=1.0f64)
}

fn build(items: &[(f64, f64, f64)]) -> (Vec<ItemBound>, HashMap<Key, f64>) {
    let mut bounds = Vec::new();
    let mut truth = HashMap::new();
    for (i, &(lo, w, frac)) in items.iter().enumerate() {
        let key = Key(i as u32);
        bounds.push(ItemBound::new(key, Interval::new(lo, lo + w).expect("valid")));
        truth.insert(key, lo + frac * w);
    }
    (bounds, truth)
}

fn true_aggregate(kind: AggregateKind, truth: &HashMap<Key, f64>, n: usize) -> f64 {
    let vals: Vec<f64> = (0..n).map(|i| truth[&Key(i as u32)]).collect();
    match kind {
        AggregateKind::Sum => vals.iter().sum(),
        AggregateKind::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggregateKind::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
        AggregateKind::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
    }
}

proptest! {
    #[test]
    fn answers_contain_truth_and_meet_constraint(
        items in proptest::collection::vec(item_strategy(), 1..12),
        delta in 0.0..1e4f64,
        kind_idx in 0usize..4,
    ) {
        let kind = [
            AggregateKind::Sum,
            AggregateKind::Max,
            AggregateKind::Min,
            AggregateKind::Avg,
        ][kind_idx];
        let (bounds, truth) = build(&items);
        let constraint = PrecisionConstraint::new(delta).unwrap();
        let out = evaluate(kind, constraint, &bounds, |k| truth[&k]).unwrap();
        let expected = true_aggregate(kind, &truth, items.len());
        // Slack for accumulated floating error over sums of ~1e6 values.
        let slack = 1e-6 * (1.0 + expected.abs());
        prop_assert!(
            out.answer.lo() <= expected + slack && expected - slack <= out.answer.hi(),
            "{kind}: answer {} misses truth {expected}",
            out.answer
        );
        prop_assert!(
            out.answer.width() <= delta + 1e-6 * (1.0 + delta),
            "{kind}: width {} exceeds delta {delta}",
            out.answer.width()
        );
        // No duplicate refreshes.
        let mut seen = out.refreshed.clone();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), out.refreshed.len());
    }

    #[test]
    fn sum_refresh_set_is_minimal(
        widths in proptest::collection::vec(0.0..100.0f64, 1..10),
        delta in 0.0..300.0f64,
    ) {
        let bounds: Vec<ItemBound> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| ItemBound::new(Key(i as u32), Interval::new(0.0, w).unwrap()))
            .collect();
        let chosen = sum_refresh_set(&bounds, delta).unwrap();
        // Validity: the residual meets delta.
        let residual: f64 = bounds
            .iter()
            .filter(|b| !chosen.contains(&b.key))
            .map(|b| b.interval.width())
            .sum();
        prop_assert!(residual <= delta + 1e-9);
        // Minimality via brute force over all subsets.
        let n = bounds.len();
        let mut best = usize::MAX;
        for mask in 0..(1u32 << n) {
            let r: f64 = (0..n)
                .filter(|&i| mask & (1 << i) == 0)
                .map(|i| widths[i])
                .sum();
            if r <= delta {
                best = best.min(mask.count_ones() as usize);
            }
        }
        prop_assert_eq!(chosen.len(), best);
    }

    #[test]
    fn avg_is_sum_scaled(
        items in proptest::collection::vec(item_strategy(), 1..8),
        delta in 0.0..1e3f64,
    ) {
        let (bounds, truth) = build(&items);
        let n = items.len() as f64;
        let avg = evaluate(
            AggregateKind::Avg,
            PrecisionConstraint::new(delta).unwrap(),
            &bounds,
            |k| truth[&k],
        )
        .unwrap();
        let sum = evaluate(
            AggregateKind::Sum,
            PrecisionConstraint::new(delta * n).unwrap(),
            &bounds,
            |k| truth[&k],
        )
        .unwrap();
        // Same refresh decisions, scaled answers.
        prop_assert_eq!(&avg.refreshed, &sum.refreshed);
        prop_assert!((avg.answer.lo() - sum.answer.lo() / n).abs() < 1e-6 * (1.0 + sum.answer.lo().abs()));
        prop_assert!((avg.answer.hi() - sum.answer.hi() / n).abs() < 1e-6 * (1.0 + sum.answer.hi().abs()));
    }

    #[test]
    fn max_never_fetches_dominated_items(
        items in proptest::collection::vec(item_strategy(), 2..10),
    ) {
        let (bounds, truth) = build(&items);
        // Find the globally best lower bound.
        let best_lo = bounds.iter().map(|b| b.interval.lo()).fold(f64::NEG_INFINITY, f64::max);
        let out = evaluate(
            AggregateKind::Max,
            PrecisionConstraint::exact(),
            &bounds,
            |k| truth[&k],
        )
        .unwrap();
        // Any item whose hi is strictly below best_lo can never be fetched.
        for b in &bounds {
            if b.interval.hi() < best_lo {
                prop_assert!(
                    !out.refreshed.contains(&b.key),
                    "dominated item {} was fetched",
                    b.key
                );
            }
        }
        prop_assert!(out.answer.is_exact());
    }
}
