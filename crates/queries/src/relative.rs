//! Relative precision constraints.
//!
//! The paper's queries carry *absolute* constraints; footnote 1 notes that
//! converting **relative** constraints ("the answer to within 1 %") to
//! absolute ones is discussed in OW00/YV00 and left as future work. This
//! module implements the standard conservative conversion: a result
//! interval `[lo, hi]` certifies a relative error bound of
//! `width / min|x|` over `x ∈ [lo, hi]`, so the engine refreshes until
//!
//! ```text
//! width <= frac · mag([lo, hi]),   mag = 0 if the interval straddles 0,
//!                                  min(|lo|, |hi|) otherwise.
//! ```
//!
//! Straddling zero forces an exact answer — with a magnitude of
//! (potentially) zero inside the interval, no finite relative error can be
//! certified, the classical degeneracy of relative bounds.

use apcache_core::{Interval, Key};

use crate::aggregate::{answer_interval, AggregateKind};
use crate::error::QueryError;
use crate::planner::{ItemBound, QueryOutcome};

/// The conservative magnitude of an answer interval: the smallest `|x|`
/// over `x` in the interval.
pub fn interval_magnitude(iv: &Interval) -> f64 {
    if iv.contains(0.0) {
        0.0
    } else {
        iv.lo().abs().min(iv.hi().abs())
    }
}

/// Whether `iv` certifies relative precision `frac`.
pub fn satisfies_relative(iv: &Interval, frac: f64) -> bool {
    iv.width() <= frac * interval_magnitude(iv)
}

/// Evaluate an aggregate under a relative precision constraint
/// `frac >= 0`: on success the answer interval `[lo, hi]` guarantees
/// `width <= frac · min|x|` for `x ∈ [lo, hi]` — i.e. whatever the true
/// answer is, the relative error of any point estimate from the interval
/// is bounded by `frac`.
///
/// The refresh strategy is iterative: while the certificate fails, fetch
/// the widest remaining item (SUM/AVG) or the extremal-bound candidate
/// (MAX/MIN), exactly as the absolute planner does.
pub fn evaluate_relative(
    kind: AggregateKind,
    frac: f64,
    items: &[ItemBound],
    mut fetch: impl FnMut(Key) -> f64,
) -> Result<QueryOutcome, QueryError> {
    if frac.is_nan() || frac < 0.0 {
        return Err(QueryError::InvalidConstraint(frac));
    }
    if items.is_empty() && kind != AggregateKind::Sum {
        return Err(QueryError::EmptyInput);
    }
    let mut working: Vec<ItemBound> = items.to_vec();
    let mut fetched = vec![false; items.len()];
    let mut refreshed = Vec::new();
    loop {
        let answer = answer_interval(kind, &working)?;
        if satisfies_relative(&answer, frac) {
            return Ok(QueryOutcome { answer, refreshed });
        }
        // Pick the next victim by the kind's usual rule.
        let victim = match kind {
            AggregateKind::Sum | AggregateKind::Avg => {
                (0..working.len()).filter(|&i| !fetched[i]).max_by(|&a, &b| {
                    working[a]
                        .interval
                        .width()
                        .total_cmp(&working[b].interval.width())
                        .then_with(|| working[b].key.cmp(&working[a].key))
                })
            }
            AggregateKind::Max => (0..working.len()).filter(|&i| !fetched[i]).max_by(|&a, &b| {
                working[a]
                    .interval
                    .hi()
                    .total_cmp(&working[b].interval.hi())
                    .then_with(|| working[b].key.cmp(&working[a].key))
            }),
            AggregateKind::Min => (0..working.len()).filter(|&i| !fetched[i]).max_by(|&a, &b| {
                (-working[a].interval.lo())
                    .total_cmp(&(-working[b].interval.lo()))
                    .then_with(|| working[b].key.cmp(&working[a].key))
            }),
        };
        let Some(idx) = victim else {
            // Everything is exact; the certificate can only still fail for
            // a point answer straddling... a point never straddles unless
            // it IS zero with frac unable to certify — width 0 satisfies
            // any frac (0 <= frac·mag). So this is unreachable; return the
            // exact answer defensively.
            let answer = answer_interval(kind, &working)?;
            return Ok(QueryOutcome { answer, refreshed });
        };
        let key = working[idx].key;
        let value = fetch(key);
        if !value.is_finite() {
            return Err(QueryError::NonFiniteFetch { key, value });
        }
        working[idx].interval = Interval::point(value).expect("finite value");
        fetched[idx] = true;
        refreshed.push(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn item(key: u32, lo: f64, hi: f64) -> ItemBound {
        ItemBound::new(Key(key), Interval::new(lo, hi).unwrap())
    }

    fn fetcher(vals: &HashMap<Key, f64>) -> impl FnMut(Key) -> f64 + '_ {
        move |k| vals[&k]
    }

    #[test]
    fn magnitude_semantics() {
        assert_eq!(interval_magnitude(&Interval::new(5.0, 10.0).unwrap()), 5.0);
        assert_eq!(interval_magnitude(&Interval::new(-10.0, -4.0).unwrap()), 4.0);
        assert_eq!(interval_magnitude(&Interval::new(-1.0, 2.0).unwrap()), 0.0);
        assert_eq!(interval_magnitude(&Interval::new(0.0, 3.0).unwrap()), 0.0);
    }

    #[test]
    fn validation() {
        let vals = HashMap::new();
        assert!(evaluate_relative(AggregateKind::Sum, -0.1, &[], fetcher(&vals)).is_err());
        assert!(evaluate_relative(AggregateKind::Sum, f64::NAN, &[], fetcher(&vals)).is_err());
        assert!(evaluate_relative(AggregateKind::Max, 0.1, &[], fetcher(&vals)).is_err());
    }

    #[test]
    fn loose_relative_constraint_needs_no_fetch() {
        // SUM in [100, 104]: width 4, magnitude 100 → 4 % error certified.
        let items = vec![item(0, 40.0, 42.0), item(1, 60.0, 62.0)];
        let vals = HashMap::new();
        let out = evaluate_relative(AggregateKind::Sum, 0.05, &items, fetcher(&vals)).unwrap();
        assert!(out.refreshed.is_empty());
        assert!(satisfies_relative(&out.answer, 0.05));
    }

    #[test]
    fn tight_relative_constraint_fetches_widest_first() {
        let items = vec![item(0, 40.0, 60.0), item(1, 60.0, 62.0)];
        let vals: HashMap<Key, f64> = [(Key(0), 50.0), (Key(1), 61.0)].into();
        let out = evaluate_relative(AggregateKind::Sum, 0.02, &items, fetcher(&vals)).unwrap();
        assert_eq!(out.refreshed, vec![Key(0)]);
        assert!(satisfies_relative(&out.answer, 0.02));
        assert!(out.answer.contains(111.0));
    }

    #[test]
    fn straddling_zero_forces_exactness() {
        // SUM bound straddles 0 until both values are known.
        let items = vec![item(0, -5.0, 5.0), item(1, -3.0, 3.0)];
        let vals: HashMap<Key, f64> = [(Key(0), 2.0), (Key(1), -1.0)].into();
        let out = evaluate_relative(AggregateKind::Sum, 0.10, &items, fetcher(&vals)).unwrap();
        assert_eq!(out.refreshed.len(), 2);
        assert!(out.answer.is_exact());
        assert_eq!(out.answer.lo(), 1.0);
    }

    #[test]
    fn relative_max_uses_candidate_elimination() {
        // Winner's interval [100, 102] certifies 2 % alone; the wide loser
        // (hi = 50 < lo = 100) is eliminated, not fetched.
        let items = vec![item(0, 100.0, 102.0), item(1, 0.0, 50.0)];
        let vals = HashMap::new();
        let out = evaluate_relative(AggregateKind::Max, 0.02, &items, fetcher(&vals)).unwrap();
        assert!(out.refreshed.is_empty());
        assert_eq!((out.answer.lo(), out.answer.hi()), (100.0, 102.0));
    }

    #[test]
    fn zero_frac_means_exact() {
        let items = vec![item(0, 1.0, 2.0)];
        let vals: HashMap<Key, f64> = [(Key(0), 1.5)].into();
        let out = evaluate_relative(AggregateKind::Sum, 0.0, &items, fetcher(&vals)).unwrap();
        assert!(out.answer.is_exact());
        assert_eq!(out.refreshed, vec![Key(0)]);
    }

    #[test]
    fn certificate_holds_on_random_inputs() {
        let mut rng = apcache_core::Rng::seed_from_u64(77);
        for _ in 0..200 {
            let n = 1 + rng.below(6) as usize;
            let mut items = Vec::new();
            let mut vals = HashMap::new();
            for i in 0..n {
                let lo = rng.uniform(-50.0, 150.0);
                let w = rng.uniform(0.0, 40.0);
                items.push(item(i as u32, lo, lo + w));
                vals.insert(Key(i as u32), lo + rng.f64() * w);
            }
            let frac = rng.uniform(0.0, 0.2);
            for kind in
                [AggregateKind::Sum, AggregateKind::Max, AggregateKind::Min, AggregateKind::Avg]
            {
                let out = evaluate_relative(kind, frac, &items, fetcher(&vals)).unwrap();
                assert!(
                    out.answer.width() <= frac * interval_magnitude(&out.answer) + 1e-9,
                    "{kind}: certificate violated"
                );
            }
        }
    }
}
