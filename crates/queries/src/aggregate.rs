//! Aggregate kinds and interval bound propagation.

use apcache_core::Interval;

use crate::error::QueryError;
use crate::planner::ItemBound;

/// The aggregate functions supported by the engine. SUM and MAX are the
/// query types used throughout the paper's evaluation (Section 4.1); MIN
/// and AVG follow from the same bound algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateKind {
    /// Sum of the exact values.
    Sum,
    /// Maximum of the exact values.
    Max,
    /// Minimum of the exact values.
    Min,
    /// Arithmetic mean of the exact values.
    Avg,
}

impl AggregateKind {
    /// Human-readable name, matching the paper's usage.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateKind::Sum => "SUM",
            AggregateKind::Max => "MAX",
            AggregateKind::Min => "MIN",
            AggregateKind::Avg => "AVG",
        }
    }
}

impl std::fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Compute the interval guaranteed to contain the aggregate of the exact
/// values, given a valid interval per item.
///
/// * SUM: `[Σ lo_i, Σ hi_i]` (empty sum is the point `0`);
/// * MAX: `[max lo_i, max hi_i]`;
/// * MIN: `[min lo_i, min hi_i]`;
/// * AVG: the SUM interval scaled by `1/n`.
///
/// MAX/MIN/AVG over an empty set return [`QueryError::EmptyInput`].
pub fn answer_interval(kind: AggregateKind, items: &[ItemBound]) -> Result<Interval, QueryError> {
    match kind {
        AggregateKind::Sum => {
            let mut acc = Interval::point(0.0).expect("0 is finite");
            for item in items {
                acc = acc.add(&item.interval);
            }
            Ok(acc)
        }
        AggregateKind::Max => {
            let mut iter = items.iter();
            let first = iter.next().ok_or(QueryError::EmptyInput)?;
            Ok(iter.fold(first.interval, |acc, item| acc.max_of(&item.interval)))
        }
        AggregateKind::Min => {
            let mut iter = items.iter();
            let first = iter.next().ok_or(QueryError::EmptyInput)?;
            Ok(iter.fold(first.interval, |acc, item| acc.min_of(&item.interval)))
        }
        AggregateKind::Avg => {
            if items.is_empty() {
                return Err(QueryError::EmptyInput);
            }
            let sum = answer_interval(AggregateKind::Sum, items)?;
            Ok(sum.scale(1.0 / items.len() as f64).expect("1/n is positive and finite for n >= 1"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_core::Key;

    fn item(key: u32, lo: f64, hi: f64) -> ItemBound {
        ItemBound { key: Key(key), interval: Interval::new(lo, hi).unwrap() }
    }

    #[test]
    fn kind_names() {
        assert_eq!(AggregateKind::Sum.to_string(), "SUM");
        assert_eq!(AggregateKind::Max.to_string(), "MAX");
        assert_eq!(AggregateKind::Min.name(), "MIN");
        assert_eq!(AggregateKind::Avg.name(), "AVG");
    }

    #[test]
    fn sum_bounds() {
        let items = vec![item(0, 1.0, 3.0), item(1, 10.0, 14.0), item(2, -2.0, -1.0)];
        let a = answer_interval(AggregateKind::Sum, &items).unwrap();
        assert_eq!((a.lo(), a.hi()), (9.0, 16.0));
        assert_eq!(a.width(), 2.0 + 4.0 + 1.0);
    }

    #[test]
    fn sum_of_empty_is_zero_point() {
        let a = answer_interval(AggregateKind::Sum, &[]).unwrap();
        assert!(a.is_exact());
        assert_eq!(a.lo(), 0.0);
    }

    #[test]
    fn sum_with_unbounded_item_is_unbounded() {
        let items =
            vec![item(0, 1.0, 3.0), ItemBound { key: Key(1), interval: Interval::unbounded() }];
        let a = answer_interval(AggregateKind::Sum, &items).unwrap();
        assert!(a.is_unbounded());
    }

    #[test]
    fn max_bounds() {
        let items = vec![item(0, 0.0, 10.0), item(1, 4.0, 6.0), item(2, -5.0, -1.0)];
        let a = answer_interval(AggregateKind::Max, &items).unwrap();
        assert_eq!((a.lo(), a.hi()), (4.0, 10.0));
    }

    #[test]
    fn min_bounds() {
        let items = vec![item(0, 0.0, 10.0), item(1, 4.0, 6.0), item(2, -5.0, -1.0)];
        let a = answer_interval(AggregateKind::Min, &items).unwrap();
        assert_eq!((a.lo(), a.hi()), (-5.0, -1.0));
    }

    #[test]
    fn avg_bounds() {
        let items = vec![item(0, 0.0, 4.0), item(1, 8.0, 12.0)];
        let a = answer_interval(AggregateKind::Avg, &items).unwrap();
        assert_eq!((a.lo(), a.hi()), (4.0, 8.0));
    }

    #[test]
    fn empty_input_errors() {
        for kind in [AggregateKind::Max, AggregateKind::Min, AggregateKind::Avg] {
            assert_eq!(answer_interval(kind, &[]), Err(QueryError::EmptyInput));
        }
    }

    #[test]
    fn max_width_can_be_less_than_any_item_width() {
        // The candidate-elimination effect: a tight winner collapses the
        // MAX bound even though other items are wide.
        let items = vec![item(0, 100.0, 101.0), item(1, 0.0, 50.0)];
        let a = answer_interval(AggregateKind::Max, &items).unwrap();
        assert_eq!(a.width(), 1.0);
    }
}
