//! # apcache-queries
//!
//! Bounded aggregate queries over interval-approximate caches, in the style
//! of TRAPP (Olston & Widom, VLDB 2000 — cited as \[OW00\] by the SIGMOD
//! 2001 paper this workspace reproduces).
//!
//! A query computes an aggregate (SUM, MAX, MIN, AVG) over a set of cached
//! interval approximations and is accompanied by a *precision constraint*
//! `δ ≥ 0`: the maximum acceptable width of the answer interval. When the
//! cached bounds alone cannot meet the constraint, the engine selects
//! values to fetch exactly from their sources — each fetch is a
//! *query-initiated refresh* — until the constraint is guaranteed:
//!
//! * **SUM** — the answer width is the sum of the item widths, so the
//!   minimal refresh set is the smallest set of widest items whose removal
//!   brings the residual sum under `δ` (provably minimal for uniform
//!   per-fetch cost; verified against brute force in the tests).
//! * **MAX / MIN** — the engine iteratively fetches the item with the
//!   largest upper bound (smallest lower bound for MIN) among those still
//!   *candidates*; items whose upper bound cannot exceed the best known
//!   lower bound are eliminated without being fetched. This is why
//!   approximate caching helps MAX queries even when exact answers are
//!   required (paper, Sections 4.4 and 4.6).
//! * **AVG** — SUM scaled by `1/n`, with the constraint scaled by `n`.
//!
//! The engine is deliberately *cache-agnostic*: it consumes a slice of
//! [`ItemBound`]s and a fetch callback, so the simulator, the baselines,
//! and library users can all drive it.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod error;
pub mod planner;
pub mod relative;

pub use aggregate::{answer_interval, AggregateKind};
pub use error::QueryError;
pub use planner::{evaluate, sum_refresh_set, ItemBound, QueryOutcome};
pub use relative::{evaluate_relative, satisfies_relative};

/// A query precision constraint: the maximum acceptable width of the
/// answer interval (paper, Section 4.1). `0` demands an exact answer;
/// `∞` accepts anything.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct PrecisionConstraint(f64);

impl PrecisionConstraint {
    /// Create a constraint; must be nonnegative (NaN rejected).
    pub fn new(delta: f64) -> Result<Self, QueryError> {
        if delta.is_nan() || delta < 0.0 {
            return Err(QueryError::InvalidConstraint(delta));
        }
        Ok(PrecisionConstraint(delta))
    }

    /// The exact-answer constraint `δ = 0`.
    pub const fn exact() -> Self {
        PrecisionConstraint(0.0)
    }

    /// The anything-goes constraint `δ = ∞`.
    pub const fn unconstrained() -> Self {
        PrecisionConstraint(f64::INFINITY)
    }

    /// The numeric constraint value.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.0
    }

    /// Whether a result interval of width `w` satisfies this constraint.
    #[inline]
    pub fn satisfied_by(&self, w: f64) -> bool {
        w <= self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_validation() {
        assert!(PrecisionConstraint::new(-1.0).is_err());
        assert!(PrecisionConstraint::new(f64::NAN).is_err());
        assert!(PrecisionConstraint::new(0.0).is_ok());
        assert!(PrecisionConstraint::new(f64::INFINITY).is_ok());
    }

    #[test]
    fn constraint_satisfaction() {
        let c = PrecisionConstraint::new(5.0).unwrap();
        assert!(c.satisfied_by(5.0));
        assert!(c.satisfied_by(0.0));
        assert!(!c.satisfied_by(5.1));
        assert!(PrecisionConstraint::exact().satisfied_by(0.0));
        assert!(!PrecisionConstraint::exact().satisfied_by(1e-9));
        assert!(PrecisionConstraint::unconstrained().satisfied_by(f64::INFINITY));
    }
}
