//! Error types for the query engine.

use std::fmt;

/// Errors raised by the bounded aggregate engine.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// MAX/MIN/AVG over an empty item set is undefined.
    EmptyInput,
    /// A precision constraint was negative or NaN.
    InvalidConstraint(f64),
    /// A fetch callback returned a non-finite exact value.
    NonFiniteFetch {
        /// The key whose fetch misbehaved.
        key: apcache_core::Key,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyInput => write!(f, "aggregate over an empty item set is undefined"),
            QueryError::InvalidConstraint(d) => {
                write!(f, "precision constraint must be >= 0 (NaN rejected), got {d}")
            }
            QueryError::NonFiniteFetch { key, value } => {
                write!(f, "fetch for {key} returned non-finite value {value}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(QueryError::EmptyInput.to_string().contains("empty"));
        assert!(QueryError::InvalidConstraint(-2.0).to_string().contains("-2"));
        let e = QueryError::NonFiniteFetch { key: apcache_core::Key(4), value: f64::NAN };
        assert!(e.to_string().contains("k4"));
    }
}
