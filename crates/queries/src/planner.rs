//! Refresh-set selection: which items must be fetched exactly so the
//! aggregate's answer interval meets the precision constraint.

use apcache_core::{Interval, Key};

use crate::aggregate::{answer_interval, AggregateKind};
use crate::error::QueryError;
use crate::PrecisionConstraint;

/// One item visible to a query: a key and the interval the cache currently
/// offers for it (uncached keys are represented by unbounded intervals).
#[derive(Debug, Clone)]
pub struct ItemBound {
    /// The data value's key.
    pub key: Key,
    /// The valid interval the cache holds for it.
    pub interval: Interval,
}

impl ItemBound {
    /// Convenience constructor.
    pub fn new(key: Key, interval: Interval) -> Self {
        ItemBound { key, interval }
    }
}

/// Result of evaluating a bounded aggregate query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The answer interval; its width is guaranteed to satisfy the
    /// constraint the query ran with.
    pub answer: Interval,
    /// Keys that were fetched exactly (each one is a query-initiated
    /// refresh), in fetch order.
    pub refreshed: Vec<Key>,
}

/// Evaluate a bounded aggregate over `items`, fetching exact values through
/// `fetch` until the constraint holds.
///
/// `fetch(key)` must return the current exact value at the source; the
/// engine treats the fetched item as a zero-width point from then on. The
/// caller is responsible for the protocol side effects of the fetch (cost
/// accounting, installing the replacement approximation, width adaptation).
///
/// Guarantees on success:
/// * `outcome.answer.width() <= constraint.delta()`;
/// * `outcome.refreshed` is minimal for SUM/AVG (uniform fetch costs);
///   greedy-with-elimination for MAX/MIN per OW00.
pub fn evaluate(
    kind: AggregateKind,
    constraint: PrecisionConstraint,
    items: &[ItemBound],
    fetch: impl FnMut(Key) -> f64,
) -> Result<QueryOutcome, QueryError> {
    match kind {
        AggregateKind::Sum => evaluate_sum(constraint, items, fetch),
        AggregateKind::Avg => {
            if items.is_empty() {
                return Err(QueryError::EmptyInput);
            }
            let n = items.len() as f64;
            // width(AVG) = width(SUM)/n, so constrain the SUM to δ·n and
            // scale the answer back down.
            let scaled =
                PrecisionConstraint::new(constraint.delta() * n).expect("delta * n is nonnegative");
            let sum = evaluate_sum(scaled, items, fetch)?;
            Ok(QueryOutcome {
                answer: sum.answer.scale(1.0 / n).expect("1/n positive finite"),
                refreshed: sum.refreshed,
            })
        }
        AggregateKind::Max => evaluate_extremum(constraint, items, fetch, Extremum::Max),
        AggregateKind::Min => evaluate_extremum(constraint, items, fetch, Extremum::Min),
    }
}

/// Plan (without fetching) the minimal refresh set for a SUM query:
/// the smallest number of items whose removal leaves the residual width sum
/// within `delta`, chosen widest-first. Returns keys in refresh order.
pub fn sum_refresh_set(items: &[ItemBound], delta: f64) -> Result<Vec<Key>, QueryError> {
    if delta.is_nan() || delta < 0.0 {
        return Err(QueryError::InvalidConstraint(delta));
    }
    let order = widest_first(items);
    // suffix[i] = sum of widths of order[i..]; suffix[k] is the residual
    // width if the first k (widest) items are refreshed.
    let k = refresh_count(items, &order, delta);
    Ok(order[..k].iter().map(|&i| items[i].key).collect())
}

/// Indices of `items` sorted widest-first, ties broken by key for
/// determinism.
fn widest_first(items: &[ItemBound]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .interval
            .width()
            .total_cmp(&items[a].interval.width())
            .then_with(|| items[a].key.cmp(&items[b].key))
    });
    order
}

/// Number of leading items of `order` that must be refreshed so the
/// residual width sum is `<= delta`.
fn refresh_count(items: &[ItemBound], order: &[usize], delta: f64) -> usize {
    let n = order.len();
    // Residual sums computed back-to-front: suffix[k] = Σ widths of the
    // items kept when the k widest are refreshed. Infinite widths sit at
    // the front of `order`, so suffixes behind them stay finite.
    let mut suffix = vec![0.0f64; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + items[order[i]].interval.width();
    }
    (0..=n).find(|&k| suffix[k] <= delta).unwrap_or(n)
}

fn evaluate_sum(
    constraint: PrecisionConstraint,
    items: &[ItemBound],
    mut fetch: impl FnMut(Key) -> f64,
) -> Result<QueryOutcome, QueryError> {
    let order = widest_first(items);
    let k = refresh_count(items, &order, constraint.delta());
    let mut working: Vec<Interval> = items.iter().map(|it| it.interval).collect();
    let mut refreshed = Vec::with_capacity(k);
    for &idx in &order[..k] {
        let key = items[idx].key;
        let value = fetch(key);
        if !value.is_finite() {
            return Err(QueryError::NonFiniteFetch { key, value });
        }
        working[idx] = Interval::point(value).expect("finite value");
        refreshed.push(key);
    }
    let bounds: Vec<ItemBound> =
        items.iter().zip(&working).map(|(it, iv)| ItemBound::new(it.key, *iv)).collect();
    let answer = answer_interval(AggregateKind::Sum, &bounds)?;
    // The residual-sum decision and this recomputation associate the
    // floating-point additions differently; allow a few ulps of slack.
    debug_assert!(
        answer.width() <= constraint.delta() * (1.0 + 1e-12) + 1e-9,
        "SUM planner failed its guarantee: width={} delta={}",
        answer.width(),
        constraint.delta()
    );
    Ok(QueryOutcome { answer, refreshed })
}

#[derive(Clone, Copy, PartialEq)]
enum Extremum {
    Max,
    Min,
}

fn evaluate_extremum(
    constraint: PrecisionConstraint,
    items: &[ItemBound],
    mut fetch: impl FnMut(Key) -> f64,
    which: Extremum,
) -> Result<QueryOutcome, QueryError> {
    if items.is_empty() {
        return Err(QueryError::EmptyInput);
    }
    let kind = match which {
        Extremum::Max => AggregateKind::Max,
        Extremum::Min => AggregateKind::Min,
    };
    let mut working: Vec<ItemBound> = items.to_vec();
    let mut fetched = vec![false; items.len()];
    let mut refreshed = Vec::new();
    loop {
        let answer = answer_interval(kind, &working)?;
        if constraint.satisfied_by(answer.width()) {
            return Ok(QueryOutcome { answer, refreshed });
        }
        // OW00 CHOOSE step: fetch the unfetched item whose bound extends
        // the answer furthest — largest hi for MAX, smallest lo for MIN.
        // Such an item always exists while the width exceeds the
        // constraint (a fetched point cannot be the extreme bound of a
        // non-degenerate answer interval).
        let victim = (0..working.len()).filter(|&i| !fetched[i]).max_by(|&a, &b| {
            let (wa, wb) = match which {
                Extremum::Max => (working[a].interval.hi(), working[b].interval.hi()),
                // For MIN we want the smallest lo: compare negated.
                Extremum::Min => (-working[a].interval.lo(), -working[b].interval.lo()),
            };
            // Ties broken toward the smaller key (max_by keeps the
            // last max, so order by key descending as secondary).
            wa.total_cmp(&wb).then_with(|| working[b].key.cmp(&working[a].key))
        });
        let Some(idx) = victim else {
            // All items fetched: the answer is exact, width 0, which
            // satisfies every constraint — the loop must have exited.
            debug_assert!(false, "extremum planner exhausted items without converging");
            let answer = answer_interval(kind, &working)?;
            return Ok(QueryOutcome { answer, refreshed });
        };
        let key = working[idx].key;
        let value = fetch(key);
        if !value.is_finite() {
            return Err(QueryError::NonFiniteFetch { key, value });
        }
        working[idx].interval = Interval::point(value).expect("finite value");
        fetched[idx] = true;
        refreshed.push(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn item(key: u32, lo: f64, hi: f64) -> ItemBound {
        ItemBound::new(Key(key), Interval::new(lo, hi).unwrap())
    }

    fn uncached(key: u32) -> ItemBound {
        ItemBound::new(Key(key), Interval::unbounded())
    }

    /// A fetch table: exact values per key, panicking on unknown keys.
    fn table(vals: &[(u32, f64)]) -> HashMap<Key, f64> {
        vals.iter().map(|&(k, v)| (Key(k), v)).collect()
    }

    fn fetcher(t: &HashMap<Key, f64>) -> impl FnMut(Key) -> f64 + '_ {
        move |k| *t.get(&k).expect("fetch for unknown key")
    }

    #[test]
    fn sum_no_refresh_when_constraint_met() {
        let items = vec![item(0, 0.0, 1.0), item(1, 5.0, 6.0)];
        let t = table(&[]);
        let out = evaluate(
            AggregateKind::Sum,
            PrecisionConstraint::new(2.0).unwrap(),
            &items,
            fetcher(&t),
        )
        .unwrap();
        assert!(out.refreshed.is_empty());
        assert_eq!(out.answer.width(), 2.0);
    }

    #[test]
    fn sum_refreshes_widest_first() {
        let items = vec![item(0, 0.0, 8.0), item(1, 0.0, 2.0), item(2, 0.0, 4.0)];
        let t = table(&[(0, 3.0), (2, 1.0)]);
        // Total width 14, constraint 3 → refresh key0 (8) then key2 (4),
        // leaving width 2 <= 3.
        let out = evaluate(
            AggregateKind::Sum,
            PrecisionConstraint::new(3.0).unwrap(),
            &items,
            fetcher(&t),
        )
        .unwrap();
        assert_eq!(out.refreshed, vec![Key(0), Key(2)]);
        assert!(out.answer.width() <= 3.0);
        // Answer uses the exact values: [3 + 0 + 1, 3 + 2 + 1].
        assert_eq!((out.answer.lo(), out.answer.hi()), (4.0, 6.0));
    }

    #[test]
    fn sum_exact_constraint_refreshes_all_inexact() {
        let items = vec![item(0, 0.0, 1.0), item(1, 4.0, 4.0), item(2, 2.0, 5.0)];
        let t = table(&[(0, 0.5), (2, 3.0)]);
        let out = evaluate(AggregateKind::Sum, PrecisionConstraint::exact(), &items, fetcher(&t))
            .unwrap();
        // key1 is already exact and must NOT be refreshed.
        assert_eq!(out.refreshed.len(), 2);
        assert!(!out.refreshed.contains(&Key(1)));
        assert!(out.answer.is_exact());
        assert_eq!(out.answer.lo(), 0.5 + 4.0 + 3.0);
    }

    #[test]
    fn sum_uncached_items_always_fetched_under_finite_constraint() {
        let items = vec![uncached(0), item(1, 0.0, 1.0)];
        let t = table(&[(0, 100.0)]);
        let out = evaluate(
            AggregateKind::Sum,
            PrecisionConstraint::new(1.5).unwrap(),
            &items,
            fetcher(&t),
        )
        .unwrap();
        assert_eq!(out.refreshed, vec![Key(0)]);
        assert_eq!((out.answer.lo(), out.answer.hi()), (100.0, 101.0));
    }

    #[test]
    fn sum_unconstrained_never_fetches() {
        let items = vec![uncached(0), uncached(1)];
        let t = table(&[]);
        let out =
            evaluate(AggregateKind::Sum, PrecisionConstraint::unconstrained(), &items, fetcher(&t))
                .unwrap();
        assert!(out.refreshed.is_empty());
        assert!(out.answer.is_unbounded());
    }

    #[test]
    fn sum_refresh_set_is_minimal_vs_brute_force() {
        // Exhaustive check on all subsets for several configurations.
        let cases: Vec<(Vec<f64>, f64)> = vec![
            (vec![8.0, 2.0, 4.0, 1.0], 3.0),
            (vec![5.0, 5.0, 5.0], 7.0),
            (vec![1.0, 1.0, 1.0, 1.0, 1.0], 2.5),
            (vec![10.0, 0.0, 3.0], 0.0),
            (vec![2.0], 5.0),
        ];
        for (widths, delta) in cases {
            let items: Vec<ItemBound> =
                widths.iter().enumerate().map(|(i, &w)| item(i as u32, 0.0, w)).collect();
            let chosen = sum_refresh_set(&items, delta).unwrap();
            // Brute force the minimum subset size achieving the residual.
            let n = items.len();
            let mut best = usize::MAX;
            for mask in 0..(1u32 << n) {
                let residual: f64 =
                    (0..n).filter(|&i| mask & (1 << i) == 0).map(|i| widths[i]).sum();
                if residual <= delta {
                    best = best.min(mask.count_ones() as usize);
                }
            }
            assert_eq!(chosen.len(), best, "widths={widths:?} delta={delta}");
        }
    }

    #[test]
    fn max_elimination_avoids_fetches() {
        // key0 dominates: its lo (100) exceeds every other hi, so a MAX
        // with δ=1 needs no fetches at all.
        let items = vec![item(0, 100.0, 101.0), item(1, 0.0, 50.0), item(2, -10.0, 20.0)];
        let t = table(&[]);
        let out = evaluate(
            AggregateKind::Max,
            PrecisionConstraint::new(1.0).unwrap(),
            &items,
            fetcher(&t),
        )
        .unwrap();
        assert!(out.refreshed.is_empty());
        assert_eq!((out.answer.lo(), out.answer.hi()), (100.0, 101.0));
    }

    #[test]
    fn max_exact_fetches_only_candidates() {
        // δ=0. key0's exact value (100.5) dominates key1's hi (50), so
        // fetching key0 alone collapses the answer; key1 and key2 are
        // eliminated without fetches. This is the Section 4.4/4.6 effect.
        let items = vec![item(0, 99.0, 105.0), item(1, 0.0, 50.0), item(2, -10.0, 20.0)];
        let t = table(&[(0, 100.5)]);
        let out = evaluate(AggregateKind::Max, PrecisionConstraint::exact(), &items, fetcher(&t))
            .unwrap();
        assert_eq!(out.refreshed, vec![Key(0)]);
        assert!(out.answer.is_exact());
        assert_eq!(out.answer.lo(), 100.5);
    }

    #[test]
    fn max_fetches_cascade_when_values_interleave() {
        // key0's exact value turns out low, exposing key1 as a candidate.
        let items = vec![item(0, 0.0, 100.0), item(1, 0.0, 60.0)];
        let t = table(&[(0, 10.0), (1, 55.0)]);
        let out = evaluate(AggregateKind::Max, PrecisionConstraint::exact(), &items, fetcher(&t))
            .unwrap();
        assert_eq!(out.refreshed, vec![Key(0), Key(1)]);
        assert_eq!(out.answer.lo(), 55.0);
    }

    #[test]
    fn min_is_symmetric_to_max() {
        let items = vec![item(0, -101.0, -100.0), item(1, -50.0, 0.0)];
        let t = table(&[]);
        let out = evaluate(
            AggregateKind::Min,
            PrecisionConstraint::new(1.0).unwrap(),
            &items,
            fetcher(&t),
        )
        .unwrap();
        assert!(out.refreshed.is_empty());
        assert_eq!((out.answer.lo(), out.answer.hi()), (-101.0, -100.0));
    }

    #[test]
    fn min_fetches_lowest_lower_bound() {
        let items = vec![item(0, 0.0, 100.0), item(1, 20.0, 30.0)];
        let t = table(&[(0, 90.0)]);
        let out = evaluate(
            AggregateKind::Min,
            PrecisionConstraint::new(10.0).unwrap(),
            &items,
            fetcher(&t),
        )
        .unwrap();
        // key0 has the smallest lo; fetching it (90) leaves MIN bounded by
        // key1's [20,30] — width 10 meets δ.
        assert_eq!(out.refreshed, vec![Key(0)]);
        assert!(out.answer.width() <= 10.0);
        assert_eq!((out.answer.lo(), out.answer.hi()), (20.0, 30.0));
    }

    #[test]
    fn avg_scales_constraint_by_n() {
        // Two items of width 4 each: SUM width 8, AVG width 4.
        let items = vec![item(0, 0.0, 4.0), item(1, 10.0, 14.0)];
        let t = table(&[]);
        // δ = 4 on AVG is satisfiable with no fetches.
        let out = evaluate(
            AggregateKind::Avg,
            PrecisionConstraint::new(4.0).unwrap(),
            &items,
            fetcher(&t),
        )
        .unwrap();
        assert!(out.refreshed.is_empty());
        assert_eq!((out.answer.lo(), out.answer.hi()), (5.0, 9.0));
        // δ = 2 on AVG means δ = 4 on the SUM: one fetch leaves residual
        // width 4, which meets it exactly.
        let t = table(&[(0, 2.0), (1, 12.0)]);
        let out = evaluate(
            AggregateKind::Avg,
            PrecisionConstraint::new(2.0).unwrap(),
            &items,
            fetcher(&t),
        )
        .unwrap();
        assert_eq!(out.refreshed.len(), 1);
        assert!(out.answer.width() <= 2.0);
        // δ = 1.9 forces both fetches (residual 4 > 3.8 after one).
        let out = evaluate(
            AggregateKind::Avg,
            PrecisionConstraint::new(1.9).unwrap(),
            &items,
            fetcher(&t),
        )
        .unwrap();
        assert_eq!(out.refreshed.len(), 2);
        assert!(out.answer.is_exact());
    }

    #[test]
    fn empty_inputs() {
        let t = table(&[]);
        assert!(
            evaluate(AggregateKind::Max, PrecisionConstraint::exact(), &[], fetcher(&t)).is_err()
        );
        let out =
            evaluate(AggregateKind::Sum, PrecisionConstraint::exact(), &[], fetcher(&t)).unwrap();
        assert!(out.answer.is_exact());
        assert_eq!(out.answer.lo(), 0.0);
    }

    #[test]
    fn non_finite_fetch_is_an_error() {
        let items = vec![item(0, 0.0, 10.0)];
        let out = evaluate(AggregateKind::Sum, PrecisionConstraint::exact(), &items, |_| f64::NAN);
        assert!(matches!(out, Err(QueryError::NonFiniteFetch { .. })));
    }

    #[test]
    fn sum_planner_deterministic_on_ties() {
        let items = vec![item(2, 0.0, 5.0), item(0, 0.0, 5.0), item(1, 0.0, 5.0)];
        let set = sum_refresh_set(&items, 5.0).unwrap();
        // Two refreshes needed; ties broken by ascending key.
        assert_eq!(set, vec![Key(0), Key(1)]);
    }

    #[test]
    fn max_guarantee_holds_for_random_cases() {
        // Deterministic pseudo-random micro-fuzz: the planner's guarantee
        // (answer width <= delta) must hold whatever the exact values are.
        let mut rng = apcache_core::Rng::seed_from_u64(2024);
        for case in 0..200 {
            let n = 1 + (rng.below(8) as usize);
            let mut items = Vec::new();
            let mut values = HashMap::new();
            for i in 0..n {
                let lo = rng.uniform(-100.0, 100.0);
                let w = rng.uniform(0.0, 50.0);
                items.push(item(i as u32, lo, lo + w));
                values.insert(Key(i as u32), lo + rng.f64() * w);
            }
            let delta = rng.uniform(0.0, 30.0);
            let out = evaluate(
                AggregateKind::Max,
                PrecisionConstraint::new(delta).unwrap(),
                &items,
                fetcher(&values),
            )
            .unwrap();
            assert!(
                out.answer.width() <= delta + 1e-9,
                "case {case}: width {} > delta {delta}",
                out.answer.width()
            );
        }
    }
}
