//! The paper's adaptive algorithm specialized to stale-value
//! approximations (Sections 2.1 and 4.7).
//!
//! "It was a simple matter to use numeric intervals to bound the number of
//! updates to the exact source value. We also needed to adjust our formula
//! for the cost factor to `θ' = C_vr/C_qr`. … No other modifications to
//! our algorithm were necessary."
//!
//! The approximated "value" is the cumulative count of source updates; the
//! cached interval bounds how many of them may be unreflected. Because the
//! counter only moves up, escape is deterministic — `P_vr ∝ 1/W` — which
//! is where the halved cost factor comes from (see
//! [`apcache_core::model::MonotonicModel`]).
//!
//! Exactly as the paper promises, no private protocol copy is needed: the
//! system routes the counter through the [`PrecisionStore`] façade with
//! [`PolicySpec::StaleCounter`] (low-anchored intervals `[c, c+W]`, the
//! monotonic cost factor), and the store's ordinary read/write protocol
//! does the rest.

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Key, Rng, TimeMs};
use apcache_sim::error::SimError;
use apcache_sim::stats::Stats;
use apcache_sim::system::{CacheSystem, QuerySummary};
use apcache_store::{Constraint, InitialWidth, PolicySpec, PrecisionStore, StoreBuilder};
use apcache_workload::query::GeneratedQuery;

/// Configuration of the stale-value specialization of the paper's
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaleApproxConfig {
    /// Message costs; the policy runs with `θ' = C_vr/C_qr`.
    pub cost: CostModel,
    /// Adaptivity parameter α (the paper uses 1).
    pub alpha: f64,
    /// Lower threshold γ0 in update counts (the paper uses 1).
    pub gamma0: f64,
    /// Upper threshold γ1 (`∞`, or `= γ0` for exact-tolerance workloads).
    pub gamma1: f64,
    /// Starting width in update counts.
    pub initial_width: f64,
}

impl Default for StaleApproxConfig {
    fn default() -> Self {
        StaleApproxConfig {
            cost: CostModel::new(1.0, 2.0).expect("static costs valid"),
            alpha: 1.0,
            gamma0: 1.0,
            gamma1: f64::INFINITY,
            initial_width: 4.0,
        }
    }
}

/// The paper's algorithm bounding update counters instead of values,
/// served through the [`PrecisionStore`] façade.
#[derive(Debug)]
pub struct StaleApproxSystem {
    store: PrecisionStore<Key>,
    /// Cumulative update count per source (the approximated "value").
    counts: Vec<u64>,
}

impl StaleApproxSystem {
    /// Create the system with one policy per source.
    pub fn new(
        cfg: &StaleApproxConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        if initial_values.is_empty() {
            return Err(SimError::Config("at least one source required".into()));
        }
        let mut builder: StoreBuilder<Key> = StoreBuilder::new()
            .cost(cfg.cost)
            .alpha(cfg.alpha)
            .thresholds(cfg.gamma0, cfg.gamma1)
            .initial_width(InitialWidth::Fixed(cfg.initial_width))
            .default_policy(PolicySpec::StaleCounter)
            .rng(rng.fork());
        for i in 0..initial_values.len() {
            // The store tracks the update counter, which starts at zero for
            // every source regardless of the data value.
            builder = builder.source(Key(i as u32), 0.0);
        }
        Ok(StaleApproxSystem { store: builder.build()?, counts: vec![0; initial_values.len()] })
    }

    /// The façade serving the update counters, for inspection.
    pub fn store(&self) -> &PrecisionStore<Key> {
        &self.store
    }

    /// The internal width (divergence bound) for `key`.
    pub fn internal_width_of(&self, key: Key) -> Option<f64> {
        self.store.internal_width(&key)
    }

    /// The effective divergence guarantee for `key` (`0` = exact copy,
    /// `∞` = uncached).
    pub fn guarantee_of(&self, key: Key) -> Option<f64> {
        Some(self.store.cached_interval(&key, 0)?.width())
    }
}

impl CacheSystem for StaleApproxSystem {
    fn on_update(
        &mut self,
        key: Key,
        _value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let Some(count) = self.counts.get_mut(key.0 as usize) else {
            return Err(SimError::Config(format!("update for unknown {key}")));
        };
        *count += 1;
        let outcome = self.store.write(&key, *count as f64, now)?;
        for _ in 0..outcome.refreshes {
            stats.record_vr(self.store.cost_model().c_vr());
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let mut remote = 0usize;
        for &key in &query.keys {
            if key.0 as usize >= self.counts.len() {
                return Err(SimError::Config(format!("query for unknown {key}")));
            }
            // The cache's staleness guarantee is the cached interval width;
            // a read that cannot be served within δ refreshes remotely.
            let result = self.store.read(&key, Constraint::Absolute(query.delta), now)?;
            if result.refreshed {
                stats.record_qr(self.store.cost_model().c_qr());
                remote += 1;
            }
        }
        Ok(QuerySummary { answer: None, refreshes: remote })
    }

    fn interval_of(&self, key: Key, now: TimeMs) -> Option<Interval> {
        // The "interval" lives in update-count space: [0, W].
        let w = self.store.cached_interval(&key, now)?.width();
        if w.is_infinite() {
            None
        } else {
            Interval::new(0.0, w).ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_queries::AggregateKind;

    fn query(key: u32, delta: f64) -> GeneratedQuery {
        GeneratedQuery { kind: AggregateKind::Sum, keys: vec![Key(key)], delta }
    }

    fn measuring() -> Stats {
        let mut s = Stats::new();
        s.begin_measurement();
        s
    }

    fn sys(cfg: StaleApproxConfig) -> StaleApproxSystem {
        StaleApproxSystem::new(&cfg, &[0.0], Rng::seed_from_u64(1)).unwrap()
    }

    #[test]
    fn uses_monotonic_cost_factor() {
        // C_vr=1, C_qr=2 → θ' = 0.5: every QR shrinks, VRs grow with
        // probability 1/2. Verify statistically through the system.
        let cfg = StaleApproxConfig { gamma0: 0.0, ..StaleApproxConfig::default() };
        let mut s = sys(cfg);
        let mut stats = measuring();
        let w0 = s.internal_width_of(Key(0)).unwrap();
        // One QR must shrink deterministically (prob min{1/θ',1} = 1).
        s.on_query(&query(0, 0.0), 0, &mut stats).unwrap();
        assert_eq!(s.internal_width_of(Key(0)).unwrap(), w0 / 2.0);
    }

    #[test]
    fn vr_fires_every_width_plus_one_updates() {
        // Fix width at 4 (θ' growth may or may not fire; use alpha=0 so
        // widths never change and the period is deterministic).
        let cfg = StaleApproxConfig {
            alpha: 0.0,
            gamma0: 0.0,
            initial_width: 4.0,
            ..StaleApproxConfig::default()
        };
        let mut s = sys(cfg);
        let mut stats = measuring();
        for i in 0..20 {
            s.on_update(Key(0), f64::from(i), 0, &mut stats).unwrap();
        }
        // Escape when u > 4, i.e. on updates 5, 10, 15, 20 → 4 VRs.
        assert_eq!(stats.vr_count(), 4);
    }

    #[test]
    fn tolerant_queries_hit_tight_queries_miss() {
        let cfg = StaleApproxConfig {
            alpha: 0.0,
            gamma0: 0.0,
            initial_width: 4.0,
            ..StaleApproxConfig::default()
        };
        let mut s = sys(cfg);
        let mut stats = measuring();
        // δ = 10 >= W = 4: local hit, no cost.
        s.on_query(&query(0, 10.0), 0, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 0);
        // δ = 2 < W = 4: remote.
        s.on_query(&query(0, 2.0), 0, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 1);
    }

    #[test]
    fn gamma0_snaps_to_exact_copy() {
        // Width 0.5 < γ0 = 1 → effective 0: every update is a VR and every
        // query (even δ = 0) is a hit.
        let cfg = StaleApproxConfig { initial_width: 0.5, ..StaleApproxConfig::default() };
        let mut s = sys(cfg);
        assert_eq!(s.guarantee_of(Key(0)).unwrap(), 0.0);
        let mut stats = measuring();
        s.on_query(&query(0, 0.0), 0, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 0, "exact copy must serve δ=0 locally");
        s.on_update(Key(0), 1.0, 0, &mut stats).unwrap();
        assert_eq!(stats.vr_count(), 1, "every update must propagate");
    }

    #[test]
    fn adapts_width_toward_balance() {
        // Alternate 1 update per query with tolerant/tight mix; width must
        // stay positive, finite, and respond to the workload.
        let mut s = sys(StaleApproxConfig::default());
        let mut stats = measuring();
        for i in 0..1000u32 {
            s.on_update(Key(0), f64::from(i), u64::from(i) * 1_000, &mut stats).unwrap();
            let delta = if i % 2 == 0 { 1.0 } else { 8.0 };
            s.on_query(&query(0, delta), u64::from(i) * 1_000 + 500, &mut stats).unwrap();
        }
        let w = s.internal_width_of(Key(0)).unwrap();
        assert!(w.is_finite() && w > 0.0);
        assert!(stats.vr_count() > 0);
        assert!(stats.qr_count() > 0);
    }

    #[test]
    fn facade_metrics_match_stats() {
        // The store's counters and the simulator's Stats must agree when
        // measurement covers the whole run.
        let mut s = sys(StaleApproxConfig::default());
        let mut stats = measuring();
        for i in 0..100u32 {
            s.on_update(Key(0), f64::from(i), u64::from(i) * 1_000, &mut stats).unwrap();
            s.on_query(&query(0, 2.0), u64::from(i) * 1_000 + 500, &mut stats).unwrap();
        }
        let m = s.store().metrics();
        assert_eq!(m.vr_count(), stats.vr_count());
        assert_eq!(m.qr_count(), stats.qr_count());
        assert_eq!(m.total_cost(), stats.total_cost());
    }
}
