//! The paper's adaptive algorithm specialized to stale-value
//! approximations (Sections 2.1 and 4.7).
//!
//! "It was a simple matter to use numeric intervals to bound the number of
//! updates to the exact source value. We also needed to adjust our formula
//! for the cost factor to `θ' = C_vr/C_qr`. … No other modifications to
//! our algorithm were necessary."
//!
//! The approximated "value" is the count of source updates not yet
//! reflected at the cache; the interval on it is `[0, W]`. Because the
//! counter only moves up, escape is deterministic — `P_vr ∝ 1/W` — which
//! is where the halved cost factor comes from (see
//! [`apcache_core::model::MonotonicModel`]).

use apcache_core::cost::CostModel;
use apcache_core::policy::{AdaptiveParams, AdaptivePolicy, Escape, PrecisionPolicy};
use apcache_core::{Interval, Key, Rng, TimeMs};
use apcache_sim::error::SimError;
use apcache_sim::stats::Stats;
use apcache_sim::system::{CacheSystem, QuerySummary};
use apcache_workload::query::GeneratedQuery;

/// Configuration of the stale-value specialization of the paper's
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaleApproxConfig {
    /// Message costs; the policy runs with `θ' = C_vr/C_qr`.
    pub cost: CostModel,
    /// Adaptivity parameter α (the paper uses 1).
    pub alpha: f64,
    /// Lower threshold γ0 in update counts (the paper uses 1).
    pub gamma0: f64,
    /// Upper threshold γ1 (`∞`, or `= γ0` for exact-tolerance workloads).
    pub gamma1: f64,
    /// Starting width in update counts.
    pub initial_width: f64,
}

impl Default for StaleApproxConfig {
    fn default() -> Self {
        StaleApproxConfig {
            cost: CostModel::new(1.0, 2.0).expect("static costs valid"),
            alpha: 1.0,
            gamma0: 1.0,
            gamma1: f64::INFINITY,
            initial_width: 4.0,
        }
    }
}

#[derive(Debug)]
struct KeyState {
    value: f64,
    policy: AdaptivePolicy,
    unreflected: u32,
}

/// The paper's algorithm bounding update counters instead of values.
#[derive(Debug)]
pub struct StaleApproxSystem {
    cost: CostModel,
    states: Vec<KeyState>,
    rng: Rng,
}

impl StaleApproxSystem {
    /// Create the system with one policy per source.
    pub fn new(
        cfg: &StaleApproxConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        if initial_values.is_empty() {
            return Err(SimError::Config("at least one source required".into()));
        }
        let params = AdaptiveParams::monotonic(&cfg.cost, cfg.alpha)?
            .with_thresholds(cfg.gamma0, cfg.gamma1)?;
        let states = initial_values
            .iter()
            .map(|&v| {
                Ok(KeyState {
                    value: v,
                    policy: AdaptivePolicy::new(params, cfg.initial_width)?,
                    unreflected: 0,
                })
            })
            .collect::<Result<Vec<_>, SimError>>()?;
        Ok(StaleApproxSystem { cost: cfg.cost, states, rng: rng.fork() })
    }

    /// The internal width (divergence bound) for `key`.
    pub fn internal_width_of(&self, key: Key) -> Option<f64> {
        self.states.get(key.0 as usize).map(|s| s.policy.internal_width())
    }

    /// The effective divergence guarantee for `key` (`0` = exact copy,
    /// `∞` = uncached).
    pub fn guarantee_of(&self, key: Key) -> Option<f64> {
        self.states.get(key.0 as usize).map(|s| s.policy.effective_width())
    }
}

impl CacheSystem for StaleApproxSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        _now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let Some(s) = self.states.get_mut(key.0 as usize) else {
            return Err(SimError::Config(format!("update for unknown {key}")));
        };
        s.value = value;
        s.unreflected += 1;
        // The update counter escaped its interval [0, W]?
        if f64::from(s.unreflected) > s.policy.effective_width() {
            stats.record_vr(self.cost.c_vr());
            s.policy.on_value_refresh(Escape::Above, &mut self.rng);
            s.unreflected = 0;
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        _now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let mut remote = 0usize;
        for &key in &query.keys {
            let Some(s) = self.states.get_mut(key.0 as usize) else {
                return Err(SimError::Config(format!("query for unknown {key}")));
            };
            // The cache's staleness guarantee is the interval width.
            if s.policy.effective_width() > query.delta {
                stats.record_qr(self.cost.c_qr());
                s.policy.on_query_refresh(&mut self.rng);
                s.unreflected = 0;
                remote += 1;
            }
        }
        Ok(QuerySummary { answer: None, refreshes: remote })
    }

    fn interval_of(&self, key: Key, _now: TimeMs) -> Option<Interval> {
        // The "interval" lives in update-count space: [0, W].
        let s = self.states.get(key.0 as usize)?;
        let w = s.policy.effective_width();
        if w.is_infinite() {
            None
        } else {
            Interval::new(0.0, w).ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_queries::AggregateKind;

    fn query(key: u32, delta: f64) -> GeneratedQuery {
        GeneratedQuery { kind: AggregateKind::Sum, keys: vec![Key(key)], delta }
    }

    fn measuring() -> Stats {
        let mut s = Stats::new();
        s.begin_measurement();
        s
    }

    fn sys(cfg: StaleApproxConfig) -> StaleApproxSystem {
        StaleApproxSystem::new(&cfg, &[0.0], Rng::seed_from_u64(1)).unwrap()
    }

    #[test]
    fn uses_monotonic_cost_factor() {
        // C_vr=1, C_qr=2 → θ' = 0.5: every QR shrinks, VRs grow with
        // probability 1/2. Verify statistically through the system.
        let cfg = StaleApproxConfig { gamma0: 0.0, ..StaleApproxConfig::default() };
        let mut s = sys(cfg);
        let mut stats = measuring();
        let w0 = s.internal_width_of(Key(0)).unwrap();
        // One QR must shrink deterministically (prob min{1/θ',1} = 1).
        s.on_query(&query(0, 0.0), 0, &mut stats).unwrap();
        assert_eq!(s.internal_width_of(Key(0)).unwrap(), w0 / 2.0);
    }

    #[test]
    fn vr_fires_every_width_plus_one_updates() {
        // Fix width at 4 (θ' growth may or may not fire; use alpha=0 so
        // widths never change and the period is deterministic).
        let cfg = StaleApproxConfig {
            alpha: 0.0,
            gamma0: 0.0,
            initial_width: 4.0,
            ..StaleApproxConfig::default()
        };
        let mut s = sys(cfg);
        let mut stats = measuring();
        for i in 0..20 {
            s.on_update(Key(0), f64::from(i), 0, &mut stats).unwrap();
        }
        // Escape when u > 4, i.e. on updates 5, 10, 15, 20 → 4 VRs.
        assert_eq!(stats.vr_count(), 4);
    }

    #[test]
    fn tolerant_queries_hit_tight_queries_miss() {
        let cfg = StaleApproxConfig {
            alpha: 0.0,
            gamma0: 0.0,
            initial_width: 4.0,
            ..StaleApproxConfig::default()
        };
        let mut s = sys(cfg);
        let mut stats = measuring();
        // δ = 10 >= W = 4: local hit, no cost.
        s.on_query(&query(0, 10.0), 0, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 0);
        // δ = 2 < W = 4: remote.
        s.on_query(&query(0, 2.0), 0, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 1);
    }

    #[test]
    fn gamma0_snaps_to_exact_copy() {
        // Width 0.5 < γ0 = 1 → effective 0: every update is a VR and every
        // query (even δ = 0) is a hit.
        let cfg = StaleApproxConfig { initial_width: 0.5, ..StaleApproxConfig::default() };
        let mut s = sys(cfg);
        assert_eq!(s.guarantee_of(Key(0)).unwrap(), 0.0);
        let mut stats = measuring();
        s.on_query(&query(0, 0.0), 0, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 0, "exact copy must serve δ=0 locally");
        s.on_update(Key(0), 1.0, 0, &mut stats).unwrap();
        assert_eq!(stats.vr_count(), 1, "every update must propagate");
    }

    #[test]
    fn adapts_width_toward_balance() {
        // Alternate 1 update per query with tolerant/tight mix; width must
        // stay positive, finite, and respond to the workload.
        let mut s = sys(StaleApproxConfig::default());
        let mut stats = measuring();
        for i in 0..1000u32 {
            s.on_update(Key(0), f64::from(i), u64::from(i) * 1_000, &mut stats).unwrap();
            let delta = if i % 2 == 0 { 1.0 } else { 8.0 };
            s.on_query(&query(0, delta), u64::from(i) * 1_000 + 500, &mut stats).unwrap();
        }
        let w = s.internal_width_of(Key(0)).unwrap();
        assert!(w.is_finite() && w > 0.0);
        assert!(stats.vr_count() > 0);
        assert!(stats.qr_count() > 0);
    }
}
