//! WJH97-derived adaptive exact caching (paper, Section 4.6).
//!
//! "In this algorithm, the number of requested reads `r` and writes `w` to
//! each data value are counted. The caching strategy for every data value
//! is reevaluated every `x` reads and/or writes to the value, i.e.,
//! whenever `r + w >= x`. At reevaluation, the projected cost of not
//! caching `C_nc = r·C_qr` is computed \[and\] the projected cost of caching
//! `C_c = w·C_vr`. The value is cached if and only if `C_c < C_nc`. If the
//! cache has limited space, values having the lowest cost difference
//! `C_nc − C_c` are evicted and the source is notified of the eviction."
//!
//! Semantics pinned down for the implementation:
//!
//! * A *read* is a query touching the value; reads of cached values are
//!   served locally at zero cost, reads of uncached values cost `C_qr`
//!   (remote read). A *write* is a source update; writes to cached values
//!   cost `C_vr` (propagation), writes to uncached values are free.
//! * Counters reset to zero after each reevaluation.
//! * Caching-state transitions at reevaluation are free (charitable to the
//!   baseline; the paper does not charge them either).
//! * With limited capacity, a newly cache-worthy value is admitted only if
//!   its cost difference exceeds the smallest resident difference; the
//!   evicted source is notified and stops propagating (unlike the paper's
//!   approximate cache, which never notifies).

use std::collections::HashMap;

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Key, TimeMs};
use apcache_sim::error::SimError;
use apcache_sim::stats::Stats;
use apcache_sim::system::{CacheSystem, QuerySummary};
use apcache_workload::query::GeneratedQuery;

/// Configuration of the exact-caching baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactCachingConfig {
    /// Refresh/message costs.
    pub cost: CostModel,
    /// Reevaluation period `x` (paper sweeps 3..45 and reports the best).
    pub x: u32,
    /// Cache capacity κ; `None` = unbounded.
    pub cache_capacity: Option<usize>,
}

impl ExactCachingConfig {
    /// Validate the configuration.
    fn validate(&self) -> Result<(), SimError> {
        if self.x == 0 {
            return Err(SimError::Config("reevaluation period x must be >= 1".into()));
        }
        if self.cache_capacity == Some(0) {
            return Err(SimError::Config("cache capacity must be >= 1".into()));
        }
        Ok(())
    }
}

/// Per-value bookkeeping.
#[derive(Debug, Clone, Copy)]
struct ValueState {
    value: f64,
    cached: bool,
    reads: u32,
    writes: u32,
    /// Cost difference `C_nc − C_c` computed at the last reevaluation;
    /// the eviction priority (lowest evicted first).
    cost_diff: f64,
}

/// The WJH97 adaptive exact-replication baseline.
#[derive(Debug)]
pub struct ExactCachingSystem {
    cfg: ExactCachingConfig,
    states: Vec<ValueState>,
    cached_count: usize,
}

impl ExactCachingSystem {
    /// Create the system; initially nothing is cached (the first
    /// reevaluations populate the cache).
    pub fn new(cfg: ExactCachingConfig, initial_values: &[f64]) -> Result<Self, SimError> {
        cfg.validate()?;
        if initial_values.is_empty() {
            return Err(SimError::Config("at least one source required".into()));
        }
        let states = initial_values
            .iter()
            .map(|&v| ValueState { value: v, cached: false, reads: 0, writes: 0, cost_diff: 0.0 })
            .collect();
        Ok(ExactCachingSystem { cfg, states, cached_count: 0 })
    }

    /// Whether `key` currently holds an exact replica.
    pub fn is_cached(&self, key: Key) -> bool {
        self.states.get(key.0 as usize).map(|s| s.cached).unwrap_or(false)
    }

    /// Number of values currently replicated.
    pub fn cached_count(&self) -> usize {
        self.cached_count
    }

    /// Reevaluate the caching decision for one value if its access count
    /// reached `x`.
    fn maybe_reevaluate(&mut self, idx: usize) {
        let x = self.cfg.x;
        let (c_vr, c_qr) = (self.cfg.cost.c_vr(), self.cfg.cost.c_qr());
        let s = &mut self.states[idx];
        if s.reads + s.writes < x {
            return;
        }
        let c_nc = f64::from(s.reads) * c_qr;
        let c_c = f64::from(s.writes) * c_vr;
        let want_cached = c_c < c_nc;
        s.cost_diff = c_nc - c_c;
        s.reads = 0;
        s.writes = 0;
        let was_cached = s.cached;
        match (was_cached, want_cached) {
            (true, false) => {
                self.states[idx].cached = false;
                self.cached_count -= 1;
            }
            (false, true) => self.try_admit(idx),
            _ => {}
        }
    }

    /// Admit `idx` into the replica set, evicting the lowest-cost-difference
    /// resident if the cache is full (with source notification — the
    /// evicted value simply stops being propagated).
    fn try_admit(&mut self, idx: usize) {
        let capacity = self.cfg.cache_capacity.unwrap_or(usize::MAX);
        if self.cached_count < capacity {
            self.states[idx].cached = true;
            self.cached_count += 1;
            return;
        }
        // Find the resident with the lowest cost difference.
        let victim = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cached)
            .min_by(|(ia, a), (ib, b)| a.cost_diff.total_cmp(&b.cost_diff).then_with(|| ia.cmp(ib)))
            .map(|(i, s)| (i, s.cost_diff));
        if let Some((vi, v_diff)) = victim {
            if self.states[idx].cost_diff > v_diff {
                self.states[vi].cached = false;
                self.states[idx].cached = true;
            }
        }
    }
}

impl CacheSystem for ExactCachingSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        _now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let idx = key.0 as usize;
        let Some(s) = self.states.get_mut(idx) else {
            return Err(SimError::Config(format!("update for unknown {key}")));
        };
        s.value = value;
        s.writes += 1;
        if s.cached {
            // Propagate the new value to the replica.
            stats.record_vr(self.cfg.cost.c_vr());
        }
        self.maybe_reevaluate(idx);
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        _now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        // Exact caching has no notion of bounded answers: every touched
        // value is read exactly — locally if replicated, remotely
        // otherwise. Duplicate keys in a query are read once.
        let mut remote_reads = 0usize;
        let mut values: HashMap<Key, f64> = HashMap::with_capacity(query.keys.len());
        for &key in &query.keys {
            let idx = key.0 as usize;
            if values.contains_key(&key) {
                continue;
            }
            let Some(s) = self.states.get_mut(idx) else {
                return Err(SimError::Config(format!("query for unknown {key}")));
            };
            s.reads += 1;
            if !s.cached {
                stats.record_qr(self.cfg.cost.c_qr());
                remote_reads += 1;
            }
            values.insert(key, s.value);
            self.maybe_reevaluate(idx);
        }
        // The exact answer (a point interval), for parity with the
        // approximate systems' reporting.
        let answer = match query.kind {
            apcache_queries::AggregateKind::Sum => Some(values.values().sum::<f64>()),
            apcache_queries::AggregateKind::Max => values.values().copied().reduce(f64::max),
            apcache_queries::AggregateKind::Min => values.values().copied().reduce(f64::min),
            apcache_queries::AggregateKind::Avg => {
                if values.is_empty() {
                    None
                } else {
                    Some(values.values().sum::<f64>() / values.len() as f64)
                }
            }
        };
        Ok(QuerySummary {
            answer: answer.and_then(|v| Interval::point(v).ok()),
            refreshes: remote_reads,
        })
    }

    fn interval_of(&self, key: Key, _now: TimeMs) -> Option<Interval> {
        let s = self.states.get(key.0 as usize)?;
        if s.cached {
            Interval::point(s.value).ok()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_queries::AggregateKind;

    fn cfg(x: u32, capacity: Option<usize>) -> ExactCachingConfig {
        ExactCachingConfig { cost: CostModel::multiversion(), x, cache_capacity: capacity }
    }

    fn query(keys: &[u32]) -> GeneratedQuery {
        GeneratedQuery {
            kind: AggregateKind::Sum,
            keys: keys.iter().map(|&k| Key(k)).collect(),
            delta: 0.0,
        }
    }

    fn measuring_stats() -> Stats {
        let mut s = Stats::new();
        s.begin_measurement();
        s
    }

    #[test]
    fn validation() {
        assert!(ExactCachingSystem::new(cfg(0, None), &[1.0]).is_err());
        assert!(ExactCachingSystem::new(cfg(5, Some(0)), &[1.0]).is_err());
        assert!(ExactCachingSystem::new(cfg(5, None), &[]).is_err());
    }

    #[test]
    fn read_heavy_value_becomes_cached() {
        let mut sys = ExactCachingSystem::new(cfg(4, None), &[10.0]).unwrap();
        let mut stats = measuring_stats();
        // 4 reads, no writes → reevaluation: C_nc = 4·2 = 8 > C_c = 0 → cache.
        for _ in 0..4 {
            sys.on_query(&query(&[0]), 0, &mut stats).unwrap();
        }
        assert!(sys.is_cached(Key(0)));
        // All 4 reads were remote (value was uncached while counting).
        assert_eq!(stats.qr_count(), 4);
        // Further reads are free.
        sys.on_query(&query(&[0]), 0, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 4);
    }

    #[test]
    fn write_heavy_value_becomes_uncached() {
        let mut sys = ExactCachingSystem::new(cfg(4, None), &[10.0]).unwrap();
        let mut stats = measuring_stats();
        // Cache it first.
        for _ in 0..4 {
            sys.on_query(&query(&[0]), 0, &mut stats).unwrap();
        }
        assert!(sys.is_cached(Key(0)));
        // 4 writes, no reads → C_c = 4·1 = 4 > C_nc = 0 → drop.
        for i in 0..4 {
            sys.on_update(Key(0), 11.0 + f64::from(i), 0, &mut stats).unwrap();
        }
        assert!(!sys.is_cached(Key(0)));
        // The 4 writes were propagated while cached.
        assert_eq!(stats.vr_count(), 4);
        // Subsequent writes are free.
        sys.on_update(Key(0), 99.0, 0, &mut stats).unwrap();
        assert_eq!(stats.vr_count(), 4);
    }

    #[test]
    fn mixed_workload_caches_when_reads_dominate() {
        // θ = 1 (C_vr=1, C_qr=2): caching wins when 2r > w.
        let mut sys = ExactCachingSystem::new(cfg(6, None), &[0.0]).unwrap();
        let mut stats = measuring_stats();
        // 2 writes + 4 reads = 6 accesses: C_c = 2 < C_nc = 8 → cache.
        sys.on_update(Key(0), 1.0, 0, &mut stats).unwrap();
        sys.on_update(Key(0), 2.0, 0, &mut stats).unwrap();
        for _ in 0..4 {
            sys.on_query(&query(&[0]), 0, &mut stats).unwrap();
        }
        assert!(sys.is_cached(Key(0)));
    }

    #[test]
    fn capacity_evicts_lowest_cost_difference() {
        let mut sys = ExactCachingSystem::new(cfg(2, Some(1)), &[0.0, 0.0]).unwrap();
        let mut stats = measuring_stats();
        // Key 0: 2 reads → diff = 4, cached.
        sys.on_query(&query(&[0]), 0, &mut stats).unwrap();
        sys.on_query(&query(&[0]), 0, &mut stats).unwrap();
        assert!(sys.is_cached(Key(0)));
        // Key 1 becomes cache-worthy with the same diff → NOT admitted
        // (strictly greater required).
        sys.on_query(&query(&[1]), 0, &mut stats).unwrap();
        sys.on_query(&query(&[1]), 0, &mut stats).unwrap();
        assert!(sys.is_cached(Key(0)));
        assert!(!sys.is_cached(Key(1)));
        assert_eq!(sys.cached_count(), 1);
        // Make key 0's next reevaluation weak (write-heavy) so its diff
        // drops, then key 1 with a stronger diff displaces it... key 0
        // first gets uncached by its own reevaluation (C_c > C_nc).
        sys.on_update(Key(0), 1.0, 0, &mut stats).unwrap();
        sys.on_update(Key(0), 2.0, 0, &mut stats).unwrap();
        assert!(!sys.is_cached(Key(0)));
        // Now key 1 re-qualifies into free space.
        sys.on_query(&query(&[1]), 0, &mut stats).unwrap();
        sys.on_query(&query(&[1]), 0, &mut stats).unwrap();
        assert!(sys.is_cached(Key(1)));
    }

    #[test]
    fn query_answers_are_exact() {
        let mut sys = ExactCachingSystem::new(cfg(10, None), &[3.0, 4.0]).unwrap();
        let mut stats = measuring_stats();
        let out = sys.on_query(&query(&[0, 1]), 0, &mut stats).unwrap();
        let iv = out.answer.unwrap();
        assert!(iv.is_exact());
        assert_eq!(iv.lo(), 7.0);
        assert_eq!(out.refreshes, 2);
    }

    #[test]
    fn duplicate_keys_read_once() {
        let mut sys = ExactCachingSystem::new(cfg(10, None), &[3.0]).unwrap();
        let mut stats = measuring_stats();
        let out = sys.on_query(&query(&[0, 0, 0]), 0, &mut stats).unwrap();
        assert_eq!(out.refreshes, 1);
        assert_eq!(stats.qr_count(), 1);
    }

    #[test]
    fn interval_of_reflects_replicas() {
        let mut sys = ExactCachingSystem::new(cfg(2, None), &[5.0]).unwrap();
        let mut stats = measuring_stats();
        assert!(sys.interval_of(Key(0), 0).is_none());
        sys.on_query(&query(&[0]), 0, &mut stats).unwrap();
        sys.on_query(&query(&[0]), 0, &mut stats).unwrap();
        let iv = sys.interval_of(Key(0), 0).unwrap();
        assert!(iv.is_exact());
        assert_eq!(iv.lo(), 5.0);
    }
}
