//! HSW94 Divergence Caching (paper, Section 4.7).
//!
//! Stale-value approximations: the cache holds a (possibly stale) copy of
//! the value together with a *divergence limit* `d` — the number of source
//! updates allowed to go unreflected before the source pushes a refresh.
//! Precision is inversely proportional to `d`; a query with tolerance `δ`
//! can be served locally iff the cached guarantee satisfies `d <= δ`.
//!
//! Unlike the paper's incremental algorithm, Divergence Caching
//! "continually resets the precision from scratch using detailed
//! projections for data access and update patterns … based on past
//! observations using a moving window scheme where the cache keeps track of
//! the `k` most recent reads and the source keeps track of the `k` most
//! recent writes. Based on empirical trials, the window size `k` was set
//! to 23."
//!
//! Reconstruction details (the original HSW94 pseudocode is not in the
//! paper): at every refresh the system estimates the read rate `λ_r` and
//! write rate `λ_w` from the timestamp windows, estimates `P(δ < d)` from
//! a window of recently observed query tolerances, and picks the divergence
//! limit minimizing the projected cost rate
//!
//! ```text
//! cost(d)        = C_vr·λ_w/(⌊d⌋+1) + C_qr·λ_r·P̂(δ < d)
//! cost(uncached) = C_qr·λ_r
//! ```
//!
//! over candidates `d ∈ {0} ∪ {observed tolerances} ∪ {uncached}`. This
//! hands the baseline exactly the information HSW94 assumes it has.

use std::collections::VecDeque;

use apcache_core::cost::CostModel;
use apcache_core::{Interval, Key, TimeMs, MS_PER_SEC};
use apcache_sim::error::SimError;
use apcache_sim::stats::Stats;
use apcache_sim::system::{CacheSystem, QuerySummary};
use apcache_workload::query::GeneratedQuery;

/// Configuration of the Divergence Caching baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceConfig {
    /// Message costs.
    pub cost: CostModel,
    /// Sliding window size `k` for reads and writes (paper: 23).
    pub window_k: usize,
    /// Window size for observed query tolerances (same order as `k`).
    pub tolerance_window: usize,
}

impl Default for DivergenceConfig {
    fn default() -> Self {
        DivergenceConfig {
            cost: CostModel::new(1.0, 2.0).expect("static costs valid"),
            window_k: 23,
            tolerance_window: 23,
        }
    }
}

impl DivergenceConfig {
    fn validate(&self) -> Result<(), SimError> {
        if self.window_k < 2 {
            return Err(SimError::Config("window k must be >= 2".into()));
        }
        if self.tolerance_window == 0 {
            return Err(SimError::Config("tolerance window must be >= 1".into()));
        }
        Ok(())
    }
}

/// The caching decision for one value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Decision {
    /// Don't cache: every read is remote.
    Uncached,
    /// Cache with divergence limit `d`.
    Cached(f64),
}

/// Sliding window of event timestamps with rate estimation.
#[derive(Debug, Clone)]
struct RateWindow {
    times: VecDeque<TimeMs>,
    cap: usize,
}

impl RateWindow {
    fn new(cap: usize) -> Self {
        RateWindow { times: VecDeque::with_capacity(cap), cap }
    }

    fn push(&mut self, t: TimeMs) {
        if self.times.len() == self.cap {
            self.times.pop_front();
        }
        self.times.push_back(t);
    }

    /// Events per second over the window, or `None` with fewer than two
    /// observations.
    fn rate(&self, now: TimeMs) -> Option<f64> {
        if self.times.len() < 2 {
            return None;
        }
        let oldest = *self.times.front().expect("len >= 2");
        let span_secs = (now.saturating_sub(oldest)).max(1) as f64 / MS_PER_SEC as f64;
        Some(self.times.len() as f64 / span_secs)
    }
}

#[derive(Debug)]
struct KeyState {
    /// Current exact value at the source.
    value: f64,
    decision: Decision,
    /// Updates not yet reflected at the cache.
    unreflected: u32,
    reads: RateWindow,
    writes: RateWindow,
    tolerances: VecDeque<f64>,
}

/// The HSW94 Divergence Caching baseline system.
#[derive(Debug)]
pub struct DivergenceCachingSystem {
    cfg: DivergenceConfig,
    states: Vec<KeyState>,
}

impl DivergenceCachingSystem {
    /// Create the system; everything starts uncached.
    pub fn new(cfg: DivergenceConfig, initial_values: &[f64]) -> Result<Self, SimError> {
        cfg.validate()?;
        if initial_values.is_empty() {
            return Err(SimError::Config("at least one source required".into()));
        }
        let states = initial_values
            .iter()
            .map(|&v| KeyState {
                value: v,
                decision: Decision::Uncached,
                unreflected: 0,
                reads: RateWindow::new(cfg.window_k),
                writes: RateWindow::new(cfg.window_k),
                tolerances: VecDeque::with_capacity(cfg.tolerance_window),
            })
            .collect();
        Ok(DivergenceCachingSystem { cfg, states })
    }

    /// The current divergence limit for `key` (`None` when uncached).
    pub fn divergence_limit(&self, key: Key) -> Option<f64> {
        match self.states.get(key.0 as usize)?.decision {
            Decision::Cached(d) => Some(d),
            Decision::Uncached => None,
        }
    }

    /// Recompute the caching decision from scratch using the window
    /// projections (HSW94's defining behaviour).
    fn project(cfg: &DivergenceConfig, s: &KeyState, now: TimeMs) -> Decision {
        let Some(read_rate) = s.reads.rate(now) else {
            // Too little information: stay as-is conservative (uncached).
            return s.decision;
        };
        let write_rate = s.writes.rate(now).unwrap_or(0.0);
        let (c_vr, c_qr) = (cfg.cost.c_vr(), cfg.cost.c_qr());
        let frac_below = |d: f64| {
            if s.tolerances.is_empty() {
                // No tolerance information: assume every query demands
                // exactness, i.e. any d > 0 always misses.
                if d > 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                s.tolerances.iter().filter(|&&t| t < d).count() as f64 / s.tolerances.len() as f64
            }
        };
        let cost_of = |d: f64| {
            let vr_period_updates = d.floor() + 1.0;
            c_vr * write_rate / vr_period_updates + c_qr * read_rate * frac_below(d)
        };
        let mut best = (Decision::Uncached, c_qr * read_rate);
        let mut consider = |d: f64| {
            let cost = cost_of(d);
            // Strictly cheaper wins; on ties between cached candidates,
            // prefer the larger limit — it is robust to write bursts the
            // window has not seen yet and costs nothing for the reads the
            // window has seen.
            let better = match best.0 {
                Decision::Uncached => cost < best.1,
                Decision::Cached(bd) => cost < best.1 || (cost == best.1 && d > bd),
            };
            if better {
                best = (Decision::Cached(d), cost);
            }
        };
        consider(0.0);
        for &t in &s.tolerances {
            if t > 0.0 {
                consider(t);
            }
        }
        best.0
    }
}

impl CacheSystem for DivergenceCachingSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let idx = key.0 as usize;
        let cfg = self.cfg;
        let Some(s) = self.states.get_mut(idx) else {
            return Err(SimError::Config(format!("update for unknown {key}")));
        };
        s.value = value;
        s.writes.push(now);
        if let Decision::Cached(d) = s.decision {
            s.unreflected += 1;
            if f64::from(s.unreflected) > d {
                // Value-initiated refresh: push the fresh value and reset
                // the divergence limit from scratch.
                stats.record_vr(cfg.cost.c_vr());
                s.unreflected = 0;
                s.decision = Self::project(&cfg, s, now);
            }
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let cfg = self.cfg;
        let mut remote = 0usize;
        for &key in &query.keys {
            let idx = key.0 as usize;
            let Some(s) = self.states.get_mut(idx) else {
                return Err(SimError::Config(format!("query for unknown {key}")));
            };
            s.reads.push(now);
            if s.tolerances.len() == cfg.tolerance_window {
                s.tolerances.pop_front();
            }
            s.tolerances.push_back(query.delta);
            let hit = matches!(s.decision, Decision::Cached(d) if d <= query.delta);
            if !hit {
                // Query-initiated refresh / remote read.
                stats.record_qr(cfg.cost.c_qr());
                s.unreflected = 0;
                s.decision = Self::project(&cfg, s, now);
            }
            if !hit {
                remote += 1;
            }
        }
        Ok(QuerySummary { answer: None, refreshes: remote })
    }

    fn interval_of(&self, _key: Key, _now: TimeMs) -> Option<Interval> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_queries::AggregateKind;

    fn query(key: u32, delta: f64) -> GeneratedQuery {
        GeneratedQuery { kind: AggregateKind::Sum, keys: vec![Key(key)], delta }
    }

    fn measuring() -> Stats {
        let mut s = Stats::new();
        s.begin_measurement();
        s
    }

    #[test]
    fn validation() {
        let bad = DivergenceConfig { window_k: 1, ..DivergenceConfig::default() };
        assert!(DivergenceCachingSystem::new(bad, &[1.0]).is_err());
        let bad = DivergenceConfig { tolerance_window: 0, ..DivergenceConfig::default() };
        assert!(DivergenceCachingSystem::new(bad, &[1.0]).is_err());
        assert!(DivergenceCachingSystem::new(DivergenceConfig::default(), &[]).is_err());
    }

    #[test]
    fn starts_uncached_every_read_remote() {
        let mut sys = DivergenceCachingSystem::new(DivergenceConfig::default(), &[5.0]).unwrap();
        let mut stats = measuring();
        sys.on_query(&query(0, 3.0), 1_000, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 1);
    }

    #[test]
    fn read_heavy_workload_adopts_caching_with_tolerant_divergence() {
        let mut sys = DivergenceCachingSystem::new(DivergenceConfig::default(), &[5.0]).unwrap();
        let mut stats = measuring();
        // Many tolerant reads, few writes → projection should cache with a
        // nonzero divergence limit.
        for t in 1..20u64 {
            sys.on_query(&query(0, 5.0), t * 1_000, &mut stats).unwrap();
        }
        let d = sys.divergence_limit(Key(0));
        assert!(d.is_some(), "expected caching decision, got uncached");
        assert!(d.unwrap() > 0.0);
        // Now reads within tolerance are free.
        let before = stats.qr_count();
        sys.on_query(&query(0, 5.0), 30_000, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), before);
    }

    #[test]
    fn vr_fires_when_divergence_exceeded() {
        let mut sys = DivergenceCachingSystem::new(DivergenceConfig::default(), &[5.0]).unwrap();
        let mut stats = measuring();
        for t in 1..20u64 {
            sys.on_query(&query(0, 2.0), t * 1_000, &mut stats).unwrap();
        }
        let d = sys.divergence_limit(Key(0)).expect("cached");
        // Push more updates than the limit allows; exactly one VR per
        // (⌊d⌋+1) updates.
        let before_vr = stats.vr_count();
        let n_updates = (d.floor() as u32 + 1) * 3;
        for i in 0..n_updates {
            sys.on_update(Key(0), f64::from(i), 100_000 + u64::from(i) * 1_000, &mut stats)
                .unwrap();
        }
        assert!(stats.vr_count() > before_vr, "no VR after exceeding divergence");
    }

    #[test]
    fn write_heavy_workload_abandons_caching() {
        let mut sys = DivergenceCachingSystem::new(DivergenceConfig::default(), &[0.0]).unwrap();
        let mut stats = measuring();
        // Get it cached with exact tolerance (δ=0 reads).
        for t in 1..10u64 {
            sys.on_query(&query(0, 0.0), t * 1_000, &mut stats).unwrap();
        }
        // Flood with writes: each one (if cached with d=0) is a VR, and
        // projections should eventually flip to uncached.
        for i in 0..200u32 {
            sys.on_update(Key(0), f64::from(i), 20_000 + u64::from(i) * 100, &mut stats).unwrap();
        }
        assert_eq!(sys.divergence_limit(Key(0)), None, "should have uncached");
    }

    #[test]
    fn rate_window_estimates() {
        let mut w = RateWindow::new(5);
        assert_eq!(w.rate(0), None);
        // One event per second.
        for t in 0..5u64 {
            w.push(t * 1_000);
        }
        let r = w.rate(5_000).unwrap();
        assert!((r - 1.0).abs() < 0.1, "rate {r}");
    }
}
