//! # apcache-baselines
//!
//! The two baseline systems the SIGMOD 2001 paper compares against, plus
//! the paper's own algorithm specialized to the baseline's setting:
//!
//! * [`exact`] — the WJH97-derived adaptive **exact** caching algorithm of
//!   Section 4.6: per-value read/write counters, a caching decision
//!   reevaluated every `x` accesses (`cache iff w·C_vr < r·C_qr`), and
//!   cost-difference eviction with source notification.
//! * [`divergence`] — HSW94 Divergence Caching (Section 4.7): stale-value
//!   approximations whose precision is the number of unreflected updates;
//!   the divergence limit is recomputed *from scratch* at every refresh
//!   from sliding-window projections of read/write rates (window `k = 23`).
//! * [`stale`] — the paper's adaptive algorithm applied to stale-value
//!   approximations (Section 2.1/4.7): interval widths bound an update
//!   counter, and the cost factor becomes `θ' = C_vr/C_qr` because the
//!   escape process is monotonic (`P_vr ∝ 1/W` instead of `1/W²`).
//!
//! All three implement [`apcache_sim::system::CacheSystem`], so they run
//! under the same driver, workloads, and cost accounting as the paper's
//! system.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod divergence;
pub mod exact;
pub mod stale;

pub use divergence::{DivergenceCachingSystem, DivergenceConfig};
pub use exact::{ExactCachingConfig, ExactCachingSystem};
pub use stale::{StaleApproxConfig, StaleApproxSystem};
