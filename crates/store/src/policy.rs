//! Pluggable precision policies and initial-width selection.

use apcache_core::cost::CostModel;
use apcache_core::error::ParamError;
use apcache_core::policy::{
    AdaptiveParams, AdaptivePolicy, DriftingPolicy, FixedWidthPolicy, GrowthLaw, HistoryPolicy,
    MonotonicPolicy, PrecisionPolicy, TimeVaryingPolicy, UncenteredPolicy, Weighting,
};

/// How the starting interval width of a new approximation is chosen.
///
/// Convergence is insensitive to this — the policies adapt their widths
/// multiplicatively — so the default merely avoids pathological starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialWidth {
    /// The same fixed width for every value.
    Fixed(f64),
    /// `max(|value|·frac, floor)` — scales with the data.
    Relative {
        /// Fraction of the initial value magnitude.
        frac: f64,
        /// Lower bound so zero-valued sources still get a usable width.
        floor: f64,
    },
}

impl InitialWidth {
    /// The width to start with for a source whose initial value is `v`.
    pub fn for_value(&self, v: f64) -> f64 {
        match *self {
            InitialWidth::Fixed(w) => w,
            InitialWidth::Relative { frac, floor } => (v.abs() * frac).max(floor),
        }
    }
}

impl Default for InitialWidth {
    fn default() -> Self {
        InitialWidth::Relative { frac: 0.1, floor: 1.0 }
    }
}

/// Constructor enum for every precision-policy variant in the workspace —
/// the paper's main algorithm (Section 2), the Section 4.5 ablation
/// variants, and the stale-value specialization (Sections 2.1/4.7).
///
/// A `PolicySpec` is a *recipe*: [`PolicySpec::build`] instantiates the
/// dyn-compatible [`PrecisionPolicy`] object for one key, deriving the cost
/// factor θ from the store's [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PolicySpec {
    /// The paper's algorithm: centered constant intervals, adaptive width.
    #[default]
    Adaptive,
    /// Independently adjusted upper/lower half-widths (Section 4.5).
    Uncentered,
    /// Intervals that widen with the age of the refresh (Section 4.5).
    TimeVarying(GrowthLaw),
    /// Intervals with linearly drifting endpoints (Section 4.5, for
    /// predictably biased data).
    Drifting {
        /// Expected drift of the data in value units per second.
        rate_per_sec: f64,
    },
    /// Majority vote over the last `r` refreshes (Section 4.5).
    History {
        /// Window size.
        r: usize,
        /// Vote weighting.
        weighting: Weighting,
    },
    /// Non-adaptive fixed width (the Figure 3 sweep).
    Fixed {
        /// The constant interval width.
        width: f64,
    },
    /// The stale-value specialization (Sections 2.1/4.7): low-anchored
    /// intervals `[V, V+W]` over a monotonically increasing deviation
    /// metric, with the monotonic cost factor `θ' = C_vr/C_qr`.
    StaleCounter,
}

impl PolicySpec {
    /// Instantiate the policy object for one key.
    ///
    /// `cost`, `alpha`, and the thresholds come from the store
    /// configuration; `initial_width` from its [`InitialWidth`] rule.
    pub fn build(
        &self,
        cost: &CostModel,
        alpha: f64,
        gamma0: f64,
        gamma1: f64,
        initial_width: f64,
    ) -> Result<Box<dyn PrecisionPolicy>, ParamError> {
        let params = match self {
            PolicySpec::StaleCounter => AdaptiveParams::monotonic(cost, alpha)?,
            _ => AdaptiveParams::new(cost, alpha)?,
        }
        .with_thresholds(gamma0, gamma1)?;
        Ok(match *self {
            PolicySpec::Adaptive => Box::new(AdaptivePolicy::new(params, initial_width)?),
            PolicySpec::Uncentered => Box::new(UncenteredPolicy::new(params, initial_width)?),
            PolicySpec::TimeVarying(law) => {
                Box::new(TimeVaryingPolicy::new(params, initial_width, law)?)
            }
            PolicySpec::Drifting { rate_per_sec } => {
                Box::new(DriftingPolicy::new(params, initial_width, rate_per_sec)?)
            }
            PolicySpec::History { r, weighting } => {
                Box::new(HistoryPolicy::new(params, initial_width, r, weighting)?)
            }
            PolicySpec::Fixed { width } => Box::new(FixedWidthPolicy::new(width)?),
            PolicySpec::StaleCounter => Box::new(MonotonicPolicy::new(params, initial_width)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_width_modes() {
        assert_eq!(InitialWidth::Fixed(3.0).for_value(100.0), 3.0);
        let rel = InitialWidth::Relative { frac: 0.1, floor: 1.0 };
        assert_eq!(rel.for_value(100.0), 10.0);
        assert_eq!(rel.for_value(0.0), 1.0);
        assert_eq!(rel.for_value(-200.0), 20.0);
        assert_eq!(InitialWidth::default().for_value(50.0), 5.0);
    }

    #[test]
    fn every_variant_builds() {
        let cost = CostModel::multiversion();
        for spec in [
            PolicySpec::Adaptive,
            PolicySpec::Uncentered,
            PolicySpec::TimeVarying(GrowthLaw::sqrt(1.0).unwrap()),
            PolicySpec::Drifting { rate_per_sec: 0.5 },
            PolicySpec::History { r: 3, weighting: Weighting::Uniform },
            PolicySpec::Fixed { width: 10.0 },
            PolicySpec::StaleCounter,
        ] {
            let policy = spec.build(&cost, 1.0, 0.0, f64::INFINITY, 8.0).unwrap();
            assert!(policy.internal_width() > 0.0, "{spec:?}");
        }
    }

    #[test]
    fn stale_counter_uses_monotonic_theta() {
        // C_vr = 1, C_qr = 2 ⇒ θ' = 0.5: one query refresh always shrinks.
        let cost = CostModel::multiversion();
        let mut policy =
            PolicySpec::StaleCounter.build(&cost, 1.0, 0.0, f64::INFINITY, 8.0).unwrap();
        let mut rng = apcache_core::Rng::seed_from_u64(0);
        policy.on_query_refresh(&mut rng);
        assert_eq!(policy.internal_width(), 4.0);
    }

    #[test]
    fn invalid_parameters_surface() {
        let cost = CostModel::multiversion();
        assert!(PolicySpec::Adaptive.build(&cost, -1.0, 0.0, f64::INFINITY, 8.0).is_err());
        assert!(PolicySpec::Adaptive.build(&cost, 1.0, 2.0, 1.0, 8.0).is_err());
        assert!(PolicySpec::Fixed { width: -1.0 }
            .build(&cost, 1.0, 0.0, f64::INFINITY, 8.0)
            .is_err());
    }
}
